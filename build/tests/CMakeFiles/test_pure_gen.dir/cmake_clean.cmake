file(REMOVE_RECURSE
  "CMakeFiles/test_pure_gen.dir/test_pure_gen.cpp.o"
  "CMakeFiles/test_pure_gen.dir/test_pure_gen.cpp.o.d"
  "test_pure_gen"
  "test_pure_gen.pdb"
  "test_pure_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pure_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
