# Empty dependencies file for test_pure_gen.
# This may be replaced when dependencies are built.
