file(REMOVE_RECURSE
  "CMakeFiles/test_ooo_pipeline.dir/test_ooo_pipeline.cpp.o"
  "CMakeFiles/test_ooo_pipeline.dir/test_ooo_pipeline.cpp.o.d"
  "test_ooo_pipeline"
  "test_ooo_pipeline.pdb"
  "test_ooo_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
