# Empty compiler generated dependencies file for test_ooo_pipeline.
# This may be replaced when dependencies are built.
