file(REMOVE_RECURSE
  "CMakeFiles/test_gcd_circuit.dir/test_gcd_circuit.cpp.o"
  "CMakeFiles/test_gcd_circuit.dir/test_gcd_circuit.cpp.o.d"
  "test_gcd_circuit"
  "test_gcd_circuit.pdb"
  "test_gcd_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcd_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
