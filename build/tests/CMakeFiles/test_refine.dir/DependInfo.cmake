
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_refine.cpp" "tests/CMakeFiles/test_refine.dir/test_refine.cpp.o" "gcc" "tests/CMakeFiles/test_refine.dir/test_refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/refine/CMakeFiles/graphiti_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_circuits/CMakeFiles/graphiti_bench_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/graphiti_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/static_hls/CMakeFiles/graphiti_static_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/graphiti_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphiti_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/graphiti_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
