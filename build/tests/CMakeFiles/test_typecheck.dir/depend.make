# Empty dependencies file for test_typecheck.
# This may be replaced when dependencies are built.
