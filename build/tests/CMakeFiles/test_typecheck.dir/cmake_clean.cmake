file(REMOVE_RECURSE
  "CMakeFiles/test_typecheck.dir/test_typecheck.cpp.o"
  "CMakeFiles/test_typecheck.dir/test_typecheck.cpp.o.d"
  "test_typecheck"
  "test_typecheck.pdb"
  "test_typecheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
