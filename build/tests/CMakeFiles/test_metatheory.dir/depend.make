# Empty dependencies file for test_metatheory.
# This may be replaced when dependencies are built.
