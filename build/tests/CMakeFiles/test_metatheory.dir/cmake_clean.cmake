file(REMOVE_RECURSE
  "CMakeFiles/test_metatheory.dir/test_metatheory.cpp.o"
  "CMakeFiles/test_metatheory.dir/test_metatheory.cpp.o.d"
  "test_metatheory"
  "test_metatheory.pdb"
  "test_metatheory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metatheory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
