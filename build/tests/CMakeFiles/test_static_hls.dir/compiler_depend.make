# Empty compiler generated dependencies file for test_static_hls.
# This may be replaced when dependencies are built.
