file(REMOVE_RECURSE
  "CMakeFiles/test_static_hls.dir/test_static_hls.cpp.o"
  "CMakeFiles/test_static_hls.dir/test_static_hls.cpp.o.d"
  "test_static_hls"
  "test_static_hls.pdb"
  "test_static_hls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
