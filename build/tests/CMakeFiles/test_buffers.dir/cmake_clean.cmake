file(REMOVE_RECURSE
  "CMakeFiles/test_buffers.dir/test_buffers.cpp.o"
  "CMakeFiles/test_buffers.dir/test_buffers.cpp.o.d"
  "test_buffers"
  "test_buffers.pdb"
  "test_buffers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
