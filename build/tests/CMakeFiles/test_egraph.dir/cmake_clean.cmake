file(REMOVE_RECURSE
  "CMakeFiles/test_egraph.dir/test_egraph.cpp.o"
  "CMakeFiles/test_egraph.dir/test_egraph.cpp.o.d"
  "test_egraph"
  "test_egraph.pdb"
  "test_egraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
