# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_dot[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_gcd_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_refine[1]_include.cmake")
include("/root/repo/build/tests/test_egraph[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_ooo_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_static_hls[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_typecheck[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_functions[1]_include.cmake")
include("/root/repo/build/tests/test_state_space[1]_include.cmake")
include("/root/repo/build/tests/test_pure_gen[1]_include.cmake")
include("/root/repo/build/tests/test_emit[1]_include.cmake")
include("/root/repo/build/tests/test_liveness[1]_include.cmake")
include("/root/repo/build/tests/test_metatheory[1]_include.cmake")
include("/root/repo/build/tests/test_buffers[1]_include.cmake")
include("/root/repo/build/tests/test_scale[1]_include.cmake")
include("/root/repo/build/tests/test_module[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
