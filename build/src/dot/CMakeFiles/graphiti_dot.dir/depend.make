# Empty dependencies file for graphiti_dot.
# This may be replaced when dependencies are built.
