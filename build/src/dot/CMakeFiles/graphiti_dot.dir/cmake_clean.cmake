file(REMOVE_RECURSE
  "CMakeFiles/graphiti_dot.dir/dot.cpp.o"
  "CMakeFiles/graphiti_dot.dir/dot.cpp.o.d"
  "libgraphiti_dot.a"
  "libgraphiti_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
