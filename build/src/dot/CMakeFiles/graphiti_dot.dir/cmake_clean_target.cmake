file(REMOVE_RECURSE
  "libgraphiti_dot.a"
)
