file(REMOVE_RECURSE
  "CMakeFiles/graphiti_static_hls.dir/static_hls.cpp.o"
  "CMakeFiles/graphiti_static_hls.dir/static_hls.cpp.o.d"
  "libgraphiti_static_hls.a"
  "libgraphiti_static_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_static_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
