file(REMOVE_RECURSE
  "libgraphiti_static_hls.a"
)
