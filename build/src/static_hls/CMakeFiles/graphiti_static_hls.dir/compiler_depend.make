# Empty compiler generated dependencies file for graphiti_static_hls.
# This may be replaced when dependencies are built.
