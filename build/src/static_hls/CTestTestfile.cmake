# CMake generated Testfile for 
# Source directory: /root/repo/src/static_hls
# Build directory: /root/repo/build/src/static_hls
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
