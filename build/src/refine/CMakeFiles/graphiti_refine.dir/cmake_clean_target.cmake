file(REMOVE_RECURSE
  "libgraphiti_refine.a"
)
