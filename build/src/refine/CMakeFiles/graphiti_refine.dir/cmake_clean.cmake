file(REMOVE_RECURSE
  "CMakeFiles/graphiti_refine.dir/liveness.cpp.o"
  "CMakeFiles/graphiti_refine.dir/liveness.cpp.o.d"
  "CMakeFiles/graphiti_refine.dir/refinement.cpp.o"
  "CMakeFiles/graphiti_refine.dir/refinement.cpp.o.d"
  "CMakeFiles/graphiti_refine.dir/state_space.cpp.o"
  "CMakeFiles/graphiti_refine.dir/state_space.cpp.o.d"
  "CMakeFiles/graphiti_refine.dir/trace.cpp.o"
  "CMakeFiles/graphiti_refine.dir/trace.cpp.o.d"
  "libgraphiti_refine.a"
  "libgraphiti_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
