# Empty dependencies file for graphiti_refine.
# This may be replaced when dependencies are built.
