
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refine/liveness.cpp" "src/refine/CMakeFiles/graphiti_refine.dir/liveness.cpp.o" "gcc" "src/refine/CMakeFiles/graphiti_refine.dir/liveness.cpp.o.d"
  "/root/repo/src/refine/refinement.cpp" "src/refine/CMakeFiles/graphiti_refine.dir/refinement.cpp.o" "gcc" "src/refine/CMakeFiles/graphiti_refine.dir/refinement.cpp.o.d"
  "/root/repo/src/refine/state_space.cpp" "src/refine/CMakeFiles/graphiti_refine.dir/state_space.cpp.o" "gcc" "src/refine/CMakeFiles/graphiti_refine.dir/state_space.cpp.o.d"
  "/root/repo/src/refine/trace.cpp" "src/refine/CMakeFiles/graphiti_refine.dir/trace.cpp.o" "gcc" "src/refine/CMakeFiles/graphiti_refine.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semantics/CMakeFiles/graphiti_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphiti_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/graphiti_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
