# Empty compiler generated dependencies file for graphiti_graph.
# This may be replaced when dependencies are built.
