file(REMOVE_RECURSE
  "CMakeFiles/graphiti_graph.dir/expr_high.cpp.o"
  "CMakeFiles/graphiti_graph.dir/expr_high.cpp.o.d"
  "CMakeFiles/graphiti_graph.dir/expr_low.cpp.o"
  "CMakeFiles/graphiti_graph.dir/expr_low.cpp.o.d"
  "CMakeFiles/graphiti_graph.dir/signatures.cpp.o"
  "CMakeFiles/graphiti_graph.dir/signatures.cpp.o.d"
  "CMakeFiles/graphiti_graph.dir/typecheck.cpp.o"
  "CMakeFiles/graphiti_graph.dir/typecheck.cpp.o.d"
  "libgraphiti_graph.a"
  "libgraphiti_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
