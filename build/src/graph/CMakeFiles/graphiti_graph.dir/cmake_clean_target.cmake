file(REMOVE_RECURSE
  "libgraphiti_graph.a"
)
