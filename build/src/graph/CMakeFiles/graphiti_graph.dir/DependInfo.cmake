
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/expr_high.cpp" "src/graph/CMakeFiles/graphiti_graph.dir/expr_high.cpp.o" "gcc" "src/graph/CMakeFiles/graphiti_graph.dir/expr_high.cpp.o.d"
  "/root/repo/src/graph/expr_low.cpp" "src/graph/CMakeFiles/graphiti_graph.dir/expr_low.cpp.o" "gcc" "src/graph/CMakeFiles/graphiti_graph.dir/expr_low.cpp.o.d"
  "/root/repo/src/graph/signatures.cpp" "src/graph/CMakeFiles/graphiti_graph.dir/signatures.cpp.o" "gcc" "src/graph/CMakeFiles/graphiti_graph.dir/signatures.cpp.o.d"
  "/root/repo/src/graph/typecheck.cpp" "src/graph/CMakeFiles/graphiti_graph.dir/typecheck.cpp.o" "gcc" "src/graph/CMakeFiles/graphiti_graph.dir/typecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/graphiti_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
