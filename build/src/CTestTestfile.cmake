# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("dot")
subdirs("graph")
subdirs("semantics")
subdirs("refine")
subdirs("egraph")
subdirs("rewrite")
subdirs("sim")
subdirs("arch")
subdirs("static_hls")
subdirs("bench_circuits")
subdirs("emit")
subdirs("core")
