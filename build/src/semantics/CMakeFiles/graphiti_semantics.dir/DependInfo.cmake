
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/component.cpp" "src/semantics/CMakeFiles/graphiti_semantics.dir/component.cpp.o" "gcc" "src/semantics/CMakeFiles/graphiti_semantics.dir/component.cpp.o.d"
  "/root/repo/src/semantics/environment.cpp" "src/semantics/CMakeFiles/graphiti_semantics.dir/environment.cpp.o" "gcc" "src/semantics/CMakeFiles/graphiti_semantics.dir/environment.cpp.o.d"
  "/root/repo/src/semantics/executor.cpp" "src/semantics/CMakeFiles/graphiti_semantics.dir/executor.cpp.o" "gcc" "src/semantics/CMakeFiles/graphiti_semantics.dir/executor.cpp.o.d"
  "/root/repo/src/semantics/functions.cpp" "src/semantics/CMakeFiles/graphiti_semantics.dir/functions.cpp.o" "gcc" "src/semantics/CMakeFiles/graphiti_semantics.dir/functions.cpp.o.d"
  "/root/repo/src/semantics/module.cpp" "src/semantics/CMakeFiles/graphiti_semantics.dir/module.cpp.o" "gcc" "src/semantics/CMakeFiles/graphiti_semantics.dir/module.cpp.o.d"
  "/root/repo/src/semantics/state.cpp" "src/semantics/CMakeFiles/graphiti_semantics.dir/state.cpp.o" "gcc" "src/semantics/CMakeFiles/graphiti_semantics.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/graphiti_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/graphiti_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
