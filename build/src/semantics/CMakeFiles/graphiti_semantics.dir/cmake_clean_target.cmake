file(REMOVE_RECURSE
  "libgraphiti_semantics.a"
)
