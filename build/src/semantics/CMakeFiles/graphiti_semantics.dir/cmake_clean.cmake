file(REMOVE_RECURSE
  "CMakeFiles/graphiti_semantics.dir/component.cpp.o"
  "CMakeFiles/graphiti_semantics.dir/component.cpp.o.d"
  "CMakeFiles/graphiti_semantics.dir/environment.cpp.o"
  "CMakeFiles/graphiti_semantics.dir/environment.cpp.o.d"
  "CMakeFiles/graphiti_semantics.dir/executor.cpp.o"
  "CMakeFiles/graphiti_semantics.dir/executor.cpp.o.d"
  "CMakeFiles/graphiti_semantics.dir/functions.cpp.o"
  "CMakeFiles/graphiti_semantics.dir/functions.cpp.o.d"
  "CMakeFiles/graphiti_semantics.dir/module.cpp.o"
  "CMakeFiles/graphiti_semantics.dir/module.cpp.o.d"
  "CMakeFiles/graphiti_semantics.dir/state.cpp.o"
  "CMakeFiles/graphiti_semantics.dir/state.cpp.o.d"
  "libgraphiti_semantics.a"
  "libgraphiti_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
