# Empty compiler generated dependencies file for graphiti_semantics.
# This may be replaced when dependencies are built.
