# Empty compiler generated dependencies file for graphiti_emit.
# This may be replaced when dependencies are built.
