file(REMOVE_RECURSE
  "libgraphiti_emit.a"
)
