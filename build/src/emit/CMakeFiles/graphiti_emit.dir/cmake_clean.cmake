file(REMOVE_RECURSE
  "CMakeFiles/graphiti_emit.dir/verilog.cpp.o"
  "CMakeFiles/graphiti_emit.dir/verilog.cpp.o.d"
  "libgraphiti_emit.a"
  "libgraphiti_emit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
