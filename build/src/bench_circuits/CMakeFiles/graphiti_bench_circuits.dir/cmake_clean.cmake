file(REMOVE_RECURSE
  "CMakeFiles/graphiti_bench_circuits.dir/benchmarks.cpp.o"
  "CMakeFiles/graphiti_bench_circuits.dir/benchmarks.cpp.o.d"
  "CMakeFiles/graphiti_bench_circuits.dir/gcd.cpp.o"
  "CMakeFiles/graphiti_bench_circuits.dir/gcd.cpp.o.d"
  "libgraphiti_bench_circuits.a"
  "libgraphiti_bench_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_bench_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
