file(REMOVE_RECURSE
  "libgraphiti_bench_circuits.a"
)
