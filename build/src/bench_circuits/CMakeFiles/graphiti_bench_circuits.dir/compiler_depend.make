# Empty compiler generated dependencies file for graphiti_bench_circuits.
# This may be replaced when dependencies are built.
