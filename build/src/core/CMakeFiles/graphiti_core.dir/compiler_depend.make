# Empty compiler generated dependencies file for graphiti_core.
# This may be replaced when dependencies are built.
