file(REMOVE_RECURSE
  "libgraphiti_core.a"
)
