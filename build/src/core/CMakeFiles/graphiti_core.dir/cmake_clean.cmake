file(REMOVE_RECURSE
  "CMakeFiles/graphiti_core.dir/compiler.cpp.o"
  "CMakeFiles/graphiti_core.dir/compiler.cpp.o.d"
  "libgraphiti_core.a"
  "libgraphiti_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
