
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/area_timing.cpp" "src/arch/CMakeFiles/graphiti_arch.dir/area_timing.cpp.o" "gcc" "src/arch/CMakeFiles/graphiti_arch.dir/area_timing.cpp.o.d"
  "/root/repo/src/arch/buffers.cpp" "src/arch/CMakeFiles/graphiti_arch.dir/buffers.cpp.o" "gcc" "src/arch/CMakeFiles/graphiti_arch.dir/buffers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/graphiti_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/graphiti_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
