file(REMOVE_RECURSE
  "libgraphiti_arch.a"
)
