file(REMOVE_RECURSE
  "CMakeFiles/graphiti_arch.dir/area_timing.cpp.o"
  "CMakeFiles/graphiti_arch.dir/area_timing.cpp.o.d"
  "CMakeFiles/graphiti_arch.dir/buffers.cpp.o"
  "CMakeFiles/graphiti_arch.dir/buffers.cpp.o.d"
  "libgraphiti_arch.a"
  "libgraphiti_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
