# Empty compiler generated dependencies file for graphiti_arch.
# This may be replaced when dependencies are built.
