file(REMOVE_RECURSE
  "CMakeFiles/graphiti_rewrite.dir/catalog.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/catalog.cpp.o.d"
  "CMakeFiles/graphiti_rewrite.dir/catalog_verify.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/catalog_verify.cpp.o.d"
  "CMakeFiles/graphiti_rewrite.dir/engine.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/engine.cpp.o.d"
  "CMakeFiles/graphiti_rewrite.dir/loop_rewrite.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/loop_rewrite.cpp.o.d"
  "CMakeFiles/graphiti_rewrite.dir/ooo_pipeline.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/ooo_pipeline.cpp.o.d"
  "CMakeFiles/graphiti_rewrite.dir/pure_gen.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/pure_gen.cpp.o.d"
  "CMakeFiles/graphiti_rewrite.dir/rewrite.cpp.o"
  "CMakeFiles/graphiti_rewrite.dir/rewrite.cpp.o.d"
  "libgraphiti_rewrite.a"
  "libgraphiti_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
