
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/catalog.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/catalog.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/catalog.cpp.o.d"
  "/root/repo/src/rewrite/catalog_verify.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/catalog_verify.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/catalog_verify.cpp.o.d"
  "/root/repo/src/rewrite/engine.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/engine.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/engine.cpp.o.d"
  "/root/repo/src/rewrite/loop_rewrite.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/loop_rewrite.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/loop_rewrite.cpp.o.d"
  "/root/repo/src/rewrite/ooo_pipeline.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/ooo_pipeline.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/ooo_pipeline.cpp.o.d"
  "/root/repo/src/rewrite/pure_gen.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/pure_gen.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/pure_gen.cpp.o.d"
  "/root/repo/src/rewrite/rewrite.cpp" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/rewrite.cpp.o" "gcc" "src/rewrite/CMakeFiles/graphiti_rewrite.dir/rewrite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/refine/CMakeFiles/graphiti_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/graphiti_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/graphiti_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphiti_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/graphiti_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
