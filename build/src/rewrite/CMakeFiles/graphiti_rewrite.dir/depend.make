# Empty dependencies file for graphiti_rewrite.
# This may be replaced when dependencies are built.
