file(REMOVE_RECURSE
  "libgraphiti_rewrite.a"
)
