file(REMOVE_RECURSE
  "CMakeFiles/graphiti_egraph.dir/egraph.cpp.o"
  "CMakeFiles/graphiti_egraph.dir/egraph.cpp.o.d"
  "libgraphiti_egraph.a"
  "libgraphiti_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
