file(REMOVE_RECURSE
  "libgraphiti_egraph.a"
)
