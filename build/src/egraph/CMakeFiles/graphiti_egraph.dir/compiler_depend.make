# Empty compiler generated dependencies file for graphiti_egraph.
# This may be replaced when dependencies are built.
