file(REMOVE_RECURSE
  "libgraphiti_support.a"
)
