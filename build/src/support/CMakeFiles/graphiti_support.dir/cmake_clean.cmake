file(REMOVE_RECURSE
  "CMakeFiles/graphiti_support.dir/strings.cpp.o"
  "CMakeFiles/graphiti_support.dir/strings.cpp.o.d"
  "CMakeFiles/graphiti_support.dir/token.cpp.o"
  "CMakeFiles/graphiti_support.dir/token.cpp.o.d"
  "libgraphiti_support.a"
  "libgraphiti_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
