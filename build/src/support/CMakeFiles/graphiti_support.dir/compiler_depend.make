# Empty compiler generated dependencies file for graphiti_support.
# This may be replaced when dependencies are built.
