file(REMOVE_RECURSE
  "CMakeFiles/graphiti_sim.dir/sim.cpp.o"
  "CMakeFiles/graphiti_sim.dir/sim.cpp.o.d"
  "libgraphiti_sim.a"
  "libgraphiti_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphiti_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
