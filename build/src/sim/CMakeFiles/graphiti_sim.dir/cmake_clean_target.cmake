file(REMOVE_RECURSE
  "libgraphiti_sim.a"
)
