# Empty dependencies file for graphiti_sim.
# This may be replaced when dependencies are built.
