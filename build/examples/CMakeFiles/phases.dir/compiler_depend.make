# Empty compiler generated dependencies file for phases.
# This may be replaced when dependencies are built.
