file(REMOVE_RECURSE
  "CMakeFiles/phases.dir/phases.cpp.o"
  "CMakeFiles/phases.dir/phases.cpp.o.d"
  "phases"
  "phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
