# Empty compiler generated dependencies file for ooo_compile.
# This may be replaced when dependencies are built.
