file(REMOVE_RECURSE
  "CMakeFiles/ooo_compile.dir/ooo_compile.cpp.o"
  "CMakeFiles/ooo_compile.dir/ooo_compile.cpp.o.d"
  "ooo_compile"
  "ooo_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooo_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
