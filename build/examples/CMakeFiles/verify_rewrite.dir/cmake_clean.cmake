file(REMOVE_RECURSE
  "CMakeFiles/verify_rewrite.dir/verify_rewrite.cpp.o"
  "CMakeFiles/verify_rewrite.dir/verify_rewrite.cpp.o.d"
  "verify_rewrite"
  "verify_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
