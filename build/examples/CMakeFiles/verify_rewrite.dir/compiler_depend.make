# Empty compiler generated dependencies file for verify_rewrite.
# This may be replaced when dependencies are built.
