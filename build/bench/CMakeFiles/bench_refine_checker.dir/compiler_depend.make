# Empty compiler generated dependencies file for bench_refine_checker.
# This may be replaced when dependencies are built.
