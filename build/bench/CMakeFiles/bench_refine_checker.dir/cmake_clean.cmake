file(REMOVE_RECURSE
  "CMakeFiles/bench_refine_checker.dir/bench_refine_checker.cpp.o"
  "CMakeFiles/bench_refine_checker.dir/bench_refine_checker.cpp.o.d"
  "bench_refine_checker"
  "bench_refine_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refine_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
