# Empty dependencies file for bench_rewriter_perf.
# This may be replaced when dependencies are built.
