file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriter_perf.dir/bench_rewriter_perf.cpp.o"
  "CMakeFiles/bench_rewriter_perf.dir/bench_rewriter_perf.cpp.o.d"
  "bench_rewriter_perf"
  "bench_rewriter_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriter_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
