/**
 * @file
 * End-to-end tests of the five-phase out-of-order pipeline
 * (section 3.1) on the GCD circuit of section 2: figure 2b in,
 * figure 2c out — functionally equivalent, in program order, with the
 * transformed results verified against the original by trace
 * inclusion. Also checks the bicg-style refusal: loops with stores in
 * the body are left untouched (section 6.2).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "bench_circuits/gcd.hpp"
#include "graph/signatures.hpp"
#include "refine/trace.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "semantics/executor.hpp"

namespace graphiti {
namespace {

int
countType(const ExprHigh& g, const std::string& type)
{
    int n = 0;
    for (const NodeDecl& node : g.nodes())
        n += node.type == type;
    return n;
}

TEST(OooPipeline, TransformsGcdStructure)
{
    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(circuits::buildGcdInOrder(), env,
                       {.num_tags = 2, .reexpand = false});
    ASSERT_TRUE(result.ok()) << result.error().message;
    const PipelineResult& pr = result.value();

    ASSERT_EQ(pr.loops.size(), 1u);
    EXPECT_TRUE(pr.loops[0].transformed) << pr.loops[0].refusal;
    EXPECT_FALSE(pr.loops[0].body_fn.empty());
    EXPECT_GT(pr.stats.rewrites_applied, 5u);

    const ExprHigh& g = pr.graph;
    EXPECT_TRUE(g.validate().ok());
    EXPECT_EQ(countType(g, "tagger"), 1);
    EXPECT_EQ(countType(g, "merge"), 1);
    EXPECT_EQ(countType(g, "mux"), 0);
    EXPECT_EQ(countType(g, "init"), 0);
    EXPECT_EQ(countType(g, "pure"), 1);
    // Loop body ops were absorbed into the pure.
    EXPECT_EQ(countType(g, "operator"), 0);
}

TEST(OooPipeline, ReexpansionRestoresOperators)
{
    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(circuits::buildGcdInOrder(), env,
                       {.num_tags = 2, .reexpand = true});
    ASSERT_TRUE(result.ok()) << result.error().message;
    const ExprHigh& g = result.value().graph;
    EXPECT_TRUE(g.validate().ok());
    EXPECT_EQ(countType(g, "tagger"), 1);
    EXPECT_EQ(countType(g, "pure"), 0);
    // mod and ne come back inside the tagged region.
    EXPECT_EQ(countType(g, "operator"), 2);
    EXPECT_EQ(countType(g, "constant"), 1);
}

void
expectGcdFunctional(const ExprHigh& g, Environment& env)
{
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    Executor exec(mod);
    const std::vector<std::pair<int, int>> pairs = {
        {1071, 462}, {4, 2}, {13, 8}, {100, 100}, {17, 5}};
    for (auto [a, b] : pairs) {
        ASSERT_TRUE(exec.feedIo(0, Value(a)));
        ASSERT_TRUE(exec.feedIo(1, Value(b)));
    }
    for (auto [a, b] : pairs) {
        auto out = exec.pullIo(0);
        ASSERT_TRUE(out.has_value()) << a << "," << b;
        EXPECT_EQ(out->value.asInt(), std::gcd(a, b)) << a << "," << b;
        EXPECT_FALSE(out->tag.has_value());
    }
}

TEST(OooPipeline, TransformedGcdComputesGcdInOrder)
{
    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(circuits::buildGcdInOrder(), env,
                       {.num_tags = 3, .reexpand = false});
    ASSERT_TRUE(result.ok()) << result.error().message;
    expectGcdFunctional(result.value().graph, env);
}

TEST(OooPipeline, ReexpandedGcdComputesGcdInOrder)
{
    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(circuits::buildGcdInOrder(), env,
                       {.num_tags = 3, .reexpand = true});
    ASSERT_TRUE(result.ok()) << result.error().message;
    expectGcdFunctional(result.value().graph, env);
}

TEST(OooPipeline, TransformedTracesAdmittedByOriginal)
{
    // Theorem 4.6 end-to-end: behaviors of the rewritten circuit are
    // behaviors of the original.
    Environment env(6);
    ExprHigh original = circuits::buildGcdInOrder();
    Result<PipelineResult> result = runOooPipeline(
        original, env, {.num_tags = 2, .reexpand = false});
    ASSERT_TRUE(result.ok()) << result.error().message;

    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(result.value().graph).value(),
                              env)
            .take();
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(original).value(), env)
            .take();

    std::vector<Token> pool = {Token(Value(6)), Token(Value(4)),
                               Token(Value(9))};
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        IoTrace trace = randomTrace(impl, pool, rng,
                                    {.max_steps = 300,
                                     .input_bias = 0.4,
                                     .max_inputs = 4});
        Result<bool> admitted = admitsTrace(spec, trace, 200000);
        ASSERT_TRUE(admitted.ok()) << admitted.error().message;
        EXPECT_TRUE(admitted.value()) << "seed " << seed;
    }
}

TEST(OooPipeline, RefusesLoopWithStore)
{
    // A bicg-shaped loop: the body stores to memory each iteration.
    // The pipeline must refuse the transformation (section 6.2) and
    // leave the circuit structurally untouched.
    //
    // State is a (counter, value) pair; each iteration stores value at
    // address counter, decrements the counter, and continues while it
    // stays positive.
    ExprHigh g;
    g.addNode("mux", "mux");
    g.addNode("init", "init", {{"value", "false"}});
    g.addNode("split", "split");
    g.addNode("forkA", "fork", {{"out", "2"}});  // counter uses
    g.addNode("forkV", "fork", {{"out", "2"}});  // value uses
    g.addNode("store", "store", {{"memory", "m"}});
    g.addNode("sinkS", "sink");
    g.addNode("one", "constant", {{"value", "1"}});
    g.addNode("srcOne", "source");
    g.addNode("dec", "operator", {{"op", "sub"}});
    g.addNode("forkD", "fork", {{"out", "2"}});  // new counter uses
    g.addNode("zero", "constant", {{"value", "0"}});
    g.addNode("srcZero", "source");
    g.addNode("gt", "operator", {{"op", "gt"}});
    g.addNode("joinB", "join", {{"in", "2"}});
    g.addNode("forkC", "fork", {{"out", "2"}});
    g.addNode("branch", "branch");

    g.bindInput(0, PortRef{"mux", "in2"});
    g.bindOutput(0, PortRef{"branch", "out1"});

    g.connect("init", "out0", "mux", "in0");
    g.connect("branch", "out0", "mux", "in1");
    g.connect("mux", "out0", "split", "in0");
    g.connect("split", "out0", "forkA", "in0");
    g.connect("split", "out1", "forkV", "in0");
    g.connect("forkA", "out0", "store", "in0");   // address
    g.connect("forkV", "out0", "store", "in1");   // data
    g.connect("store", "out0", "sinkS", "in0");
    g.connect("srcOne", "out0", "one", "in0");
    g.connect("forkA", "out1", "dec", "in0");
    g.connect("one", "out0", "dec", "in1");
    g.connect("dec", "out0", "forkD", "in0");
    g.connect("forkD", "out0", "joinB", "in0");   // next counter
    g.connect("forkV", "out1", "joinB", "in1");   // value carried
    g.connect("forkD", "out1", "gt", "in0");
    g.connect("srcZero", "out0", "zero", "in0");
    g.connect("zero", "out0", "gt", "in1");
    g.connect("gt", "out0", "forkC", "in0");
    g.connect("forkC", "out0", "branch", "in1");
    g.connect("forkC", "out1", "init", "in0");
    g.connect("joinB", "out0", "branch", "in0");

    ASSERT_TRUE(g.validate().ok()) << g.validate().error().message;

    Environment env;
    std::size_t nodes_before = g.numNodes();
    Result<PipelineResult> result = runOooPipeline(g, env, {});
    ASSERT_TRUE(result.ok()) << result.error().message;
    ASSERT_EQ(result.value().loops.size(), 1u);
    EXPECT_FALSE(result.value().loops[0].transformed);
    EXPECT_NE(result.value().loops[0].refusal.find("store"),
              std::string::npos)
        << result.value().loops[0].refusal;
    EXPECT_EQ(result.value().graph.numNodes(), nodes_before);
    EXPECT_EQ(countType(result.value().graph, "tagger"), 0);
}

TEST(OooPipeline, ReportsRewriteCounts)
{
    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(circuits::buildGcdInOrder(), env, {});
    ASSERT_TRUE(result.ok());
    const EngineStats& stats = result.value().stats;
    EXPECT_GT(stats.per_rule.count("combine-mux"), 0u);
    EXPECT_GT(stats.per_rule.count("combine-branch"), 0u);
    EXPECT_GT(stats.per_rule.count("combine-init"), 0u);
    EXPECT_GT(stats.per_rule.count("pure-gen"), 0u);
    EXPECT_GT(stats.per_rule.count("ooo-loop"), 0u);
}

}  // namespace
}  // namespace graphiti
