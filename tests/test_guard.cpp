/**
 * @file
 * Tests for the guarded compilation pipeline: the structural
 * validator's broken-circuit corpus, transactional rewriting (vetoes
 * and the catalog validity property), the resource-governed
 * verification ladder, and cooperative cancellation in exploration
 * and simulation.
 */

#include <gtest/gtest.h>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "guard/governor.hpp"
#include "guard/transaction.hpp"
#include "guard/validator.hpp"
#include "rewrite/catalog.hpp"
#include "sim/sim.hpp"
#include "support/rng.hpp"

namespace graphiti {
namespace {

using guard::Severity;
using guard::ValidationReport;

ValidationReport
validate(const ExprHigh& g)
{
    return guard::validateCircuit(g);
}

/** A minimal well-formed pass-through circuit. */
ExprHigh
bufferGraph()
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    return g;
}

ExprHigh
operatorGraph(const std::string& op)
{
    ExprHigh g;
    g.addNode("n", "operator", {{"op", op}});
    g.bindInput(0, PortRef{"n", "in0"});
    g.bindInput(1, PortRef{"n", "in1"});
    g.bindOutput(0, PortRef{"n", "out0"});
    return g;
}

std::vector<Token>
intTokens(std::initializer_list<std::int64_t> values)
{
    std::vector<Token> out;
    for (std::int64_t v : values)
        out.emplace_back(Value(v));
    return out;
}

// ---------------------------------------------------------------------
// Broken-circuit corpus: every malformed shape gets a diagnostic with
// the right rule id, and the validator never throws.
// ---------------------------------------------------------------------

TEST(Validator, WellFormedCircuitIsClean)
{
    ValidationReport report = validate(circuits::buildGcdInOrder());
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_TRUE(report.diagnostics().empty()) << report.render();
}

TEST(Validator, DanglingInputIsError)
{
    ExprHigh g;
    g.addNode("j", "join");
    g.bindInput(0, PortRef{"j", "in0"});
    // in1 never driven.
    g.bindOutput(0, PortRef{"j", "out0"});
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.dangling-input"))
        << report.render();
}

TEST(Validator, DanglingOutputIsOnlyAWarning)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.bindOutput(0, PortRef{"f", "out0"});
    // out1 never consumed: suspicious but executable.
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_TRUE(report.hasRule("structure.dangling-output"))
        << report.render();
}

TEST(Validator, DoubleDrivenInputIsError)
{
    ExprHigh g;
    g.addNode("s1", "source");
    g.addNode("s2", "source");
    g.addNode("k", "sink");
    g.connect("s1", "out0", "k", "in0");
    g.connect("s2", "out0", "k", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.double-driven"))
        << report.render();
}

TEST(Validator, DoubleUsedOutputIsError)
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.addNode("k1", "sink");
    g.addNode("k2", "sink");
    g.bindInput(0, PortRef{"b", "in0"});
    g.connect("b", "out0", "k1", "in0");
    g.connect("b", "out0", "k2", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.double-used"))
        << report.render();
}

TEST(Validator, EdgeToMissingInstanceIsError)
{
    ExprHigh g = bufferGraph();
    g.connect("b", "out0", "ghost", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.missing-instance"))
        << report.render();
}

TEST(Validator, IoBindingToMissingInstanceIsError)
{
    ExprHigh g = bufferGraph();
    g.bindOutput(1, PortRef{"phantom", "out0"});
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.missing-instance"))
        << report.render();
}

TEST(Validator, UnknownPortIsError)
{
    ExprHigh g = bufferGraph();
    g.addNode("k", "sink");
    g.connect("b", "out7", "k", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.unknown-port"))
        << report.render();
}

TEST(Validator, UnknownInputPortIsError)
{
    ExprHigh g = bufferGraph();
    g.addNode("s", "source");
    g.connect("s", "out0", "b", "in9");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.unknown-port"))
        << report.render();
}

TEST(Validator, UnknownComponentTypeIsError)
{
    ExprHigh g;
    g.addNode("x", "frobnicator");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.unknown-type"))
        << report.render();
}

TEST(Validator, ForkArityZeroIsError)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "0"}});
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("structure.bad-arity")) << report.render();
}

TEST(Validator, ForkArityGarbageIsErrorNotCrash)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "banana"}});
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("structure.bad-arity")) << report.render();
}

TEST(Validator, JoinArityOverflowIsErrorNotCrash)
{
    ExprHigh g;
    g.addNode("j", "join",
              {{"in", "99999999999999999999999999999999"}});
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("structure.bad-arity")) << report.render();
}

TEST(Validator, NegativeForkArityIsError)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "-3"}});
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("structure.bad-arity")) << report.render();
}

TEST(Validator, IntegerBranchConditionIsTypeConflict)
{
    // constant 5 (integer) driving a branch condition (boolean).
    ExprHigh g;
    g.addNode("c", "constant", {{"value", "5"}});
    g.addNode("br", "branch");
    g.addNode("k0", "sink");
    g.addNode("k1", "sink");
    g.bindInput(0, PortRef{"c", "in0"});
    g.bindInput(1, PortRef{"br", "in0"});
    g.connect("c", "out0", "br", "in1");
    g.connect("br", "out0", "k0", "in0");
    g.connect("br", "out1", "k1", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("type.conflict")) << report.render();
}

TEST(Validator, TypeCheckCanBeDisabled)
{
    ExprHigh g;
    g.addNode("c", "constant", {{"value", "5"}});
    g.addNode("br", "branch");
    g.addNode("k0", "sink");
    g.addNode("k1", "sink");
    g.bindInput(0, PortRef{"c", "in0"});
    g.bindInput(1, PortRef{"br", "in0"});
    g.connect("c", "out0", "br", "in1");
    g.connect("br", "out0", "k0", "in0");
    g.connect("br", "out1", "k1", "in0");
    guard::ValidatorOptions options;
    options.check_types = false;
    ValidationReport report = guard::validateCircuit(g, options);
    EXPECT_FALSE(report.hasRule("type.conflict")) << report.render();
}

TEST(Validator, SelfLoopBufferIsUnreachableAndTokenless)
{
    // b.out0 -> b.in0: structurally complete, but no token can ever
    // enter the cycle and nothing reaches it from outside.
    ExprHigh g;
    g.addNode("b", "buffer");
    g.connect("b", "out0", "b", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("token.cycle-without-source"))
        << report.render();
    EXPECT_TRUE(report.hasRule("graph.unreachable")) << report.render();
}

TEST(Validator, TwoBufferCycleWithoutSourceIsError)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.connect("b1", "out0", "b2", "in0");
    g.connect("b2", "out0", "b1", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("token.cycle-without-source"))
        << report.render();
}

TEST(Validator, CycleThroughInitIsFine)
{
    // init can emit its initial value, so the cycle is startable.
    ExprHigh g;
    g.addNode("i", "init", {{"value", "false"}});
    g.addNode("b", "buffer");
    g.connect("i", "out0", "b", "in0");
    g.connect("b", "out0", "i", "in0");
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.hasRule("token.cycle-without-source"))
        << report.render();
    EXPECT_FALSE(report.hasRule("graph.unreachable")) << report.render();
}

TEST(Validator, StarvedOutputIsError)
{
    // A closed fork/buffer cycle feeding the graph output: the output
    // is wired but can never receive a token.
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("b", "buffer");
    g.connect("f", "out0", "b", "in0");
    g.connect("b", "out0", "f", "in0");
    g.bindOutput(0, PortRef{"f", "out1"});
    ValidationReport report = validate(g);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("token.starved-output"))
        << report.render();
}

TEST(Validator, TagCountZeroIsError)
{
    ExprHigh g;
    g.addNode("t", "tagger", {{"tags", "0"}});
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("tag.count")) << report.render();
}

TEST(Validator, TagCountHugeIsError)
{
    ExprHigh g;
    g.addNode("t", "tagger", {{"tags", "1000000"}});
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("tag.count")) << report.render();
}

TEST(Validator, TaggedRegionThatNeverReturnsIsError)
{
    // out0 flows into a sink; no tagged token ever returns to in1.
    ExprHigh g;
    g.addNode("t", "tagger", {{"tags", "4"}});
    g.addNode("k", "sink");
    g.connect("t", "out0", "k", "in0");
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("tag.unpaired")) << report.render();
}

TEST(Validator, EmptyTaggedRegionIsError)
{
    ExprHigh g;
    g.addNode("t", "tagger", {{"tags", "4"}});
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("tag.unpaired")) << report.render();
}

TEST(Validator, NestedTaggerRegionIsError)
{
    ExprHigh g;
    g.addNode("t1", "tagger", {{"tags", "4"}});
    g.addNode("t2", "tagger", {{"tags", "4"}});
    g.connect("t1", "out0", "t2", "in0");
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("tag.nested-region")) << report.render();
}

TEST(Validator, ForeignReturnIntoTaggerIsError)
{
    // in1 is double-driven: the textual driver sits outside the
    // region even though the region also wires back.
    ExprHigh g;
    g.addNode("t", "tagger", {{"tags", "4"}});
    g.addNode("outsider", "source");
    g.addNode("body", "buffer");
    g.connect("outsider", "out0", "t", "in1");  // first driver: foreign
    g.connect("t", "out0", "body", "in0");
    g.connect("body", "out0", "t", "in1");
    ValidationReport report = validate(g);
    EXPECT_TRUE(report.hasRule("tag.foreign-return")) << report.render();
}

TEST(Validator, EmptyGraphIsClean)
{
    ValidationReport report = validate(ExprHigh{});
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.diagnostics().empty());
}

TEST(Validator, FirstErrorAndRenderAreConsistent)
{
    ExprHigh g;
    g.addNode("x", "frobnicator");
    ValidationReport report = validate(g);
    ASSERT_NE(report.firstError(), nullptr);
    EXPECT_EQ(report.firstError()->rule, "structure.unknown-type");
    EXPECT_NE(report.render().find("structure.unknown-type"),
              std::string::npos);
    EXPECT_EQ(report.errorCount(), 1u);
}

TEST(Validator, JsonReportCarriesRuleIds)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "0"}});
    std::string dumped = validate(g).toJson().dump();
    EXPECT_NE(dumped.find("structure.bad-arity"), std::string::npos);
    EXPECT_NE(dumped.find("\"errors\""), std::string::npos);
}

TEST(Validator, TokenFlowRulesCanBeDisabled)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.connect("b1", "out0", "b2", "in0");
    g.connect("b2", "out0", "b1", "in0");
    guard::ValidatorOptions options;
    options.check_token_flow = false;
    ValidationReport report = guard::validateCircuit(g, options);
    EXPECT_FALSE(report.hasRule("token.cycle-without-source"))
        << report.render();
}

TEST(Validator, AllBenchmarksValidatePreAndPostPipeline)
{
    for (const std::string& name : circuits::benchmarkNames()) {
        Result<circuits::BenchmarkSpec> spec =
            circuits::buildBenchmark(name);
        ASSERT_TRUE(spec.ok()) << name;
        ValidationReport pre = validate(spec.value().df_io);
        EXPECT_TRUE(pre.ok()) << name << ":\n" << pre.render();

        const ExprHigh& input = spec.value().df_ooo_input
                                    ? *spec.value().df_ooo_input
                                    : spec.value().df_io;
        Compiler compiler;
        CompileOptions options;
        options.num_tags = spec.value().num_tags;
        Result<CompileReport> compiled =
            compiler.compileGraph(input, options);
        ASSERT_TRUE(compiled.ok())
            << name << ": " << compiled.error().message;
        // The pipeline ran with the transactional post-check (the
        // compiler default): zero rollbacks on healthy rules, and the
        // transformed circuit passes the full validator.
        EXPECT_TRUE(compiled.value().rollbacks.empty()) << name;
        EXPECT_TRUE(compiled.value().validation.ok())
            << name << ":\n" << compiled.value().validation.render();
    }
}

// ---------------------------------------------------------------------
// Seeded fuzz: random mutations of a real circuit never crash the
// validator, and the verdict stream is deterministic per seed.
// ---------------------------------------------------------------------

/** Apply one random public-API mutation to @p g. */
void
mutateOnce(ExprHigh& g, Rng& rng)
{
    static const char* kPorts[] = {"in0", "in1", "in2", "out0",
                                   "out1", "out2"};
    static const char* kTypes[] = {"fork",   "join",  "mux",
                                   "buffer", "sink",  "tagger",
                                   "wibble", "store", "operator"};
    auto randomNode = [&]() -> std::string {
        if (g.nodes().empty())
            return "nobody";
        return g.nodes()[rng.below(g.nodes().size())].name;
    };
    auto randomPort = [&]() {
        return std::string(kPorts[rng.below(std::size(kPorts))]);
    };
    switch (rng.below(7)) {
        case 0:
            if (!g.nodes().empty())
                g.removeNode(randomNode());
            break;
        case 1:
            if (!g.edges().empty()) {
                const Edge& e = g.edges()[rng.below(g.edges().size())];
                g.removeEdge(e.src, e.dst);
            }
            break;
        case 2:
            g.connect(randomNode(), randomPort(), randomNode(),
                      randomPort());
            break;
        case 3:
            if (NodeDecl* n = g.findNode(randomNode()))
                n->type = kTypes[rng.below(std::size(kTypes))];
            break;
        case 4:
            g.addNode(g.freshName("fz"),
                      kTypes[rng.below(std::size(kTypes))],
                      {{"out", std::to_string(rng.range(-2, 5))},
                       {"tags", std::to_string(rng.range(-1, 9))}});
            break;
        case 5:
            if (NodeDecl* n = g.findNode(randomNode()))
                n->attrs["out"] = "not-a-number";
            break;
        case 6:
            g.bindInput(rng.below(4), PortRef{randomNode(), randomPort()});
            break;
    }
}

TEST(ValidatorFuzz, NeverCrashesAndIsDeterministic)
{
    auto sweep = [](std::uint64_t seed) {
        Rng rng(seed);
        std::vector<std::size_t> verdicts;
        for (int round = 0; round < 200; ++round) {
            ExprHigh g = circuits::buildGcdInOrder();
            std::size_t mutations = 1 + rng.below(4);
            for (std::size_t m = 0; m < mutations; ++m)
                mutateOnce(g, rng);
            verdicts.push_back(
                guard::validateCircuit(g).errorCount());
        }
        return verdicts;
    };
    std::vector<std::size_t> first = sweep(0xf00dULL);
    std::vector<std::size_t> second = sweep(0xf00dULL);
    EXPECT_EQ(first, second);
    // The corpus is genuinely diverse: some mutants break, some stay
    // clean (removing a fuzz-added node, rebinding an io to the same
    // port, ...).
    EXPECT_NE(*std::max_element(first.begin(), first.end()), 0u);
}

// ---------------------------------------------------------------------
// Transactional rewrites.
// ---------------------------------------------------------------------

TEST(Transaction, PostCheckVetoRollsBackAndRecords)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "b2", "in0");

    RewriteEngine engine;
    for (const RewriteDef& def : catalog::allRewrites())
        ASSERT_TRUE(engine.addRule(def).ok());

    // Without a post-check the rewrite goes through.
    Result<ExprHigh> plain = engine.applyOnce(g, "buffer-elim");
    ASSERT_TRUE(plain.ok()) << plain.error().message;
    EXPECT_EQ(engine.stats().rewrites_applied, 1u);

    // An always-veto post-check rolls it back: error result, rollback
    // recorded, stats unchanged, input graph untouched.
    engine.setPostCheck(
        [](const ExprHigh&) -> std::optional<std::string> {
            return "vetoed by test";
        });
    Result<ExprHigh> vetoed = engine.applyOnce(g, "buffer-elim");
    EXPECT_FALSE(vetoed.ok());
    EXPECT_NE(vetoed.error().message.find("rolled back"),
              std::string::npos);
    ASSERT_EQ(engine.rollbacks().size(), 1u);
    EXPECT_EQ(engine.rollbacks()[0].rule, "buffer-elim");
    EXPECT_EQ(engine.rollbacks()[0].reason, "vetoed by test");
    EXPECT_EQ(engine.stats().rewrites_applied, 1u);
    EXPECT_EQ(g.numNodes(), 2u);
}

TEST(Transaction, ExhaustiveApplicationSkipsVetoedMatches)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "b2", "in0");

    RewriteEngine engine;
    for (const RewriteDef& def : catalog::allRewrites())
        ASSERT_TRUE(engine.addRule(def).ok());
    engine.setPostCheck(
        [](const ExprHigh&) -> std::optional<std::string> {
            return "always vetoed";
        });
    Result<ExprHigh> out =
        engine.applyExhaustively(g, {"buffer-elim"});
    // Every candidate was vetoed: the graph survives unchanged
    // instead of the engine corrupting it or spinning forever.
    ASSERT_TRUE(out.ok()) << out.error().message;
    EXPECT_TRUE(out.value().sameAs(g));
    EXPECT_FALSE(engine.rollbacks().empty());
}

TEST(Transaction, ValidatorPostCheckAcceptsHealthyRewrite)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "b2", "in0");

    RewriteEngine engine;
    for (const RewriteDef& def : catalog::allRewrites())
        ASSERT_TRUE(engine.addRule(def).ok());
    engine.setPostCheck(guard::validatorPostCheck());
    Result<ExprHigh> out = engine.applyOnce(g, "buffer-elim");
    ASSERT_TRUE(out.ok()) << out.error().message;
    EXPECT_TRUE(engine.rollbacks().empty());
    EXPECT_EQ(out.value().numNodes(), 1u);
}

TEST(Transaction, CatalogRulesPreserveValidity)
{
    guard::CatalogValidityReport report =
        guard::verifyCatalogValidity(0xC0FFEEULL, 4);
    EXPECT_TRUE(report.all_ok) << report.first_failure;
    EXPECT_GT(report.rules_checked, 10u);
    for (const guard::RuleValidityOutcome& rule : report.rules)
        EXPECT_TRUE(rule.violations.empty())
            << rule.rule << ": " << rule.violations.front();
}

TEST(Transaction, CatalogValiditySweepIsDeterministic)
{
    guard::CatalogValidityReport a =
        guard::verifyCatalogValidity(42, 3);
    guard::CatalogValidityReport b =
        guard::verifyCatalogValidity(42, 3);
    ASSERT_EQ(a.rules.size(), b.rules.size());
    for (std::size_t i = 0; i < a.rules.size(); ++i) {
        EXPECT_EQ(a.rules[i].rule, b.rules[i].rule);
        EXPECT_EQ(a.rules[i].applications, b.rules[i].applications);
    }
}

// ---------------------------------------------------------------------
// Compiler integration: validation gates and structured errors.
// ---------------------------------------------------------------------

TEST(GuardedCompile, RejectsMalformedInputWithDiagnostics)
{
    ExprHigh g;
    g.addNode("j", "join");
    g.bindInput(0, PortRef{"j", "in0"});
    g.bindOutput(0, PortRef{"j", "out0"});
    // j.in1 dangles: compileGraph must refuse with the rule id in the
    // message, not crash downstream.
    Compiler compiler;
    Result<CompileReport> report = compiler.compileGraph(g);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.error().message.find("structure.dangling-input"),
              std::string::npos)
        << report.error().message;
}

TEST(GuardedCompile, ValidateOffRestoresOldBehaviour)
{
    ExprHigh g = bufferGraph();
    Compiler compiler;
    CompileOptions options;
    options.validate = false;
    Result<CompileReport> report = compiler.compileGraph(g, options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_EQ(report.value().verification_level, "not-run");
    EXPECT_TRUE(report.value().validation.diagnostics().empty());
}

TEST(GuardedCompile, ReportJsonCarriesGuardFields)
{
    Compiler compiler;
    CompileOptions options;
    options.num_tags = 2;
    Result<CompileReport> report =
        compiler.compileGraph(circuits::buildGcdInOrder(), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    std::string dumped = report.value().toJson().dump();
    EXPECT_NE(dumped.find("\"validation\""), std::string::npos);
    EXPECT_NE(dumped.find("\"rollbacks\""), std::string::npos);
    EXPECT_NE(dumped.find("\"verification_level\""), std::string::npos);
}

// ---------------------------------------------------------------------
// The resource governor and its degradation ladder.
// ---------------------------------------------------------------------

guard::VerificationBudget
smallBudget()
{
    guard::VerificationBudget budget;
    budget.max_states = 20000;
    budget.partial_max_states = 2000;
    budget.input_budget = 3;
    budget.trace_walks = 4;
    return budget;
}

TEST(Governor, FullLevelOnSmallCircuit)
{
    Environment env(4);
    guard::Governor governor(smallBudget());
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        bufferGraph(), bufferGraph(), env, intTokens({1, 2}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::Full);
    EXPECT_TRUE(verdict.ok) << verdict.counterexample;
    EXPECT_TRUE(verdict.refines);
    EXPECT_TRUE(verdict.degradation_reason.empty())
        << verdict.degradation_reason;
    EXPECT_GT(verdict.report.reachable_pairs, 0u);
}

TEST(Governor, FullLevelCounterexampleIsGenuine)
{
    Environment env(4);
    guard::Governor governor(smallBudget());
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        operatorGraph("add"), operatorGraph("mul"), env,
        intTokens({2, 3}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::Full);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.refines);
    EXPECT_FALSE(verdict.counterexample.empty());
}

TEST(Governor, DegradesToBoundedPartialWhenFullBlowsBudget)
{
    Environment env(4);
    guard::VerificationBudget budget = smallBudget();
    budget.max_states = 2;  // full exploration cannot fit
    budget.partial_max_states = 5000;
    guard::Governor governor(budget);
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        bufferGraph(), bufferGraph(), env, intTokens({1, 2}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::BoundedPartial);
    EXPECT_TRUE(verdict.ok) << verdict.counterexample;
    // A bounded pass is not a proof.
    EXPECT_FALSE(verdict.refines);
    EXPECT_NE(verdict.degradation_reason.find("max_states"),
              std::string::npos)
        << verdict.degradation_reason;
}

TEST(Governor, BoundedPartialStillFindsRealViolations)
{
    Environment env(4);
    guard::VerificationBudget budget = smallBudget();
    budget.max_states = 2;
    budget.partial_max_states = 5000;
    guard::Governor governor(budget);
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        operatorGraph("add"), operatorGraph("mul"), env,
        intTokens({2, 3}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::BoundedPartial);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.counterexample.empty());
}

TEST(Governor, TraceInclusionRungPassesOnEqualCircuits)
{
    Environment env(4);
    guard::VerificationBudget budget = smallBudget();
    budget.max_states = 0;          // skip the full rung
    budget.partial_max_states = 0;  // skip the bounded rung
    budget.trace_walks = 8;
    guard::Governor governor(budget);
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        bufferGraph(), bufferGraph(), env, intTokens({1, 2}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::TraceInclusion);
    EXPECT_TRUE(verdict.ok) << verdict.counterexample;
    EXPECT_FALSE(verdict.refines);
    EXPECT_EQ(verdict.trace_walks_run, 8u);
    EXPECT_NE(verdict.degradation_reason.find("skipped"),
              std::string::npos);
}

TEST(Governor, TraceInclusionRungCatchesViolation)
{
    Environment env(4);
    guard::VerificationBudget budget = smallBudget();
    budget.max_states = 0;
    budget.partial_max_states = 0;
    budget.trace_walks = 16;
    guard::Governor governor(budget);
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        operatorGraph("add"), operatorGraph("mul"), env,
        intTokens({2, 3}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::TraceInclusion);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.counterexample.empty());
}

TEST(Governor, CancelledGovernorReportsNoneNotHang)
{
    Environment env(4);
    guard::Governor governor(smallBudget());
    governor.cancel("unit-test cancellation");
    guard::VerificationVerdict verdict = governor.verifyGraphs(
        bufferGraph(), bufferGraph(), env, intTokens({1, 2}));
    EXPECT_EQ(verdict.level, guard::VerificationLevel::None);
    EXPECT_FALSE(verdict.ok);
    EXPECT_NE(verdict.degradation_reason.find("unit-test cancellation"),
              std::string::npos)
        << verdict.degradation_reason;
}

TEST(Governor, VerdictJsonIsByteIdenticalForSameSeedAndBudget)
{
    Environment env(4);
    auto run = [&](guard::VerificationBudget budget) {
        guard::Governor governor(budget);
        return governor
            .verifyGraphs(bufferGraph(), bufferGraph(), env,
                          intTokens({1, 2}))
            .toJson()
            .dump();
    };
    guard::VerificationBudget bounded = smallBudget();
    bounded.max_states = 2;
    EXPECT_EQ(run(smallBudget()), run(smallBudget()));
    EXPECT_EQ(run(bounded), run(bounded));

    guard::VerificationBudget traces = smallBudget();
    traces.max_states = 0;
    traces.partial_max_states = 0;
    EXPECT_EQ(run(traces), run(traces));
}

TEST(Governor, GovernedCompileSurfacesVerificationLevel)
{
    // A loop-free circuit passes through the pipeline unchanged, so
    // the governed check proves full refinement instantly.
    Compiler compiler;
    CompileOptions options;
    options.governed_verify = true;
    options.verify_budget = smallBudget();
    Result<CompileReport> report =
        compiler.compileGraph(bufferGraph(), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_EQ(report.value().verification_level, "full");
    std::string dumped = report.value().toJson().dump();
    EXPECT_NE(dumped.find("\"verification_level\":\"full\""),
              std::string::npos)
        << dumped;
}

// ---------------------------------------------------------------------
// Cooperative cancellation in exploration and simulation.
// ---------------------------------------------------------------------

TEST(Cancellation, ExplorationParksFrontierOnStopToken)
{
    Environment env(4);
    Result<ExprLow> low = lowerToExprLow(bufferGraph());
    ASSERT_TRUE(low.ok());
    Result<DenotedModule> mod = DenotedModule::denote(low.value(), env);
    ASSERT_TRUE(mod.ok()) << mod.error().message;

    ExplorationLimits limits;
    limits.max_states = 10000;
    limits.input_budget = 3;
    limits.stop.requestStop("park please");
    Result<StateSpace> space = StateSpace::explorePartial(
        mod.value(), InputDomain::uniform(mod.value(), intTokens({1})),
        limits);
    ASSERT_TRUE(space.ok()) << space.error().message;
    EXPECT_TRUE(space.value().stopped());
    EXPECT_EQ(space.value().stopReason(), "park please");
    EXPECT_FALSE(space.value().complete());

    // explore() surfaces the same condition as a structured error.
    Result<StateSpace> full = StateSpace::explore(
        mod.value(), InputDomain::uniform(mod.value(), intTokens({1})),
        limits);
    ASSERT_FALSE(full.ok());
    EXPECT_NE(full.error().message.find("park please"),
              std::string::npos);
}

TEST(Cancellation, StopTokenFirstReasonWins)
{
    StopToken stop;
    EXPECT_FALSE(stop.stopRequested());
    stop.requestStop("first");
    stop.requestStop("second");
    EXPECT_TRUE(stop.stopRequested());
    EXPECT_EQ(stop.reason(), "first");
}

TEST(Cancellation, SimulatorAbortsOnFiredStopToken)
{
    Compiler compiler;
    ExprHigh gcd = circuits::buildGcdInOrder();
    sim::SimConfig config;
    config.stop.requestStop("deadline blown");
    Result<sim::Simulator> built = sim::Simulator::build(
        gcd, compiler.environment().functionsPtr(), config);
    ASSERT_TRUE(built.ok()) << built.error().message;
    sim::Simulator simulator = built.take();
    Result<sim::SimResult> run = simulator.run(
        {intTokens({1071}), intTokens({462})}, 1);
    ASSERT_FALSE(run.ok());
    EXPECT_NE(run.error().message.find("cancelled"), std::string::npos)
        << run.error().message;
    EXPECT_NE(run.error().message.find("deadline blown"),
              std::string::npos);
}

}  // namespace
}  // namespace graphiti
