/**
 * @file
 * End-to-end functional tests of the GCD circuits from section 2:
 * the in-order circuit (figure 2b), the normalized single-Mux loop
 * (figure 3d lhs), and the tagged out-of-order circuit (figure 2c)
 * must all compute gcd — the out-of-order one in program order.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "bench_circuits/gcd.hpp"
#include "semantics/executor.hpp"
#include "semantics/module.hpp"

namespace graphiti {
namespace {

std::int64_t
referenceGcd(std::int64_t a, std::int64_t b)
{
    return std::gcd(a, b);
}

DenotedModule
denoteOrDie(const ExprHigh& g, const Environment& env)
{
    Result<ExprLow> low = lowerToExprLow(g);
    EXPECT_TRUE(low.ok()) << (low.ok() ? "" : low.error().message);
    Result<DenotedModule> mod = DenotedModule::denote(low.value(), env);
    EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error().message);
    return mod.take();
}

TEST(GcdInOrder, SinglePair)
{
    Environment env;
    DenotedModule mod = denoteOrDie(circuits::buildGcdInOrder(), env);
    Executor exec(mod);
    ASSERT_TRUE(exec.feedIo(0, Value(48)));
    ASSERT_TRUE(exec.feedIo(1, Value(18)));
    auto out = exec.pullIo(0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->value.asInt(), 6);
}

TEST(GcdInOrder, StreamOfPairs)
{
    Environment env;
    DenotedModule mod = denoteOrDie(circuits::buildGcdInOrder(), env);
    Executor exec(mod);
    const std::vector<std::pair<int, int>> pairs = {
        {48, 18}, {7, 13}, {100, 75}, {9, 9}, {1, 999}};
    for (auto [a, b] : pairs) {
        ASSERT_TRUE(exec.feedIo(0, Value(a)));
        ASSERT_TRUE(exec.feedIo(1, Value(b)));
    }
    for (auto [a, b] : pairs) {
        auto out = exec.pullIo(0);
        ASSERT_TRUE(out.has_value()) << a << "," << b;
        EXPECT_EQ(out->value.asInt(), referenceGcd(a, b));
    }
}

TEST(GcdNormalized, ComputesGcdOnPairs)
{
    Environment env;
    ExprHigh g = circuits::buildGcdNormalizedLoop(env.functions());
    DenotedModule mod = denoteOrDie(g, env);
    Executor exec(mod);
    ASSERT_TRUE(exec.feedIo(0, Value::tuple(Value(21), Value(14))));
    auto out = exec.pullIo(0);
    ASSERT_TRUE(out.has_value());
    // The loop carries the full (a, b) pair; gcd is the first element.
    ASSERT_TRUE(out->value.isTuple());
    EXPECT_EQ(out->value.asTuple()[0].asInt(), 7);
}

TEST(GcdNormalized, SequentialStream)
{
    Environment env;
    ExprHigh g = circuits::buildGcdNormalizedLoop(env.functions());
    DenotedModule mod = denoteOrDie(g, env);
    Executor exec(mod);
    const std::vector<std::pair<int, int>> pairs = {
        {30, 12}, {5, 25}, {17, 4}};
    for (auto [a, b] : pairs)
        ASSERT_TRUE(exec.feedIo(0, Value::tuple(Value(a), Value(b))));
    for (auto [a, b] : pairs) {
        auto out = exec.pullIo(0);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->value.asTuple()[0].asInt(), referenceGcd(a, b));
    }
}

TEST(GcdOutOfOrder, ResultsArriveInProgramOrder)
{
    Environment env;
    ExprHigh g = circuits::buildGcdOutOfOrder(env.functions(), 4);
    DenotedModule mod = denoteOrDie(g, env);
    Executor exec(mod);
    // Feed pairs whose loop iteration counts differ wildly; the
    // Tagger/Untagger must still deliver results in program order.
    const std::vector<std::pair<int, int>> pairs = {
        {1071, 462},  // several iterations
        {4, 2},       // one iteration
        {13, 8},      // Fibonacci-adjacent: many iterations
        {100, 100},   // immediate
    };
    for (auto [a, b] : pairs)
        ASSERT_TRUE(exec.feedIo(0, Value::tuple(Value(a), Value(b))));
    for (auto [a, b] : pairs) {
        auto out = exec.pullIo(0);
        ASSERT_TRUE(out.has_value()) << a << "," << b;
        EXPECT_EQ(out->value.asTuple()[0].asInt(), referenceGcd(a, b));
        EXPECT_FALSE(out->tag.has_value());
    }
}

TEST(GcdOutOfOrder, WorksWithSingleTag)
{
    Environment env;
    ExprHigh g = circuits::buildGcdOutOfOrder(env.functions(), 1);
    DenotedModule mod = denoteOrDie(g, env);
    Executor exec(mod);
    ASSERT_TRUE(exec.feedIo(0, Value::tuple(Value(12), Value(18))));
    ASSERT_TRUE(exec.feedIo(0, Value::tuple(Value(35), Value(10))));
    auto o1 = exec.pullIo(0);
    auto o2 = exec.pullIo(0);
    ASSERT_TRUE(o1.has_value());
    ASSERT_TRUE(o2.has_value());
    EXPECT_EQ(o1->value.asTuple()[0].asInt(), 6);
    EXPECT_EQ(o2->value.asTuple()[0].asInt(), 5);
}

TEST(GcdCircuits, ValidateStructurally)
{
    Environment env;
    EXPECT_TRUE(circuits::buildGcdInOrder().validate().ok());
    EXPECT_TRUE(circuits::buildGcdNormalizedLoop(env.functions())
                    .validate()
                    .ok());
    EXPECT_TRUE(circuits::buildGcdOutOfOrder(env.functions(), 2)
                    .validate()
                    .ok());
}

}  // namespace
}  // namespace graphiti
