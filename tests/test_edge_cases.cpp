/**
 * @file
 * Edge cases across modules: parser robustness against garbage
 * input, simulator corner configurations, engine bounds, and stats
 * accounting.
 */

#include <gtest/gtest.h>

#include "bench_circuits/gcd.hpp"
#include "dot/dot.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/catalog.hpp"
#include "sim/sim.hpp"
#include "support/rng.hpp"

namespace graphiti {
namespace {

// ---------------------------------------------------------------------
// Dot parser robustness: random garbage and random mutations of valid
// input must fail cleanly (an Error), never crash or accept nonsense.
// ---------------------------------------------------------------------

class DotFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DotFuzz, GarbageNeverCrashes)
{
    Rng rng(GetParam());
    std::string garbage;
    std::size_t length = rng.below(300);
    for (std::size_t i = 0; i < length; ++i)
        garbage += static_cast<char>(32 + rng.below(95));
    Result<ExprHigh> result = parseDot(garbage);
    if (result.ok()) {
        EXPECT_TRUE(result.value().validate().ok());
    }
}

TEST_P(DotFuzz, MutatedValidInputNeverCrashes)
{
    Rng rng(GetParam());
    std::string text = printDot(circuits::buildGcdInOrder());
    // Flip a handful of characters.
    for (int i = 0; i < 8; ++i) {
        std::size_t at = rng.below(text.size());
        text[at] = static_cast<char>(32 + rng.below(95));
    }
    Result<ExprHigh> result = parseDot(text);
    if (result.ok()) {
        EXPECT_TRUE(result.value().validate().ok());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DotFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---------------------------------------------------------------------
// Simulator corners.
// ---------------------------------------------------------------------

TEST(SimEdge, InitTrueEmitsTrueFirst)
{
    ExprHigh g;
    g.addNode("i", "init", {{"value", "true"}});
    g.bindInput(0, PortRef{"i", "in0"});
    g.bindOutput(0, PortRef{"i", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    sim::Simulator s = sim::Simulator::build(g, registry).take();
    auto r = s.run({{Token(Value(false))}}, 2);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_TRUE(r.value().outputs[0][0].value.asBool());
    EXPECT_FALSE(r.value().outputs[0][1].value.asBool());
}

TEST(SimEdge, SourceDrivenConstantStreams)
{
    ExprHigh g;
    g.addNode("src", "source");
    g.addNode("c", "constant", {{"value", "9"}});
    g.connect("src", "out0", "c", "in0");
    g.bindOutput(0, PortRef{"c", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    sim::Simulator s = sim::Simulator::build(g, registry).take();
    auto r = s.run({}, 5);
    ASSERT_TRUE(r.ok()) << r.error().message;
    for (const Token& t : r.value().outputs[0])
        EXPECT_EQ(t.value.asInt(), 9);
}

TEST(SimEdge, TraceFilterOnAbsentNodeIsSilent)
{
    ExprHigh g = circuits::buildGcdInOrder();
    auto registry = std::make_shared<FnRegistry>();
    sim::SimConfig config;
    config.trace_nodes = {"no_such_node"};
    sim::Simulator s = sim::Simulator::build(g, registry, config).take();
    auto r = s.run({{Token(Value(6))}, {Token(Value(4))}}, 1);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().trace.empty());
}

TEST(SimEdge, UnknownComponentTypeFails)
{
    // The simulator (not the validator) must report unmodelled types.
    ExprHigh g;
    g.addNode("p", "pure", {{"fn", "ghost"}});
    g.bindInput(0, PortRef{"p", "in0"});
    g.bindOutput(0, PortRef{"p", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    EXPECT_FALSE(sim::Simulator::build(g, registry).take()
                     .run({{Token(Value(1))}}, 1)
                     .ok());
}

TEST(SimEdge, CycleLimitReported)
{
    // A source feeding a sink runs forever; with only impossible
    // output expectations the run must hit the cycle limit, not hang.
    ExprHigh g;
    g.addNode("src", "source");
    g.addNode("snk", "sink");
    g.connect("src", "out0", "snk", "in0");
    g.bindOutput(0, PortRef{"src", "out0"});
    // src.out0 is consumed by the edge, so rebind: use a fork.
    ExprHigh g2;
    g2.addNode("src", "source");
    g2.addNode("f", "fork", {{"out", "2"}});
    g2.addNode("snk", "sink");
    g2.connect("src", "out0", "f", "in0");
    g2.connect("f", "out0", "snk", "in0");
    g2.bindOutput(0, PortRef{"f", "out1"});
    auto registry = std::make_shared<FnRegistry>();
    sim::SimConfig config;
    config.max_cycles = 50;
    sim::Simulator s =
        sim::Simulator::build(g2, registry, config).take();
    // Expect more outputs than cycles allow: must error out.
    auto r = s.run({}, 10000);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("cycle limit"), std::string::npos);
}

// ---------------------------------------------------------------------
// Engine bounds and stats.
// ---------------------------------------------------------------------

TEST(EngineEdge, MaxApplicationsEnforced)
{
    // buffer-deepen always re-applies (each buffer becomes two):
    // exhaustive application must hit the cap and error.
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    RewriteEngine engine;
    ASSERT_TRUE(engine.addRule(catalog::bufferDeepen()).ok());
    Result<ExprHigh> out =
        engine.applyExhaustively(g, {"buffer-deepen"}, 16);
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.error().message.find("max applications"),
              std::string::npos);
}

TEST(EngineEdge, StatsMergeAccumulates)
{
    EngineStats a, b;
    a.record("x");
    a.record("x");
    b.record("y");
    a.merge(b);
    EXPECT_EQ(a.rewrites_applied, 3u);
    EXPECT_EQ(a.per_rule.at("x"), 2u);
    EXPECT_EQ(a.per_rule.at("y"), 1u);
}

TEST(EngineEdge, DuplicateRuleRejected)
{
    RewriteEngine engine;
    ASSERT_TRUE(engine.addRule(catalog::bufferElim()).ok());
    EXPECT_FALSE(engine.addRule(catalog::bufferElim()).ok());
}

}  // namespace
}  // namespace graphiti
