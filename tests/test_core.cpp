/**
 * @file
 * Tests for the public Compiler API: dot-to-dot compilation, report
 * contents, bounded verification of a compilation, and error paths.
 */

#include <gtest/gtest.h>

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "dot/dot.hpp"

namespace graphiti {
namespace {

TEST(Compiler, CompilesGcdDotToTaggedDot)
{
    std::string dot = printDot(circuits::buildGcdInOrder());
    Compiler compiler;
    Result<CompileReport> report =
        compiler.compileDot(dot, {.num_tags = 4, .reexpand = true});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_NE(report.value().output_dot.find("tagger"),
              std::string::npos);
    EXPECT_EQ(report.value().output_dot.find("\"mux\""),
              std::string::npos);
    ASSERT_EQ(report.value().loops.size(), 1u);
    EXPECT_TRUE(report.value().loops[0].transformed);
    EXPECT_GT(report.value().rewrites.rewrites_applied, 5u);
    EXPECT_GT(report.value().seconds, 0.0);
}

TEST(Compiler, OutputDotReparses)
{
    Compiler compiler;
    Result<CompileReport> report = compiler.compileGraph(
        circuits::buildGcdInOrder(), {.num_tags = 2});
    ASSERT_TRUE(report.ok());
    Result<ExprHigh> reparsed = parseDot(report.value().output_dot);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    EXPECT_TRUE(reparsed.value().sameAs(report.value().graph));
}

TEST(Compiler, MalformedDotFails)
{
    Compiler compiler;
    EXPECT_FALSE(compiler.compileDot("digraph { broken").ok());
}

TEST(Compiler, GraphWithoutLoopsPassesThrough)
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    Compiler compiler;
    Result<CompileReport> report = compiler.compileGraph(g);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().loops.empty());
    EXPECT_TRUE(report.value().graph.sameAs(g));
}

TEST(Compiler, VerifyCompilationOnGcd)
{
    // Compile the normalized loop (small state space) and discharge
    // the refinement obligation on a bounded instantiation.
    Compiler compiler;
    ExprHigh original = circuits::buildGcdNormalizedLoop(
        compiler.environment().functions());
    Result<CompileReport> compiled = compiler.compileGraph(
        original, {.num_tags = 2, .reexpand = false});
    ASSERT_TRUE(compiled.ok()) << compiled.error().message;
    ASSERT_TRUE(compiled.value().loops.at(0).transformed)
        << compiled.value().loops.at(0).refusal;

    auto verdict = compiler.verifyCompilation(
        original, compiled.value().graph,
        {Token(Value::tuple(Value(3), Value(2))),
         Token(Value::tuple(Value(4), Value(2)))},
        {.max_states = 400000, .input_budget = 2});
    ASSERT_TRUE(verdict.ok()) << verdict.error().message;
    EXPECT_TRUE(verdict.value().refines)
        << verdict.value().counterexample;
}

TEST(Compiler, ReportsRefusalsInDot)
{
    // A loop with a store compiles to itself plus a refusal record.
    Compiler compiler;
    ExprHigh g;
    // Minimal store-in-body loop (same shape as the pipeline test).
    g.addNode("mux", "mux");
    g.addNode("init", "init", {{"value", "false"}});
    g.addNode("forkS", "fork", {{"out", "3"}});
    g.addNode("store", "store", {{"memory", "m"}});
    g.addNode("sinkS", "sink");
    g.addNode("dec", "operator", {{"op", "sub"}});
    g.addNode("one", "constant", {{"value", "1"}});
    g.addNode("forkD", "fork", {{"out", "2"}});
    g.addNode("zero", "constant", {{"value", "0"}});
    g.addNode("srcZ", "source");
    g.addNode("gt", "operator", {{"op", "gt"}});
    g.addNode("forkC", "fork", {{"out", "2"}});
    g.addNode("branch", "branch");
    g.addNode("forkAddr", "fork", {{"out", "2"}});
    g.bindInput(0, PortRef{"mux", "in2"});
    g.bindOutput(0, PortRef{"branch", "out1"});
    g.connect("init", "out0", "mux", "in0");
    g.connect("branch", "out0", "mux", "in1");
    g.connect("mux", "out0", "forkS", "in0");
    g.connect("forkS", "out0", "forkAddr", "in0");
    g.connect("forkAddr", "out0", "store", "in0");
    g.connect("forkAddr", "out1", "store", "in1");
    g.connect("store", "out0", "sinkS", "in0");
    g.connect("forkS", "out1", "dec", "in0");
    g.connect("forkS", "out2", "one", "in0");
    g.connect("one", "out0", "dec", "in1");
    g.connect("dec", "out0", "forkD", "in0");
    g.connect("forkD", "out0", "branch", "in0");
    g.connect("forkD", "out1", "gt", "in0");
    g.connect("srcZ", "out0", "zero", "in0");
    g.connect("zero", "out0", "gt", "in1");
    g.connect("gt", "out0", "forkC", "in0");
    g.connect("forkC", "out0", "branch", "in1");
    g.connect("forkC", "out1", "init", "in0");
    ASSERT_TRUE(g.validate().ok()) << g.validate().error().message;

    Result<CompileReport> report = compiler.compileGraph(g);
    ASSERT_TRUE(report.ok()) << report.error().message;
    ASSERT_EQ(report.value().loops.size(), 1u);
    EXPECT_FALSE(report.value().loops[0].transformed);
    EXPECT_NE(report.value().loops[0].refusal.find("store"),
              std::string::npos);
    EXPECT_TRUE(report.value().graph.sameAs(g));
}

}  // namespace
}  // namespace graphiti
