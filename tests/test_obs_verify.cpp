/**
 * @file
 * Verification-engine telemetry
 * (docs/verification_observability.md): the live progress probe, the
 * resource accounting, the pool-occupancy counters and the exposition
 * endpoint — and, above all, their neutrality: verdicts must be
 * byte-identical with probes attached, absent, or compiled out, at
 * any thread count.
 *
 * Every test here also builds and passes under -DGRAPHITI_OBS=OFF
 * (ci/obs_gate.sh runs the full suite in both configurations); the
 * assertions that require live instrumentation are guarded by
 * GRAPHITI_OBS_ENABLED and their OFF branches pin the zeros down
 * instead.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <vector>

#include "bench_circuits/gcd.hpp"
#include "dot/dot.hpp"
#include "obs/expose.hpp"
#include "obs/scope.hpp"
#include "obs/vprobe.hpp"
#include "refine/refinement.hpp"
#include "served/client.hpp"
#include "served/daemon.hpp"
#include "support/thread_pool.hpp"

namespace graphiti {
namespace {

std::vector<Token>
gcdPairs()
{
    return {Token(Value::tuple(Value(3), Value(2))),
            Token(Value::tuple(Value(4), Value(2)))};
}

/** One theorem-5.3 refinement check (ooo gcd vs sequential gcd) at
 * @p threads lanes, run inside @p scope when non-null. */
RefinementReport
runGcdCheck(std::size_t threads, obs::Scope* scope)
{
    obs::ScopedInstall install(scope);
    Environment env(4);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
    Result<RefinementReport> report = checkGraphRefinement(
        ooo, seq, env, gcdPairs(),
        {.max_states = 200000, .input_budget = 2, .threads = threads});
    EXPECT_TRUE(report.ok()) << report.error().message;
    return report.ok() ? report.take() : RefinementReport{};
}

/** The buffer module of the state-space tests: tiny, deterministic. */
DenotedModule
bufferModule(Environment& env)
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    return DenotedModule::denote(lowerToExprLow(g).value(), env).take();
}

// ---------------------------------------------------------------------
// The probe itself: lock-free publish/snapshot, sorted JSON.

TEST(VerifyProbe, SnapshotReflectsPublishes)
{
    obs::VerifyProbe probe;
    EXPECT_EQ(probe.snapshot().samples, 0u);

    probe.beginPhase(obs::VerifyPhase::Explore, "full");
    probe.publishExplore(100, 7, 2500.0, 12.5);
    probe.notePeakBytes(4096);
    obs::VerifyProgress p = probe.snapshot();
    EXPECT_EQ(p.phase, obs::VerifyPhase::Explore);
    EXPECT_STREQ(p.rung, "full");
    EXPECT_EQ(p.states, 100u);
    EXPECT_EQ(p.frontier, 7u);
    EXPECT_DOUBLE_EQ(p.states_per_second, 2500.0);
    EXPECT_EQ(p.peak_bytes, 4096u);
    EXPECT_GE(p.samples, 1u);

    probe.beginPhase(obs::VerifyPhase::Game, "full");
    probe.publishGame(42, 3, 40);
    p = probe.snapshot();
    EXPECT_EQ(p.phase, obs::VerifyPhase::Game);
    EXPECT_EQ(p.pairs, 42u);
    EXPECT_EQ(p.round, 3u);
    EXPECT_EQ(p.alive, 40u);
    // The peak survives phase changes (it is a per-job high water).
    EXPECT_EQ(p.peak_bytes, 4096u);
    probe.notePeakBytes(100);  // lower: must not regress the max
    EXPECT_EQ(probe.peakBytes(), 4096u);
}

TEST(VerifyProbe, ProgressJsonKeysAreSorted)
{
    obs::VerifyProbe probe;
    probe.beginPhase(obs::VerifyPhase::Explore, "bounded-partial");
    probe.publishExplore(5, 1, 10.0, 1.0);
    std::string dump = probe.snapshot().toJson().dump();
    // Deterministic key ordering: every metrics/stats snapshot emits
    // sorted keys so byte-comparison of equal snapshots always works.
    std::vector<std::string> keys = {
        "alive",      "deadline_remaining_s",
        "frontier",   "pairs",
        "parks",      "peak_bytes",
        "phase",      "resumes",
        "round",      "rung",
        "samples",    "states",
        "states_cap_pct", "states_per_second"};
    std::size_t pos = 0;
    for (const std::string& key : keys) {
        std::size_t at = dump.find("\"" + key + "\"");
        ASSERT_NE(at, std::string::npos) << key;
        EXPECT_GE(at, pos) << key << " out of order in " << dump;
        pos = at;
    }
}

// ---------------------------------------------------------------------
// Probe threading through the verification core.

TEST(VerifyTelemetry, ProbeSeesExploreAndGame)
{
    auto scope = std::make_shared<obs::Scope>();
    auto probe = std::make_shared<obs::VerifyProbe>();
    scope->attachVerifyProbe(probe);

    RefinementReport report = runGcdCheck(1, scope.get());
    EXPECT_TRUE(report.refines);

    obs::VerifyProgress p = probe->snapshot();
#if GRAPHITI_OBS_ENABLED
    EXPECT_GT(p.samples, 0u) << "the verify core never published";
    // The final explore publish reports the completed spec space; the
    // game publishes after every discovery level and fixpoint round.
    EXPECT_GT(p.states, 0u);
    EXPECT_EQ(p.pairs, report.reachable_pairs);
    EXPECT_GT(p.round, 0u);
    EXPECT_GT(p.peak_bytes, 0u);
    // Phases (and rungs) are Governor business; a direct refinement
    // check publishes readings without relabeling the phase.
    EXPECT_EQ(p.phase, obs::VerifyPhase::Idle);
#else
    // Compiled out: the call sites vanish, the probe stays silent.
    EXPECT_EQ(p.samples, 0u);
    EXPECT_EQ(p.peak_bytes, 0u);
#endif
}

TEST(VerifyTelemetry, VerdictByteIdenticalAcrossThreadsAndProbes)
{
    // The telemetry-neutrality contract at the heart of this plane:
    // same verdict-relevant fields with a probe attached, with a bare
    // scope, and with no scope at all, at 1, 2 and 8 lanes.
    RefinementReport baseline = runGcdCheck(1, nullptr);
    ASSERT_TRUE(baseline.refines);

    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
        for (bool with_probe : {false, true}) {
            auto scope = std::make_shared<obs::Scope>();
            if (with_probe)
                scope->attachVerifyProbe(
                    std::make_shared<obs::VerifyProbe>());
            RefinementReport report =
                runGcdCheck(threads, scope.get());
            EXPECT_EQ(report.refines, baseline.refines);
            EXPECT_EQ(report.counterexample, baseline.counterexample);
            EXPECT_EQ(report.impl_states, baseline.impl_states);
            EXPECT_EQ(report.spec_states, baseline.spec_states);
            EXPECT_EQ(report.reachable_pairs,
                      baseline.reachable_pairs);
            EXPECT_EQ(report.fixpoint_iterations,
                      baseline.fixpoint_iterations);
        }
    }
}

TEST(VerifyTelemetry, PeakBytesStableAcrossRunsAndThreads)
{
    RefinementReport first = runGcdCheck(1, nullptr);
    RefinementReport again = runGcdCheck(1, nullptr);
    // Size-based estimates are pure functions of the explored space,
    // so two identical runs agree exactly...
    EXPECT_EQ(first.explore_peak_bytes, again.explore_peak_bytes);
    EXPECT_EQ(first.peak_bytes, again.peak_bytes);
    // ...and so does any thread count (the tables grow to the same
    // final content through the same deterministic insertions).
    RefinementReport wide = runGcdCheck(8, nullptr);
    EXPECT_EQ(wide.explore_peak_bytes, first.explore_peak_bytes);
    EXPECT_EQ(wide.peak_bytes, first.peak_bytes);
#if GRAPHITI_OBS_ENABLED
    EXPECT_GT(first.explore_peak_bytes, 0u);
    EXPECT_GT(first.peak_bytes, 0u);
#else
    EXPECT_EQ(first.explore_peak_bytes, 0u);
    EXPECT_EQ(first.peak_bytes, 0u);
#endif
}

TEST(VerifyTelemetry, ParkAndResumeReachTheProbe)
{
    auto scope = std::make_shared<obs::Scope>();
    auto probe = std::make_shared<obs::VerifyProbe>();
    scope->attachVerifyProbe(probe);
    obs::ScopedInstall install(scope.get());

    Environment env(4);
    DenotedModule mod = bufferModule(env);
    InputDomain domain = InputDomain::uniform(
        mod, {Token(Value(1)), Token(Value(2))});
    // Cap well below the full space: the exploration parks.
    Result<StateSpace> parked = StateSpace::explorePartial(
        mod, domain, {.max_states = 4, .input_budget = 3});
    ASSERT_TRUE(parked.ok()) << parked.error().message;
    ASSERT_FALSE(parked.value().complete());

    obs::VerifyProgress at_park = probe->snapshot();
    StateSpace space = parked.take();
    ASSERT_TRUE(space.resume(mod, 100000).ok());
    EXPECT_TRUE(space.complete());
    obs::VerifyProgress at_resume = probe->snapshot();

#if GRAPHITI_OBS_ENABLED
    // The park -> resume transition a `--watch-job` poller tails.
    EXPECT_EQ(at_park.parks, 1u);
    EXPECT_EQ(at_park.resumes, 0u);
    EXPECT_EQ(at_resume.parks, 1u);
    EXPECT_EQ(at_resume.resumes, 1u);
    EXPECT_GT(at_resume.states, at_park.states);
#else
    EXPECT_EQ(at_resume.parks, 0u);
    EXPECT_EQ(at_resume.resumes, 0u);
#endif
}

// ---------------------------------------------------------------------
// Pool occupancy.

TEST(PoolOccupancy, LaneChunksSumToSubmitted)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
        ThreadPool pool(threads);
        std::atomic<std::uint64_t> touched{0};
        for (int batch = 0; batch < 5; ++batch)
            pool.parallelFor(257, [&](std::size_t) {
                touched.fetch_add(1, std::memory_order_relaxed);
            });
        EXPECT_EQ(touched.load(), 5u * 257u);

        ThreadPool::PoolStats stats = pool.stats();
        std::uint64_t lane_chunks = 0;
        for (const ThreadPool::LaneStats& lane : stats.lanes)
            lane_chunks += lane.chunks;
        // Work stealing moves chunks between lanes; it never loses or
        // duplicates one.
        EXPECT_EQ(lane_chunks, stats.chunks_submitted);
        EXPECT_EQ(stats.batches, 5u);
        EXPECT_EQ(stats.lanes.size(), pool.size());
    }
}

// ---------------------------------------------------------------------
// Exposition format: render -> parse round trip.

TEST(Exposition, RegistryRoundTripsThroughLineParser)
{
    obs::MetricsRegistry registry;
    registry.add("refine.states", 1234);
    registry.add("guard.verify.cache_hits", 3);
    registry.set("guard.verify.peak_bytes.total", 65536.0);

    obs::expo::TextExposition text;
    std::size_t emitted = obs::expo::renderRegistry(registry, text);
    EXPECT_GT(emitted, 0u);

    Result<std::vector<obs::expo::Sample>> parsed =
        obs::expo::parseExposition(text.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    auto value = [&](const std::string& name) -> double {
        for (const obs::expo::Sample& s : parsed.value())
            if (s.name == name)
                return s.value;
        ADD_FAILURE() << name << " missing from:\n" << text.str();
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(value("graphiti_refine_states_total"), 1234.0);
    EXPECT_DOUBLE_EQ(value("graphiti_guard_verify_cache_hits_total"),
                     3.0);
    EXPECT_DOUBLE_EQ(value("graphiti_guard_verify_peak_bytes_total"),
                     65536.0);
}

TEST(Exposition, RenderingIsSortedAndDeterministic)
{
    obs::MetricsRegistry a;
    a.add("z.last", 1);
    a.add("a.first", 2);
    a.set("m.middle", 3.0);
    obs::MetricsRegistry b;
    b.set("m.middle", 3.0);
    b.add("a.first", 2);
    b.add("z.last", 1);

    obs::expo::TextExposition ta, tb;
    obs::expo::renderRegistry(a, ta);
    obs::expo::renderRegistry(b, tb);
    // Insertion order must not leak into the document.
    EXPECT_EQ(ta.str(), tb.str());
    EXPECT_LT(ta.str().find("graphiti_a_first"),
              ta.str().find("graphiti_m_middle"));
    EXPECT_LT(ta.str().find("graphiti_m_middle"),
              ta.str().find("graphiti_z_last"));
}

// ---------------------------------------------------------------------
// The service surface: metricsz verb and the --expose endpoint.

std::string
socketPath(const std::string& tag)
{
    return "/tmp/graphiti-obsv-" + tag + "-" +
           std::to_string(::getpid()) + ".sock";
}

served::ClientConfig
clientConfig(const std::string& socket_path)
{
    served::ClientConfig config;
    config.socket_path = socket_path;
    config.sleep_between_retries = false;
    return config;
}

TEST(Metricsz, VerbAnswersWithAliasFamilies)
{
    std::string path = socketPath("metricsz");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler.workers = 1;
    config.scheduler.queue_capacity = 4;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());
    served::Client client(clientConfig(path));

    Result<std::string> before = client.serviceMetricsText();
    ASSERT_TRUE(before.ok()) << before.error().message;
    Result<std::vector<obs::expo::Sample>> parsed =
        obs::expo::parseExposition(before.value());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    auto find = [](const std::vector<obs::expo::Sample>& samples,
                   const std::string& name)
        -> const obs::expo::Sample* {
        for (const obs::expo::Sample& s : samples)
            if (s.name == name)
                return &s;
        return nullptr;
    };
    // The scrape contract: both alias families answer from the first
    // request on — zeros before any job, and under OBS=OFF forever.
    const obs::expo::Sample* states =
        find(parsed.value(), "graphiti_verify_states_total");
    const obs::expo::Sample* peak =
        find(parsed.value(), "graphiti_verify_peak_bytes");
    ASSERT_NE(states, nullptr) << before.value();
    ASSERT_NE(peak, nullptr) << before.value();
    EXPECT_EQ(states->value, 0.0);
    EXPECT_EQ(peak->value, 0.0);

    // One governed verify, then the families must move (OBS on).
    Environment env(4);
    ExprHigh gcd = circuits::buildGcdInOrder();
    JobSpec spec;
    spec.kind = "verify";
    spec.circuit_dot = printDot(gcd);
    spec.options.governed_verify = true;
    spec.options.num_tags = 4;
    spec.options.verify_budget.max_states = 800;
    spec.options.verify_budget.partial_max_states = 300;
    spec.options.verify_budget.input_budget = 1;
    spec.options.verify_budget.trace_walks = 2;
    spec.options.verify_budget.trace.max_steps = 60;
    spec.options.verify_budget.trace.max_inputs = 2;
    Result<served::JobResponse> response = client.request(spec);
    ASSERT_TRUE(response.ok()) << response.error().message;
    ASSERT_EQ(response.value().status, "ok")
        << response.value().error;

    Result<std::string> after = client.serviceMetricsText();
    ASSERT_TRUE(after.ok()) << after.error().message;
    Result<std::vector<obs::expo::Sample>> reparsed =
        obs::expo::parseExposition(after.value());
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    const obs::expo::Sample* states_after =
        find(reparsed.value(), "graphiti_verify_states_total");
    const obs::expo::Sample* peak_after =
        find(reparsed.value(), "graphiti_verify_peak_bytes");
    ASSERT_NE(states_after, nullptr);
    ASSERT_NE(peak_after, nullptr);
#if GRAPHITI_OBS_ENABLED
    EXPECT_GT(states_after->value, 0.0) << after.value();
    EXPECT_GT(peak_after->value, 0.0) << after.value();
#else
    EXPECT_EQ(states_after->value, 0.0);
    EXPECT_EQ(peak_after->value, 0.0);
#endif
    // Service-plane counters ride along either way.
    const obs::expo::Sample* completed =
        find(reparsed.value(), "graphiti_jobs_completed_total");
    ASSERT_NE(completed, nullptr);
    EXPECT_GE(completed->value, 1.0);
    daemon.stop();
}

TEST(Metricsz, ExposeEndpointServesTheSameDocument)
{
    std::string path = socketPath("expose");
    served::DaemonConfig config;
    config.socket_path = path;
    config.expose_port = 0;  // ephemeral loopback
    config.scheduler.workers = 1;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());
    ASSERT_GT(daemon.exposePort(), 0);

    // Scrape exactly as curl would: HTTP/1.0, any path.
    Result<net::Socket> conn = net::connectTcp(daemon.exposePort());
    ASSERT_TRUE(conn.ok()) << conn.error().message;
    ASSERT_TRUE(net::writeAll(conn.value(),
                              "GET /metricsz HTTP/1.0\r\n\r\n", 2000)
                    .ok());
    std::string response;
    while (true) {
        Result<bool> readable = net::waitReadable(conn.value(), 2000);
        if (!readable.ok() || !readable.value())
            break;
        std::string chunk;
        Result<std::size_t> got =
            net::readSome(conn.value(), chunk, 1 << 16, 2000);
        if (!got.ok() || got.value() == 0)
            break;
        response += chunk;
    }
    EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
    std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    std::string body = response.substr(body_at + 4);
    Result<std::vector<obs::expo::Sample>> parsed =
        obs::expo::parseExposition(body);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    bool has_states = false;
    for (const obs::expo::Sample& s : parsed.value())
        if (s.name == "graphiti_verify_states_total")
            has_states = true;
    EXPECT_TRUE(has_states) << body;
    EXPECT_GE(daemon.exposePort(), 1u);
    daemon.stop();
}

}  // namespace
}  // namespace graphiti
