/**
 * @file
 * Determinism tests of the parallel verification core (label: par).
 *
 * The contract under test (docs/parallelism.md): every verdict the
 * verification stack produces — explored state spaces, simulation-game
 * reports including counterexample text, governed verdict JSON, stress
 * reports, catalog sweeps, simulator results — is byte-identical at
 * any thread count. Plus the verification cache: hit on an unchanged
 * circuit, miss after mutating one node, JSON file persistence, and
 * StopToken cancellation parking a resumable frontier.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "guard/governor.hpp"
#include "guard/transaction.hpp"
#include "guard/verify_cache.hpp"
#include "refine/refinement.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"
#include "support/thread_pool.hpp"

namespace graphiti {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

std::vector<Token>
gcdPairs()
{
    return {Token(Value::tuple(Value(6), Value(4))),
            Token(Value::tuple(Value(9), Value(6)))};
}

/** The gcd refinement instance used across the determinism tests. */
struct GcdInstance
{
    Environment env{4};
    ExprHigh seq;
    ExprHigh ooo;
    DenotedModule impl;
    DenotedModule spec;

    GcdInstance()
        : seq(circuits::buildGcdNormalizedLoop(env.functions())),
          ooo(circuits::buildGcdOutOfOrder(env.functions(), 2)),
          impl(DenotedModule::denote(lowerToExprLow(ooo).value(), env)
                   .take()),
          spec(DenotedModule::denote(lowerToExprLow(seq).value(), env)
                   .take())
    {
    }
};

// ---------------------------------------------------------------------
// The pool itself.
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ChunksCoverTheRangeDisjointly)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelForChunks(hits.size(),
                           [&](std::size_t begin, std::size_t end) {
                               for (std::size_t i = begin; i < end; ++i)
                                   hits[i].fetch_add(1);
                           });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        // A nested pool task must not deadlock waiting for lanes the
        // outer batch occupies; it runs inline on the calling lane.
        ThreadPool inner(4);
        inner.parallelFor(16, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(5), 5u);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(0),
              ThreadPool::hardwareThreads());
}

// ---------------------------------------------------------------------
// Exploration determinism.
// ---------------------------------------------------------------------

TEST(ParallelExplore, FingerprintIdenticalAcrossThreadCounts)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());

    std::uint64_t base_fp = 0;
    std::size_t base_states = 0;
    for (std::size_t threads : kThreadCounts) {
        ExplorationLimits limits;
        limits.max_states = 400000;
        limits.input_budget = 2;
        limits.threads = threads;
        Result<StateSpace> space =
            StateSpace::explore(gcd.impl, domain, limits);
        ASSERT_TRUE(space.ok()) << space.error().message;
        if (threads == 1) {
            base_fp = space.value().fingerprint();
            base_states = space.value().numStates();
        } else {
            EXPECT_EQ(space.value().fingerprint(), base_fp)
                << "threads=" << threads;
            EXPECT_EQ(space.value().numStates(), base_states)
                << "threads=" << threads;
        }
    }
}

TEST(ParallelExplore, PartialSpacesIdenticalAcrossThreadCounts)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());

    std::uint64_t base_fp = 0;
    for (std::size_t threads : kThreadCounts) {
        ExplorationLimits limits;
        limits.max_states = 120;  // parks mid-exploration
        limits.input_budget = 2;
        limits.threads = threads;
        Result<StateSpace> space =
            StateSpace::explorePartial(gcd.impl, domain, limits);
        ASSERT_TRUE(space.ok()) << space.error().message;
        EXPECT_FALSE(space.value().complete());
        if (threads == 1)
            base_fp = space.value().fingerprint();
        else
            EXPECT_EQ(space.value().fingerprint(), base_fp)
                << "threads=" << threads;
    }
}

TEST(ParallelExplore, ParkedFrontierResumesToTheOneShotSpace)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());

    ExplorationLimits one_shot;
    one_shot.max_states = 400000;
    one_shot.input_budget = 2;
    one_shot.threads = 8;
    Result<StateSpace> full =
        StateSpace::explore(gcd.impl, domain, one_shot);
    ASSERT_TRUE(full.ok()) << full.error().message;

    ExplorationLimits capped = one_shot;
    capped.max_states = 90;
    Result<StateSpace> partial =
        StateSpace::explorePartial(gcd.impl, domain, capped);
    ASSERT_TRUE(partial.ok()) << partial.error().message;
    ASSERT_FALSE(partial.value().complete());
    StateSpace space = partial.take();
    while (!space.complete()) {
        Result<bool> more = space.resume(gcd.impl, 200);
        ASSERT_TRUE(more.ok()) << more.error().message;
    }
    EXPECT_EQ(space.numStates(), full.value().numStates());
    EXPECT_EQ(space.fingerprint(), full.value().fingerprint());
}

TEST(ParallelExplore, StopTokenParksResumableFrontier)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());

    StopToken stop;
    stop.requestStop("test cancellation");
    ExplorationLimits limits;
    limits.max_states = 400000;
    limits.input_budget = 2;
    limits.threads = 8;
    limits.stop = stop;
    Result<StateSpace> parked =
        StateSpace::explorePartial(gcd.impl, domain, limits);
    ASSERT_TRUE(parked.ok()) << parked.error().message;
    ASSERT_TRUE(parked.value().stopped());
    EXPECT_EQ(parked.value().stopReason(), "test cancellation");
    ASSERT_FALSE(parked.value().pendingFrontier().empty());

    // Clear the token and resume to completion: the final space is
    // exactly the one-shot space.
    StateSpace space = parked.take();
    space.setStopToken({});
    while (!space.complete()) {
        Result<bool> more = space.resume(gcd.impl, 100000);
        ASSERT_TRUE(more.ok()) << more.error().message;
    }
    ExplorationLimits one_shot;
    one_shot.max_states = 400000;
    one_shot.input_budget = 2;
    Result<StateSpace> full =
        StateSpace::explore(gcd.impl, domain, one_shot);
    ASSERT_TRUE(full.ok()) << full.error().message;
    EXPECT_EQ(space.fingerprint(), full.value().fingerprint());
}

// ---------------------------------------------------------------------
// Simulation-game determinism (both verdict polarities).
// ---------------------------------------------------------------------

TEST(ParallelGame, PassingReportIdenticalAcrossThreadCounts)
{
    GcdInstance gcd;
    RefinementReport base;
    for (std::size_t threads : kThreadCounts) {
        ExplorationLimits limits;
        limits.max_states = 400000;
        limits.input_budget = 2;
        limits.threads = threads;
        Result<RefinementReport> report = checkGraphRefinement(
            gcd.ooo, gcd.seq, gcd.env, gcdPairs(), limits);
        ASSERT_TRUE(report.ok()) << report.error().message;
        EXPECT_TRUE(report.value().refines);
        if (threads == 1) {
            base = report.value();
        } else {
            EXPECT_EQ(report.value().refines, base.refines);
            EXPECT_EQ(report.value().counterexample, base.counterexample);
            EXPECT_EQ(report.value().impl_states, base.impl_states);
            EXPECT_EQ(report.value().spec_states, base.spec_states);
            EXPECT_EQ(report.value().reachable_pairs,
                      base.reachable_pairs);
            EXPECT_EQ(report.value().fixpoint_iterations,
                      base.fixpoint_iterations);
        }
    }
}

TEST(ParallelGame, CounterexampleTextIdenticalAcrossThreadCounts)
{
    // constant(7) does not refine a buffer on tokens {0, 1}: the
    // failing output move must be reported identically at any count.
    Environment env(4);
    ExprHigh spec;
    spec.addNode("b", "buffer");
    spec.bindInput(0, PortRef{"b", "in0"});
    spec.bindOutput(0, PortRef{"b", "out0"});
    ExprHigh impl;
    impl.addNode("c", "constant", {{"value", "7"}});
    impl.bindInput(0, PortRef{"c", "in0"});
    impl.bindOutput(0, PortRef{"c", "out0"});

    std::vector<Token> tokens = {Token(Value(0)), Token(Value(1))};
    std::string base;
    for (std::size_t threads : kThreadCounts) {
        ExplorationLimits limits;
        limits.max_states = 10000;
        limits.input_budget = 2;
        limits.threads = threads;
        Result<RefinementReport> report =
            checkGraphRefinement(impl, spec, env, tokens, limits);
        ASSERT_TRUE(report.ok()) << report.error().message;
        EXPECT_FALSE(report.value().refines);
        ASSERT_FALSE(report.value().counterexample.empty());
        if (threads == 1)
            base = report.value().counterexample;
        else
            EXPECT_EQ(report.value().counterexample, base)
                << "threads=" << threads;
    }
}

// ---------------------------------------------------------------------
// Governed verdict JSON, byte-identical on every benchmark.
// ---------------------------------------------------------------------

TEST(ParallelGovernor, VerdictJsonByteIdenticalOnEveryBenchmark)
{
    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec spec =
            circuits::buildBenchmark(name).take();
        Environment env;
        PipelineOptions popts;
        popts.num_tags = spec.num_tags;
        Result<PipelineResult> transformed =
            runOooPipeline(spec.df_io, env, popts);
        ASSERT_TRUE(transformed.ok()) << name;

        std::string base;
        for (std::size_t threads : kThreadCounts) {
            // Tight budgets: the benchmark circuits are large, so the
            // full rung is expected to degrade — the point here is
            // byte-identical degradation at every thread count, not
            // assurance depth (test_guard covers the ladder itself).
            guard::VerificationBudget budget;
            budget.max_states = 800;
            budget.partial_max_states = 300;
            budget.input_budget = 1;
            budget.trace_walks = 2;
            budget.trace.max_steps = 60;
            budget.trace.max_inputs = 2;
            budget.threads = threads;
            guard::Governor governor(budget);
            Environment bounded(budget.input_budget + 2,
                                env.functionsPtr());
            guard::VerificationVerdict verdict = governor.verifyGraphs(
                transformed.value().graph, spec.df_io, bounded,
                {Token(Value(0)), Token(Value(1))});
            std::string json = verdict.toJson().dump(2);
            if (threads == 1)
                base = json;
            else
                EXPECT_EQ(json, base)
                    << name << " diverges at threads=" << threads;
        }
    }
}

// ---------------------------------------------------------------------
// Verification cache.
// ---------------------------------------------------------------------

CompileOptions
governedOptions()
{
    CompileOptions options;
    options.governed_verify = true;
    options.threads = 2;
    options.verify_budget.max_states = 800;
    options.verify_budget.partial_max_states = 300;
    options.verify_budget.input_budget = 1;
    options.verify_budget.trace_walks = 2;
    options.verify_budget.trace.max_steps = 60;
    options.verify_budget.trace.max_inputs = 2;
    return options;
}

TEST(VerifyCache, SecondCompileOfUnchangedCircuitHits)
{
    ExprHigh gcd = circuits::buildGcdInOrder();
    Compiler compiler;
    CompileOptions options = governedOptions();

    Result<CompileReport> first =
        compiler.compileGraph(gcd, options);
    ASSERT_TRUE(first.ok()) << first.error().message;
    EXPECT_FALSE(first.value().verify_cache_hit);
    EXPECT_EQ(compiler.verifyCache().hits(), 0u);
    EXPECT_EQ(compiler.verifyCache().misses(), 1u);

    Result<CompileReport> second =
        compiler.compileGraph(gcd, options);
    ASSERT_TRUE(second.ok()) << second.error().message;
    EXPECT_TRUE(second.value().verify_cache_hit);
    EXPECT_EQ(compiler.verifyCache().hits(), 1u);
    EXPECT_EQ(second.value().verify_cache_key,
              first.value().verify_cache_key);
    // The cached verdict is the stored verdict, byte for byte.
    EXPECT_EQ(second.value().verdict.toJson().dump(2),
              first.value().verdict.toJson().dump(2));
}

TEST(VerifyCache, MutatingOneNodeMisses)
{
    ExprHigh gcd = circuits::buildGcdInOrder();
    Compiler compiler;
    CompileOptions options = governedOptions();

    Result<CompileReport> first =
        compiler.compileGraph(gcd, options);
    ASSERT_TRUE(first.ok()) << first.error().message;

    // Mutate one node: re-parse the printed circuit with one buffer's
    // worth of difference — append a buffer in front of output 0.
    ExprHigh mutated = gcd;
    auto out0 = mutated.outputs()[0];
    ASSERT_TRUE(out0.has_value());
    mutated.addNode("par_test_tap", "buffer");
    mutated.connect(*out0, PortRef{"par_test_tap", "in0"});
    mutated.bindOutput(0, PortRef{"par_test_tap", "out0"});

    Result<CompileReport> second =
        compiler.compileGraph(mutated, options);
    ASSERT_TRUE(second.ok()) << second.error().message;
    EXPECT_FALSE(second.value().verify_cache_hit);
    EXPECT_NE(second.value().verify_cache_key,
              first.value().verify_cache_key);
    EXPECT_EQ(compiler.verifyCache().misses(), 2u);
}

TEST(VerifyCache, FilePersistenceRoundTrips)
{
    ExprHigh gcd = circuits::buildGcdInOrder();
    std::string path = ::testing::TempDir() + "graphiti_verify_cache.json";
    std::remove(path.c_str());

    CompileOptions options = governedOptions();
    options.verify_cache_file = path;

    std::string first_json;
    {
        Compiler compiler;
        Result<CompileReport> first =
            compiler.compileGraph(gcd, options);
        ASSERT_TRUE(first.ok()) << first.error().message;
        EXPECT_FALSE(first.value().verify_cache_hit);
        first_json = first.value().verdict.toJson().dump(2);
    }
    {
        // A fresh compiler (empty in-process cache) hits via the file.
        Compiler compiler;
        Result<CompileReport> second =
            compiler.compileGraph(gcd, options);
        ASSERT_TRUE(second.ok()) << second.error().message;
        EXPECT_TRUE(second.value().verify_cache_hit);
        EXPECT_EQ(second.value().verdict.toJson().dump(2), first_json);
    }
    std::remove(path.c_str());
}

TEST(VerifyCache, KeyIgnoresThreadsAndTracksBudget)
{
    ExprHigh gcd = circuits::buildGcdInOrder();
    std::vector<Token> tokens = {Token(Value(0)), Token(Value(1))};
    guard::VerificationBudget a;
    guard::VerificationBudget b = a;
    b.threads = 8;  // verdicts are thread-count independent
    EXPECT_EQ(
        guard::verificationCacheKey(gcd, gcd, a, tokens),
        guard::verificationCacheKey(gcd, gcd, b, tokens));

    guard::VerificationBudget c = a;
    c.max_states = a.max_states / 2;  // different assurance: new key
    EXPECT_NE(
        guard::verificationCacheKey(gcd, gcd, a, tokens),
        guard::verificationCacheKey(gcd, gcd, c, tokens));

    EXPECT_TRUE(guard::isCacheable(a));
    guard::VerificationBudget timed = a;
    timed.deadline_seconds = 1.0;  // nondeterministic: never cached
    EXPECT_FALSE(guard::isCacheable(timed));
}

// ---------------------------------------------------------------------
// Simulator ready-worklist: identical results on every benchmark.
// ---------------------------------------------------------------------

sim::SimResult
simulateBenchmark(const ExprHigh& g,
                  const circuits::BenchmarkSpec& spec,
                  std::shared_ptr<FnRegistry> registry, bool full_sweep)
{
    sim::SimConfig config;
    config.full_sweep = full_sweep;
    sim::Simulator simulator =
        sim::Simulator::build(g, registry, config).take();
    for (const auto& [name, data] : spec.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> r = simulator.run(
        spec.inputs, spec.expected_outputs, spec.serial_io);
    EXPECT_TRUE(r.ok()) << spec.name << ": " << r.error().message;
    return r.ok() ? r.take() : sim::SimResult{};
}

TEST(SimWorklist, CycleCountsMatchFullSweepOnEveryBenchmark)
{
    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec spec =
            circuits::buildBenchmark(name).take();
        auto registry = std::make_shared<FnRegistry>();
        sim::SimResult fast =
            simulateBenchmark(spec.df_io, spec, registry, false);
        sim::SimResult slow =
            simulateBenchmark(spec.df_io, spec, registry, true);
        EXPECT_EQ(fast.cycles, slow.cycles) << name;
        ASSERT_EQ(fast.outputs.size(), slow.outputs.size()) << name;
        for (std::size_t p = 0; p < fast.outputs.size(); ++p) {
            ASSERT_EQ(fast.outputs[p].size(), slow.outputs[p].size())
                << name << " port " << p;
            for (std::size_t i = 0; i < fast.outputs[p].size(); ++i)
                EXPECT_TRUE(fast.outputs[p][i] == slow.outputs[p][i])
                    << name << " port " << p << " token " << i;
        }
        EXPECT_EQ(fast.memories, slow.memories) << name;
    }
}

TEST(SimWorklist, TransformedCircuitMatchesFullSweep)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark("matvec").take();
    Environment env;
    PipelineOptions popts;
    popts.num_tags = spec.num_tags;
    Result<PipelineResult> transformed =
        runOooPipeline(spec.df_io, env, popts);
    ASSERT_TRUE(transformed.ok());
    sim::SimResult fast = simulateBenchmark(
        transformed.value().graph, spec, env.functionsPtr(), false);
    sim::SimResult slow = simulateBenchmark(
        transformed.value().graph, spec, env.functionsPtr(), true);
    EXPECT_EQ(fast.cycles, slow.cycles);
    EXPECT_EQ(fast.memories, slow.memories);
}

// ---------------------------------------------------------------------
// Stress harness and catalog sweep: thread-count independence.
// ---------------------------------------------------------------------

TEST(ParallelStress, ReportIdenticalAcrossThreadCounts)
{
    // The figure-2 GCD loop under a small plan battery (the full
    // battery is test_faults' stress profile).
    ExprHigh gcd = circuits::buildGcdInOrder();
    faults::Workload workload;
    std::vector<Token> as, bs;
    for (int i = 0; i < 6; ++i) {
        as.emplace_back(Value(1071 + 17 * i));
        bs.emplace_back(Value(462 + 3 * i));
    }
    workload.inputs = {std::move(as), std::move(bs)};
    workload.expected_outputs = 6;

    faults::StressReport base;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        faults::StressOptions options;
        options.random_plans = 3;
        options.max_starve_plans = 4;
        options.threads = threads;
        faults::StressHarness harness(options);
        auto registry = std::make_shared<FnRegistry>();
        Result<faults::StressReport> report =
            harness.run(gcd, registry, workload);
        ASSERT_TRUE(report.ok()) << report.error().message;
        if (threads == 1) {
            base = report.value();
            continue;
        }
        EXPECT_EQ(report.value().invariant_holds, base.invariant_holds);
        EXPECT_EQ(report.value().first_violation, base.first_violation);
        EXPECT_EQ(report.value().worst_inflation, base.worst_inflation);
        ASSERT_EQ(report.value().outcomes.size(), base.outcomes.size());
        for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
            EXPECT_EQ(report.value().outcomes[i].plan,
                      base.outcomes[i].plan);
            EXPECT_EQ(report.value().outcomes[i].cycles,
                      base.outcomes[i].cycles);
            EXPECT_EQ(report.value().outcomes[i].matched,
                      base.outcomes[i].matched);
        }
    }
}

TEST(ParallelCatalog, ValiditySweepIdenticalAcrossThreadCounts)
{
    guard::CatalogValidityReport base =
        guard::verifyCatalogValidity(42, 4, 1);
    guard::CatalogValidityReport par =
        guard::verifyCatalogValidity(42, 4, 8);
    EXPECT_EQ(par.all_ok, base.all_ok);
    EXPECT_EQ(par.rules_checked, base.rules_checked);
    EXPECT_EQ(par.first_failure, base.first_failure);
    ASSERT_EQ(par.rules.size(), base.rules.size());
    for (std::size_t i = 0; i < base.rules.size(); ++i) {
        EXPECT_EQ(par.rules[i].rule, base.rules[i].rule);
        EXPECT_EQ(par.rules[i].applications,
                  base.rules[i].applications);
        EXPECT_EQ(par.rules[i].violations, base.rules[i].violations);
    }
}

// ---------------------------------------------------------------------
// Cancellation races: a second thread fires the token while the
// exploration / simulation is in flight. The staggered delays sweep
// the cancel point across the run; every landing spot must be clean —
// a parked-and-resumable frontier or a structured "cancelled" error,
// never a crash, a hang, or a corrupted verdict afterwards.
// ---------------------------------------------------------------------

TEST(ParallelCancel, RacingCancelMidExploreParksThenResumesToOneShot)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());

    ExplorationLimits one_shot;
    one_shot.max_states = 400000;
    one_shot.input_budget = 2;
    one_shot.threads = 2;
    Result<StateSpace> full =
        StateSpace::explore(gcd.impl, domain, one_shot);
    ASSERT_TRUE(full.ok()) << full.error().message;

    for (int lag_us : {0, 30, 60, 120, 250, 500}) {
        StopToken stop = StopToken::manual();
        std::thread canceller([&stop, lag_us] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(lag_us));
            stop.requestStop("racing cancel");
        });
        ExplorationLimits limits = one_shot;
        limits.stop = stop;
        Result<StateSpace> raced =
            StateSpace::explorePartial(gcd.impl, domain, limits);
        canceller.join();
        ASSERT_TRUE(raced.ok())
            << "lag " << lag_us << ": " << raced.error().message;
        StateSpace space = raced.take();
        if (space.stopped()) {
            EXPECT_EQ(space.stopReason(), "racing cancel");
            // The parked frontier resumes — with the token cleared —
            // to exactly the one-shot space.
            space.setStopToken({});
            while (!space.complete()) {
                Result<bool> more = space.resume(gcd.impl, 100000);
                ASSERT_TRUE(more.ok()) << more.error().message;
            }
        }
        // Whether the cancel landed mid-flight or after the finish
        // line, the final space is the one-shot space, byte for byte.
        ASSERT_TRUE(space.complete()) << "lag " << lag_us;
        EXPECT_EQ(space.numStates(), full.value().numStates())
            << "lag " << lag_us;
        EXPECT_EQ(space.fingerprint(), full.value().fingerprint())
            << "lag " << lag_us;
    }
}

TEST(ParallelCancel, RacingCancelMidSimulationStaysStructured)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark(circuits::benchmarkNames().front())
            .take();
    auto registry = std::make_shared<FnRegistry>();
    sim::SimResult baseline =
        simulateBenchmark(spec.df_io, spec, registry, false);
    ASSERT_GT(baseline.cycles, 0u);

    for (int lag_us : {0, 30, 60, 120, 250, 500}) {
        StopToken stop = StopToken::manual();
        sim::SimConfig config;
        config.stop = stop;
        sim::Simulator simulator =
            sim::Simulator::build(spec.df_io, registry, config).take();
        for (const auto& [name, data] : spec.memories)
            simulator.setMemory(name, data);
        std::thread canceller([&stop, lag_us] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(lag_us));
            stop.requestStop("racing sim cancel");
        });
        Result<sim::SimResult> raced = simulator.run(
            spec.inputs, spec.expected_outputs, spec.serial_io);
        canceller.join();
        if (raced.ok()) {
            // Cancel landed after the finish line: the full result.
            EXPECT_EQ(raced.value().cycles, baseline.cycles)
                << "lag " << lag_us;
        } else {
            // Mid-flight: a structured cancellation, not a crash.
            EXPECT_NE(raced.error().message.find("cancel"),
                      std::string::npos)
                << "lag " << lag_us << ": " << raced.error().message;
        }
        // Nothing leaked across runs: a fresh run reproduces the
        // baseline exactly.
        sim::SimResult after =
            simulateBenchmark(spec.df_io, spec, registry, false);
        EXPECT_EQ(after.cycles, baseline.cycles) << "lag " << lag_us;
    }
}

}  // namespace
}  // namespace graphiti
