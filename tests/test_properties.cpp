/**
 * @file
 * Property-based tests (parameterized sweeps over seeds/instances):
 *
 *  - random well-formed graphs survive lower -> lift and dot
 *    round-trips;
 *  - theorem 4.6 as a property: applying a verified rewrite anywhere
 *    in a random graph yields a refinement of that graph;
 *  - every component refines itself on a finite instantiation
 *    (reflexivity of ⊑ per catalog entry);
 *  - e-graph extraction preserves term semantics and never grows
 *    terms;
 *  - the Tagger restores program order under adversarial completion
 *    orders;
 *  - the denotational executor and the cycle simulator agree on
 *    functional results.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "bench_circuits/gcd.hpp"
#include "dot/dot.hpp"
#include "graph/signatures.hpp"
#include "egraph/egraph.hpp"
#include "refine/refinement.hpp"
#include "refine/trace.hpp"
#include "rewrite/catalog.hpp"
#include "rewrite/pure_gen.hpp"
#include "semantics/executor.hpp"
#include "sim/sim.hpp"
#include "support/rng.hpp"

namespace graphiti {
namespace {

// ---------------------------------------------------------------------
// Random graph generation: a layered DAG of single-token components
// with every port wired or bound to io.
// ---------------------------------------------------------------------

ExprHigh
randomGraph(Rng& rng)
{
    ExprHigh g;
    // Open output ports waiting for consumers.
    std::vector<PortRef> open;
    std::size_t io_in = 0;

    std::size_t num_nodes = 3 + rng.below(8);
    for (std::size_t n = 0; n < num_nodes; ++n) {
        std::string name = "n" + std::to_string(n);
        switch (rng.below(5)) {
          case 0:
            g.addNode(name, "buffer");
            break;
          case 1:
            g.addNode(name, "fork", {{"out", "2"}});
            break;
          case 2:
            g.addNode(name, "operator", {{"op", "add"}});
            break;
          case 3:
            g.addNode(name, "merge");
            break;
          default:
            g.addNode(name, "join", {{"in", "2"}});
            break;
        }
        Result<Signature> sig =
            signatureOf(g.findNode(name)->type, g.findNode(name)->attrs);
        for (const std::string& in : sig.value().inputs) {
            // Wire from an open port (60%) or a fresh graph input.
            if (!open.empty() && rng.chance(0.6)) {
                std::size_t pick = rng.below(open.size());
                g.connect(open[pick], PortRef{name, in});
                open.erase(open.begin() +
                           static_cast<std::ptrdiff_t>(pick));
            } else {
                g.bindInput(io_in++, PortRef{name, in});
            }
        }
        for (const std::string& out : sig.value().outputs)
            open.push_back(PortRef{name, out});
    }
    std::size_t io_out = 0;
    for (const PortRef& port : open)
        g.bindOutput(io_out++, port);
    return g;
}

class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomGraphTest, Validates)
{
    Rng rng(GetParam());
    ExprHigh g = randomGraph(rng);
    Result<bool> valid = g.validate();
    EXPECT_TRUE(valid.ok()) << valid.error().message;
}

TEST_P(RandomGraphTest, LowerLiftRoundTrip)
{
    Rng rng(GetParam());
    ExprHigh g = randomGraph(rng);
    Result<ExprLow> low = lowerToExprLow(g);
    ASSERT_TRUE(low.ok()) << low.error().message;
    Result<ExprHigh> lifted = liftToExprHigh(low.value());
    ASSERT_TRUE(lifted.ok()) << lifted.error().message;
    EXPECT_TRUE(g.sameAs(lifted.value()));
}

TEST_P(RandomGraphTest, DotRoundTrip)
{
    Rng rng(GetParam());
    ExprHigh g = randomGraph(rng);
    Result<ExprHigh> reparsed = parseDot(printDot(g));
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    EXPECT_TRUE(g.sameAs(reparsed.value()));
}

TEST_P(RandomGraphTest, RandomOrderLoweringRoundTrips)
{
    Rng rng(GetParam());
    ExprHigh g = randomGraph(rng);
    // Shuffle the node order; lowering must not care.
    std::vector<std::string> order;
    for (const NodeDecl& n : g.nodes())
        order.push_back(n.name);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    Result<ExprLow> low = lowerToExprLow(g, order);
    ASSERT_TRUE(low.ok()) << low.error().message;
    Result<ExprHigh> lifted = liftToExprHigh(low.value());
    ASSERT_TRUE(lifted.ok()) << lifted.error().message;
    EXPECT_TRUE(g.sameAs(lifted.value()));
}

/**
 * Theorem 4.6 as a property: applying a verified rewrite wherever it
 * matches yields a graph whose random traces the original admits.
 */
TEST_P(RandomGraphTest, VerifiedRewriteApplicationRefines)
{
    Rng rng(GetParam());
    ExprHigh g = randomGraph(rng);

    RewriteDef def = catalog::bufferDeepen();
    std::optional<RewriteMatch> match = matchRewriteOnce(g, def);
    if (!match)
        return;  // no buffer this time; the property holds vacuously
    Result<ExprHigh> rewritten = applyRewrite(g, def, *match);
    ASSERT_TRUE(rewritten.ok()) << rewritten.error().message;

    Environment env(3);
    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(rewritten.value()).value(),
                              env)
            .take();
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    std::vector<Token> pool = {Token(Value(1)), Token(Value(2))};
    for (int i = 0; i < 3; ++i) {
        Rng trace_rng(GetParam() * 31 + static_cast<std::uint64_t>(i));
        IoTrace trace = randomTrace(impl, pool, trace_rng,
                                    {.max_steps = 120,
                                     .input_bias = 0.5,
                                     .max_inputs = 3});
        Result<bool> admitted = admitsTrace(spec, trace);
        ASSERT_TRUE(admitted.ok()) << admitted.error().message;
        EXPECT_TRUE(admitted.value());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Reflexivity of refinement for each single-component module.
// ---------------------------------------------------------------------

struct ComponentCase
{
    const char* type;
    AttrMap attrs;
    std::vector<Token> tokens;
};

class ComponentReflexivity
    : public ::testing::TestWithParam<ComponentCase>
{
};

TEST_P(ComponentReflexivity, SelfRefines)
{
    const ComponentCase& c = GetParam();
    ExprHigh g;
    g.addNode("n", c.type, c.attrs);
    Result<Signature> sig = signatureOf(c.type, c.attrs);
    for (std::size_t i = 0; i < sig.value().inputs.size(); ++i)
        g.bindInput(i, PortRef{"n", sig.value().inputs[i]});
    for (std::size_t i = 0; i < sig.value().outputs.size(); ++i)
        g.bindOutput(i, PortRef{"n", sig.value().outputs[i]});

    Environment env(3);
    auto report = checkGraphRefinement(g, g, env, c.tokens,
                                       {.max_states = 100000,
                                        .input_budget = 2});
    ASSERT_TRUE(report.ok()) << c.type << ": "
                             << report.error().message;
    EXPECT_TRUE(report.value().refines)
        << c.type << ": " << report.value().counterexample;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ComponentReflexivity,
    ::testing::Values(
        ComponentCase{"buffer", {}, {Token(Value(1))}},
        ComponentCase{"fork", {{"out", "2"}}, {Token(Value(1))}},
        ComponentCase{"fork", {{"out", "3"}}, {Token(Value(1))}},
        ComponentCase{"join", {{"in", "2"}}, {Token(Value(1))}},
        ComponentCase{
            "split", {},
            {Token(Value::tuple(Value(1), Value(2)))}},
        ComponentCase{"branch", {},
                      {Token(Value(true)), Token(Value(1))}},
        ComponentCase{"mux", {}, {Token(Value(false)), Token(Value(1))}},
        ComponentCase{"merge", {}, {Token(Value(1)), Token(Value(2))}},
        ComponentCase{"init", {{"value", "false"}},
                      {Token(Value(true))}},
        ComponentCase{"sink", {}, {Token(Value(1))}},
        ComponentCase{"constant", {{"value", "5"}}, {Token(Value())}},
        ComponentCase{"operator", {{"op", "add"}}, {Token(Value(2))}},
        ComponentCase{"operator", {{"op", "eq"}}, {Token(Value(2))}},
        ComponentCase{"tagger", {{"tags", "2"}},
                      {Token(Value(1)), Token(Value(2), 0)}},
        ComponentCase{"load", {{"memory", "m"}}, {Token(Value(1))}},
        ComponentCase{"store", {{"memory", "m"}}, {Token(Value(1))}}),
    [](const auto& info) {
        std::string name = info.param.type;
        for (const auto& [k, v] : info.param.attrs)
            name += "_" + v;
        for (char& ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name + "_" + std::to_string(info.index);
    });

// ---------------------------------------------------------------------
// E-graph extraction preserves term semantics and never grows terms.
// ---------------------------------------------------------------------

/** A random pair-algebra term over x, type-correct by construction:
 * projections only apply to terms known to be pairs. */
eg::TermExpr
randomTerm(Rng& rng, int depth, bool must_be_pair)
{
    using eg::TermExpr;
    if (depth == 0 || (!must_be_pair && rng.chance(0.3)))
        return must_be_pair
                   ? TermExpr::node("pair",
                                    {TermExpr::leaf("x"),
                                     TermExpr::leaf("x")})
                   : TermExpr::leaf("x");
    switch (rng.below(must_be_pair ? 1 : 3)) {
      case 0:
        return TermExpr::node("pair",
                              {randomTerm(rng, depth - 1, false),
                               randomTerm(rng, depth - 1, false)});
      case 1:
        return TermExpr::node("fst",
                              {randomTerm(rng, depth - 1, true)});
      default:
        return TermExpr::node("snd",
                              {randomTerm(rng, depth - 1, true)});
    }
}

class EGraphProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EGraphProperty, ExtractionPreservesSemanticsAndSize)
{
    Rng rng(GetParam());
    eg::TermExpr term = randomTerm(rng, 4, false);

    eg::EGraph graph;
    eg::ClassId cls = graph.addTerm(term);
    graph.saturate(eg::pairAlgebraRules());
    Result<eg::TermExpr> best = graph.extract(cls);
    ASSERT_TRUE(best.ok()) << best.error().message;
    EXPECT_LE(best.value().size(), term.size());

    // Semantics: both terms compute the same value on a sample input.
    auto registry = std::make_shared<FnRegistry>();
    Result<PureFn> f_before = compileTerm(term, registry);
    Result<PureFn> f_after = compileTerm(best.value(), registry);
    ASSERT_TRUE(f_before.ok());
    ASSERT_TRUE(f_after.ok());
    Value x(std::int64_t{7});
    EXPECT_EQ(f_before.value()(x), f_after.value()(x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---------------------------------------------------------------------
// The Tagger restores program order under adversarial completions.
// ---------------------------------------------------------------------

class TaggerProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TaggerProperty, CommitsInProgramOrder)
{
    Rng rng(GetParam());
    int num_tags = 1 + static_cast<int>(rng.below(4));
    ComponentPtr tagger = makeTagger(num_tags, kUnbounded);
    CompState state = tagger->initialState();

    std::vector<std::int64_t> entered;
    std::vector<std::int64_t> committed;
    std::vector<Token> in_flight;
    std::int64_t next_value = 100;

    for (int step = 0; step < 200; ++step) {
        switch (rng.below(4)) {
          case 0: {  // feed a fresh token
            auto s = tagger->acceptInput(state, 0,
                                         Token(Value(next_value)));
            if (!s.empty()) {
                state = s[0];
                entered.push_back(next_value++);
            }
            break;
          }
          case 1: {  // allocate + pull into the "loop"
            auto internal = tagger->internalSteps(state);
            if (!internal.empty()) {
                state = internal[0];
                auto out = tagger->emitOutput(state, 0);
                if (!out.empty()) {
                    in_flight.push_back(out[0].first);
                    state = out[0].second;
                }
            }
            break;
          }
          case 2: {  // return a random in-flight token (adversarial)
            if (!in_flight.empty()) {
                std::size_t pick = rng.below(in_flight.size());
                auto s = tagger->acceptInput(state, 1,
                                             in_flight[pick]);
                if (!s.empty()) {
                    state = s[0];
                    in_flight.erase(
                        in_flight.begin() +
                        static_cast<std::ptrdiff_t>(pick));
                }
            }
            break;
          }
          default: {  // commit
            auto out = tagger->emitOutput(state, 1);
            if (!out.empty()) {
                committed.push_back(out[0].first.value.asInt());
                EXPECT_FALSE(out[0].first.tag.has_value());
                state = out[0].second;
            }
            break;
          }
        }
    }
    // Whatever was committed is a prefix of the entry order.
    ASSERT_LE(committed.size(), entered.size());
    for (std::size_t i = 0; i < committed.size(); ++i)
        EXPECT_EQ(committed[i], entered[i]) << "position " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaggerProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Denotational executor and cycle simulator agree functionally.
// ---------------------------------------------------------------------

class ExecutorSimAgreement
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ExecutorSimAgreement, GcdResultsMatch)
{
    Rng rng(GetParam());
    std::vector<std::pair<int, int>> pairs;
    for (int i = 0; i < 5; ++i)
        pairs.push_back({static_cast<int>(rng.range(1, 300)),
                         static_cast<int>(rng.range(1, 300))});

    ExprHigh g = circuits::buildGcdInOrder();

    // Denotational executor.
    Environment env;
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    Executor exec(mod);
    std::vector<std::int64_t> denotational;
    for (auto [a, b] : pairs) {
        EXPECT_TRUE(exec.feedIo(0, Value(a)));
        EXPECT_TRUE(exec.feedIo(1, Value(b)));
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        auto out = exec.pullIo(0);
        ASSERT_TRUE(out.has_value());
        denotational.push_back(out->value.asInt());
    }

    // Cycle simulator.
    sim::Simulator simulator =
        sim::Simulator::build(g, env.functionsPtr()).take();
    std::vector<Token> as, bs;
    for (auto [a, b] : pairs) {
        as.emplace_back(Value(a));
        bs.emplace_back(Value(b));
    }
    auto result = simulator.run({as, bs}, pairs.size());
    ASSERT_TRUE(result.ok()) << result.error().message;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(result.value().outputs[0][i].value.asInt(),
                  denotational[i]);
        EXPECT_EQ(denotational[i],
                  std::gcd(pairs[i].first, pairs[i].second));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorSimAgreement,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace graphiti
