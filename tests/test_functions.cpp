/**
 * @file
 * Parameterized sweep over the operator evaluation catalog, plus the
 * function registry and term compilation edge cases.
 */

#include <gtest/gtest.h>

#include "rewrite/pure_gen.hpp"
#include "semantics/functions.hpp"

namespace graphiti {
namespace {

struct OpCase
{
    const char* op;
    std::vector<Value> args;
    Value expected;
};

class OperatorEval : public ::testing::TestWithParam<OpCase>
{
};

TEST_P(OperatorEval, Computes)
{
    const OpCase& c = GetParam();
    Result<Value> result = evalOperator(c.op, c.args);
    ASSERT_TRUE(result.ok()) << c.op << ": " << result.error().message;
    if (c.expected.isDouble())
        EXPECT_DOUBLE_EQ(result.value().asDouble(),
                         c.expected.asDouble());
    else
        EXPECT_EQ(result.value(), c.expected) << c.op;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, OperatorEval,
    ::testing::Values(
        OpCase{"add", {Value(2), Value(3)}, Value(5)},
        OpCase{"sub", {Value(2), Value(3)}, Value(-1)},
        OpCase{"mul", {Value(4), Value(3)}, Value(12)},
        OpCase{"div", {Value(7), Value(2)}, Value(3)},
        OpCase{"mod", {Value(7), Value(2)}, Value(1)},
        OpCase{"shl", {Value(1), Value(4)}, Value(16)},
        OpCase{"shr", {Value(16), Value(2)}, Value(4)},
        OpCase{"and", {Value(6), Value(3)}, Value(2)},
        OpCase{"or", {Value(6), Value(3)}, Value(7)},
        OpCase{"xor", {Value(6), Value(3)}, Value(5)},
        OpCase{"lt", {Value(1), Value(2)}, Value(true)},
        OpCase{"le", {Value(2), Value(2)}, Value(true)},
        OpCase{"gt", {Value(1), Value(2)}, Value(false)},
        OpCase{"ge", {Value(2), Value(2)}, Value(true)},
        OpCase{"eq", {Value(3), Value(3)}, Value(true)},
        OpCase{"ne", {Value(3), Value(3)}, Value(false)},
        OpCase{"eq",
               {Value::tuple(Value(1), Value(2)),
                Value::tuple(Value(1), Value(2))},
               Value(true)},
        OpCase{"not", {Value(false)}, Value(true)},
        OpCase{"neg", {Value(5)}, Value(-5)},
        OpCase{"abs", {Value(-5)}, Value(5)},
        OpCase{"id", {Value(9)}, Value(9)},
        OpCase{"select", {Value(true), Value(1), Value(2)}, Value(1)},
        OpCase{"select", {Value(false), Value(1), Value(2)}, Value(2)},
        OpCase{"fadd", {Value(1.5), Value(2.25)}, Value(3.75)},
        OpCase{"fsub", {Value(1.5), Value(2.25)}, Value(-0.75)},
        OpCase{"fmul", {Value(1.5), Value(2.0)}, Value(3.0)},
        OpCase{"fdiv", {Value(3.0), Value(2.0)}, Value(1.5)},
        OpCase{"flt", {Value(1.0), Value(2.0)}, Value(true)},
        OpCase{"fge", {Value(1.0), Value(2.0)}, Value(false)},
        OpCase{"fneg", {Value(2.5)}, Value(-2.5)},
        OpCase{"fadd", {Value(1), Value(2.5)}, Value(3.5)}),
    [](const auto& info) {
        return std::string(info.param.op) + "_" +
               std::to_string(info.index);
    });

TEST(OperatorEval, DivisionByZeroFails)
{
    EXPECT_FALSE(evalOperator("div", {Value(1), Value(0)}).ok());
    EXPECT_FALSE(evalOperator("mod", {Value(1), Value(0)}).ok());
}

TEST(OperatorEval, UnknownOpFails)
{
    EXPECT_FALSE(evalOperator("frobnicate", {Value(1), Value(2)}).ok());
}

TEST(FnRegistry, AddFindReplace)
{
    FnRegistry reg;
    EXPECT_FALSE(reg.has("f"));
    reg.add("f", [](const Value& v) { return Value(v.asInt() + 1); });
    ASSERT_TRUE(reg.has("f"));
    EXPECT_EQ((*reg.find("f"))(Value(1)).asInt(), 2);
    reg.add("f", [](const Value& v) { return Value(v.asInt() * 2); });
    EXPECT_EQ((*reg.find("f"))(Value(3)).asInt(), 6);
}

TEST(FnRegistry, FreshNameAvoidsCollisions)
{
    FnRegistry reg;
    reg.add("g0", [](const Value& v) { return v; });
    EXPECT_EQ(reg.freshName("g"), "g1");
}

TEST(CompileTerm, ConstAndOps)
{
    auto reg = std::make_shared<FnRegistry>();
    eg::TermExpr term = eg::TermExpr::node(
        "op:add",
        {eg::TermExpr::leaf("x"), eg::TermExpr::leaf("const:5")});
    Result<PureFn> fn = compileTerm(term, reg);
    ASSERT_TRUE(fn.ok());
    EXPECT_EQ(fn.value()(Value(2)).asInt(), 7);
}

TEST(CompileTerm, RegistryFunctionsAreLookedUpLazily)
{
    auto reg = std::make_shared<FnRegistry>();
    reg.get()->add("f", [](const Value& v) { return v; });
    eg::TermExpr term =
        eg::TermExpr::node("fn:f", {eg::TermExpr::leaf("x")});
    Result<PureFn> fn = compileTerm(term, reg);
    ASSERT_TRUE(fn.ok());
    // Replacing the registered function changes the compiled one.
    reg.get()->add("f", [](const Value& v) {
        return Value(v.asInt() * 10);
    });
    EXPECT_EQ(fn.value()(Value(4)).asInt(), 40);
}

TEST(CompileTerm, UnknownPiecesFail)
{
    auto reg = std::make_shared<FnRegistry>();
    EXPECT_FALSE(
        compileTerm(eg::TermExpr::leaf("fn:ghost"), reg).ok());
    EXPECT_FALSE(
        compileTerm(eg::TermExpr::leaf("wat:1"), reg).ok());
    EXPECT_FALSE(
        compileTerm(eg::TermExpr::leaf("const:zebra"), reg).ok());
}

TEST(CompileTerm, DivergentBodyThrowsAtRuntime)
{
    auto reg = std::make_shared<FnRegistry>();
    eg::TermExpr term = eg::TermExpr::node(
        "op:mod",
        {eg::TermExpr::leaf("x"), eg::TermExpr::leaf("const:0")});
    Result<PureFn> fn = compileTerm(term, reg);
    ASSERT_TRUE(fn.ok());
    EXPECT_THROW(fn.value()(Value(3)), std::runtime_error);
}

}  // namespace
}  // namespace graphiti
