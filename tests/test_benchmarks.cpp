/**
 * @file
 * Integration tests over the evaluation benchmarks (section 6): every
 * DF-IO circuit computes its golden results in the cycle simulator;
 * the pipeline transforms every loop except bicg's (refused for its
 * in-body store); transformed circuits compute identical results in
 * fewer cycles (except gsum-single, whose serial outer loop cannot
 * benefit).
 */

#include <gtest/gtest.h>

#include "bench_circuits/benchmarks.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace graphiti::circuits {
namespace {

struct RunOutcome
{
    std::size_t cycles = 0;
    std::vector<double> results;
    std::map<std::string, std::vector<double>> memories;
};

RunOutcome
simulate(const ExprHigh& g, const BenchmarkSpec& spec,
         std::shared_ptr<FnRegistry> registry)
{
    sim::Simulator simulator = sim::Simulator::build(g, registry).take();
    for (const auto& [name, data] : spec.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> r = simulator.run(
        spec.inputs, spec.expected_outputs, spec.serial_io);
    EXPECT_TRUE(r.ok()) << spec.name << ": " << r.error().message;
    RunOutcome out;
    if (!r.ok())
        return out;
    out.cycles = r.value().cycles;
    for (const Token& t : r.value().outputs[0])
        out.results.push_back(t.value.toDouble());
    out.memories = r.value().memories;
    return out;
}

void
expectGolden(const BenchmarkSpec& spec, const RunOutcome& run)
{
    ASSERT_EQ(run.results.size(), spec.golden.size()) << spec.name;
    for (std::size_t i = 0; i < spec.golden.size(); ++i)
        EXPECT_NEAR(run.results[i], spec.golden[i], 1e-9)
            << spec.name << " result " << i;
    if (!spec.golden_memory.empty()) {
        const auto& mem = run.memories.at(spec.golden_memory);
        ASSERT_EQ(mem.size(), spec.golden_memory_values.size());
        for (std::size_t i = 0; i < mem.size(); ++i)
            EXPECT_NEAR(mem[i], spec.golden_memory_values[i], 1e-9)
                << spec.name << " memory " << i;
    }
}

class BenchmarkTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkTest, DfIoComputesGolden)
{
    BenchmarkSpec spec = buildBenchmark(GetParam()).take();
    auto registry = std::make_shared<FnRegistry>();
    RunOutcome run = simulate(spec.df_io, spec, registry);
    expectGolden(spec, run);
}

TEST_P(BenchmarkTest, PipelineBehavesPerSpec)
{
    BenchmarkSpec spec = buildBenchmark(GetParam()).take();
    Environment env;
    Result<PipelineResult> transformed = runOooPipeline(
        spec.df_io, env, {.num_tags = spec.num_tags, .reexpand = true});
    ASSERT_TRUE(transformed.ok()) << transformed.error().message;
    ASSERT_EQ(transformed.value().loops.size(), 1u);

    if (spec.name == "bicg") {
        // The store in the loop body makes the transform unsound; the
        // pipeline must refuse (section 6.2) and leave DF-IO intact.
        EXPECT_FALSE(transformed.value().loops[0].transformed);
        EXPECT_NE(transformed.value().loops[0].refusal.find("store"),
                  std::string::npos)
            << transformed.value().loops[0].refusal;
        EXPECT_TRUE(transformed.value().graph.sameAs(spec.df_io));
        return;
    }

    EXPECT_TRUE(transformed.value().loops[0].transformed)
        << transformed.value().loops[0].refusal;

    // Functional equivalence on the real workload, plus the speedup
    // (except gsum-single, where serial I/O blocks overlap).
    auto registry = env.functionsPtr();
    RunOutcome io = simulate(spec.df_io, spec, registry);
    RunOutcome ooo = simulate(transformed.value().graph, spec, registry);
    expectGolden(spec, ooo);
    if (spec.serial_io) {
        EXPECT_GE(ooo.cycles, io.cycles) << spec.name;
    } else {
        // Substantial overlap: more than 1.5x fewer cycles (the exact
        // factor depends on the benchmark's tag count, as in table 2).
        EXPECT_LT(ooo.cycles * 3, io.cycles * 2)
            << spec.name << ": ooo " << ooo.cycles << " vs io "
            << io.cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkTest,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (char& c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(Benchmarks, BicgForcedVariantTransforms)
{
    // The store-suppressed variant (what the unverified DF-OoO flow
    // effectively transformed) goes through and speeds up.
    BenchmarkSpec spec = buildBenchmark("bicg").take();
    ASSERT_TRUE(spec.df_ooo_input.has_value());
    Environment env;
    Result<PipelineResult> forced = runOooPipeline(
        *spec.df_ooo_input, env,
        {.num_tags = spec.num_tags, .reexpand = true});
    ASSERT_TRUE(forced.ok()) << forced.error().message;
    EXPECT_TRUE(forced.value().loops[0].transformed)
        << forced.value().loops[0].refusal;
}

TEST(Benchmarks, StaticKernelsSchedule)
{
    for (const std::string& name : benchmarkNames()) {
        BenchmarkSpec spec = buildBenchmark(name).take();
        static_hls::StaticReport report =
            static_hls::scheduleAndEvaluate(spec.static_kernel);
        EXPECT_GT(report.cycles, 0u) << name;
        EXPECT_GT(report.area.lut, 0) << name;
        EXPECT_GT(report.clock_period_ns, 3.0) << name;
        // Static schedules serialize the long-latency chain: far more
        // cycles per iteration than the dataflow circuit's II.
        EXPECT_GT(report.iteration_states.at(0), 15u) << name;
    }
}

TEST(Benchmarks, UnknownNameFails)
{
    EXPECT_FALSE(buildBenchmark("nope").ok());
}

TEST(Benchmarks, AllValidate)
{
    for (const std::string& name : benchmarkNames()) {
        BenchmarkSpec spec = buildBenchmark(name).take();
        EXPECT_TRUE(spec.df_io.validate().ok()) << name;
        if (spec.df_ooo_input) {
            EXPECT_TRUE(spec.df_ooo_input->validate().ok()) << name;
        }
    }
}

}  // namespace
}  // namespace graphiti::circuits
