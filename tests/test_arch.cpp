/**
 * @file
 * Tests for the FPGA area/timing model: per-component costs, tagged
 * region detection and widening, pure-node absorbed inventories, and
 * the clock-period model's qualitative ordering (tagged circuits are
 * slower and bigger; Vericert-style circuits smaller — checked in
 * test_static_hls).
 */

#include <gtest/gtest.h>

#include "arch/area_timing.hpp"
#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "rewrite/ooo_pipeline.hpp"

namespace graphiti::arch {
namespace {

TEST(Area, OperatorCostsOrdered)
{
    NodeDecl add{"a", "operator", {{"op", "add"}}};
    NodeDecl fadd{"f", "operator", {{"op", "fadd"}}};
    NodeDecl div{"d", "operator", {{"op", "div"}}};
    EXPECT_LT(costOf(add, false).area.lut, costOf(fadd, false).area.lut);
    EXPECT_LT(costOf(fadd, false).area.lut, costOf(div, false).area.lut);
    EXPECT_GT(costOf(fadd, false).area.dsp, 0);
    EXPECT_EQ(costOf(add, false).area.dsp, 0);
}

TEST(Area, TaggingWidensComponents)
{
    NodeDecl mux{"m", "mux", {}};
    ComponentCost plain = costOf(mux, false);
    ComponentCost tagged = costOf(mux, true);
    EXPECT_GT(tagged.area.lut, plain.area.lut);
    EXPECT_GT(tagged.area.ff, plain.area.ff);
    EXPECT_GT(tagged.delay_ns, plain.delay_ns);
}

TEST(Area, TaggerScalesWithTagCount)
{
    NodeDecl small{"t", "tagger", {{"tags", "4"}}};
    NodeDecl large{"t", "tagger", {{"tags", "50"}}};
    EXPECT_GT(costOf(large, false).area.ff,
              costOf(small, false).area.ff * 5);
}

TEST(Area, PureCostsItsAbsorbedInventory)
{
    NodeDecl pure{"p",
                  "pure",
                  {{"fn", "f"},
                   {"absorbed", "operator:fadd,operator:fmul,fork"}}};
    ComponentCost cost = costOf(pure, false);
    NodeDecl fadd{"f", "operator", {{"op", "fadd"}}};
    NodeDecl fmul{"m", "operator", {{"op", "fmul"}}};
    EXPECT_GE(cost.area.lut, costOf(fadd, false).area.lut +
                                 costOf(fmul, false).area.lut);
    EXPECT_EQ(cost.area.dsp, 5);
}

TEST(Area, ForkScalesWithArity)
{
    NodeDecl f2{"f", "fork", {{"out", "2"}}};
    NodeDecl f8{"f", "fork", {{"out", "8"}}};
    EXPECT_GT(costOf(f8, false).area.lut, costOf(f2, false).area.lut);
}

TEST(TaggedRegion, CoversLoopBody)
{
    Environment env;
    ExprHigh g = circuits::buildGcdOutOfOrder(env.functions(), 4);
    std::set<std::string> region = taggedRegionOf(g);
    EXPECT_TRUE(region.count("merge") > 0);
    EXPECT_TRUE(region.count("body") > 0);
    EXPECT_TRUE(region.count("split") > 0);
    EXPECT_TRUE(region.count("branch") > 0);
    EXPECT_EQ(region.count("tagger"), 0u);
}

TEST(TaggedRegion, EmptyWithoutTagger)
{
    EXPECT_TRUE(taggedRegionOf(circuits::buildGcdInOrder()).empty());
}

TEST(ClockPeriod, TaggedCircuitSlower)
{
    Environment env;
    ExprHigh in_order = circuits::buildGcdInOrder();
    Result<PipelineResult> transformed = runOooPipeline(
        in_order, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(transformed.ok());
    EXPECT_GT(clockPeriodOf(transformed.value().graph),
              clockPeriodOf(in_order));
}

TEST(ClockPeriod, InPlausibleRange)
{
    // Sanity: single-digit nanoseconds, like the paper's table 2.
    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec spec =
            circuits::buildBenchmark(name).take();
        double cp = clockPeriodOf(spec.df_io);
        EXPECT_GT(cp, 3.0) << name;
        EXPECT_LT(cp, 10.0) << name;
    }
}

TEST(Area, TransformedCircuitsCostMore)
{
    // Table 3's headline: tagged circuits use more LUTs and FFs.
    Environment env;
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark("matvec").take();
    Result<PipelineResult> transformed = runOooPipeline(
        spec.df_io, env, {.num_tags = spec.num_tags, .reexpand = true});
    ASSERT_TRUE(transformed.ok());
    AreaReport before = areaOf(spec.df_io);
    AreaReport after = areaOf(transformed.value().graph);
    EXPECT_GT(after.lut, before.lut);
    // matvec's 50 tags blow up the FF count (the paper reports ~6x).
    EXPECT_GT(after.ff, before.ff * 3);
    EXPECT_EQ(after.dsp, before.dsp);
}

}  // namespace
}  // namespace graphiti::arch
