/**
 * @file
 * Unit tests for the state-space explorer underneath the refinement
 * checker: budget handling, edge classification, internal closures,
 * and the executor's scheduling behavior.
 */

#include <gtest/gtest.h>

#include "refine/state_space.hpp"
#include "semantics/executor.hpp"

namespace graphiti {
namespace {

DenotedModule
bufferModule(Environment& env)
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    return DenotedModule::denote(lowerToExprLow(g).value(), env).take();
}

TEST(StateSpace, BufferSpaceIsTokenSequences)
{
    Environment env(4);
    DenotedModule mod = bufferModule(env);
    InputDomain domain = InputDomain::uniform(mod, {Token(Value(1))});
    Result<StateSpace> space =
        StateSpace::explore(mod, domain, {.max_states = 1000,
                                          .input_budget = 2});
    ASSERT_TRUE(space.ok()) << space.error().message;
    // Budget 2, one token value: states are (queue contents, budget):
    // ([],2) ([1],1) ([],1) ([1,1],0) ([1],0) ([],0) -> 6 states.
    EXPECT_EQ(space.value().numStates(), 6u);
    EXPECT_EQ(space.value().budget(space.value().initialState()), 2u);
}

TEST(StateSpace, BudgetZeroDisablesInputs)
{
    Environment env(4);
    DenotedModule mod = bufferModule(env);
    InputDomain domain = InputDomain::uniform(mod, {Token(Value(1))});
    Result<StateSpace> space =
        StateSpace::explore(mod, domain, {.max_states = 1000,
                                          .input_budget = 0});
    ASSERT_TRUE(space.ok());
    EXPECT_EQ(space.value().numStates(), 1u);
    EXPECT_TRUE(space.value()
                    .inputEdges(space.value().initialState())
                    .empty());
}

TEST(StateSpace, TwoTokensDoubleTheAlphabet)
{
    Environment env(4);
    DenotedModule mod = bufferModule(env);
    InputDomain domain = InputDomain::uniform(
        mod, {Token(Value(1)), Token(Value(2))});
    Result<StateSpace> space =
        StateSpace::explore(mod, domain, {.max_states = 1000,
                                          .input_budget = 1});
    ASSERT_TRUE(space.ok());
    EXPECT_EQ(space.value()
                  .inputEdges(space.value().initialState())
                  .size(),
              2u);
}

TEST(StateSpace, MaxStatesEnforced)
{
    Environment env(8);
    DenotedModule mod = bufferModule(env);
    InputDomain domain = InputDomain::uniform(
        mod, {Token(Value(1)), Token(Value(2)), Token(Value(3))});
    EXPECT_FALSE(StateSpace::explore(mod, domain,
                                     {.max_states = 3,
                                      .input_budget = 3})
                     .ok());
}

TEST(StateSpace, InternalClosureCoversChains)
{
    // Two buffers in sequence: feeding one token gives an internal
    // transition whose closure includes the moved-token state.
    Environment env(4);
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "b2", "in0");
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    InputDomain domain = InputDomain::uniform(mod, {Token(Value(1))});
    Result<StateSpace> space =
        StateSpace::explore(mod, domain, {.max_states = 1000,
                                          .input_budget = 1});
    ASSERT_TRUE(space.ok());
    const StateSpace& s = space.value();
    // From the post-input state, the closure has >= 2 states (token in
    // b1, token in b2).
    ASSERT_FALSE(s.inputEdges(s.initialState()).empty());
    std::uint32_t fed = s.inputEdges(s.initialState())[0].dst;
    EXPECT_GE(s.internalClosure(fed).size(), 2u);
    // Closure of the initial state is itself only.
    EXPECT_EQ(s.internalClosure(s.initialState()).size(), 1u);
}

TEST(StateSpace, DescribeStateMentionsBudget)
{
    Environment env(4);
    DenotedModule mod = bufferModule(env);
    InputDomain domain = InputDomain::uniform(mod, {Token(Value(1))});
    StateSpace space = StateSpace::explore(mod, domain,
                                           {.max_states = 100,
                                            .input_budget = 1})
                           .take();
    EXPECT_NE(space.describeState(0).find("budget"), std::string::npos);
}

TEST(Executor, FeedRefusedWhenQueueFull)
{
    Environment env(1);  // capacity one
    DenotedModule mod = bufferModule(env);
    Executor exec(mod);
    EXPECT_TRUE(exec.feedIo(0, Value(1)));
    EXPECT_FALSE(exec.feedIo(0, Value(2)));
}

TEST(Executor, PullWithoutTokenReturnsNothing)
{
    Environment env(4);
    DenotedModule mod = bufferModule(env);
    Executor exec(mod);
    EXPECT_FALSE(exec.pull(LowPortId::ioPort(0)).has_value());
    EXPECT_FALSE(exec.pullIo(0, 10).has_value());
}

TEST(Executor, RunInternalCountsSteps)
{
    Environment env(4);
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.addNode("b3", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b3", "out0"});
    g.connect("b1", "out0", "b2", "in0");
    g.connect("b2", "out0", "b3", "in0");
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    Executor exec(mod);
    ASSERT_TRUE(exec.feedIo(0, Value(7)));
    EXPECT_EQ(exec.runInternal(), 2u);  // two connection hops
    EXPECT_EQ(exec.pull(LowPortId::ioPort(0))->value.asInt(), 7);
}

TEST(Executor, UnknownPortIsRefused)
{
    Environment env(4);
    DenotedModule mod = bufferModule(env);
    Executor exec(mod);
    EXPECT_FALSE(exec.feed(LowPortId::ioPort(9), Token(Value(1))));
}

}  // namespace
}  // namespace graphiti
