/**
 * @file
 * Tests for the observability subsystem (src/obs): metrics registry
 * semantics, JSON snapshot round-trips, Perfetto trace validity, VCD
 * header correctness, and the end-to-end gcd smoke test asserting
 * that one observed compile+verify+simulate run populates counters
 * from all three instrumented layers (rewrite/egraph, refine, sim).
 */

#include <gtest/gtest.h>

#include <thread>

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "refine/refinement.hpp"
#include "sim/sim.hpp"

namespace graphiti {
namespace {

namespace json = obs::json;

std::vector<Token>
intStream(std::initializer_list<std::int64_t> values)
{
    std::vector<Token> out;
    for (std::int64_t v : values)
        out.emplace_back(Value(v));
    return out;
}

// ---------------------------------------------------------------- JSON

TEST(ObsJson, DumpAndParseRoundTrip)
{
    json::Value doc{json::Object{}};
    doc.set("name", "gcd \"quoted\" \n tab\t");
    doc.set("count", 42);
    doc.set("ratio", 1.5);
    doc.set("flag", true);
    doc.set("nothing", nullptr);
    json::Value arr{json::Array{}};
    arr.push(1);
    arr.push("two");
    arr.push(json::Value{json::Object{}});
    doc.set("items", std::move(arr));

    Result<json::Value> parsed = json::parse(doc.dump());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value(), doc);

    // Pretty-printed output parses back to the same document too.
    Result<json::Value> pretty = json::parse(doc.dump(2));
    ASSERT_TRUE(pretty.ok()) << pretty.error().message;
    EXPECT_EQ(pretty.value(), doc);
}

TEST(ObsJson, IntegersRenderWithoutFraction)
{
    EXPECT_EQ(json::Value(42).dump(), "42");
    EXPECT_EQ(json::Value(-7).dump(), "-7");
    EXPECT_EQ(json::Value(1.5).dump(), "1.5");
}

TEST(ObsJson, ParseRejectsMalformed)
{
    EXPECT_FALSE(json::parse("{\"a\": }").ok());
    EXPECT_FALSE(json::parse("[1, 2,]").ok());
    EXPECT_FALSE(json::parse("").ok());
    EXPECT_FALSE(json::parse("{} trailing").ok());
}

// ------------------------------------------------------------- metrics

TEST(ObsMetrics, CounterSemantics)
{
    obs::MetricsRegistry m;
    EXPECT_EQ(m.counter("x"), 0);
    m.add("x");
    m.add("x", 4);
    EXPECT_EQ(m.counter("x"), 5);
    m.clear();
    EXPECT_EQ(m.counter("x"), 0);
}

TEST(ObsMetrics, GaugeAndHighWaterMark)
{
    obs::MetricsRegistry m;
    EXPECT_FALSE(m.gauge("g").has_value());
    m.set("g", 3.0);
    EXPECT_DOUBLE_EQ(*m.gauge("g"), 3.0);
    m.setMax("g", 1.0);  // lower: ignored
    EXPECT_DOUBLE_EQ(*m.gauge("g"), 3.0);
    m.setMax("g", 9.0);  // higher: taken
    EXPECT_DOUBLE_EQ(*m.gauge("g"), 9.0);
}

TEST(ObsMetrics, TimerRecordsOnDestructionAndStop)
{
    obs::MetricsRegistry m;
    {
        obs::ScopedTimer t = m.timer("t");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::optional<obs::TimerStats> stats = m.timerStats("t");
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->count, 1u);
    EXPECT_GT(stats->total_seconds, 0.0);

    obs::ScopedTimer t2 = m.timer("t");
    double elapsed = t2.stop();
    EXPECT_GE(elapsed, 0.0);
    // stop() already recorded; destruction must not double-count.
    t2 = obs::ScopedTimer{};
    EXPECT_EQ(m.timerStats("t")->count, 2u);

    // A default-constructed timer (the OFF-build macro expansion) is
    // inert.
    { obs::ScopedTimer inert; }
    EXPECT_EQ(m.timerStats("t")->count, 2u);
}

TEST(ObsMetrics, SnapshotRoundTrip)
{
    obs::MetricsRegistry m;
    m.add("sim.fires", 7);
    m.set("sim.channels", 12.0);
    m.observe("compile.seconds", 0.25);

    Result<json::Value> parsed = json::parse(m.toJson().dump());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const json::Value& doc = parsed.value();
    ASSERT_NE(doc.find("counters"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("counters")->find("sim.fires")->asNumber(),
                     7.0);
    EXPECT_DOUBLE_EQ(
        doc.find("gauges")->find("sim.channels")->asNumber(), 12.0);
    const json::Value* timer =
        doc.find("timers")->find("compile.seconds");
    ASSERT_NE(timer, nullptr);
    EXPECT_DOUBLE_EQ(timer->find("count")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(timer->find("total_seconds")->asNumber(), 0.25);
}

// --------------------------------------------------------------- scope

TEST(ObsScope, InstallAndRestore)
{
    EXPECT_EQ(obs::current(), nullptr);
    obs::Scope outer;
    {
        obs::ScopedInstall a(&outer);
        EXPECT_EQ(obs::current(), &outer);
        obs::Scope inner;
        {
            obs::ScopedInstall b(&inner);
            EXPECT_EQ(obs::current(), &inner);
        }
        EXPECT_EQ(obs::current(), &outer);
    }
    EXPECT_EQ(obs::current(), nullptr);
}

#if GRAPHITI_OBS_ENABLED
TEST(ObsScope, MacrosRecordIntoCurrentScope)
{
    obs::Scope scope;
    obs::ScopedInstall install(&scope);
    GRAPHITI_OBS_COUNT("m.count", 2);
    GRAPHITI_OBS_GAUGE("m.gauge", 5);
    GRAPHITI_OBS_GAUGE_MAX("m.gauge", 3);
    EXPECT_EQ(scope.metrics().counter("m.count"), 2);
    EXPECT_DOUBLE_EQ(*scope.metrics().gauge("m.gauge"), 5.0);
}
#endif

TEST(ObsScope, MacrosAreSafeWithoutScope)
{
    // No scope installed: every macro must be a no-op, not a crash.
    GRAPHITI_OBS_COUNT("nobody", 1);
    GRAPHITI_OBS_GAUGE("nobody", 1);
    GRAPHITI_OBS_TRACK("nobody", 0, 1);
    GRAPHITI_OBS_TIMER(t, "nobody");
}

// ------------------------------------------------------------ perfetto

TEST(ObsTrace, PerfettoJsonIsValidAndTyped)
{
    obs::PerfettoTraceSink sink;
    obs::TraceRecord rec;
    rec.cycle = 10;
    rec.node = "mod0";
    rec.kind = obs::EventKind::Fire;
    rec.detail = "accept";
    sink.event(rec);
    sink.span("mod0", "stall", 3, 4);
    sink.counter("occupancy ch0", 5, 2);

    Result<json::Value> parsed = json::parse(sink.dump());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const json::Value* events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Every record has the trace_event essentials; the three payload
    // events carry ph "i" / "X" / "C", plus thread_name metadata.
    std::map<std::string, int> phases;
    for (const json::Value& ev : events->asArray()) {
        ASSERT_NE(ev.find("ph"), nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        ++phases[ev.find("ph")->asString()];
    }
    EXPECT_EQ(phases["i"], 1);
    EXPECT_EQ(phases["X"], 1);
    EXPECT_EQ(phases["C"], 1);
    EXPECT_GE(phases["M"], 1);
}

TEST(ObsTrace, TraceRecordSchemaIsStable)
{
    // The shared schema satellite: sim::TraceEvent IS obs::TraceRecord.
    static_assert(
        std::is_same_v<sim::TraceEvent, obs::TraceRecord>,
        "sim trace events and obs trace records must share one schema");
    obs::TraceRecord rec{42, "node_a", 3, obs::EventKind::Output, "tok"};
    json::Value v = rec.toJson();
    EXPECT_DOUBLE_EQ(v.find("cycle")->asNumber(), 42.0);
    EXPECT_EQ(v.find("node")->asString(), "node_a");
    EXPECT_DOUBLE_EQ(v.find("channel")->asNumber(), 3.0);
    EXPECT_EQ(v.find("kind")->asString(), "output");
    EXPECT_EQ(v.find("detail")->asString(), "tok");
}

// ----------------------------------------------------------------- vcd

TEST(ObsVcd, HeaderAndTimescale)
{
    obs::VcdWriter vcd("gcd", "1ns");
    int a = vcd.wire("ch0_valid");
    int d = vcd.wire("ch0_data", 64);
    vcd.begin();
    vcd.sample(0, a, 1);
    vcd.sample(0, d, 21);
    vcd.sample(3, a, 0);
    // Change-only: re-sampling the same value emits nothing new.
    std::size_t before = vcd.str().size();
    vcd.sample(4, a, 0);
    EXPECT_EQ(vcd.str().size(), before);

    const std::string& text = vcd.str();
    EXPECT_NE(text.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(text.find("$scope module gcd $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 1"), std::string::npos);
    EXPECT_NE(text.find("$var wire 64"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#3"), std::string::npos);
    // 21 = 0b10101.
    EXPECT_NE(text.find("b10101"), std::string::npos);
}

// ------------------------------------------------- end-to-end (gcd)

#if GRAPHITI_OBS_ENABLED
TEST(ObsGcd, AllThreeLayersRecordOnOneRun)
{
    auto scope = std::make_shared<obs::Scope>();
    auto perfetto = std::make_shared<obs::PerfettoTraceSink>();
    auto vcd = std::make_shared<obs::VcdWriter>("gcd");
    scope->attachTrace(perfetto);
    scope->attachVcd(vcd);

    // Layer 1+2 (rewrite + egraph): the verified pipeline on gcd.
    Compiler compiler;
    CompileOptions options;
    options.obs = scope;
    Result<CompileReport> compiled =
        compiler.compileGraph(circuits::buildGcdInOrder(), options);
    ASSERT_TRUE(compiled.ok()) << compiled.error().message;

    // Layer 3 (refine): one bounded refinement check, transformed
    // against itself (cheap, and exercises explore + the game).
    obs::ScopedInstall install(scope.get());
    Result<RefinementReport> refined = checkGraphRefinement(
        circuits::buildGcdInOrder(), circuits::buildGcdInOrder(),
        Environment(3, compiler.environment().functionsPtr()),
        {Token(Value(6)), Token(Value(4))},
        {.max_states = 50000, .input_budget = 1});
    ASSERT_TRUE(refined.ok()) << refined.error().message;
    EXPECT_TRUE(refined.value().refines);

    // Layer 1 (sim): run the transformed circuit.
    sim::SimConfig config;
    config.obs = scope;
    sim::Simulator simulator =
        sim::Simulator::build(compiled.value().graph,
                              compiler.environment().functionsPtr(),
                              config)
            .take();
    Result<sim::SimResult> ran = simulator.run(
        {intStream({1071, 987}), intStream({462, 610})}, 2);
    ASSERT_TRUE(ran.ok()) << ran.error().message;
    EXPECT_EQ(ran.value().outputs[0][0].value.asInt(), 21);

    // Nonzero counters from every layer.
    const obs::MetricsRegistry& m = scope->metrics();
    EXPECT_GT(m.counter("rewrite.applied"), 0);
    EXPECT_GT(m.counter("rewrite.match_attempts"), 0);
    EXPECT_GT(m.counter("egraph.saturations"), 0);
    EXPECT_GT(m.counter("egraph.iterations"), 0);
    EXPECT_GT(m.counter("refine.checks"), 0);
    EXPECT_GT(m.counter("refine.states"), 0);
    EXPECT_GT(m.counter("refine.pairs"), 0);
    EXPECT_GT(m.counter("sim.runs"), 0);
    EXPECT_GT(m.counter("sim.fires"), 0);
    EXPECT_GT(m.counter("sim.cycles"), 0);
    ASSERT_TRUE(m.timerStats("compile.seconds").has_value());
    ASSERT_TRUE(m.timerStats("refine.check_seconds").has_value());

    // The snapshot, the Perfetto trace and the VCD all round-trip.
    Result<json::Value> metrics_doc = json::parse(m.toJson().dump());
    ASSERT_TRUE(metrics_doc.ok()) << metrics_doc.error().message;
    Result<json::Value> trace_doc = json::parse(perfetto->dump());
    ASSERT_TRUE(trace_doc.ok()) << trace_doc.error().message;
    EXPECT_GT(trace_doc.value().find("traceEvents")->asArray().size(),
              10u);
    EXPECT_GT(vcd->numSignals(), 0u);
    EXPECT_NE(vcd->str().find("$enddefinitions"), std::string::npos);
}

TEST(ObsGcd, GoldenTraceSmoke)
{
    // The figure-2d workload through the in-order gcd circuit: the
    // observed run must (a) agree with the unobserved run cycle for
    // cycle, and (b) emit a Fire event for every simulator move.
    ExprHigh g = circuits::buildGcdInOrder();
    auto registry = std::make_shared<FnRegistry>();
    auto inputs_a = intStream({1071});
    auto inputs_b = intStream({462});

    sim::Simulator plain =
        sim::Simulator::build(g, registry).take();
    Result<sim::SimResult> base = plain.run({inputs_a, inputs_b}, 1);
    ASSERT_TRUE(base.ok()) << base.error().message;

    auto scope = std::make_shared<obs::Scope>();
    auto perfetto = std::make_shared<obs::PerfettoTraceSink>();
    scope->attachTrace(perfetto);
    sim::SimConfig config;
    config.obs = scope;
    sim::Simulator observed =
        sim::Simulator::build(g, registry, config).take();
    Result<sim::SimResult> traced =
        observed.run({inputs_a, inputs_b}, 1);
    ASSERT_TRUE(traced.ok()) << traced.error().message;

    EXPECT_EQ(traced.value().cycles, base.value().cycles);
    EXPECT_EQ(traced.value().outputs[0][0].value.asInt(), 21);
    EXPECT_GT(scope->metrics().counter("sim.fires"), 50);
    EXPECT_GT(perfetto->numEvents(), 50u);
}

TEST(ObsGcd, StressMetricsSurface)
{
    // Satellite: the stress harness reports plans/sec and worst-case
    // cycle inflation, and mirrors them into the ambient registry.
    obs::Scope scope;
    obs::ScopedInstall install(&scope);

    ExprHigh g = circuits::buildGcdInOrder();
    faults::StressOptions options;
    options.random_plans = 2;
    options.max_starve_plans = 2;
    faults::StressHarness harness(options);
    faults::Workload workload;
    workload.inputs = {intStream({48, 27}), intStream({36, 18})};
    workload.expected_outputs = 2;
    Result<faults::StressReport> report =
        harness.run(g, std::make_shared<FnRegistry>(), workload);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().invariant_holds);
    EXPECT_GT(report.value().seconds, 0.0);
    EXPECT_GE(report.value().worst_inflation, 1.0);
    EXPECT_GT(report.value().plansPerSecond(), 0.0);

    EXPECT_EQ(scope.metrics().counter("stress.runs"), 1);
    EXPECT_EQ(
        static_cast<std::size_t>(scope.metrics().counter("stress.plans")),
        report.value().plansRun());
    EXPECT_GE(*scope.metrics().gauge("stress.worst_inflation"), 1.0);
}

TEST(ObsGcd, OverheadUnderTwoTimes)
{
    // The CI gate: an instrumented gcd simulation (metrics only, no
    // sinks) must stay under 2x the fault-free uninstrumented run.
    // Median of 5 to keep scheduler noise out of the verdict.
    ExprHigh g = circuits::buildGcdInOrder();
    auto registry = std::make_shared<FnRegistry>();
    auto inputs_a = intStream({1071, 987, 864});
    auto inputs_b = intStream({462, 610, 528});

    auto median_run = [&](const sim::SimConfig& config) {
        std::vector<double> times;
        for (int i = 0; i < 5; ++i) {
            sim::Simulator simulator =
                sim::Simulator::build(g, registry, config).take();
            auto start = std::chrono::steady_clock::now();
            Result<sim::SimResult> r =
                simulator.run({inputs_a, inputs_b}, 3);
            times.push_back(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count());
            EXPECT_TRUE(r.ok());
        }
        std::sort(times.begin(), times.end());
        return times[times.size() / 2];
    };

    double plain = median_run(sim::SimConfig{});
    sim::SimConfig observed_config;
    observed_config.obs = std::make_shared<obs::Scope>();
    double observed = median_run(observed_config);
    EXPECT_LT(observed, plain * 2.0)
        << "instrumentation overhead " << observed / plain << "x";
}
#endif  // GRAPHITI_OBS_ENABLED

}  // namespace
}  // namespace graphiti
