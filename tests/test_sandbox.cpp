/**
 * @file
 * Tests of the process-isolation tier (label: served).
 *
 * The contracts under test (docs/service.md, "Process isolation"):
 *   - exit classification: every way a child can die — clean exit,
 *     nonzero exit, fatal signal, resource-jail death, parent-sent
 *     kill — reads as the right ExitClass, driven by REAL forked
 *     children, not synthetic statuses;
 *   - crash containment: a worker killed by SIGSEGV/SIGABRT/exit(7)
 *     mid-job yields a structured error with a post-mortem artifact
 *     for that job only, never a daemon death or a hang;
 *   - resource jails: an allocation-bombing child dies on the
 *     RLIMIT_AS jail and is classified "resource" (disarmed under
 *     ASan, whose shadow space cannot live inside any honest jail);
 *   - wedge detection: a heartbeat-silent child is SIGKILLed and
 *     reported wedged within the configured timeout;
 *   - crash-loop breaker: repeated worker deaths trip the breaker
 *     (shed with retry_after_ms), and a healthy job after the
 *     cooldown closes it;
 *   - byte identity: verdicts are byte-identical isolated vs.
 *     in-process one-shot on every benchmark at threads 1/2/8;
 *   - CrashPlan: deterministic per-(job, site) draws, parse/render
 *     round-trip;
 *   - disconnect reap: a vanished client kills the child promptly and
 *     frees the lane.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "core/job.hpp"
#include "dot/dot.hpp"
#include "faults/crash_plan.hpp"
#include "served/sandbox.hpp"
#include "served/scheduler.hpp"
#include "served/worker_pool.hpp"

namespace graphiti {
namespace {

using served::ExitClass;
using served::ExitStatus;
using served::KillContext;
using served::SandboxConfig;
using served::SandboxOutcome;
using served::StoreHooks;
using served::WorkerLimits;
using served::WorkerPool;
using served::WorkerPoolConfig;
using served::WorkerProcess;

double
msSince(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - from)
        .count();
}

CompileOptions
tightOptions()
{
    CompileOptions options;
    options.governed_verify = true;
    options.verify_budget.max_states = 800;
    options.verify_budget.partial_max_states = 300;
    options.verify_budget.input_budget = 1;
    options.verify_budget.trace_walks = 2;
    options.verify_budget.trace.max_steps = 60;
    options.verify_budget.trace.max_inputs = 2;
    return options;
}

JobSpec
verifySpec(const std::string& dot, int num_tags = 4)
{
    JobSpec spec;
    spec.kind = "verify";
    spec.circuit_dot = dot;
    spec.options = tightOptions();
    spec.options.num_tags = num_tags;
    return spec;
}

JobSpec
pingSpec()
{
    JobSpec spec;
    spec.kind = "ping";
    return spec;
}

std::string
gcdDot()
{
    return printDot(circuits::buildGcdInOrder());
}

/** Fork a child that runs @p body, wait for it, return the raw wait
 * status — real statuses for the classification table. */
int
waitStatusOf(void (*body)())
{
    pid_t pid = ::fork();
    if (pid == 0) {
        body();
        ::_exit(0);
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

// ---------------------------------------------------------------------
// Exit classification (pure function, real wait statuses).
// ---------------------------------------------------------------------

TEST(SandboxExitClass, ClassifiesRealChildExits)
{
    WorkerLimits limits;  // no jail armed

    ExitStatus clean = served::classifyExit(
        waitStatusOf([] { ::_exit(0); }), KillContext::None, limits);
    EXPECT_EQ(clean.cls, ExitClass::Clean);
    EXPECT_EQ(clean.code, 0);

    ExitStatus polite = served::classifyExit(
        waitStatusOf([] { ::_exit(7); }), KillContext::None, limits);
    EXPECT_EQ(polite.cls, ExitClass::Exit);
    EXPECT_EQ(polite.code, 7);

    ExitStatus crashed = served::classifyExit(
        waitStatusOf([] { ::abort(); }), KillContext::None, limits);
    EXPECT_EQ(crashed.cls, ExitClass::Crash);
    EXPECT_EQ(crashed.code, SIGABRT);
    EXPECT_NE(crashed.detail.find("SIGABRT"), std::string::npos);

    // Reset the disposition first: a sanitizer runtime intercepts
    // SIGSEGV and would turn the death into a reported exit(1).
    ExitStatus segv = served::classifyExit(
        waitStatusOf([] {
            ::signal(SIGSEGV, SIG_DFL);
            ::raise(SIGSEGV);
        }),
        KillContext::None, limits);
    EXPECT_EQ(segv.cls, ExitClass::Crash);
    EXPECT_EQ(segv.code, SIGSEGV);

    // The deterministic OOM sentinel the child's new-handler emits.
    ExitStatus oom = served::classifyExit(
        waitStatusOf([] { ::_exit(served::kOomExitCode); }),
        KillContext::None, limits);
    EXPECT_EQ(oom.cls, ExitClass::Resource);

    ExitStatus cpu = served::classifyExit(
        waitStatusOf([] { ::raise(SIGXCPU); }), KillContext::None,
        limits);
    EXPECT_EQ(cpu.cls, ExitClass::Resource);

    // A SIGKILL the parent did NOT send reads as a resource death
    // (the kernel OOM killer's signature)...
    ExitStatus killed = served::classifyExit(
        waitStatusOf([] { ::raise(SIGKILL); }), KillContext::None,
        limits);
    EXPECT_EQ(killed.cls, ExitClass::Resource);

    // ...while the identical status after a parent-sent kill is a
    // cancellation or a wedge — the context always wins.
    ExitStatus stopped = served::classifyExit(
        waitStatusOf([] { ::raise(SIGKILL); }), KillContext::Stop,
        limits);
    EXPECT_EQ(stopped.cls, ExitClass::Cancelled);
    ExitStatus wedged = served::classifyExit(
        waitStatusOf([] { ::raise(SIGKILL); }), KillContext::Wedge,
        limits);
    EXPECT_EQ(wedged.cls, ExitClass::Wedged);
}

TEST(SandboxLimits, DeriveFromVerificationBudget)
{
    guard::VerificationBudget budget;  // defaults: no deadline
    WorkerLimits limits = served::workerLimits(budget);
    // 256 MiB floor + 2 KiB per budgeted state, and no CPU jail
    // without a wall-clock deadline to anchor it.
    EXPECT_GE(limits.address_space_bytes, 256ull << 20);
    EXPECT_LE(limits.address_space_bytes, 4096ull << 20);
    EXPECT_EQ(limits.cpu_seconds, 0u);

    budget.deadline_seconds = 3.0;
    WorkerLimits deadline = served::workerLimits(budget);
    EXPECT_EQ(deadline.cpu_seconds, 2 * 3 + 5);

    budget.max_states = 100000000;  // runaway budget hits the ceiling
    WorkerLimits capped = served::workerLimits(budget);
    EXPECT_EQ(capped.address_space_bytes, 4096ull << 20);
}

// ---------------------------------------------------------------------
// CrashPlan.
// ---------------------------------------------------------------------

TEST(CrashPlan, ParseRenderRoundTripsAndDrawsDeterministically)
{
    Result<faults::CrashPlan> parsed = faults::CrashPlan::parse(
        "seed=42,segv=0.2,abort=0.1,kill=boom:segv");
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    faults::CrashPlan plan = parsed.take();
    EXPECT_TRUE(plan.armed());

    // Render → parse is identity on behavior: identical draws.
    Result<faults::CrashPlan> reparsed =
        faults::CrashPlan::parse(plan.render());
    ASSERT_TRUE(reparsed.ok()) << plan.render() << ": "
                               << reparsed.error().message;
    for (int i = 0; i < 64; ++i) {
        std::string job = "job-" + std::to_string(i);
        EXPECT_EQ(plan.action(job, "run"),
                  reparsed.value().action(job, "run"))
            << job;
    }

    // Targeted matches beat the seeded rates.
    EXPECT_EQ(plan.action("boom-17", "run"),
              faults::CrashAction::Segv);

    // The benign plan never fires.
    faults::CrashPlan benign = faults::CrashPlan::benign();
    EXPECT_FALSE(benign.armed());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(benign.action("job-" + std::to_string(i), "run"),
                  faults::CrashAction::None);

    // Malformed plans are structured errors, not surprises.
    EXPECT_FALSE(faults::CrashPlan::parse("segv=nope").ok());
    EXPECT_FALSE(faults::CrashPlan::parse("frobnicate=1").ok());
    EXPECT_FALSE(faults::CrashPlan::parse("kill=noclass").ok());
}

TEST(CrashPlan, StormSplitsRateAcrossClasses)
{
    faults::CrashPlan storm = faults::CrashPlan::storm(7, 1.0);
    EXPECT_TRUE(storm.armed());
    // rate=1.0 means every job dies somehow; the class varies.
    int fired = 0;
    for (int i = 0; i < 32; ++i)
        if (storm.action("j" + std::to_string(i), "run") !=
            faults::CrashAction::None)
            fired += 1;
    EXPECT_EQ(fired, 32);
}

// ---------------------------------------------------------------------
// WorkerProcess: crash containment, jails, wedges, cancellation.
// ---------------------------------------------------------------------

SandboxConfig
fastSandbox()
{
    SandboxConfig config;
    config.heartbeat_period_ms = 20.0;
    config.heartbeat_timeout_seconds = 2.0;
    config.poll_slice_ms = 10.0;
    return config;
}

SandboxOutcome
runOne(WorkerProcess& worker, const std::string& job_id,
       const JobSpec& spec)
{
    StopToken stop = StopToken::manual();
    obs::Scope scope;
    return worker.execute(job_id, spec, stop, &scope, StoreHooks{});
}

TEST(SandboxWorker, HealthyJobRoundTripsAndWorkerStaysWarm)
{
    WorkerProcess worker(fastSandbox());
    ASSERT_TRUE(worker.spawn().ok());

    SandboxOutcome first = runOne(worker, "warm-1", pingSpec());
    EXPECT_EQ(first.status, "ok") << first.error;
    EXPECT_FALSE(first.worker_died);
    EXPECT_TRUE(worker.alive());

    // Same child serves the next job — warm, no respawn.
    int pid = worker.pid();
    SandboxOutcome second = runOne(worker, "warm-2", pingSpec());
    EXPECT_EQ(second.status, "ok") << second.error;
    EXPECT_EQ(worker.pid(), pid);
    worker.shutdown();
}

TEST(SandboxWorker, CrashClassesBecomeStructuredErrorsWithArtifacts)
{
    struct Case
    {
        const char* plan;
        ExitClass expect;
    };
    const Case cases[] = {
        {"kill=doom:segv", ExitClass::Crash},
        {"kill=doom:abort", ExitClass::Crash},
        {"kill=doom:exit", ExitClass::Exit},
    };
    for (const Case& c : cases) {
        SandboxConfig config = fastSandbox();
        config.crash_plan = std::string("seed=1,") + c.plan;
        WorkerProcess worker(config);
        ASSERT_TRUE(worker.spawn().ok()) << c.plan;

        SandboxOutcome out = runOne(worker, "doom-1", pingSpec());
        EXPECT_EQ(out.status, "error") << c.plan;
        EXPECT_TRUE(out.worker_died) << c.plan;
        EXPECT_EQ(out.exit_class, c.expect) << c.plan;
        EXPECT_FALSE(worker.alive()) << c.plan;
        ASSERT_FALSE(out.artifact.empty()) << c.plan;

        // The artifact is a parseable post-mortem carrying the
        // classification and the jail that was in force.
        Result<obs::json::Value> artifact =
            obs::json::parse(out.artifact);
        ASSERT_TRUE(artifact.ok()) << c.plan;
        const obs::json::Value* exit = artifact.value().find("exit");
        ASSERT_NE(exit, nullptr) << c.plan;
        EXPECT_EQ(exit->find("class")->asString(),
                  served::toString(c.expect));
        EXPECT_NE(artifact.value().find("rlimits"), nullptr);

        // The dead worker is honest about it: a respawn revives it.
        ASSERT_TRUE(worker.spawn().ok());
        SandboxOutcome healthy = runOne(worker, "ok-1", pingSpec());
        EXPECT_EQ(healthy.status, "ok") << healthy.error;
        worker.shutdown();
    }
}

TEST(SandboxWorker, OomAllocationDiesOnTheJailNotTheDaemon)
{
    if (!served::sandboxAddressJailSupported())
        GTEST_SKIP() << "RLIMIT_AS jail disarmed under ASan";
    SandboxConfig config = fastSandbox();
    config.crash_plan = "seed=1,kill=hog:oom";
    // A jail small enough that the allocation bomb dies in
    // milliseconds, large enough for the child runtime itself.
    config.limits.address_space_bytes = 512ull << 20;
    WorkerProcess worker(config);
    ASSERT_TRUE(worker.spawn().ok());

    SandboxOutcome out = runOne(worker, "hog-1", pingSpec());
    EXPECT_EQ(out.status, "error");
    EXPECT_EQ(out.exit_class, ExitClass::Resource) << out.error;
    EXPECT_NE(out.error.find("resource"), std::string::npos)
        << out.error;
    ASSERT_FALSE(out.artifact.empty());
    worker.shutdown();
}

TEST(SandboxWorker, HeartbeatSilentChildIsKilledAndReportedWedged)
{
    SandboxConfig config = fastSandbox();
    config.crash_plan = "seed=1,kill=spin:busy";
    config.heartbeat_timeout_seconds = 0.5;
    WorkerProcess worker(config);
    ASSERT_TRUE(worker.spawn().ok());

    auto begun = std::chrono::steady_clock::now();
    SandboxOutcome out = runOne(worker, "spin-1", pingSpec());
    EXPECT_EQ(out.status, "error");
    EXPECT_EQ(out.exit_class, ExitClass::Wedged) << out.error;
    EXPECT_NE(out.error.find("wedged"), std::string::npos)
        << out.error;
    // Killed at the timeout, not after some multiple of it.
    EXPECT_LT(msSince(begun), 5000.0);
    EXPECT_FALSE(worker.alive());
    worker.shutdown();
}

TEST(SandboxWorker, StopRequestKillsTheChildWithinThePollSlice)
{
    SandboxConfig config = fastSandbox();
    config.crash_plan = "seed=1,kill=gone:busy";
    config.heartbeat_timeout_seconds = 30.0;  // wedge must not win
    WorkerProcess worker(config);
    ASSERT_TRUE(worker.spawn().ok());

    StopToken stop = StopToken::manual();
    obs::Scope scope;
    std::thread trigger([&stop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        stop.requestStop("client disconnected");
    });
    auto begun = std::chrono::steady_clock::now();
    SandboxOutcome out =
        worker.execute("gone-1", pingSpec(), stop, &scope, StoreHooks{});
    trigger.join();
    EXPECT_EQ(out.status, "cancelled") << out.error;
    EXPECT_EQ(out.exit_class, ExitClass::Cancelled);
    EXPECT_NE(out.error.find("disconnected"), std::string::npos);
    // 100 ms trigger + one poll slice + kill/reap slack.
    EXPECT_LT(msSince(begun), 2000.0);
    EXPECT_FALSE(worker.alive());
    worker.shutdown();
}

// ---------------------------------------------------------------------
// WorkerPool: respawn, breaker.
// ---------------------------------------------------------------------

TEST(SandboxPool, RespawnsCrashedWorkersAndCountsByClass)
{
    WorkerPoolConfig config;
    config.workers = 1;
    config.sandbox = fastSandbox();
    config.sandbox.crash_plan = "seed=1,kill=doom:segv";
    config.breaker_deaths = 100;  // never trips in this test
    WorkerPool pool(config, StoreHooks{});
    ASSERT_TRUE(pool.start().ok());

    StopToken stop = StopToken::manual();
    obs::Scope scope;
    SandboxOutcome crashed =
        pool.execute("doom-1", pingSpec(), stop, &scope);
    EXPECT_EQ(crashed.status, "error");
    EXPECT_EQ(crashed.exit_class, ExitClass::Crash);

    SandboxOutcome healthy =
        pool.execute("ok-1", pingSpec(), stop, &scope);
    EXPECT_EQ(healthy.status, "ok") << healthy.error;

    served::WorkerPoolStats stats = pool.stats();
    EXPECT_EQ(stats.live, 1u);
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_EQ(stats.respawned, 1u);
    EXPECT_EQ(stats.crashes_by_class.at("crash"), 1u);
    EXPECT_FALSE(stats.breaker_open);
    pool.stop();
}

TEST(SandboxPool, BreakerTripsOnCrashLoopAndRecovers)
{
    WorkerPoolConfig config;
    config.workers = 1;
    config.sandbox = fastSandbox();
    config.sandbox.crash_plan = "seed=1,kill=doom:segv";
    config.breaker_deaths = 2;
    config.breaker_window_seconds = 30.0;
    config.breaker_backoff = {8, 100.0, 400.0};  // fast cooldown
    WorkerPool pool(config, StoreHooks{});
    ASSERT_TRUE(pool.start().ok());

    StopToken stop = StopToken::manual();
    obs::Scope scope;
    for (int i = 0; i < 2; ++i) {
        SandboxOutcome out = pool.execute(
            "doom-" + std::to_string(i), pingSpec(), stop, &scope);
        EXPECT_EQ(out.status, "error") << out.error;
    }
    EXPECT_TRUE(pool.breakerOpen());

    // Open breaker: shed with a cooldown hint, don't fork futilely.
    SandboxOutcome shed =
        pool.execute("doom-9", pingSpec(), stop, &scope);
    EXPECT_EQ(shed.status, "rejected");
    EXPECT_GT(shed.retry_after_ms, 0.0);
    served::WorkerPoolStats stats = pool.stats();
    EXPECT_EQ(stats.breaker_trips, 1u);

    // The storm ends; after the cooldown a healthy job closes the
    // breaker again.
    pool.setCrashPlan("");
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    SandboxOutcome healthy =
        pool.execute("calm-1", pingSpec(), stop, &scope);
    EXPECT_EQ(healthy.status, "ok") << healthy.error;
    EXPECT_FALSE(pool.breakerOpen());
    pool.stop();
}

// ---------------------------------------------------------------------
// Scheduler integration.
// ---------------------------------------------------------------------

served::SchedulerConfig
isolateConfig(std::size_t workers)
{
    served::SchedulerConfig config;
    config.isolate = workers;
    config.queue_capacity = 8;
    config.pool.sandbox.heartbeat_period_ms = 20.0;
    config.pool.sandbox.poll_slice_ms = 10.0;
    return config;
}

TEST(SandboxScheduler, CrashedJobFailsAloneAndDaemonKeepsServing)
{
    served::SchedulerConfig config = isolateConfig(2);
    config.pool.sandbox.crash_plan = "seed=1,kill=doom:segv";
    served::Scheduler scheduler(config);
    ASSERT_TRUE(scheduler.start().ok());

    served::JobOutcome crashed =
        scheduler.submitAndWait("t", pingSpec(), 0.0, {}, "doom-1");
    EXPECT_EQ(crashed.status, "error");
    EXPECT_NE(crashed.error.find("crashed"), std::string::npos)
        << crashed.error;
    EXPECT_FALSE(crashed.artifact.empty());

    // The crash cost one worker, not the service.
    served::JobOutcome healthy =
        scheduler.submitAndWait("t", verifySpec(gcdDot()));
    EXPECT_EQ(healthy.status, "ok") << healthy.error;

    obs::json::Value health = scheduler.healthJson();
    const obs::json::Value* pool = health.find("worker_pool");
    ASSERT_NE(pool, nullptr);
    EXPECT_GE(pool->find("respawned")->asNumber(), 1.0);
    EXPECT_GE(pool->find("live")->asNumber(), 1.0);
    scheduler.stop();
}

TEST(SandboxScheduler, DisconnectReapsTheWorkerAndFreesTheLane)
{
    served::SchedulerConfig config = isolateConfig(1);
    // The job would spin forever; only the disconnect path can free
    // the lane within the assert window.
    config.pool.sandbox.crash_plan = "seed=1,kill=gone:busy";
    config.pool.sandbox.heartbeat_timeout_seconds = 30.0;
    served::Scheduler scheduler(config);
    ASSERT_TRUE(scheduler.start().ok());

    auto begun = std::chrono::steady_clock::now();
    served::JobOutcome out = scheduler.submitAndWait(
        "t", pingSpec(), 0.0, [] { return true; }, "gone-1");
    EXPECT_EQ(out.status, "cancelled") << out.error;
    EXPECT_LT(msSince(begun), 3000.0);
    EXPECT_EQ(scheduler.stats().disconnect_cancelled, 1u);

    // The lane is free and a fresh worker serves the next job.
    served::JobOutcome healthy =
        scheduler.submitAndWait("t", pingSpec());
    EXPECT_EQ(healthy.status, "ok") << healthy.error;
    scheduler.stop();
}

TEST(SandboxScheduler, ChildProgressMirrorsIntoTheServiceScope)
{
    served::SchedulerConfig config = isolateConfig(1);
    config.observer = std::make_shared<served::ServiceObserver>();
    served::Scheduler scheduler(config);
    ASSERT_TRUE(scheduler.start().ok());
    served::JobOutcome out =
        scheduler.submitAndWait("t", verifySpec(gcdDot()));
    ASSERT_EQ(out.status, "ok") << out.error;
    // The child explored states; heartbeats (and the result frame's
    // final totals) carried them across the process boundary, and
    // completion folded them into the service scope — the same
    // accounting the in-thread lanes produce.
    EXPECT_GT(config.observer->scope().metrics().counter(
                  "refine.states"),
              0);
    scheduler.stop();
}

TEST(SandboxScheduler, VerdictsByteIdenticalIsolatedVsOneShot)
{
    served::Scheduler scheduler(isolateConfig(2));
    ASSERT_TRUE(scheduler.start().ok());

    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec bench =
            circuits::buildBenchmark(name).take();
        const ExprHigh& graph =
            bench.df_ooo_input ? *bench.df_ooo_input : bench.df_io;
        JobSpec spec = verifySpec(printDot(graph), bench.num_tags);
        // Recompute every time: byte identity must come from the
        // verification core crossing the process boundary, not from
        // one request warming the store.
        spec.options.verify_cache = false;

        Compiler compiler;
        CompileOptions options = spec.options;
        Result<CompileReport> oneshot =
            compiler.compileDot(spec.circuit_dot, options);
        ASSERT_TRUE(oneshot.ok())
            << name << ": " << oneshot.error().message;
        std::string baseline_verdict =
            oneshot.value().verdict.toJson().dump(2);
        std::string baseline_dot = oneshot.value().output_dot;

        for (std::size_t threads : {1, 2, 8}) {
            spec.options.threads = threads;
            served::JobOutcome out =
                scheduler.submitAndWait("t", spec);
            ASSERT_EQ(out.status, "ok")
                << name << " threads " << threads << ": " << out.error;
            const obs::json::Value* verdict = out.result.find("verdict");
            const obs::json::Value* output_dot =
                out.result.find("output_dot");
            ASSERT_NE(verdict, nullptr) << name;
            ASSERT_NE(output_dot, nullptr) << name;
            EXPECT_EQ(verdict->dump(2), baseline_verdict)
                << name << " threads " << threads;
            EXPECT_EQ(output_dot->asString(), baseline_dot)
                << name << " threads " << threads;
        }
    }
    scheduler.stop();
}

TEST(SandboxScheduler, SoakAnswersEveryHealthyRequestThroughAStorm)
{
    served::SchedulerConfig config = isolateConfig(2);
    // Every fifth job (by id prefix) dies; the rest must all answer.
    config.pool.sandbox.crash_plan = "seed=9,kill=storm:segv";
    config.pool.breaker_deaths = 100;  // the soak outlives any window
    served::Scheduler scheduler(config);
    ASSERT_TRUE(scheduler.start().ok());

    constexpr int kJobs = 25;
    int healthy_ok = 0, storm_errors = 0;
    for (int i = 0; i < kJobs; ++i) {
        bool doomed = i % 5 == 0;
        std::string id = (doomed ? "storm-" : "calm-") +
                         std::to_string(i);
        served::JobOutcome out =
            scheduler.submitAndWait("t", pingSpec(), 0.0, {}, id);
        if (doomed) {
            EXPECT_EQ(out.status, "error") << id << ": " << out.error;
            storm_errors += 1;
        } else {
            EXPECT_EQ(out.status, "ok") << id << ": " << out.error;
            healthy_ok += 1;
        }
    }
    // 100% of healthy requests answered while workers died around
    // them.
    EXPECT_EQ(healthy_ok, kJobs - kJobs / 5);
    EXPECT_EQ(storm_errors, kJobs / 5);
    obs::json::Value health = scheduler.healthJson();
    const obs::json::Value* pool = health.find("worker_pool");
    ASSERT_NE(pool, nullptr);
    EXPECT_GE(pool->find("respawned")->asNumber(),
              static_cast<double>(kJobs / 5));
    scheduler.stop();
}

}  // namespace
}  // namespace graphiti
