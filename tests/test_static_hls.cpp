/**
 * @file
 * Tests for the Vericert-style static HLS baseline: list scheduling
 * with shared functional units, no loop pipelining, and the
 * cycle/clock-period/area characteristics of table 2/3's Vericert
 * columns.
 */

#include <gtest/gtest.h>

#include "static_hls/static_hls.hpp"

namespace graphiti::static_hls {
namespace {

StaticKernel
chainKernel(std::size_t outer, std::size_t trips)
{
    StaticLoop loop;
    loop.body = {
        {"load", "load", {}},
        {"fmul", "fmul", {"load"}},
        {"fadd", "fadd", {"fmul"}},
    };
    loop.trips = trips;
    return StaticKernel{"chain", outer, {loop}, 2};
}

TEST(StaticHls, ChainScheduleLengthIsLatencySum)
{
    StaticReport report = scheduleAndEvaluate(chainKernel(1, 1));
    // load 2 + fmul 6 + fadd 10 = 18, plus one FSM control state.
    EXPECT_EQ(report.iteration_states.at(0), 19u);
    EXPECT_EQ(report.cycles, 1 * (2 + 19) + 2);
}

TEST(StaticHls, NoLoopPipelining)
{
    StaticReport one = scheduleAndEvaluate(chainKernel(1, 1));
    StaticReport many = scheduleAndEvaluate(chainKernel(1, 10));
    // Ten iterations cost ten times the iteration states: the static
    // schedule cannot overlap them.
    std::size_t iter = one.iteration_states.at(0);
    EXPECT_EQ(many.cycles - 2 - 2, 10 * iter);
}

TEST(StaticHls, SharedFuSerializesSameClassOps)
{
    StaticLoop loop;
    loop.body = {
        {"a", "fadd", {}},
        {"b", "fadd", {}},  // independent, but only one fadd unit
    };
    loop.trips = 1;
    StaticKernel kernel{"two_fadds", 1, {loop}, 0};
    StaticReport report = scheduleAndEvaluate(kernel);
    // Serialized on the shared unit: 10 + 10 (+1 control).
    EXPECT_EQ(report.iteration_states.at(0), 21u);
}

TEST(StaticHls, IndependentClassesOverlap)
{
    StaticLoop loop;
    loop.body = {
        {"a", "fadd", {}},
        {"b", "fmul", {}},  // different unit: parallel
    };
    loop.trips = 1;
    StaticKernel kernel{"mix", 1, {loop}, 0};
    StaticReport report = scheduleAndEvaluate(kernel);
    EXPECT_EQ(report.iteration_states.at(0), 11u);
}

TEST(StaticHls, AreaCountsEachFuOnce)
{
    StaticLoop loop;
    loop.body = {
        {"a", "fadd", {}},
        {"b", "fadd", {"a"}},
        {"c", "fadd", {"b"}},
    };
    loop.trips = 100;
    StaticKernel kernel{"fadds", 10, {loop}, 0};
    StaticReport report = scheduleAndEvaluate(kernel);
    // One shared fadd: 2 DSPs total regardless of op or trip count.
    EXPECT_EQ(report.area.dsp, 2);
}

TEST(StaticHls, ClockPeriodBeatsElasticCircuits)
{
    StaticReport report = scheduleAndEvaluate(chainKernel(10, 10));
    EXPECT_LT(report.clock_period_ns, 5.2);
    EXPECT_GT(report.clock_period_ns, 4.0);
}

TEST(StaticHls, UnknownDependencyThrows)
{
    StaticLoop loop;
    loop.body = {{"a", "fadd", {"ghost"}}};
    loop.trips = 1;
    StaticKernel kernel{"bad", 1, {loop}, 0};
    EXPECT_THROW(scheduleAndEvaluate(kernel), std::runtime_error);
}

TEST(StaticHls, OuterTripsMultiply)
{
    StaticReport once = scheduleAndEvaluate(chainKernel(1, 4));
    StaticReport ten = scheduleAndEvaluate(chainKernel(10, 4));
    EXPECT_EQ((ten.cycles - 2), 10 * (once.cycles - 2));
}

}  // namespace
}  // namespace graphiti::static_hls
