/**
 * @file
 * Unit tests for the graph IR: ExprHigh editing and validation,
 * signatures, ExprLow construction, lowering/lifting round trips, and
 * the structural rewriting function of section 4.2.
 */

#include <gtest/gtest.h>

#include "graph/expr_high.hpp"
#include "graph/expr_low.hpp"
#include "graph/signatures.hpp"

namespace graphiti {
namespace {

ExprHigh
forkModGraph()
{
    // The fork/mod example of figure 6: io0 forks into both inputs of
    // a modulo operator whose result is io0 out.
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("m", "operator", {{"op", "mod"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.bindOutput(0, PortRef{"m", "out0"});
    g.connect("f", "out0", "m", "in0");
    g.connect("f", "out1", "m", "in1");
    return g;
}

TEST(ExprHigh, ValidGraphValidates)
{
    EXPECT_TRUE(forkModGraph().validate().ok());
}

TEST(ExprHigh, DuplicateNodeNameThrows)
{
    ExprHigh g;
    g.addNode("a", "buffer");
    EXPECT_THROW(g.addNode("a", "buffer"), std::runtime_error);
}

TEST(ExprHigh, DoubleDrivenInputRejected)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.addNode("b3", "buffer");
    g.connect("b1", "out0", "b3", "in0");
    g.connect("b2", "out0", "b3", "in0");
    EXPECT_FALSE(g.validate().ok());
}

TEST(ExprHigh, FanoutWithoutForkRejected)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.addNode("b3", "buffer");
    g.connect("b1", "out0", "b2", "in0");
    g.connect("b1", "out0", "b3", "in0");
    EXPECT_FALSE(g.validate().ok());
}

TEST(ExprHigh, EdgeToMissingInstanceRejected)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.connect("b1", "out0", "ghost", "in0");
    EXPECT_FALSE(g.validate().ok());
}

TEST(ExprHigh, RemoveNodeDropsEdges)
{
    ExprHigh g = forkModGraph();
    g.removeNode("m");
    EXPECT_FALSE(g.hasNode("m"));
    EXPECT_TRUE(g.edges().empty());
    EXPECT_FALSE(g.outputs()[0].has_value());
}

TEST(ExprHigh, RenameNodeUpdatesReferences)
{
    ExprHigh g = forkModGraph();
    g.renameNode("m", "modulo");
    EXPECT_TRUE(g.hasNode("modulo"));
    EXPECT_EQ(g.outputs()[0]->inst, "modulo");
    EXPECT_EQ(g.driverOf(PortRef{"modulo", "in0"})->inst, "f");
}

TEST(ExprHigh, DriverAndConsumers)
{
    ExprHigh g = forkModGraph();
    auto driver = g.driverOf(PortRef{"m", "in1"});
    ASSERT_TRUE(driver.has_value());
    EXPECT_EQ(driver->port, "out1");
    auto consumers = g.consumersOf(PortRef{"f", "out0"});
    ASSERT_EQ(consumers.size(), 1u);
    EXPECT_EQ(consumers[0], (PortRef{"m", "in0"}));
}

TEST(ExprHigh, FreshNameAvoidsCollisions)
{
    ExprHigh g;
    g.addNode("n0", "buffer");
    g.addNode("n1", "buffer");
    EXPECT_EQ(g.freshName("n"), "n2");
}

TEST(ExprHigh, SameAsIgnoresNodeOrder)
{
    ExprHigh a, b;
    a.addNode("x", "buffer");
    a.addNode("y", "sink");
    b.addNode("y", "sink");
    b.addNode("x", "buffer");
    a.connect("x", "out0", "y", "in0");
    b.connect("x", "out0", "y", "in0");
    EXPECT_TRUE(a.sameAs(b));
}

TEST(Signatures, CatalogArities)
{
    EXPECT_EQ(signatureOf("mux", {}).value().inputs.size(), 3u);
    EXPECT_EQ(signatureOf("branch", {}).value().outputs.size(), 2u);
    EXPECT_EQ(signatureOf("fork", {{"out", "5"}}).value().outputs.size(),
              5u);
    EXPECT_EQ(signatureOf("join", {{"in", "3"}}).value().inputs.size(),
              3u);
    EXPECT_EQ(signatureOf("sink", {}).value().outputs.size(), 0u);
    EXPECT_EQ(signatureOf("source", {}).value().inputs.size(), 0u);
    EXPECT_EQ(
        signatureOf("operator", {{"op", "select"}}).value().inputs.size(),
        3u);
}

TEST(Signatures, UnknownTypeFails)
{
    EXPECT_FALSE(signatureOf("frobnicator", {}).ok());
    EXPECT_FALSE(signatureOf("operator", {{"op", "nope"}}).ok());
}

TEST(Signatures, SideEffects)
{
    EXPECT_TRUE(typeHasSideEffects("store"));
    EXPECT_FALSE(typeHasSideEffects("load"));
    EXPECT_FALSE(typeHasSideEffects("mux"));
}

TEST(ExprLow, LoweringCountsBasesAndConnections)
{
    Result<ExprLow> low = lowerToExprLow(forkModGraph());
    ASSERT_TRUE(low.ok());
    EXPECT_EQ(low.value().numBases(), 2u);
    int conns = 0;
    low.value().forEachConnection(
        [&](const LowPortId&, const LowPortId&) { ++conns; });
    EXPECT_EQ(conns, 2);
}

TEST(ExprLow, RoundTripPreservesGraph)
{
    ExprHigh g = forkModGraph();
    Result<ExprLow> low = lowerToExprLow(g);
    ASSERT_TRUE(low.ok());
    Result<ExprHigh> lifted = liftToExprHigh(low.value());
    ASSERT_TRUE(lifted.ok());
    EXPECT_TRUE(g.sameAs(lifted.value()));
}

TEST(ExprLow, RoundTripRespectsOrder)
{
    ExprHigh g = forkModGraph();
    Result<ExprLow> low = lowerToExprLow(g, {"m", "f"});
    ASSERT_TRUE(low.ok());
    Result<ExprHigh> lifted = liftToExprHigh(low.value());
    ASSERT_TRUE(lifted.ok());
    EXPECT_TRUE(g.sameAs(lifted.value()));
}

TEST(ExprLow, OrderMustCoverAllNodes)
{
    EXPECT_FALSE(lowerToExprLow(forkModGraph(), {"f"}).ok());
    EXPECT_FALSE(lowerToExprLow(forkModGraph(), {"f", "f"}).ok());
    EXPECT_FALSE(lowerToExprLow(forkModGraph(), {"f", "ghost"}).ok());
}

TEST(ExprLow, PrefixSubgraphIsContiguous)
{
    // Lower a three-node chain with b1, b2 first: the (b1 x b2)
    // subgraph with its internal connection must appear literally as a
    // sub-expression, so substitution can replace it.
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.addNode("b3", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.connect("b1", "out0", "b2", "in0");
    g.connect("b2", "out0", "b3", "in0");
    g.bindOutput(0, PortRef{"b3", "out0"});

    Result<ExprLow> low = lowerToExprLow(g, {"b1", "b2", "b3"});
    ASSERT_TRUE(low.ok());

    // Hand-build the expected inner subtree.
    ExprHigh sub;
    sub.addNode("b1", "buffer");
    sub.addNode("b2", "buffer");
    sub.bindInput(0, PortRef{"b1", "in0"});
    sub.connect("b1", "out0", "b2", "in0");
    Result<ExprLow> sub_low = lowerToExprLow(sub, {"b1", "b2"});
    ASSERT_TRUE(sub_low.ok());

    // Substituting the subtree by itself must find exactly one match.
    auto [unchanged, count] =
        low.value().substitute(sub_low.value(), sub_low.value());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(unchanged == low.value());
}

TEST(ExprLow, SubstituteReplacesSubtree)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b1", "out0"});
    Result<ExprLow> low = lowerToExprLow(g);
    ASSERT_TRUE(low.ok());

    LowBase replacement;
    replacement.inst = "b2";
    replacement.type = "buffer";
    replacement.inputs["in0"] = LowPortId::ioPort(0);
    replacement.outputs["out0"] = LowPortId::ioPort(0);

    auto [rewritten, count] =
        low.value().substitute(low.value(), ExprLow::base(replacement));
    EXPECT_EQ(count, 1);
    Result<ExprHigh> lifted = liftToExprHigh(rewritten);
    ASSERT_TRUE(lifted.ok());
    EXPECT_TRUE(lifted.value().hasNode("b2"));
    EXPECT_FALSE(lifted.value().hasNode("b1"));
}

TEST(ExprLow, SubstituteMissesWhenAbsent)
{
    ExprHigh g = forkModGraph();
    Result<ExprLow> low = lowerToExprLow(g);
    ASSERT_TRUE(low.ok());

    LowBase other;
    other.inst = "zzz";
    other.type = "buffer";
    other.inputs["in0"] = LowPortId::ioPort(9);
    other.outputs["out0"] = LowPortId::ioPort(9);
    auto [result, count] = low.value().substitute(
        ExprLow::base(other), ExprLow::base(other));
    EXPECT_EQ(count, 0);
    EXPECT_TRUE(result == low.value());
}

TEST(ExprLow, ToStringMentionsStructure)
{
    Result<ExprLow> low = lowerToExprLow(forkModGraph());
    ASSERT_TRUE(low.ok());
    std::string s = low.value().toString();
    EXPECT_NE(s.find("connect"), std::string::npos);
    EXPECT_NE(s.find("(x)"), std::string::npos);
}

TEST(ExprLow, LiftRejectsDuplicateInstances)
{
    LowBase b;
    b.inst = "dup";
    b.type = "buffer";
    b.inputs["in0"] = LowPortId::ioPort(0);
    b.outputs["out0"] = LowPortId::ioPort(1);
    LowBase b2 = b;
    b2.inputs["in0"] = LowPortId::ioPort(2);
    b2.outputs["out0"] = LowPortId::ioPort(3);
    ExprLow e = ExprLow::product(ExprLow::base(b), ExprLow::base(b2));
    EXPECT_FALSE(liftToExprHigh(e).ok());
}

}  // namespace
}  // namespace graphiti
