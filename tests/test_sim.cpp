/**
 * @file
 * Tests for the cycle-accurate elastic simulator: functional
 * correctness of each component model, pipelining behavior, memory,
 * taggers — and the headline qualitative result of figure 2d/2e: the
 * out-of-order GCD circuit finishes a stream of inputs in fewer
 * cycles than the in-order one while producing identical results.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "bench_circuits/gcd.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace graphiti::sim {
namespace {

std::vector<Token>
intStream(std::initializer_list<std::int64_t> values)
{
    std::vector<Token> out;
    for (std::int64_t v : values)
        out.emplace_back(Value(v));
    return out;
}

TEST(Sim, OperatorPipelineLatency)
{
    // One multiply (latency 4): a single token takes latency plus the
    // handshake hops, and II = 1 lets a stream finish in ~N cycles.
    ExprHigh g;
    g.addNode("mul", "operator", {{"op", "mul"}});
    g.addNode("f", "fork", {{"out", "2"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.connect("f", "out0", "mul", "in0");
    g.connect("f", "out1", "mul", "in1");
    g.bindOutput(0, PortRef{"mul", "out0"});

    auto registry = std::make_shared<FnRegistry>();
    Simulator sim = Simulator::build(g, registry).take();
    Result<SimResult> one = sim.run({intStream({3})}, 1);
    ASSERT_TRUE(one.ok()) << one.error().message;
    EXPECT_EQ(one.value().outputs[0][0].value.asInt(), 9);
    std::size_t single_latency = one.value().cycles;

    Result<SimResult> many = sim.run(
        {intStream({1, 2, 3, 4, 5, 6, 7, 8})}, 8);
    ASSERT_TRUE(many.ok()) << many.error().message;
    // Pipelined: 8 tokens cost ~7 extra cycles, not 8x the latency.
    EXPECT_LT(many.value().cycles, single_latency + 10);
    EXPECT_EQ(many.value().outputs[0][7].value.asInt(), 64);
}

TEST(Sim, LoadReadsMemory)
{
    ExprHigh g;
    g.addNode("ld", "load", {{"memory", "arr"}});
    g.bindInput(0, PortRef{"ld", "in0"});
    g.bindOutput(0, PortRef{"ld", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    Simulator sim = Simulator::build(g, registry).take();
    sim.setMemory("arr", {1.5, 2.5, 3.5});
    Result<SimResult> r = sim.run({intStream({2, 0})}, 2);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_DOUBLE_EQ(r.value().outputs[0][0].value.asDouble(), 3.5);
    EXPECT_DOUBLE_EQ(r.value().outputs[0][1].value.asDouble(), 1.5);
}

TEST(Sim, LoadOutOfBoundsErrors)
{
    ExprHigh g;
    g.addNode("ld", "load", {{"memory", "arr"}});
    g.bindInput(0, PortRef{"ld", "in0"});
    g.bindOutput(0, PortRef{"ld", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    Simulator sim = Simulator::build(g, registry).take();
    sim.setMemory("arr", {1.0});
    EXPECT_FALSE(sim.run({intStream({5})}, 1).ok());
}

TEST(Sim, StoreWritesMemory)
{
    ExprHigh g;
    g.addNode("st", "store", {{"memory", "arr"}});
    g.bindInput(0, PortRef{"st", "in0"});  // address
    g.bindInput(1, PortRef{"st", "in1"});  // data
    g.bindOutput(0, PortRef{"st", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    Simulator sim = Simulator::build(g, registry).take();
    sim.setMemory("arr", {0, 0, 0});
    Result<SimResult> r =
        sim.run({intStream({1}), intStream({42})}, 1);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_DOUBLE_EQ(r.value().memories.at("arr")[1], 42.0);
}

TEST(Sim, DeadlockIsDetected)
{
    // A join whose second operand never arrives.
    ExprHigh g;
    g.addNode("j", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"j", "in0"});
    g.bindInput(1, PortRef{"j", "in1"});
    g.bindOutput(0, PortRef{"j", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    Simulator sim = Simulator::build(g, registry).take();
    Result<SimResult> r = sim.run({intStream({1}), {}}, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("deadlock"), std::string::npos);
}

TEST(Sim, BackpressureStallsProducer)
{
    // A slow consumer (high-latency op) behind a fast source: the
    // channel fills, the run still completes correctly.
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("slow", "operator", {{"op", "fadd"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.connect("f", "out0", "slow", "in0");
    g.connect("f", "out1", "slow", "in1");
    g.bindOutput(0, PortRef{"slow", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    SimConfig tight;
    tight.channel_slots = 1;
    Simulator sim = Simulator::build(g, registry, tight).take();
    std::vector<Token> stream;
    for (int i = 0; i < 20; ++i)
        stream.emplace_back(Value(static_cast<double>(i)));
    Result<SimResult> r = sim.run({stream}, 20);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_DOUBLE_EQ(r.value().outputs[0][3].value.asDouble(), 6.0);
}

// ---------------------------------------------------------------------
// Figure 2d/2e: in-order vs out-of-order GCD on a stream.
// ---------------------------------------------------------------------

struct GcdRun
{
    std::size_t cycles;
    std::vector<std::int64_t> results;
};

GcdRun
runGcdStream(const ExprHigh& g, std::shared_ptr<FnRegistry> registry,
             const std::vector<std::pair<int, int>>& pairs,
             bool paired_input, std::vector<TraceEvent>* trace = nullptr,
             const std::vector<std::string>& trace_nodes = {})
{
    SimConfig config;
    config.trace_nodes = trace_nodes;
    Simulator sim = Simulator::build(g, registry, config).take();
    std::vector<std::vector<Token>> inputs;
    if (paired_input) {
        std::vector<Token> stream;
        for (auto [a, b] : pairs)
            stream.emplace_back(Value::tuple(Value(a), Value(b)));
        inputs = {stream};
    } else {
        std::vector<Token> as, bs;
        for (auto [a, b] : pairs) {
            as.emplace_back(Value(a));
            bs.emplace_back(Value(b));
        }
        inputs = {as, bs};
    }
    Result<SimResult> r = sim.run(inputs, pairs.size());
    EXPECT_TRUE(r.ok()) << r.error().message;
    GcdRun run;
    run.cycles = r.value().cycles;
    for (const Token& t : r.value().outputs[0]) {
        run.results.push_back(t.value.isTuple()
                                  ? t.value.asTuple()[0].asInt()
                                  : t.value.asInt());
    }
    if (trace != nullptr)
        *trace = std::move(r.value().trace);
    return run;
}

TEST(Sim, GcdInOrderComputesStream)
{
    auto registry = std::make_shared<FnRegistry>();
    const std::vector<std::pair<int, int>> pairs = {
        {48, 18}, {7, 13}, {100, 75}, {9, 9}};
    GcdRun run = runGcdStream(circuits::buildGcdInOrder(), registry,
                              pairs, false);
    ASSERT_EQ(run.results.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(run.results[i],
                  std::gcd(pairs[i].first, pairs[i].second));
}

TEST(Sim, OutOfOrderGcdFasterThanInOrder)
{
    // The figure 2 experiment: a stream of GCD problems with varying
    // iteration counts. The tagged circuit overlaps loop instances and
    // must finish the stream in fewer cycles, with identical results
    // in program order.
    Environment env;
    ExprHigh in_order = circuits::buildGcdInOrder();
    Result<PipelineResult> transformed =
        runOooPipeline(in_order, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(transformed.ok()) << transformed.error().message;

    std::vector<std::pair<int, int>> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.push_back({1071 + 17 * i, 462 + 3 * i});

    auto registry = env.functionsPtr();
    GcdRun io = runGcdStream(in_order, registry, pairs, false);
    GcdRun ooo = runGcdStream(transformed.value().graph, registry, pairs,
                              false);

    ASSERT_EQ(io.results, ooo.results);
    EXPECT_LT(ooo.cycles, io.cycles)
        << "ooo " << ooo.cycles << " vs io " << io.cycles;
    // The speedup should be substantial (the modulo pipeline fills).
    EXPECT_GT(static_cast<double>(io.cycles) /
                  static_cast<double>(ooo.cycles),
              2.0);
}

TEST(Sim, TraceShowsPipelinedModulo)
{
    // Figure 2d/2e, qualitatively: in the in-order circuit the modulo
    // accepts a new token only after the previous loop iteration
    // finished; out-of-order, accepts cluster back to back.
    Environment env;
    ExprHigh in_order = circuits::buildGcdInOrder();
    Result<PipelineResult> transformed =
        runOooPipeline(in_order, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(transformed.ok());

    // Find the modulo node in each circuit.
    auto find_mod = [](const ExprHigh& g) {
        for (const NodeDecl& n : g.nodes())
            if (n.type == "operator" &&
                n.attrs.count("op") > 0 && n.attrs.at("op") == "mod")
                return n.name;
        return std::string();
    };
    std::string mod_io = find_mod(in_order);
    std::string mod_ooo = find_mod(transformed.value().graph);
    ASSERT_FALSE(mod_io.empty());
    ASSERT_FALSE(mod_ooo.empty());

    std::vector<std::pair<int, int>> pairs = {
        {1071, 462}, {987, 610}, {864, 528}};
    auto registry = env.functionsPtr();

    std::vector<TraceEvent> io_trace, ooo_trace;
    runGcdStream(in_order, registry, pairs, false, &io_trace, {mod_io});
    runGcdStream(transformed.value().graph, registry, pairs, false,
                 &ooo_trace, {mod_ooo});

    auto min_accept_gap = [](const std::vector<TraceEvent>& trace) {
        std::size_t best = 1u << 30;
        std::optional<std::size_t> prev;
        for (const TraceEvent& ev : trace) {
            if (ev.detail != "accept")
                continue;
            if (prev)
                best = std::min(best, ev.cycle - *prev);
            prev = ev.cycle;
        }
        return best;
    };
    // Out-of-order lets the modulo accept in adjacent cycles; the
    // sequential loop forces a full iteration between accepts.
    EXPECT_LE(min_accept_gap(ooo_trace), 2u);
    EXPECT_GT(min_accept_gap(io_trace), 2u);
}

TEST(Sim, SerialIoThrottlesOutOfOrder)
{
    // gsum-single's situation: each input depends on the previous
    // output, so the tagged circuit cannot overlap instances and only
    // pays the tagging overhead.
    Environment env;
    ExprHigh in_order = circuits::buildGcdInOrder();
    Result<PipelineResult> transformed =
        runOooPipeline(in_order, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(transformed.ok());

    std::vector<std::pair<int, int>> pairs;
    for (int i = 0; i < 10; ++i)
        pairs.push_back({231 + 7 * i, 84 + 5 * i});

    auto run_serial = [&](const ExprHigh& g) {
        Simulator sim = Simulator::build(g, env.functionsPtr()).take();
        std::vector<Token> as, bs;
        for (auto [a, b] : pairs) {
            as.emplace_back(Value(a));
            bs.emplace_back(Value(b));
        }
        Result<SimResult> r = sim.run({as, bs}, pairs.size(), true);
        EXPECT_TRUE(r.ok()) << r.error().message;
        return r.value().cycles;
    };
    std::size_t io_cycles = run_serial(in_order);
    std::size_t ooo_cycles = run_serial(transformed.value().graph);
    // No overlap is possible; tagging can only cost cycles.
    EXPECT_GE(ooo_cycles, io_cycles);
}

}  // namespace
}  // namespace graphiti::sim
