/**
 * @file
 * Tests for the rewriting machinery: matching, application through
 * ExprLow substitution, wire rewrites, the engine, and the refinement
 * obligations of the catalog (theorem 4.6 in executable form: every
 * verifiable catalog rewrite satisfies rhs ⊑ lhs on a finite
 * instantiation).
 */

#include <gtest/gtest.h>

#include "graph/signatures.hpp"
#include "rewrite/catalog.hpp"
#include "rewrite/catalog_verify.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/loop_rewrite.hpp"
#include "bench_circuits/gcd.hpp"

namespace graphiti {
namespace {

/** A graph with two muxes sharing a forked condition, as in fig 4a. */
ExprHigh
twoMuxGraph()
{
    ExprHigh g;
    g.addNode("cfork", "fork", {{"out", "2"}});
    g.addNode("m1", "mux");
    g.addNode("m2", "mux");
    g.connect("cfork", "out0", "m1", "in0");
    g.connect("cfork", "out1", "m2", "in0");
    g.bindInput(0, PortRef{"cfork", "in0"});
    g.bindInput(1, PortRef{"m1", "in1"});
    g.bindInput(2, PortRef{"m1", "in2"});
    g.bindInput(3, PortRef{"m2", "in1"});
    g.bindInput(4, PortRef{"m2", "in2"});
    g.bindOutput(0, PortRef{"m1", "out0"});
    g.bindOutput(1, PortRef{"m2", "out0"});
    return g;
}

TEST(RewriteDef, CatalogValidates)
{
    for (const RewriteDef& def : catalog::allRewrites()) {
        Result<bool> valid = def.validate();
        EXPECT_TRUE(valid.ok())
            << def.name << ": "
            << (valid.ok() ? "" : valid.error().message);
    }
    EXPECT_TRUE(oooLoopRewrite().validate().ok());
}

TEST(RewriteDef, MalformedDefsRejected)
{
    RewriteDef def;
    def.name = "empty";
    EXPECT_FALSE(def.validate().ok());

    // Uncovered lhs port.
    RewriteDef uncovered;
    uncovered.name = "uncovered";
    uncovered.lhs.addNode("b", "buffer");
    uncovered.lhs.bindInput(0, PortRef{"b", "in0"});
    uncovered.rhs.addNode("c", "buffer");
    uncovered.rhs.bindInput(0, PortRef{"c", "in0"});
    uncovered.rhs.bindOutput(0, PortRef{"c", "out0"});
    EXPECT_FALSE(uncovered.validate().ok());

    // Boundary parity violation.
    RewriteDef parity;
    parity.name = "parity";
    parity.lhs.addNode("b", "buffer");
    parity.lhs.bindInput(0, PortRef{"b", "in0"});
    parity.lhs.bindOutput(0, PortRef{"b", "out0"});
    parity.rhs.addNode("c", "buffer");
    parity.rhs.bindInput(1, PortRef{"c", "in0"});
    parity.rhs.bindOutput(0, PortRef{"c", "out0"});
    EXPECT_FALSE(parity.validate().ok());
}

TEST(Matcher, FindsCombineMux)
{
    ExprHigh g = twoMuxGraph();
    std::vector<RewriteMatch> matches =
        matchRewrite(g, catalog::combineMux());
    // Fork output orientation pins the embedding uniquely.
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].binding.at("forkC"), "cfork");
    EXPECT_EQ(matches[0].binding.at("muxA"), "m1");
    EXPECT_EQ(matches[0].binding.at("muxB"), "m2");
}

TEST(Matcher, RejectsWhenInternalEdgeUnaccounted)
{
    // Add an extra edge between the two muxes: no longer a clean match.
    ExprHigh g = twoMuxGraph();
    ExprHigh g2 = g;
    // m1.out0 -> m2.in1 (replace the io binding).
    g2.bindInput(3, PortRef{"m2", "in2"});  // clobber below instead
    ExprHigh g3;
    g3.addNode("cfork", "fork", {{"out", "2"}});
    g3.addNode("m1", "mux");
    g3.addNode("m2", "mux");
    g3.connect("cfork", "out0", "m1", "in0");
    g3.connect("cfork", "out1", "m2", "in0");
    g3.connect("m1", "out0", "m2", "in1");
    g3.bindInput(0, PortRef{"cfork", "in0"});
    g3.bindInput(1, PortRef{"m1", "in1"});
    g3.bindInput(2, PortRef{"m1", "in2"});
    g3.bindInput(4, PortRef{"m2", "in2"});
    g3.bindOutput(1, PortRef{"m2", "out0"});
    EXPECT_TRUE(matchRewrite(g3, catalog::combineMux()).empty());
}

TEST(Matcher, CapturesAttributes)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("i1", "init", {{"value", "true"}});
    g.addNode("i2", "init", {{"value", "true"}});
    g.connect("f", "out0", "i1", "in0");
    g.connect("f", "out1", "i2", "in0");
    g.bindInput(0, PortRef{"f", "in0"});
    g.bindOutput(0, PortRef{"i1", "out0"});
    g.bindOutput(1, PortRef{"i2", "out0"});
    auto matches = matchRewrite(g, catalog::combineInit());
    ASSERT_FALSE(matches.empty());
    EXPECT_EQ(matches[0].captures.at("$v"), "true");
}

TEST(Matcher, CaptureMismatchRejects)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("i1", "init", {{"value", "true"}});
    g.addNode("i2", "init", {{"value", "false"}});
    g.connect("f", "out0", "i1", "in0");
    g.connect("f", "out1", "i2", "in0");
    g.bindInput(0, PortRef{"f", "in0"});
    g.bindOutput(0, PortRef{"i1", "out0"});
    g.bindOutput(1, PortRef{"i2", "out0"});
    EXPECT_TRUE(matchRewrite(g, catalog::combineInit()).empty());
}

TEST(Apply, CombineMuxProducesJoinMuxSplit)
{
    ExprHigh g = twoMuxGraph();
    RewriteDef def = catalog::combineMux();
    auto match = matchRewriteOnce(g, def);
    ASSERT_TRUE(match.has_value());
    Result<ExprHigh> out = applyRewrite(g, def, *match);
    ASSERT_TRUE(out.ok()) << out.error().message;

    int muxes = 0, joins = 0, splits = 0;
    for (const NodeDecl& n : out.value().nodes()) {
        muxes += n.type == "mux";
        joins += n.type == "join";
        splits += n.type == "split";
    }
    EXPECT_EQ(muxes, 1);
    EXPECT_EQ(joins, 2);
    EXPECT_EQ(splits, 1);
    EXPECT_TRUE(out.value().validate().ok());
}

TEST(Apply, InvalidOracleMatchRejected)
{
    ExprHigh g = twoMuxGraph();
    RewriteDef def = catalog::combineMux();
    RewriteMatch bogus;
    bogus.binding = {{"forkC", "m1"}, {"muxA", "m2"}, {"muxB", "cfork"}};
    EXPECT_FALSE(applyRewrite(g, def, bogus).ok());
}

TEST(Apply, WireRewriteSplitJoin)
{
    // buffer -> split -> join -> buffer collapses to buffer -> buffer.
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("s", "split");
    g.addNode("j", "join", {{"in", "2"}});
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "s", "in0");
    g.connect("s", "out0", "j", "in0");
    g.connect("s", "out1", "j", "in1");
    g.connect("j", "out0", "b2", "in0");

    RewriteEngine engine;
    ASSERT_TRUE(engine.addRule(catalog::splitJoinElim()).ok());
    Result<ExprHigh> out = engine.applyOnce(g, "split-join-elim");
    ASSERT_TRUE(out.ok()) << out.error().message;
    EXPECT_EQ(out.value().numNodes(), 2u);
    auto driver = out.value().driverOf(PortRef{"b2", "in0"});
    ASSERT_TRUE(driver.has_value());
    EXPECT_EQ(driver->inst, "b1");
}

TEST(Apply, WireRewriteAcrossIo)
{
    // The split/join pair sits directly between graph io ports.
    ExprHigh g;
    g.addNode("s", "split");
    g.addNode("j", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"s", "in0"});
    g.bindOutput(0, PortRef{"j", "out0"});
    g.connect("s", "out0", "j", "in0");
    g.connect("s", "out1", "j", "in1");
    RewriteEngine engine;
    ASSERT_TRUE(engine.addRule(catalog::splitJoinElim()).ok());
    // Input wired straight to output is not expressible: must error,
    // not corrupt the graph.
    EXPECT_FALSE(engine.applyOnce(g, "split-join-elim").ok());
}

TEST(Apply, ForkSplitNormalizesArity)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "4"}});
    g.addNode("s0", "sink");
    g.addNode("s1", "sink");
    g.addNode("s2", "sink");
    g.addNode("s3", "sink");
    g.bindInput(0, PortRef{"f", "in0"});
    for (int i = 0; i < 4; ++i)
        g.connect("f", "out" + std::to_string(i),
                  "s" + std::to_string(i), "in0");

    RewriteEngine engine;
    for (RewriteDef& def : catalog::allRewrites())
        ASSERT_TRUE(engine.addRule(std::move(def)).ok());
    Result<ExprHigh> out = engine.applyExhaustively(
        g, {"fork-split-4", "fork-split-3"});
    ASSERT_TRUE(out.ok()) << out.error().message;
    int fork2 = 0, fork_other = 0;
    for (const NodeDecl& n : out.value().nodes()) {
        if (n.type != "fork")
            continue;
        if (attrStr(n.attrs, "out", "2") == "2")
            ++fork2;
        else
            ++fork_other;
    }
    EXPECT_EQ(fork2, 3);
    EXPECT_EQ(fork_other, 0);
}

TEST(Engine, ExhaustiveStopsAndCounts)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.addNode("b3", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b3", "out0"});
    g.connect("b1", "out0", "b2", "in0");
    g.connect("b2", "out0", "b3", "in0");

    RewriteEngine engine;
    ASSERT_TRUE(engine.addRule(catalog::bufferElim()).ok());
    Result<ExprHigh> out = engine.applyExhaustively(g, {"buffer-elim"});
    ASSERT_TRUE(out.ok());
    // Two of the three buffers dissolve; the last one would wire io
    // to io, which the wire rewrite refuses, so it remains.
    EXPECT_EQ(out.value().numNodes(), 1u);
    EXPECT_EQ(engine.stats().rewrites_applied, 2u);
    EXPECT_EQ(engine.stats().per_rule.at("buffer-elim"), 2u);
}

TEST(Engine, UnknownRuleErrors)
{
    RewriteEngine engine;
    EXPECT_FALSE(engine.applyOnce(twoMuxGraph(), "nope").ok());
}

// ---------------------------------------------------------------------
// Refinement obligations (theorem 4.6 hypothesis) for the catalog.
// ---------------------------------------------------------------------

void
expectRefines(const RewriteDef& def, const std::vector<Token>& tokens,
              std::size_t budget = 2)
{
    Environment env(3);
    auto report = verifyRewrite(def, env, tokens,
                                {.max_states = 300000,
                                 .input_budget = budget});
    ASSERT_TRUE(report.ok()) << def.name << ": "
                             << report.error().message;
    EXPECT_TRUE(report.value().refines)
        << def.name << ": " << report.value().counterexample;
}

TEST(CatalogRefinement, CombineMux)
{
    expectRefines(catalog::combineMux(),
                  {Token(Value(true)), Token(Value(1))});
}

TEST(CatalogRefinement, CombineBranch)
{
    expectRefines(catalog::combineBranch(),
                  {Token(Value(true)), Token(Value(2))});
}

TEST(CatalogRefinement, CombineInit)
{
    RewriteDef def = instantiateCaptures(catalog::combineInit(),
                                         {{"$v", "false"}});
    expectRefines(def, {Token(Value(true)), Token(Value(false))});
}

TEST(CatalogRefinement, ForkAssocBothWays)
{
    expectRefines(catalog::forkAssocLeft(), {Token(Value(1))});
    expectRefines(catalog::forkAssocRight(), {Token(Value(1))});
}

TEST(CatalogRefinement, ForkSwap)
{
    expectRefines(catalog::forkSwap(), {Token(Value(1))});
}

TEST(CatalogRefinement, ForkSplit3)
{
    expectRefines(catalog::forkSplit(3), {Token(Value(1))});
}

TEST(CatalogRefinement, ForkToPureDup)
{
    expectRefines(catalog::forkToPureDup(), {Token(Value(7))});
}

TEST(CatalogRefinement, SplitSinkBothSides)
{
    std::vector<Token> pairs = {
        Token(Value::tuple(Value(1), Value(2))),
        Token(Value::tuple(Value(3), Value(4)))};
    expectRefines(catalog::splitSink0(), pairs);
    expectRefines(catalog::splitSink1(), pairs);
}

TEST(CatalogRefinement, MergeComm)
{
    expectRefines(catalog::mergeComm(), {Token(Value(1)),
                                         Token(Value(2))});
}

TEST(CatalogRefinement, JoinFuseBothWays)
{
    expectRefines(catalog::joinFuse(), {Token(Value(1)),
                                        Token(Value(2))});
    expectRefines(catalog::joinUnfuse(), {Token(Value(1)),
                                          Token(Value(2))});
}

TEST(CatalogRefinement, BufferDeepen)
{
    expectRefines(catalog::bufferDeepen(), {Token(Value(1)),
                                            Token(Value(2))});
}


TEST(CatalogRefinement, WholeCatalogSelfVerifies)
{
    Result<CatalogVerification> verification = verifyCatalog();
    ASSERT_TRUE(verification.ok()) << verification.error().message;
    EXPECT_TRUE(verification.value().all_ok)
        << verification.value().first_failure;
    // Every verified, denotable rule shows up in the report.
    EXPECT_GT(verification.value().results.size(), 10u);
    for (const auto& [rule, refines] : verification.value().results)
        EXPECT_TRUE(refines) << rule;
}

TEST(CatalogRefinement, OooLoopTemplate)
{
    // The parametric loop rewrite (section 5), instantiated with the
    // GCD body. rhs (tagged out-of-order loop) ⊑ lhs (sequential).
    Environment env(4);
    circuits::registerGcdBody(env.functions());
    RewriteDef def = instantiateCaptures(
        oooLoopRewrite(), {{"$f", "gcd_body"}, {"$tags", "2"}});
    auto report = verifyRewrite(
        def, env,
        {Token(Value::tuple(Value(3), Value(2))),
         Token(Value::tuple(Value(4), Value(2)))},
        {.max_states = 400000, .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().refines) << report.value().counterexample;
}

}  // namespace
}  // namespace graphiti
