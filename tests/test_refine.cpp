/**
 * @file
 * Tests for the refinement checker (definitions 4.1-4.5) and the
 * trace-inclusion tester, culminating in the executable analogue of
 * Theorem 5.3: the out-of-order GCD loop refines the sequential one,
 * and stops refining it once the Tagger/Untagger is removed.
 */

#include <gtest/gtest.h>

#include "bench_circuits/gcd.hpp"
#include "graph/signatures.hpp"
#include "refine/refinement.hpp"
#include "refine/trace.hpp"

namespace graphiti {
namespace {

ExprHigh
singleNodeGraph(const std::string& type, const AttrMap& attrs = {})
{
    ExprHigh g;
    g.addNode("n", type, attrs);
    Result<Signature> sig = signatureOf(type, attrs);
    for (std::size_t i = 0; i < sig.value().inputs.size(); ++i)
        g.bindInput(i, PortRef{"n", sig.value().inputs[i]});
    for (std::size_t i = 0; i < sig.value().outputs.size(); ++i)
        g.bindOutput(i, PortRef{"n", sig.value().outputs[i]});
    return g;
}

std::vector<Token>
intTokens(std::initializer_list<std::int64_t> values)
{
    std::vector<Token> out;
    for (std::int64_t v : values)
        out.emplace_back(Value(v));
    return out;
}

TEST(Refinement, BufferRefinesItself)
{
    Environment env(4);
    ExprHigh buf = singleNodeGraph("buffer");
    auto report = checkGraphRefinement(buf, buf, env, intTokens({1, 2}),
                                       {.max_states = 10000,
                                        .input_budget = 3});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().refines) << report.value().counterexample;
    EXPECT_GT(report.value().reachable_pairs, 0u);
}

TEST(Refinement, BufferChainAndSingleBufferMutuallyRefine)
{
    Environment env(4);
    ExprHigh chain;
    chain.addNode("b1", "buffer");
    chain.addNode("b2", "buffer");
    chain.bindInput(0, PortRef{"b1", "in0"});
    chain.bindOutput(0, PortRef{"b2", "out0"});
    chain.connect("b1", "out0", "b2", "in0");

    ExprHigh single = singleNodeGraph("buffer");

    auto forward = checkGraphRefinement(chain, single, env,
                                        intTokens({1, 2}),
                                        {.max_states = 10000,
                                         .input_budget = 3});
    ASSERT_TRUE(forward.ok()) << forward.error().message;
    EXPECT_TRUE(forward.value().refines)
        << forward.value().counterexample;

    auto backward = checkGraphRefinement(single, chain, env,
                                         intTokens({1, 2}),
                                         {.max_states = 10000,
                                          .input_budget = 3});
    ASSERT_TRUE(backward.ok()) << backward.error().message;
    EXPECT_TRUE(backward.value().refines)
        << backward.value().counterexample;
}

TEST(Refinement, AddDoesNotRefineMul)
{
    Environment env(4);
    ExprHigh add = singleNodeGraph("operator", {{"op", "add"}});
    ExprHigh mul = singleNodeGraph("operator", {{"op", "mul"}});
    auto report = checkGraphRefinement(add, mul, env, intTokens({2, 3}),
                                       {.max_states = 10000,
                                        .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_FALSE(report.value().refines);
    EXPECT_FALSE(report.value().counterexample.empty());
}

TEST(Refinement, AddRefinesAddEvenWhenIdentityDiffers)
{
    // x + y where both inputs come from the same domain: 2 + 3 and
    // 3 + 2 both occur; refinement holds because the spec explores the
    // same choices.
    Environment env(4);
    ExprHigh add = singleNodeGraph("operator", {{"op", "add"}});
    auto report = checkGraphRefinement(add, add, env, intTokens({2, 3}),
                                       {.max_states = 10000,
                                        .input_budget = 3});
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().refines) << report.value().counterexample;
}

TEST(Refinement, BufferRefinesMergeOnSharedInput)
{
    // A buffer forwarding io0 refines a merge whose second input is
    // never fed: the merge has *more* behaviors.
    Environment env(4);
    ExprHigh buf;
    buf.addNode("b", "buffer");
    buf.addNode("m", "merge");
    buf.bindInput(0, PortRef{"b", "in0"});
    buf.bindInput(1, PortRef{"m", "in1"});
    buf.bindOutput(0, PortRef{"m", "out0"});
    buf.connect("b", "out0", "m", "in0");

    ExprHigh merge;
    merge.addNode("b", "buffer");
    merge.addNode("m", "merge");
    merge.bindInput(0, PortRef{"b", "in0"});
    merge.bindInput(1, PortRef{"m", "in1"});
    merge.bindOutput(0, PortRef{"m", "out0"});
    merge.connect("b", "out0", "m", "in0");

    auto report = checkGraphRefinement(buf, merge, env, intTokens({1}),
                                       {.max_states = 20000,
                                        .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().refines) << report.value().counterexample;
}

TEST(Refinement, PortMismatchIsAnError)
{
    Environment env(4);
    ExprHigh buf = singleNodeGraph("buffer");
    ExprHigh fork = singleNodeGraph("fork", {{"out", "2"}});
    auto report = checkGraphRefinement(buf, fork, env, intTokens({1}),
                                       {.max_states = 1000,
                                        .input_budget = 1});
    EXPECT_FALSE(report.ok());
}

TEST(Refinement, StateCapIsAnError)
{
    Environment env(4);
    ExprHigh buf = singleNodeGraph("buffer");
    auto report = checkGraphRefinement(buf, buf, env,
                                       intTokens({1, 2, 3}),
                                       {.max_states = 2,
                                        .input_budget = 3});
    EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------
// Theorem 5.3, executable: the out-of-order loop refines the
// sequential loop on a finite instantiation.
// ---------------------------------------------------------------------

std::vector<Token>
gcdPairs()
{
    // (3,2) needs two loop iterations and exits with (1,0);
    // (4,2) needs one and exits with (2,0). Distinct latencies and
    // distinct results make any reordering externally observable.
    return {Token(Value::tuple(Value(3), Value(2))),
            Token(Value::tuple(Value(4), Value(2)))};
}

TEST(LoopRewrite, OutOfOrderRefinesSequential)
{
    Environment env(4);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);

    auto report = checkGraphRefinement(ooo, seq, env, gcdPairs(),
                                       {.max_states = 400000,
                                        .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().refines) << report.value().counterexample;
    EXPECT_GT(report.value().impl_states, 10u);
    EXPECT_GT(report.value().spec_states, 10u);
}

TEST(LoopRewrite, UntaggedOutOfOrderDoesNotRefineSequential)
{
    // Strip the Tagger/Untagger: results exit in completion order, and
    // the sequential loop cannot match the reordered trace.
    Environment env(4);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());

    ExprHigh ooo;
    circuits::registerGcdBody(env.functions());
    ooo.addNode("merge", "merge");
    ooo.addNode("body", "pure", {{"fn", "gcd_body"}});
    ooo.addNode("split", "split");
    ooo.addNode("branch", "branch");
    ooo.bindInput(0, PortRef{"merge", "in1"});
    ooo.bindOutput(0, PortRef{"branch", "out1"});
    ooo.connect("branch", "out0", "merge", "in0");
    ooo.connect("merge", "out0", "body", "in0");
    ooo.connect("body", "out0", "split", "in0");
    ooo.connect("split", "out0", "branch", "in0");
    ooo.connect("split", "out1", "branch", "in1");

    auto report = checkGraphRefinement(ooo, seq, env, gcdPairs(),
                                       {.max_states = 400000,
                                        .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_FALSE(report.value().refines);
}

// ---------------------------------------------------------------------
// Trace-inclusion testing.
// ---------------------------------------------------------------------

TEST(Trace, RandomImplTracesAdmittedBySpec)
{
    Environment env(6);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 3);

    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(ooo).value(), env).take();
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(seq).value(), env).take();

    std::vector<Token> pool = {
        Token(Value::tuple(Value(6), Value(4))),
        Token(Value::tuple(Value(5), Value(5))),
        Token(Value::tuple(Value(9), Value(6))),
    };
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        IoTrace trace = randomTrace(impl, pool, rng,
                                    {.max_steps = 400,
                                     .input_bias = 0.4,
                                     .max_inputs = 4});
        Result<bool> admitted = admitsTrace(spec, trace);
        ASSERT_TRUE(admitted.ok()) << admitted.error().message;
        EXPECT_TRUE(admitted.value()) << "seed " << seed;
    }
}

TEST(Trace, CorruptedTraceRejected)
{
    Environment env(6);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(seq).value(), env).take();

    // gcd(6, 4) = 2; claim the circuit output 3 instead.
    IoTrace bogus = {
        IoEvent{true, LowPortId::ioPort(0),
                Token(Value::tuple(Value(6), Value(4)))},
        IoEvent{false, LowPortId::ioPort(0),
                Token(Value::tuple(Value(3), Value(0)))},
    };
    Result<bool> admitted = admitsTrace(spec, bogus);
    ASSERT_TRUE(admitted.ok()) << admitted.error().message;
    EXPECT_FALSE(admitted.value());
}

TEST(Trace, EmptyTraceAlwaysAdmitted)
{
    Environment env(4);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(seq).value(), env).take();
    EXPECT_TRUE(admitsTrace(spec, {}).value());
}

TEST(Trace, EventToStringMentionsDirection)
{
    IoEvent ev{true, LowPortId::ioPort(0), Token(Value(1))};
    EXPECT_NE(ev.toString().find("in"), std::string::npos);
    ev.is_input = false;
    EXPECT_NE(ev.toString().find("out"), std::string::npos);
}

}  // namespace
}  // namespace graphiti
