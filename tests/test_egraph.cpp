/**
 * @file
 * Tests for the e-graph oracle: hashconsing, congruence closure,
 * equality saturation over the pair algebra, and smallest-term
 * extraction (the Split/Join reduction of section 3.2).
 */

#include <gtest/gtest.h>

#include "egraph/egraph.hpp"

namespace graphiti::eg {
namespace {

TermExpr
v(const char* name)
{
    return TermExpr::leaf(name);
}

TermExpr
pair(TermExpr a, TermExpr b)
{
    return TermExpr::node("pair", {std::move(a), std::move(b)});
}

TermExpr
fst(TermExpr a)
{
    return TermExpr::node("fst", {std::move(a)});
}

TermExpr
snd(TermExpr a)
{
    return TermExpr::node("snd", {std::move(a)});
}

TEST(TermExpr, SizeAndToString)
{
    TermExpr t = pair(v("x"), fst(v("y")));
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.toString(), "(pair x (fst y))");
    EXPECT_TRUE(v("?a").isVar());
    EXPECT_FALSE(v("a").isVar());
}

TEST(EGraph, HashconsingDeduplicates)
{
    EGraph g;
    ClassId a = g.addTerm(pair(v("x"), v("y")));
    ClassId b = g.addTerm(pair(v("x"), v("y")));
    EXPECT_EQ(g.find(a), g.find(b));
}

TEST(EGraph, MergePropagatesCongruence)
{
    // x == y must make f(x) == f(y) after rebuild.
    EGraph g;
    ClassId x = g.addTerm(v("x"));
    ClassId y = g.addTerm(v("y"));
    ClassId fx = g.addTerm(fst(v("x")));
    ClassId fy = g.addTerm(fst(v("y")));
    EXPECT_FALSE(g.equivalent(fx, fy));
    g.merge(x, y);
    g.rebuild();
    EXPECT_TRUE(g.equivalent(fx, fy));
}

TEST(EGraph, SaturationProvesProjection)
{
    EGraph g;
    ClassId lhs = g.addTerm(fst(pair(v("a"), v("b"))));
    ClassId rhs = g.addTerm(v("a"));
    SaturationStats stats = g.saturate(pairAlgebraRules());
    EXPECT_TRUE(stats.saturated);
    EXPECT_TRUE(g.equivalent(lhs, rhs));
}

TEST(EGraph, SaturationProvesEta)
{
    EGraph g;
    ClassId lhs = g.addTerm(pair(fst(v("x")), snd(v("x"))));
    ClassId rhs = g.addTerm(v("x"));
    g.saturate(pairAlgebraRules());
    EXPECT_TRUE(g.equivalent(lhs, rhs));
}

TEST(EGraph, StructuralRulesProveReassociation)
{
    // ((a b) c) ~ (a (b c)) under the *structural* rules (graph-shape
    // interconvertibility, not value equality).
    EGraph g;
    ClassId lhs = g.addTerm(pair(pair(v("a"), v("b")), v("c")));
    ClassId rhs = g.addTerm(pair(v("a"), pair(v("b"), v("c"))));
    g.saturate(pairStructuralRules());
    EXPECT_TRUE(g.equivalent(lhs, rhs));
}

TEST(EGraph, SemanticRulesDoNotReassociate)
{
    // The semantic rule set must NOT identify differently-nested
    // tuples: they are different values.
    EGraph g;
    ClassId lhs = g.addTerm(pair(pair(v("a"), v("b")), v("c")));
    ClassId rhs = g.addTerm(pair(v("a"), pair(v("b"), v("c"))));
    g.saturate(pairAlgebraRules());
    EXPECT_FALSE(g.equivalent(lhs, rhs));
}

TEST(EGraph, SplitJoinRoundTripCollapses)
{
    // The canonical residue of Pure generation: re-joining the two
    // splits of a join of two splits... reduces to the input variable.
    EGraph g;
    TermExpr round =
        pair(fst(pair(fst(v("in")), snd(v("in")))),
             snd(pair(fst(v("in")), snd(v("in")))));
    ClassId lhs = g.addTerm(round);
    ClassId rhs = g.addTerm(v("in"));
    SaturationStats stats = g.saturate(pairAlgebraRules());
    EXPECT_TRUE(g.equivalent(lhs, rhs));
    EXPECT_GT(stats.applications, 0u);
}

TEST(EGraph, ExtractFindsMinimalTerm)
{
    EGraph g;
    ClassId cls = g.addTerm(fst(pair(v("a"), v("b"))));
    g.saturate(pairAlgebraRules());
    Result<TermExpr> best = g.extract(cls);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best.value(), v("a"));
}

TEST(EGraph, ExtractMinimizesDeepTerm)
{
    EGraph g;
    TermExpr deep = pair(fst(pair(v("a"), fst(pair(v("b"), v("c"))))),
                         snd(pair(v("a"), v("b"))));
    ClassId cls = g.addTerm(deep);
    g.saturate(pairAlgebraRules());
    Result<TermExpr> best = g.extract(cls);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best.value(), pair(v("a"), v("b")));
    EXPECT_LT(best.value().size(), deep.size());
}

TEST(EGraph, DistinctVariablesStayDistinct)
{
    EGraph g;
    ClassId a = g.addTerm(v("a"));
    ClassId b = g.addTerm(v("b"));
    g.saturate(pairAlgebraRules());
    EXPECT_FALSE(g.equivalent(a, b));
}

TEST(EGraph, SaturationRespectsNodeLimit)
{
    // The structural (associativity) rules keep generating new
    // nestings; a tiny node budget must stop the run unsaturated.
    EGraph g;
    g.addTerm(pair(pair(v("a"), v("b")), pair(v("c"), v("d"))));
    SaturationStats stats = g.saturate(pairStructuralRules(), 50, 5);
    EXPECT_FALSE(stats.saturated);
}

TEST(EGraph, NumClassesShrinksOnMerge)
{
    EGraph g;
    ClassId a = g.addTerm(v("a"));
    ClassId b = g.addTerm(v("b"));
    std::size_t before = g.numClasses();
    g.merge(a, b);
    g.rebuild();
    EXPECT_EQ(g.numClasses(), before - 1);
}

}  // namespace
}  // namespace graphiti::eg
