/**
 * @file
 * Tests of the service observability plane (label: obs).
 *
 * The contracts under test (docs/service_observability.md):
 *   - structured logging: bounded ring, level filter, JSON-lines file
 *     mirror, monotonic timestamps;
 *   - spans: thread-safe tracking forwarded to one PerfettoTraceSink,
 *     one track per correlation id;
 *   - flight recorder: deterministic ring truncation, atomic dump and
 *     parse round-trip;
 *   - correlation: the id minted client-side rides every retry of one
 *     logical request, survives shed-then-resubmit, and comes back on
 *     every JobResponse — and the daemon's flight recorder stitches
 *     the shed and the eventual completion into one story;
 *   - introspection: stats / jobs / health round-trip over the wire,
 *     including a live running-job entry with deadline remaining;
 *   - neutrality: verdicts are byte-identical with the observer
 *     attached, detached, and against the one-shot compiler, at
 *     every thread count;
 *   - under fire: concurrent stats/jobs/health polling during a
 *     misbehaving-client soak stays answered (and TSan-clean when the
 *     suite runs under TSan).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "core/job.hpp"
#include "dot/dot.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "served/client.hpp"
#include "served/daemon.hpp"
#include "served/observe.hpp"
#include "served/scheduler.hpp"

namespace graphiti {
namespace {

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

std::string
socketPath(const std::string& tag)
{
    return "/tmp/graphiti-obs-" + tag + "-" +
           std::to_string(::getpid()) + ".sock";
}

CompileOptions
tightOptions()
{
    CompileOptions options;
    options.governed_verify = true;
    options.verify_budget.max_states = 800;
    options.verify_budget.partial_max_states = 300;
    options.verify_budget.input_budget = 1;
    options.verify_budget.trace_walks = 2;
    options.verify_budget.trace.max_steps = 60;
    options.verify_budget.trace.max_inputs = 2;
    return options;
}

std::string
gcdDot()
{
    return printDot(circuits::buildGcdInOrder());
}

JobSpec
verifySpec(const std::string& dot)
{
    JobSpec spec;
    spec.kind = "verify";
    spec.circuit_dot = dot;
    spec.options = tightOptions();
    spec.options.num_tags = 4;
    return spec;
}

/** A job that cannot finish before its deadline: an effectively
 * unbounded exploration, cut off by the per-job StopToken. Used to
 * pin the single worker (and the queue slot) for a known duration. */
JobSpec
blockerSpec(const std::string& dot, std::uint64_t salt)
{
    JobSpec spec = verifySpec(dot);
    spec.options.verify_cache = false;
    spec.options.verify_budget.max_states = 100'000'000;
    spec.options.verify_budget.partial_max_states = 100'000'000;
    spec.options.verify_budget.input_budget = 4;
    spec.options.verify_budget.seed = salt;
    return spec;
}

served::ClientConfig
clientConfig(const std::string& socket_path)
{
    served::ClientConfig config;
    config.socket_path = socket_path;
    config.sleep_between_retries = false;
    return config;
}

// ---------------------------------------------------------------------
// Logger.
// ---------------------------------------------------------------------

TEST(ObsServiceLog, RingKeepsTheNewestAndCountsEvictions)
{
    obs::Logger logger(3);
    for (int i = 0; i < 7; ++i)
        logger.log(obs::LogLevel::Info, "job-" + std::to_string(i),
                   "event", obs::logFields("i", i));
    EXPECT_EQ(logger.recorded(), 7u);
    EXPECT_EQ(logger.dropped(), 4u);

    std::vector<obs::LogRecord> tail = logger.tail(10);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail.front().job_id, "job-4");  // oldest survivor
    EXPECT_EQ(tail.back().job_id, "job-6");
    // Monotonic timestamps on one shared clock.
    EXPECT_LE(tail.front().t_ms, tail.back().t_ms);

    obs::json::Value doc = logger.toJson();
    EXPECT_EQ(doc.find("recorded")->asNumber(), 7);
    EXPECT_EQ(doc.find("dropped")->asNumber(), 4);
    EXPECT_EQ(doc.find("records")->asArray().size(), 3u);
}

TEST(ObsServiceLog, MinLevelFiltersAndFileMirrorsJsonLines)
{
    std::string path = tempPath("obs-service-log.jsonl");
    std::remove(path.c_str());

    obs::Logger logger(16);
    ASSERT_TRUE(logger.openFile(path).ok());
    logger.setMinLevel(obs::LogLevel::Warn);
    logger.log(obs::LogLevel::Debug, "j1", "quiet.event");
    logger.log(obs::LogLevel::Error, "j2", "loud.event",
               obs::logFields("reason", "wedge"));
    EXPECT_EQ(logger.recorded(), 1u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u);
    Result<obs::json::Value> parsed = obs::json::parse(lines[0]);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value().find("event")->asString(), "loud.event");
    EXPECT_EQ(parsed.value().find("job_id")->asString(), "j2");
    EXPECT_EQ(parsed.value().find("level")->asString(), "error");
    EXPECT_EQ(
        parsed.value().find("fields")->find("reason")->asString(),
        "wedge");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

TEST(ObsServiceSpan, RecordsForwardToThePerfettoSink)
{
    auto sink = std::make_shared<obs::PerfettoTraceSink>();
    obs::SpanTracker tracker(8);
    tracker.attachSink(sink);

    tracker.record("job-1", "queue-wait", 1.0, 3.0);
    tracker.record("job-1", "execute", 3.0, 10.0);
    tracker.record("job-2", "execute", 4.0, 6.0);

    EXPECT_EQ(tracker.recorded(), 3u);
    std::vector<obs::SpanRecord> tail = tracker.tail(10);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail[0].track, "job-1");
    EXPECT_EQ(tail[0].name, "queue-wait");
    EXPECT_DOUBLE_EQ(tail[1].duration_ms, 7.0);

    // The sink saw the same spans, grouped by track.
    std::string trace = sink->toJson().dump();
    EXPECT_NE(trace.find("queue-wait"), std::string::npos);
    EXPECT_NE(trace.find("execute"), std::string::npos);
    EXPECT_NE(trace.find("job-1"), std::string::npos);
    EXPECT_NE(trace.find("job-2"), std::string::npos);
}

TEST(ObsServiceSpan, ConcurrentRecordingIsLossBoundedAndSafe)
{
    obs::SpanTracker tracker(64);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&tracker, t] {
            for (int i = 0; i < 100; ++i)
                tracker.record("t" + std::to_string(t), "op",
                               i * 1.0, i * 1.0 + 0.5);
        });
    for (std::thread& thread : threads)
        thread.join();
    EXPECT_EQ(tracker.recorded(), 400u);
    EXPECT_EQ(tracker.dropped(), 400u - 64u);
    EXPECT_EQ(tracker.tail(1000).size(), 64u);
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

TEST(ObsServiceFlight, DeterministicRingTruncation)
{
    obs::FlightRecorder recorder(4);
    for (int i = 0; i < 10; ++i)
        recorder.record(i % 2 == 0 ? "job" : "sched",
                        obs::logFields("i", i));
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.recorded(), 10u);
    EXPECT_EQ(recorder.dropped(), 6u);

    obs::json::Value doc = recorder.toJson();
    const obs::json::Value* records = doc.find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->asArray().size(), 4u);
    // Exactly the last four, in order, kinds alternating.
    for (int k = 0; k < 4; ++k) {
        const obs::json::Value& record = records->asArray()[k];
        EXPECT_EQ(record.find("i")->asNumber(), 6 + k);
        EXPECT_EQ(record.find("kind")->asString(),
                  (6 + k) % 2 == 0 ? "job" : "sched");
        EXPECT_TRUE(record.find("t_ms") != nullptr);
    }
}

TEST(ObsServiceFlight, DumpIsAtomicAndParsesBack)
{
    std::string path = tempPath("obs-service-flight.json");
    std::remove(path.c_str());

    obs::FlightRecorder recorder(8);
    recorder.record("sched", obs::logFields("event", "shed", "job_id",
                                            "j-1", "reason",
                                            "queue full"));
    recorder.record("job", obs::logFields("job_id", "j-1", "status",
                                          "ok"));
    ASSERT_TRUE(recorder.dumpTo(path).ok());
    // Atomic discipline: no temp file left behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<obs::json::Value> parsed = obs::json::parse(buffer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const obs::json::Value* records = parsed.value().find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->asArray().size(), 2u);
    EXPECT_EQ(records->asArray()[0].find("reason")->asString(),
              "queue full");
    EXPECT_EQ(records->asArray()[1].find("status")->asString(), "ok");
    std::remove(path.c_str());

    // dump() without a configured path is a structured error.
    EXPECT_FALSE(recorder.dump().ok());
}

// ---------------------------------------------------------------------
// Per-verb accounting.
// ---------------------------------------------------------------------

TEST(ObsServiceVerbs, ReservoirsAreKeyedByVerbAndSplitByPhase)
{
    served::ServiceObserver observer;
    // A cheap verb and an expensive verb must never share a window —
    // the regression this fixes: one reservoir for all kinds let ping
    // traffic mask a slow verify p99.
    for (int i = 0; i < 10; ++i)
        observer.recordVerb("ping", "ok", 0.1, 0.2);
    for (int i = 0; i < 10; ++i)
        observer.recordVerb("verify", "ok", 5.0, 50.0);
    observer.recordVerb("verify", "rejected", 0.0, 0.0);
    observer.recordVerb("verify", "error", 1.0, 2.0);
    observer.recordVerb("verify", "cancelled", 1.0, 2.0);

    obs::json::Value verbs = observer.verbsJson();
    const obs::json::Value* ping = verbs.find("ping");
    const obs::json::Value* verify = verbs.find("verify");
    ASSERT_NE(ping, nullptr);
    ASSERT_NE(verify, nullptr);

    EXPECT_EQ(ping->find("requests")->asNumber(), 10);
    EXPECT_EQ(verify->find("requests")->asNumber(), 13);
    EXPECT_EQ(verify->find("ok")->asNumber(), 10);
    EXPECT_EQ(verify->find("shed")->asNumber(), 1);
    EXPECT_EQ(verify->find("errors")->asNumber(), 1);
    EXPECT_EQ(verify->find("cancelled")->asNumber(), 1);

    // The split: ping p50 stays sub-millisecond, verify p50 stays
    // honest, and the shed request contributed to no window (it never
    // queued or ran).
    EXPECT_LT(ping->find("execute")->find("p50")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(
        verify->find("execute")->find("p50")->asNumber(), 50.0);
    EXPECT_DOUBLE_EQ(
        verify->find("queue_wait")->find("p50")->asNumber(), 5.0);
    EXPECT_EQ(verify->find("execute")->find("count")->asNumber(), 12);
}

// ---------------------------------------------------------------------
// Correlation ids across retry and shed-then-resubmit.
// ---------------------------------------------------------------------

TEST(ObsServiceDaemon, CorrelationIdRidesEveryResponse)
{
    std::string path = socketPath("corr-basic");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler.workers = 1;
    config.scheduler.queue_capacity = 4;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());

    served::Client client(clientConfig(path));
    JobSpec ping;
    ping.kind = "ping";

    // Client-minted id comes back verbatim.
    Result<served::JobResponse> first = client.request(ping);
    ASSERT_TRUE(first.ok()) << first.error().message;
    EXPECT_EQ(first.value().job_id, client.lastJobId());
    EXPECT_FALSE(first.value().job_id.empty());
    EXPECT_EQ(first.value().job_id.substr(0, 2), "c-");

    // A caller-provided id wins over minting.
    Result<served::JobResponse> named =
        client.request(ping, 0.0, "req-42");
    ASSERT_TRUE(named.ok()) << named.error().message;
    EXPECT_EQ(named.value().job_id, "req-42");
    EXPECT_EQ(client.lastJobId(), "req-42");

    // Distinct logical requests get distinct minted ids.
    Result<served::JobResponse> second = client.request(ping);
    ASSERT_TRUE(second.ok());
    EXPECT_NE(second.value().job_id, first.value().job_id);
    daemon.stop();
}

TEST(ObsServiceDaemon, CorrelationIdSurvivesShedThenResubmit)
{
    std::string path = socketPath("corr-shed");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler.workers = 1;
    config.scheduler.queue_capacity = 1;
    auto observer = std::make_shared<served::ServiceObserver>();
    config.scheduler.observer = observer;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());

    const std::string dot = gcdDot();

    // Pin the single worker and fill the one queue slot with jobs
    // that cannot finish before their deadlines.
    std::vector<std::thread> blockers;
    for (std::uint64_t b = 0; b < 2; ++b)
        blockers.emplace_back([&, b] {
            served::Client blocker(clientConfig(path));
            (void)blocker.request(blockerSpec(dot, 7000 + b), 1.2);
        });

    // Wait until the daemon reports worker busy + queue full; the
    // introspection verbs bypass the queue, so this works under load.
    served::Client prober(clientConfig(path));
    bool saturated = false;
    for (int i = 0; i < 400 && !saturated; ++i) {
        Result<obs::json::Value> jobs = prober.serviceJobs();
        ASSERT_TRUE(jobs.ok()) << jobs.error().message;
        saturated = jobs.value().find("running")->asNumber() == 1 &&
                    jobs.value().find("queued")->asNumber() == 1;
        if (!saturated)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(saturated) << "blockers never saturated the daemon";

    // Now the real request: first attempt is shed, the retries carry
    // the SAME correlation id, and once the blockers' deadlines fire
    // it is admitted and answered under that id.
    served::ClientConfig cc = clientConfig(path);
    cc.sleep_between_retries = true;
    cc.backoff.base_ms = 20.0;
    cc.backoff.cap_ms = 100.0;
    cc.backoff.max_attempts = 200;
    served::Client client(cc);
    JobSpec spec = verifySpec(dot);
    Result<served::JobResponse> response = client.request(spec);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(response.value().status, "ok")
        << response.value().error;
    std::string id = client.lastJobId();
    EXPECT_EQ(response.value().job_id, id);
    EXPECT_GE(client.stats().sheds_seen, 1u)
        << "the saturated daemon should have shed at least once";

    daemon.stop();
    for (std::thread& blocker : blockers)
        blocker.join();

#if GRAPHITI_OBS_ENABLED
    // The flight recorder stitched the story: the same id appears in
    // a shed scheduler record AND in the final completed-job record.
    obs::json::Value flight = observer->flight().toJson();
    bool shed_seen = false, done_seen = false;
    for (const obs::json::Value& record :
         flight.find("records")->asArray()) {
        const obs::json::Value* record_id = record.find("job_id");
        if (record_id == nullptr || record_id->asString() != id)
            continue;
        const std::string kind = record.find("kind")->asString();
        const obs::json::Value* event = record.find("event");
        if (kind == "sched" && event != nullptr &&
            event->asString() == "shed") {
            shed_seen = true;
            EXPECT_FALSE(record.find("reason")->asString().empty());
        }
        if (kind == "job" &&
            record.find("status")->asString() == "ok")
            done_seen = true;
    }
    EXPECT_TRUE(shed_seen)
        << "no flight record of the shed under id " << id;
    EXPECT_TRUE(done_seen)
        << "no flight record of the completion under id " << id;
#endif
}

// ---------------------------------------------------------------------
// Introspection round-trips.
// ---------------------------------------------------------------------

TEST(ObsServiceDaemon, StatsJobsHealthRoundTripOnTheWire)
{
    std::string path = socketPath("introspect");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler.workers = 2;
    config.scheduler.queue_capacity = 4;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());
    served::Client client(clientConfig(path));

    JobSpec ping;
    ping.kind = "ping";
    ASSERT_TRUE(client.request(ping).ok());

    // stats: connection counters, per-verb windows, scheduler totals.
    Result<obs::json::Value> stats = client.serviceStats();
    ASSERT_TRUE(stats.ok()) << stats.error().message;
    EXPECT_GT(stats.value().find("uptime_seconds")->asNumber(), 0.0);
    const obs::json::Value* connections =
        stats.value().find("connections");
    ASSERT_NE(connections, nullptr);
    EXPECT_GE(connections->find("accepted")->asNumber(), 1);
    EXPECT_EQ(connections->find("malformed_frames")->asNumber(), 0);
    const obs::json::Value* verbs = stats.value().find("verbs");
    ASSERT_NE(verbs, nullptr);
    const obs::json::Value* ping_stats = verbs->find("ping");
    ASSERT_NE(ping_stats, nullptr);
    EXPECT_EQ(ping_stats->find("ok")->asNumber(), 1);
    ASSERT_NE(ping_stats->find("queue_wait"), nullptr);
    ASSERT_NE(ping_stats->find("execute"), nullptr);

    // health: lanes alive, store shape, listener identity.
    Result<obs::json::Value> health = client.serviceHealth();
    ASSERT_TRUE(health.ok()) << health.error().message;
    EXPECT_EQ(health.value().find("status")->asString(), "ok");
    const obs::json::Value* sched_health =
        health.value().find("scheduler");
    ASSERT_NE(sched_health, nullptr);
    EXPECT_TRUE(sched_health->find("accepting")->asBool());
    EXPECT_EQ(sched_health->find("workers_alive")->asNumber(), 2);
    EXPECT_EQ(sched_health->find("workers_configured")->asNumber(), 2);
    EXPECT_EQ(
        health.value().find("listeners")->find("socket_path")
            ->asString(),
        path);

    // jobs: empty when idle...
    Result<obs::json::Value> idle = client.serviceJobs();
    ASSERT_TRUE(idle.ok());
    EXPECT_EQ(idle.value().find("running")->asNumber(), 0);
    EXPECT_EQ(idle.value().find("jobs")->asArray().size(), 0u);

    // ...and a live entry, with deadline remaining and a phase, while
    // a deadlined blocker runs.
    std::thread blocker([&] {
        served::Client inner(clientConfig(path));
        (void)inner.request(blockerSpec(gcdDot(), 9100), 1.5);
    });
    bool seen_running = false;
    for (int i = 0; i < 400 && !seen_running; ++i) {
        Result<obs::json::Value> jobs = client.serviceJobs();
        ASSERT_TRUE(jobs.ok());
        for (const obs::json::Value& job :
             jobs.value().find("jobs")->asArray()) {
            if (job.find("phase")->asString() != "running")
                continue;
            seen_running = true;
            EXPECT_EQ(job.find("verb")->asString(), "verify");
            EXPECT_FALSE(job.find("job_id")->asString().empty());
            const obs::json::Value* remaining =
                job.find("deadline_remaining_ms");
            ASSERT_NE(remaining, nullptr);
            EXPECT_GT(remaining->asNumber(), 0.0);
            EXPECT_LE(remaining->asNumber(), 1500.0);
            ASSERT_NE(job.find("verify_rungs"), nullptr);
        }
        if (!seen_running)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(seen_running)
        << "the running blocker never showed in the job table";
    blocker.join();
    daemon.stop();
}

TEST(ObsServiceDaemon, ConnectionCountersNameEveryDropCause)
{
    std::string path = socketPath("conn-counters");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler.workers = 1;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());

    // One junk frame (parses as no JSON), one malformed request (JSON
    // but not a JobRequest), one clean EOF.
    {
        net::Socket raw = net::connectUnix(path).take();
        ASSERT_TRUE(
            net::writeAll(raw, served::encodeFrame("]junk["), 1000)
                .ok());
        std::string response;
        (void)served::readFrame(raw, response, 2000);
    }
    {
        net::Socket raw = net::connectUnix(path).take();
        ASSERT_TRUE(net::writeAll(
                        raw, served::encodeFrame("{\"not\":\"a request\"}"),
                        1000)
                        .ok());
        std::string response;
        (void)served::readFrame(raw, response, 2000);
    }
    {
        net::Socket raw = net::connectUnix(path).take();
        raw.close();  // connect then hang up: a clean EOF
    }

    // Poll: the daemon counts asynchronously to the close.
    served::Client client(clientConfig(path));
    bool counted = false;
    obs::json::Value last;
    for (int i = 0; i < 200 && !counted; ++i) {
        Result<obs::json::Value> stats = client.serviceStats();
        ASSERT_TRUE(stats.ok());
        last = *stats.value().find("connections");
        counted = last.find("malformed_frames")->asNumber() >= 1 &&
                  last.find("malformed_requests")->asNumber() >= 1 &&
                  last.find("clean_eofs")->asNumber() >= 1;
        if (!counted)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(counted) << last.dump(2);
    daemon.stop();
}

// ---------------------------------------------------------------------
// Neutrality: the plane must not touch verdicts.
// ---------------------------------------------------------------------

TEST(ObsServiceDaemon, VerdictsByteIdenticalWithObserverOnAndOff)
{
    const std::string dot = gcdDot();
    JobSpec spec = verifySpec(dot);
    spec.options.verify_cache = false;

    // One-shot baseline.
    Compiler compiler;
    CompileOptions options = spec.options;
    Result<CompileReport> oneshot =
        compiler.compileDot(spec.circuit_dot, options);
    ASSERT_TRUE(oneshot.ok()) << oneshot.error().message;
    std::string baseline = oneshot.value().verdict.toJson().dump(2);

    for (std::size_t threads : {1, 2, 8}) {
        spec.options.threads = threads;
        for (bool observed : {true, false}) {
            served::SchedulerConfig config;
            config.workers = 2;
            config.queue_capacity = 8;
            if (observed)
                config.observer =
                    std::make_shared<served::ServiceObserver>();
            served::Scheduler scheduler(config);
            ASSERT_TRUE(scheduler.start().ok());
            served::JobOutcome outcome =
                scheduler.submitAndWait("t", spec);
            ASSERT_EQ(outcome.status, "ok") << outcome.error;
            const obs::json::Value* verdict =
                outcome.result.find("verdict");
            ASSERT_NE(verdict, nullptr);
            EXPECT_EQ(verdict->dump(2), baseline)
                << "threads " << threads << " observer "
                << (observed ? "on" : "off");
            scheduler.stop();
        }
    }
}

// ---------------------------------------------------------------------
// Introspection under fire.
// ---------------------------------------------------------------------

TEST(ObsServiceDaemon, StatsPollingStaysAnsweredDuringHostileSoak)
{
    std::string path = socketPath("soak");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler.workers = 2;
    config.scheduler.queue_capacity = 2;
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());
    const std::string dot = gcdDot();

    std::atomic<bool> done{false};
    std::atomic<std::size_t> polls_answered{0};

    // Three pollers hammer the introspection verbs concurrently.
    std::vector<std::thread> pollers;
    for (int p = 0; p < 3; ++p)
        pollers.emplace_back([&, p] {
            served::Client poller(clientConfig(path));
            while (!done.load()) {
                Result<obs::json::Value> answer =
                    p == 0   ? poller.serviceStats()
                    : p == 1 ? poller.serviceJobs()
                             : poller.serviceHealth();
                if (answer.ok())
                    polls_answered.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        });

    // Meanwhile: hostile traffic + real load.
    std::vector<std::thread> hostiles;
    for (int h = 0; h < 2; ++h)
        hostiles.emplace_back([&, h] {
            for (int i = 0; i < 12; ++i) {
                switch ((h + i) % 3) {
                    case 0: {  // junk payload
                        Result<net::Socket> raw =
                            net::connectUnix(path);
                        if (raw.ok())
                            (void)net::writeAll(
                                raw.value(),
                                served::encodeFrame("Z}no!{"),
                                500);
                        break;
                    }
                    case 1: {  // half a frame, then vanish
                        Result<net::Socket> raw =
                            net::connectUnix(path);
                        if (raw.ok()) {
                            std::string frame =
                                served::encodeFrame("{\"id\":1}");
                            (void)net::writeAll(
                                raw.value(),
                                frame.substr(0, frame.size() / 2),
                                500);
                        }
                        break;
                    }
                    default: {  // a real (tiny) job
                        served::Client worker(clientConfig(path));
                        JobSpec spec = verifySpec(dot);
                        spec.options.verify_budget.seed =
                            9000 + h * 100 + i;
                        (void)worker.request(spec, 2.0);
                        break;
                    }
                }
            }
        });
    for (std::thread& hostile : hostiles)
        hostile.join();
    done.store(true);
    for (std::thread& poller : pollers)
        poller.join();

    EXPECT_GT(polls_answered.load(), 0u);

    // The daemon is still healthy after the soak.
    served::Client client(clientConfig(path));
    Result<obs::json::Value> health = client.serviceHealth();
    ASSERT_TRUE(health.ok()) << health.error().message;
    EXPECT_EQ(health.value().find("status")->asString(), "ok");
    daemon.stop();
}

}  // namespace
}  // namespace graphiti
