/**
 * @file
 * Unit tests for the support library: values, tokens, results,
 * strings and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "support/result.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/token.hpp"

namespace graphiti {
namespace {

TEST(Value, DefaultIsUnit)
{
    Value v;
    EXPECT_TRUE(v.isUnit());
    EXPECT_EQ(v.toString(), "()");
}

TEST(Value, IntRoundTrip)
{
    Value v(std::int64_t{42});
    EXPECT_TRUE(v.isInt());
    EXPECT_EQ(v.asInt(), 42);
    EXPECT_EQ(v.toString(), "42");
}

TEST(Value, BoolRoundTrip)
{
    EXPECT_TRUE(Value(true).asBool());
    EXPECT_FALSE(Value(false).asBool());
    EXPECT_EQ(Value(true).toString(), "true");
}

TEST(Value, IntCoercesToBool)
{
    EXPECT_TRUE(Value(std::int64_t{7}).asBool());
    EXPECT_FALSE(Value(std::int64_t{0}).asBool());
}

TEST(Value, DoubleRoundTrip)
{
    Value v(2.5);
    EXPECT_TRUE(v.isDouble());
    EXPECT_DOUBLE_EQ(v.asDouble(), 2.5);
}

TEST(Value, ToDoubleCoercions)
{
    EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).toDouble(), 3.0);
    EXPECT_DOUBLE_EQ(Value(true).toDouble(), 1.0);
    EXPECT_DOUBLE_EQ(Value(1.5).toDouble(), 1.5);
}

TEST(Value, TupleConstructionAndAccess)
{
    Value v = Value::tuple(Value(1), Value(2));
    ASSERT_TRUE(v.isTuple());
    EXPECT_EQ(v.asTuple()[0].asInt(), 1);
    EXPECT_EQ(v.asTuple()[1].asInt(), 2);
    EXPECT_EQ(v.toString(), "(1, 2)");
}

TEST(Value, NestedTupleEquality)
{
    Value a = Value::tuple(Value(1), Value::tuple(Value(2), Value(true)));
    Value b = Value::tuple(Value(1), Value::tuple(Value(2), Value(true)));
    Value c = Value::tuple(Value(1), Value::tuple(Value(2), Value(false)));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Value, EqualityDistinguishesTypes)
{
    EXPECT_NE(Value(std::int64_t{1}), Value(true));
    EXPECT_NE(Value(std::int64_t{1}), Value(1.0));
    EXPECT_NE(Value(), Value(false));
}

TEST(Value, HashConsistentWithEquality)
{
    Value a = Value::tuple(Value(3), Value(4));
    Value b = Value::tuple(Value(3), Value(4));
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, WrongAccessorThrows)
{
    EXPECT_THROW(Value(1.5).asInt(), std::runtime_error);
    EXPECT_THROW(Value(std::int64_t{1}).asTuple(), std::runtime_error);
    EXPECT_THROW(Value().asBool(), std::runtime_error);
}

TEST(Token, TagRendering)
{
    Token t(Value(5), 3);
    EXPECT_EQ(t.toString(), "5#3");
    EXPECT_EQ(Token(Value(5)).toString(), "5");
}

TEST(Token, EqualityIncludesTag)
{
    EXPECT_NE(Token(Value(5), 1), Token(Value(5), 2));
    EXPECT_NE(Token(Value(5), 1), Token(Value(5)));
    EXPECT_EQ(Token(Value(5), 1), Token(Value(5), 1));
}

TEST(Result, ValueAndError)
{
    Result<int> good(7);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);

    Result<int> bad = err("broken");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().message, "broken");
    EXPECT_THROW(bad.value(), std::runtime_error);
}

TEST(Result, ContextPrefixesMessage)
{
    Result<int> bad = Result<int>(err("inner")).withContext("outer");
    EXPECT_EQ(bad.error().message, "outer: inner");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinWithSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("operator:add", "operator"));
    EXPECT_FALSE(startsWith("op", "operator"));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.range(2, 4);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 4);
        saw_lo |= v == 2;
        saw_hi |= v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

}  // namespace
}  // namespace graphiti
