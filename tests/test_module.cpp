/**
 * @file
 * Unit tests for the denotation combinators (section 4.5): product
 * state layout, connect's transition fusion (including self-loops),
 * port renaming, and error paths.
 */

#include <gtest/gtest.h>

#include "semantics/module.hpp"

namespace graphiti {
namespace {

TEST(Denote, ProductStateIsOneSlotPerBase)
{
    ExprHigh g;
    g.addNode("a", "buffer");
    g.addNode("b", "fork", {{"out", "2"}});
    g.addNode("c", "sink");
    g.bindInput(0, PortRef{"a", "in0"});
    g.bindInput(1, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"a", "out0"});
    g.bindOutput(1, PortRef{"b", "out0"});
    g.connect("b", "out1", "c", "in0");
    Environment env;
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    EXPECT_EQ(mod.numSlots(), 3u);
    EXPECT_EQ(mod.initialState().comps.size(), 3u);
    // Slot order follows the lowering order.
    EXPECT_EQ(mod.slotName(0), "a");
    EXPECT_EQ(mod.slotName(2), "c");
}

TEST(Denote, ConnectFusesWithoutIntermediateInternalSteps)
{
    // fork -> join on both ports: the fused transitions move a token
    // from the fork queues into the join queues in one step each.
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("j", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.bindOutput(0, PortRef{"j", "out0"});
    g.connect("f", "out0", "j", "in0");
    g.connect("f", "out1", "j", "in1");
    Environment env;
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();

    GraphState s = mod.initialState();
    auto fed = mod.inputStep(s, LowPortId::ioPort(0), Token(Value(3)));
    ASSERT_EQ(fed.size(), 1u);
    // Two fused connection transitions are enabled (one per port).
    auto succs = mod.internalSteps(fed[0]);
    EXPECT_EQ(succs.size(), 2u);
}

TEST(Denote, SelfLoopConnectionWorks)
{
    // A merge feeding itself through one input: out0 -> in0, with io
    // on in1/...; the fused transition applies output and input to the
    // same component state sequentially.
    ExprHigh g;
    g.addNode("m", "merge");
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"m", "in1"});
    g.connect("m", "out0", "b", "in0");
    g.connect("b", "out0", "m", "in0");
    Environment env(4);
    Result<DenotedModule> mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env);
    ASSERT_TRUE(mod.ok()) << mod.error().message;
    GraphState s = mod.value().initialState();
    auto fed = mod.value().inputStep(s, LowPortId::ioPort(0),
                                     Token(Value(1)));
    ASSERT_EQ(fed.size(), 1u);
    // The token circulates forever: merge -> buffer -> merge -> ...
    GraphState cur = fed[0];
    for (int i = 0; i < 6; ++i) {
        auto succs = mod.value().internalSteps(cur);
        ASSERT_FALSE(succs.empty()) << "cycle step " << i;
        cur = succs[0];
    }
    EXPECT_EQ(cur.totalTokens(), 1u);
}

TEST(Denote, ExternalNamesAreSortedAndStable)
{
    ExprHigh g;
    g.addNode("a", "buffer");
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"a", "in0"});
    g.bindInput(1, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"a", "out0"});
    g.bindOutput(1, PortRef{"b", "out0"});
    Environment env;
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    ASSERT_EQ(mod.inputNames().size(), 2u);
    EXPECT_EQ(mod.inputNames()[0], LowPortId::ioPort(0));
    EXPECT_EQ(mod.inputNames()[1], LowPortId::ioPort(1));
}

TEST(Denote, DanglingPortsStayExternal)
{
    // A fork with one consumed and one dangling output: the dangling
    // port remains an external output under its identity name.
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("s", "sink");
    g.bindInput(0, PortRef{"f", "in0"});
    g.connect("f", "out0", "s", "in0");
    Environment env;
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    EXPECT_TRUE(mod.hasOutput(LowPortId::localPort("f", "out1")));
    EXPECT_FALSE(mod.hasOutput(LowPortId::localPort("f", "out0")));
}

TEST(Denote, DuplicatePortNamesRejected)
{
    // Hand-build an ExprLow whose two bases claim the same io input.
    LowBase a;
    a.inst = "a";
    a.type = "buffer";
    a.inputs["in0"] = LowPortId::ioPort(0);
    a.outputs["out0"] = LowPortId::ioPort(1);
    LowBase b = a;
    b.inst = "b";
    b.outputs["out0"] = LowPortId::ioPort(2);
    ExprLow expr =
        ExprLow::product(ExprLow::base(a), ExprLow::base(b));
    Environment env;
    EXPECT_FALSE(DenotedModule::denote(expr, env).ok());
}

TEST(Denote, ConnectOnMissingPortRejected)
{
    LowBase a;
    a.inst = "a";
    a.type = "buffer";
    a.inputs["in0"] = LowPortId::ioPort(0);
    a.outputs["out0"] = LowPortId::ioPort(1);
    ExprLow expr = ExprLow::connect(
        LowPortId::localPort("ghost", "out0"),
        LowPortId::localPort("a", "in0"), ExprLow::base(a));
    Environment env;
    EXPECT_FALSE(DenotedModule::denote(expr, env).ok());
}

}  // namespace
}  // namespace graphiti
