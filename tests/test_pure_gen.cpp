/**
 * @file
 * Unit tests for Pure generation (section 3.2): symbolic evaluation of
 * loop bodies, e-graph minimization, annotation of the generated Pure,
 * the region-closure requirement, and the side-effect guard.
 */

#include <gtest/gtest.h>

#include "bench_circuits/gcd.hpp"
#include "graph/signatures.hpp"
#include "rewrite/catalog.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "rewrite/pure_gen.hpp"
#include "semantics/executor.hpp"

namespace graphiti {
namespace {

/** Normalize the GCD circuit up to (but not including) pure-gen. */
ExprHigh
normalizedGcd(RewriteEngine& engine)
{
    for (RewriteDef& def : catalog::allRewrites())
        EXPECT_TRUE(engine.addRule(std::move(def)).ok());
    // Reuse the full pipeline to get the combined single loop; then
    // regenerate from the pre-pure-gen snapshot.
    Environment env;
    Result<PipelineResult> result = runOooPipeline(
        circuits::buildGcdInOrder(), env,
        {.num_tags = 2, .reexpand = false, .keep_snapshots = true});
    EXPECT_TRUE(result.ok());
    for (const PipelineSnapshot& snap : result.value().snapshots)
        if (snap.phase == "combine")
            return snap.graph;
    return ExprHigh{};
}

TEST(PureGen, GcdBodyCollapsesToCorrectFunction)
{
    RewriteEngine engine;
    ExprHigh g = normalizedGcd(engine);
    ASSERT_GT(g.numNodes(), 0u);

    std::vector<LoopInfo> loops = findLoops(g);
    ASSERT_EQ(loops.size(), 1u);

    Environment env;
    Result<PureGenResult> result =
        generatePureBody(g, loops[0], env, engine);
    ASSERT_TRUE(result.ok()) << result.error().message;

    // The registered function computes one GCD iteration on (a, b):
    // ((b, a % b), a % b != 0).
    const PureFn* fn = env.functions().find(result.value().fn_name);
    ASSERT_NE(fn, nullptr);
    Value out = (*fn)(Value::tuple(Value(48), Value(18)));
    EXPECT_EQ(out.asTuple()[0],
              Value::tuple(Value(18), Value(48 % 18)));
    EXPECT_TRUE(out.asTuple()[1].asBool());

    Value done = (*fn)(Value::tuple(Value(18), Value(6)));
    EXPECT_EQ(done.asTuple()[0], Value::tuple(Value(6), Value(0)));
    EXPECT_FALSE(done.asTuple()[1].asBool());
}

TEST(PureGen, AnnotatesLatencyAndInventory)
{
    RewriteEngine engine;
    ExprHigh g = normalizedGcd(engine);
    std::vector<LoopInfo> loops = findLoops(g);
    ASSERT_EQ(loops.size(), 1u);
    Environment env;
    Result<PureGenResult> result =
        generatePureBody(g, loops[0], env, engine);
    ASSERT_TRUE(result.ok()) << result.error().message;

    const NodeDecl* pure =
        result.value().graph.findNode(result.value().pure_node);
    ASSERT_NE(pure, nullptr);
    // The modulo (annotated latency 4 in the builder, per figure 2's
    // pipelined unit) dominates the critical path.
    EXPECT_GE(attrInt(pure->attrs, "latency", 0), 4);
    std::string absorbed = attrStr(pure->attrs, "absorbed", "");
    EXPECT_NE(absorbed.find("operator:mod"), std::string::npos);
    EXPECT_NE(absorbed.find("operator:ne"), std::string::npos);
    EXPECT_NE(absorbed.find("constant"), std::string::npos);
}

TEST(PureGen, MinimizationShrinksTheTerm)
{
    RewriteEngine engine;
    ExprHigh g = normalizedGcd(engine);
    std::vector<LoopInfo> loops = findLoops(g);
    ASSERT_EQ(loops.size(), 1u);
    Environment env;
    Result<PureGenResult> result =
        generatePureBody(g, loops[0], env, engine);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().term_size_after,
              result.value().term_size_before);
}

TEST(PureGen, GeneratedGraphStillComputesGcd)
{
    RewriteEngine engine;
    ExprHigh g = normalizedGcd(engine);
    std::vector<LoopInfo> loops = findLoops(g);
    ASSERT_EQ(loops.size(), 1u);
    Environment env;
    Result<PureGenResult> result =
        generatePureBody(g, loops[0], env, engine);
    ASSERT_TRUE(result.ok());

    DenotedModule mod =
        DenotedModule::denote(
            lowerToExprLow(result.value().graph).value(), env)
            .take();
    Executor exec(mod);
    ASSERT_TRUE(exec.feedIo(0, Value(48)));
    ASSERT_TRUE(exec.feedIo(1, Value(18)));
    auto out = exec.pullIo(0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->value.asInt(), 6);
}

TEST(PureGen, RefusesSideEffectingBody)
{
    LoopInfo loop;
    loop.mux = "m";
    loop.branch = "b";
    loop.init = "i";
    loop.has_side_effects = true;
    Environment env;
    RewriteEngine engine;
    ExprHigh g;
    g.addNode("m", "mux");
    Result<PureGenResult> result =
        generatePureBody(g, loop, env, engine);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("store"), std::string::npos);
}

TEST(FindLoops, DetectsGcdLoops)
{
    ExprHigh g = circuits::buildGcdInOrder();
    std::vector<LoopInfo> loops = findLoops(g);
    ASSERT_EQ(loops.size(), 2u);  // one per loop variable
    for (const LoopInfo& loop : loops) {
        EXPECT_FALSE(loop.has_side_effects);
        EXPECT_FALSE(loop.body.empty());
    }
}

TEST(FindLoops, NoLoopsInStraightLine)
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    EXPECT_TRUE(findLoops(g).empty());
}

TEST(FindLoops, GroupSideEffectsIgnoreExitStores)
{
    // matvec stores its *result* after the loop exits; the group-level
    // side-effect check must not flag it.
    ExprHigh g = circuits::buildGcdInOrder();
    std::vector<LoopInfo> loops = findLoops(g);
    EXPECT_FALSE(groupHasSideEffects(g, loops));
}

}  // namespace
}  // namespace graphiti
