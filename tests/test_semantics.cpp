/**
 * @file
 * Unit tests for the executable module semantics: each component of
 * the catalog, the environment, and the denotation combinators.
 */

#include <gtest/gtest.h>

#include "semantics/component.hpp"
#include "semantics/environment.hpp"
#include "semantics/executor.hpp"
#include "semantics/module.hpp"

namespace graphiti {
namespace {

Token
tok(std::int64_t v)
{
    return Token(Value(v));
}

Token
tokTagged(std::int64_t v, Tag t)
{
    return Token(Value(v), t);
}

CompState
feed(const Component& c, const CompState& s, int port, Token t)
{
    auto succ = c.acceptInput(s, port, std::move(t));
    EXPECT_EQ(succ.size(), 1u);
    return succ.at(0);
}

TEST(Fork, DuplicatesTokenToAllOutputs)
{
    ComponentPtr fork = makeFork(3, kUnbounded);
    CompState s = feed(*fork, fork->initialState(), 0, tok(7));
    for (int port = 0; port < 3; ++port) {
        auto out = fork->emitOutput(s, port);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0].first.value.asInt(), 7);
    }
}

TEST(Fork, OutputsDrainIndependently)
{
    ComponentPtr fork = makeFork(2, kUnbounded);
    CompState s = feed(*fork, fork->initialState(), 0, tok(1));
    s = feed(*fork, s, 0, tok(2));
    auto out = fork->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 1);
    s = out[0].second;
    // Output 1 still sees both tokens in order.
    auto out1 = fork->emitOutput(s, 1);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(out1[0].first.value.asInt(), 1);
}

TEST(Fork, RefusesWhenBounded)
{
    ComponentPtr fork = makeFork(2, 1);
    CompState s = feed(*fork, fork->initialState(), 0, tok(1));
    EXPECT_TRUE(fork->acceptInput(s, 0, tok(2)).empty());
}

TEST(Join, SynchronizesIntoTuple)
{
    ComponentPtr join = makeJoin(2, kUnbounded);
    CompState s = join->initialState();
    EXPECT_TRUE(join->emitOutput(s, 0).empty());
    s = feed(*join, s, 0, tok(1));
    EXPECT_TRUE(join->emitOutput(s, 0).empty());
    s = feed(*join, s, 1, tok(2));
    auto out = join->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value, Value::tuple(Value(1), Value(2)));
}

TEST(Join, ThreeWayIsRightNested)
{
    ComponentPtr join = makeJoin(3, kUnbounded);
    CompState s = join->initialState();
    s = feed(*join, s, 0, tok(1));
    s = feed(*join, s, 1, tok(2));
    s = feed(*join, s, 2, tok(3));
    auto out = join->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value,
              Value::tuple(Value(1), Value::tuple(Value(2), Value(3))));
}

TEST(Join, MismatchedTagsBlock)
{
    ComponentPtr join = makeJoin(2, kUnbounded);
    CompState s = join->initialState();
    s = feed(*join, s, 0, tokTagged(1, 0));
    s = feed(*join, s, 1, tokTagged(2, 1));
    EXPECT_TRUE(join->emitOutput(s, 0).empty());
}

TEST(Join, UntaggedMatchesTagged)
{
    ComponentPtr join = makeJoin(2, kUnbounded);
    CompState s = join->initialState();
    s = feed(*join, s, 0, tokTagged(1, 3));
    s = feed(*join, s, 1, tok(2));
    auto out = join->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.tag, Tag{3});
}

TEST(Split, SplitsPairAfterInternalStep)
{
    ComponentPtr split = makeSplit(kUnbounded);
    CompState s = split->initialState();
    Token pair(Value::tuple(Value(1), Value(2)));
    pair.tag = 5;
    s = feed(*split, s, 0, pair);
    auto steps = split->internalSteps(s);
    ASSERT_EQ(steps.size(), 1u);
    s = steps[0];
    auto left = split->emitOutput(s, 0);
    auto right = split->emitOutput(s, 1);
    ASSERT_EQ(left.size(), 1u);
    ASSERT_EQ(right.size(), 1u);
    EXPECT_EQ(left[0].first.value.asInt(), 1);
    EXPECT_EQ(right[0].first.value.asInt(), 2);
    EXPECT_EQ(left[0].first.tag, Tag{5});
    EXPECT_EQ(right[0].first.tag, Tag{5});
}

TEST(Split, RefusesNonPair)
{
    ComponentPtr split = makeSplit(kUnbounded);
    EXPECT_TRUE(split->acceptInput(split->initialState(), 0, tok(3))
                    .empty());
}

TEST(Branch, RoutesByCondition)
{
    ComponentPtr branch = makeBranch(kUnbounded);
    CompState s = branch->initialState();
    s = feed(*branch, s, 0, tok(9));
    s = feed(*branch, s, 1, Token(Value(true)));
    EXPECT_TRUE(branch->emitOutput(s, 1).empty());
    auto out = branch->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 9);

    CompState s2 = branch->initialState();
    s2 = feed(*branch, s2, 0, tok(9));
    s2 = feed(*branch, s2, 1, Token(Value(false)));
    EXPECT_TRUE(branch->emitOutput(s2, 0).empty());
    EXPECT_EQ(branch->emitOutput(s2, 1).size(), 1u);
}

TEST(Mux, SelectsByCondition)
{
    ComponentPtr mux = makeMux(kUnbounded);
    CompState s = mux->initialState();
    s = feed(*mux, s, 1, tok(10));  // true data
    s = feed(*mux, s, 2, tok(20));  // false data
    s = feed(*mux, s, 0, Token(Value(false)));
    auto out = mux->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 20);
    s = out[0].second;
    // true data still queued, no condition left
    EXPECT_TRUE(mux->emitOutput(s, 0).empty());
}

TEST(Mux, BlocksUntilSelectedInputArrives)
{
    ComponentPtr mux = makeMux(kUnbounded);
    CompState s = mux->initialState();
    s = feed(*mux, s, 0, Token(Value(true)));
    s = feed(*mux, s, 2, tok(20));  // only the false input present
    EXPECT_TRUE(mux->emitOutput(s, 0).empty());
}

TEST(Merge, IsNondeterministicWhenBothPresent)
{
    ComponentPtr merge = makeMerge(kUnbounded);
    CompState s = merge->initialState();
    s = feed(*merge, s, 0, tok(1));
    s = feed(*merge, s, 1, tok(2));
    auto out = merge->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[0].first.value.asInt(), out[1].first.value.asInt());
}

TEST(Init, ProducesInitialTokenThenQueues)
{
    ComponentPtr init = makeInit(false, kUnbounded);
    CompState s = init->initialState();
    auto first = init->emitOutput(s, 0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_FALSE(first[0].first.value.asBool());
    s = first[0].second;
    EXPECT_TRUE(init->emitOutput(s, 0).empty());
    s = feed(*init, s, 0, Token(Value(true)));
    auto second = init->emitOutput(s, 0);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].first.value.asBool());
}

TEST(Operator, ComputesAtOutput)
{
    ComponentPtr mod = makeOperator("mod", kUnbounded);
    CompState s = mod->initialState();
    s = feed(*mod, s, 0, tok(17));
    s = feed(*mod, s, 1, tok(5));
    auto out = mod->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 2);
}

TEST(Operator, DivisionByZeroIsStuck)
{
    ComponentPtr mod = makeOperator("mod", kUnbounded);
    CompState s = mod->initialState();
    s = feed(*mod, s, 0, tok(17));
    s = feed(*mod, s, 1, tok(0));
    EXPECT_TRUE(mod->emitOutput(s, 0).empty());
}

TEST(Operator, TagMismatchBlocks)
{
    ComponentPtr add = makeOperator("add", kUnbounded);
    CompState s = add->initialState();
    s = feed(*add, s, 0, tokTagged(1, 0));
    s = feed(*add, s, 1, tokTagged(2, 1));
    EXPECT_TRUE(add->emitOutput(s, 0).empty());
}

TEST(Pure, AppliesFunctionPreservingTag)
{
    ComponentPtr pure = makePure(
        "inc", [](const Value& v) { return Value(v.asInt() + 1); },
        kUnbounded);
    CompState s = pure->initialState();
    s = feed(*pure, s, 0, tokTagged(41, 2));
    auto out = pure->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 42);
    EXPECT_EQ(out[0].first.tag, Tag{2});
}

TEST(Constant, ReleasedByControlToken)
{
    ComponentPtr c = makeConstant(Value(std::int64_t{5}), kUnbounded);
    CompState s = c->initialState();
    EXPECT_TRUE(c->emitOutput(s, 0).empty());
    s = feed(*c, s, 0, Token(Value()));
    auto out = c->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 5);
}

TEST(SinkAndSource, Behave)
{
    ComponentPtr sink = makeSink(kUnbounded);
    EXPECT_EQ(sink->acceptInput(sink->initialState(), 0, tok(1)).size(),
              1u);
    ComponentPtr source = makeSource();
    EXPECT_EQ(source->emitOutput(source->initialState(), 0).size(), 1u);
}

TEST(Tagger, TagsInAllocationOrderAndReorders)
{
    ComponentPtr tagger = makeTagger(4, kUnbounded);
    CompState s = tagger->initialState();
    s = feed(*tagger, s, 0, tok(100));
    s = feed(*tagger, s, 0, tok(200));

    // Two internal allocations hand out tags 0 and 1.
    s = tagger->internalSteps(s).at(0);
    s = tagger->internalSteps(s).at(0);
    auto t0 = tagger->emitOutput(s, 0);
    ASSERT_EQ(t0.size(), 1u);
    EXPECT_EQ(t0[0].first.tag, Tag{0});
    s = t0[0].second;
    auto t1 = tagger->emitOutput(s, 0);
    ASSERT_EQ(t1.size(), 1u);
    EXPECT_EQ(t1[0].first.tag, Tag{1});
    s = t1[0].second;

    // Results come back out of order; out1 restores program order.
    s = feed(*tagger, s, 1, tokTagged(222, 1));
    EXPECT_TRUE(tagger->emitOutput(s, 1).empty());
    s = feed(*tagger, s, 1, tokTagged(111, 0));
    auto o0 = tagger->emitOutput(s, 1);
    ASSERT_EQ(o0.size(), 1u);
    EXPECT_EQ(o0[0].first.value.asInt(), 111);
    EXPECT_FALSE(o0[0].first.tag.has_value());
    s = o0[0].second;
    auto o1 = tagger->emitOutput(s, 1);
    ASSERT_EQ(o1.size(), 1u);
    EXPECT_EQ(o1[0].first.value.asInt(), 222);
}

TEST(Tagger, BoundsInFlightTags)
{
    ComponentPtr tagger = makeTagger(1, kUnbounded);
    CompState s = tagger->initialState();
    s = feed(*tagger, s, 0, tok(1));
    s = feed(*tagger, s, 0, tok(2));
    s = tagger->internalSteps(s).at(0);
    // Only one tag exists; the second allocation must wait.
    EXPECT_TRUE(tagger->internalSteps(s).empty());
}

TEST(Tagger, RefusesUntaggedReturn)
{
    ComponentPtr tagger = makeTagger(2, kUnbounded);
    EXPECT_TRUE(
        tagger->acceptInput(tagger->initialState(), 1, tok(1)).empty());
}

TEST(Store, EmitsObservableEffect)
{
    ComponentPtr store = makeStore("mem", kUnbounded);
    CompState s = store->initialState();
    s = feed(*store, s, 0, tok(3));   // address
    s = feed(*store, s, 1, tok(42));  // data
    auto out = store->emitOutput(s, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value, Value::tuple(Value(3), Value(42)));
}

TEST(Environment, LookupCachesAndFails)
{
    Environment env;
    Result<ComponentPtr> a = env.lookup("mux", {});
    Result<ComponentPtr> b = env.lookup("mux", {});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().get(), b.value().get());
    EXPECT_FALSE(env.lookup("nope", {}).ok());
    EXPECT_FALSE(env.lookup("pure", {{"fn", "missing"}}).ok());
    EXPECT_FALSE(env.lookup("tagger", {{"tags", "0"}}).ok());
}

TEST(Environment, ParseConstantForms)
{
    EXPECT_EQ(parseConstant("42").value().asInt(), 42);
    EXPECT_TRUE(parseConstant("true").value().asBool());
    EXPECT_DOUBLE_EQ(parseConstant("2.5").value().asDouble(), 2.5);
    EXPECT_TRUE(parseConstant("unit").value().isUnit());
    EXPECT_FALSE(parseConstant("zebra").ok());
}

TEST(Denote, ForkModuloPipeline)
{
    // fork duplicates io0 into both operands of a modulo: x % x == 0.
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("m", "operator", {{"op", "mod"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.bindOutput(0, PortRef{"m", "out0"});
    g.connect("f", "out0", "m", "in0");
    g.connect("f", "out1", "m", "in1");

    Environment env;
    Result<ExprLow> low = lowerToExprLow(g);
    ASSERT_TRUE(low.ok());
    Result<DenotedModule> mod = DenotedModule::denote(low.value(), env);
    ASSERT_TRUE(mod.ok()) << mod.error().message;
    EXPECT_EQ(mod.value().inputNames().size(), 1u);
    EXPECT_EQ(mod.value().outputNames().size(), 1u);

    Executor exec(mod.value());
    EXPECT_TRUE(exec.feedIo(0, Value(7)));
    auto out = exec.pullIo(0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->value.asInt(), 0);
}

TEST(Denote, ConnectionsBecomeInternal)
{
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "b2", "in0");
    Environment env;
    Result<DenotedModule> mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env);
    ASSERT_TRUE(mod.ok());
    // Internal ports no longer appear externally.
    EXPECT_FALSE(mod.value().hasOutput(
        LowPortId::localPort("b1", "out0")));
    EXPECT_FALSE(mod.value().hasInput(LowPortId::localPort("b2", "in0")));

    GraphState s = mod.value().initialState();
    auto fed = mod.value().inputStep(s, LowPortId::ioPort(0),
                                     Token(Value(1)));
    ASSERT_EQ(fed.size(), 1u);
    // One fused internal transition moves the token between buffers.
    auto internal = mod.value().internalSteps(fed[0]);
    ASSERT_EQ(internal.size(), 1u);
    auto out = mod.value().outputStep(internal[0], LowPortId::ioPort(0));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first.value.asInt(), 1);
}

TEST(Denote, MissingEnvironmentEntryFails)
{
    ExprHigh g;
    g.addNode("p", "pure", {{"fn", "nothere"}});
    g.bindInput(0, PortRef{"p", "in0"});
    g.bindOutput(0, PortRef{"p", "out0"});
    Environment env;
    EXPECT_FALSE(
        DenotedModule::denote(lowerToExprLow(g).value(), env).ok());
}

}  // namespace
}  // namespace graphiti
