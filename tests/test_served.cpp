/**
 * @file
 * Tests of the compile service (label: served).
 *
 * The contracts under test (docs/service.md):
 *   - framing: length-prefixed JSON round-trips; truncation, junk and
 *     oversized lengths are structured errors, never hangs;
 *   - byte identity: a verdict served by the daemon is byte-identical
 *     to the one the same request produces in-process through
 *     Compiler::compileGraph, benchmark by benchmark, at every thread
 *     count;
 *   - overload honesty: a flood beyond queue capacity sheds with
 *     status "rejected" and a retry_after hint — nothing hangs,
 *     nothing is silently dropped;
 *   - crash safety: verdicts committed before kill() are cache hits
 *     after a restart from the same store directory;
 *   - misbehaving clients (half-written frames, junk payloads,
 *     mid-job disconnects, deadline-zero floods) never take the
 *     daemon down for the healthy ones.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "core/job.hpp"
#include "dot/dot.hpp"
#include "faults/connection_plan.hpp"
#include "faults/fault_plan.hpp"
#include "guard/verdict_store.hpp"
#include "guard/verify_cache.hpp"
#include "obs/latency.hpp"
#include "served/client.hpp"
#include "served/daemon.hpp"
#include "served/protocol.hpp"
#include "served/scheduler.hpp"
#include "support/backoff.hpp"
#include "support/socket.hpp"

namespace graphiti {
namespace {

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

/** A short unix-socket path unique to this process and @p tag (unix
 * socket paths are limited to ~108 bytes, so keep it in /tmp). */
std::string
socketPath(const std::string& tag)
{
    return "/tmp/graphiti-test-" + tag + "-" +
           std::to_string(::getpid()) + ".sock";
}

/** The test-suite verification budget: tight enough that even the big
 * benchmark circuits finish in milliseconds (the ladder degrades —
 * determinism, not assurance depth, is what these tests pin down). */
CompileOptions
tightOptions()
{
    CompileOptions options;
    options.governed_verify = true;
    options.verify_budget.max_states = 800;
    options.verify_budget.partial_max_states = 300;
    options.verify_budget.input_budget = 1;
    options.verify_budget.trace_walks = 2;
    options.verify_budget.trace.max_steps = 60;
    options.verify_budget.trace.max_inputs = 2;
    return options;
}

JobSpec
verifySpec(const std::string& dot, int num_tags = 4)
{
    JobSpec spec;
    spec.kind = "verify";
    spec.circuit_dot = dot;
    spec.options = tightOptions();
    spec.options.num_tags = num_tags;
    return spec;
}

std::string
gcdDot()
{
    return printDot(circuits::buildGcdInOrder());
}

/** A synthetic verdict distinguishable by @p salt. */
guard::VerificationVerdict
syntheticVerdict(std::uint64_t salt)
{
    guard::VerificationVerdict verdict;
    verdict.level = guard::VerificationLevel::BoundedPartial;
    verdict.ok = true;
    verdict.degradation_reason = "synthetic-" + std::to_string(salt);
    verdict.report.impl_states = salt;
    verdict.report.spec_states = salt + 1;
    return verdict;
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/** A connected (server, client) unix-socket pair. */
struct SocketPair
{
    net::Socket server;
    net::Socket client;

    explicit SocketPair(const std::string& tag)
    {
        std::string path = socketPath(tag);
        Result<net::Socket> listener = net::listenUnix(path);
        EXPECT_TRUE(listener.ok()) << listener.error().message;
        Result<net::Socket> connected = net::connectUnix(path);
        EXPECT_TRUE(connected.ok()) << connected.error().message;
        client = connected.take();
        Result<net::Socket> accepted =
            net::acceptConnection(listener.value(), 2000);
        EXPECT_TRUE(accepted.ok() && accepted.value().valid());
        server = accepted.take();
        std::remove(path.c_str());
    }
};

TEST(ServedProtocol, FramesRoundTripIncludingEmptyPayload)
{
    SocketPair pair("frame-rt");
    for (const std::string payload :
         {std::string("{\"id\":1}"), std::string(""),
          std::string(4096, 'x')}) {
        Result<bool> sent =
            served::writeFrame(pair.client, payload, 1000);
        ASSERT_TRUE(sent.ok()) << sent.error().message;
        std::string received;
        Result<bool> got =
            served::readFrame(pair.server, received, 1000);
        ASSERT_TRUE(got.ok()) << got.error().message;
        EXPECT_TRUE(got.value());
        EXPECT_EQ(received, payload);
    }
}

TEST(ServedProtocol, CleanEofIsFalseNotError)
{
    SocketPair pair("frame-eof");
    pair.client.close();
    std::string received;
    Result<bool> got = served::readFrame(pair.server, received, 1000);
    ASSERT_TRUE(got.ok()) << got.error().message;
    EXPECT_FALSE(got.value());  // peer done before the first byte
}

TEST(ServedProtocol, TruncatedFrameIsAnError)
{
    SocketPair pair("frame-trunc");
    std::string frame = served::encodeFrame("{\"id\":42}");
    ASSERT_GT(frame.size(), 5u);
    // Half the header plus one payload byte, then hang up.
    net::writeAll(pair.client, frame.substr(0, 5), 1000);
    pair.client.close();
    std::string received;
    Result<bool> got = served::readFrame(pair.server, received, 1000);
    EXPECT_FALSE(got.ok());
}

TEST(ServedProtocol, OversizedLengthRejectedBeforeAllocation)
{
    SocketPair pair("frame-big");
    // A header claiming kMaxFrameBytes + 1 bytes follow.
    std::uint32_t claimed =
        static_cast<std::uint32_t>(served::kMaxFrameBytes) + 1;
    std::string header(4, '\0');
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<char>((claimed >> (24 - 8 * i)) & 0xff);
    net::writeAll(pair.client, header, 1000);
    std::string received;
    Result<bool> got = served::readFrame(pair.server, received, 1000);
    ASSERT_FALSE(got.ok());
    EXPECT_NE(got.error().message.find("frame"), std::string::npos);
}

TEST(ServedProtocol, RequestAndResponseJsonRoundTrip)
{
    served::JobRequest request;
    request.id = 7;
    request.job = obs::json::Value{obs::json::Object{}};
    request.job.set("kind", "ping");
    request.deadline_seconds = 1.5;
    request.client = "alice";
    Result<served::JobRequest> request_back =
        served::jobRequestFromJson(request.toJson());
    ASSERT_TRUE(request_back.ok()) << request_back.error().message;
    EXPECT_EQ(request_back.value().id, 7u);
    EXPECT_EQ(request_back.value().deadline_seconds, 1.5);
    EXPECT_EQ(request_back.value().client, "alice");
    EXPECT_EQ(request_back.value().job.dump(), request.job.dump());

    served::JobResponse response;
    response.id = 7;
    response.status = "rejected";
    response.error = "queue full";
    response.retry_after_ms = 125.0;
    response.artifact = "{\"wedged\":true}";
    Result<served::JobResponse> response_back =
        served::jobResponseFromJson(response.toJson());
    ASSERT_TRUE(response_back.ok()) << response_back.error().message;
    EXPECT_EQ(response_back.value().id, 7u);
    EXPECT_EQ(response_back.value().status, "rejected");
    EXPECT_EQ(response_back.value().error, "queue full");
    EXPECT_EQ(response_back.value().retry_after_ms, 125.0);
    EXPECT_EQ(response_back.value().artifact, "{\"wedged\":true}");
    EXPECT_FALSE(response_back.value().ok());
}

// ---------------------------------------------------------------------
// Backoff.
// ---------------------------------------------------------------------

TEST(ServedBackoff, SeededScheduleReplaysExactly)
{
    BackoffPolicy policy;
    policy.base_ms = 10.0;
    policy.cap_ms = 500.0;
    Rng a(0xbacc0ff), b(0xbacc0ff);
    for (std::size_t attempt = 0; attempt < 8; ++attempt) {
        double da = backoffDelayMs(policy, attempt, a);
        double db = backoffDelayMs(policy, attempt, b);
        EXPECT_EQ(da, db) << "attempt " << attempt;
        EXPECT_LE(da, policy.cap_ms);
        EXPECT_GE(da, 0.0);
    }
}

TEST(ServedBackoff, ServerHintRaisesTheFloorAndCapBoundsTheCeiling)
{
    BackoffPolicy policy;
    policy.base_ms = 1.0;
    policy.cap_ms = 64.0;
    Rng rng(1);
    // With base 1ms the jittered draw for attempt 0 is < 1ms; a 200ms
    // hint must win.
    EXPECT_GE(backoffDelayMs(policy, 0, rng, 200.0), 200.0);
    // Deep attempts never exceed the cap (absent a larger hint).
    for (std::size_t attempt = 0; attempt < 40; ++attempt)
        EXPECT_LE(backoffDelayMs(policy, attempt, rng), policy.cap_ms);
}

// ---------------------------------------------------------------------
// Admission and fair share (pure policy).
// ---------------------------------------------------------------------

TEST(ServedAdmission, ShedsExactlyWhenTheQueueIsFull)
{
    served::AdmissionState state;
    state.queue_capacity = 4;
    state.workers = 2;

    state.queued = 3;
    EXPECT_TRUE(served::admitJob(state).admit);
    state.queued = 4;
    served::AdmissionDecision shed = served::admitJob(state);
    EXPECT_FALSE(shed.admit);
    EXPECT_FALSE(shed.reason.empty());
    EXPECT_GT(shed.retry_after_ms, 0.0);

    // Capacity 0 = unlimited queue: never sheds.
    state.queue_capacity = 0;
    state.queued = 10000;
    EXPECT_TRUE(served::admitJob(state).admit);
}

TEST(ServedAdmission, RetryAfterScalesWithBacklog)
{
    served::AdmissionState shallow;
    shallow.queue_capacity = 2;
    shallow.queued = 2;
    shallow.workers = 2;
    shallow.estimated_job_ms = 50.0;
    served::AdmissionState deep = shallow;
    deep.queue_capacity = 16;
    deep.queued = 16;
    EXPECT_GT(served::admitJob(deep).retry_after_ms,
              served::admitJob(shallow).retry_after_ms);
}

TEST(ServedFairShare, VictimIsTheLargestOverShareClient)
{
    using Counts = std::map<std::string, std::size_t>;

    // One client can never be over its own share.
    EXPECT_EQ(served::pickPreemptionVictim(Counts{{"a", 4}},
                                           {"a"}, 4),
              "");
    // Nobody waiting: nothing to preempt for.
    EXPECT_EQ(served::pickPreemptionVictim(Counts{{"a", 4}, {"b", 0}},
                                           {}, 4),
              "");
    // a holds 3 of 4 lanes while b waits; share = ceil(4/2) = 2.
    EXPECT_EQ(served::pickPreemptionVictim(Counts{{"a", 3}, {"b", 1}},
                                           {"b"}, 4),
              "a");
    // Exactly at share is not over share.
    EXPECT_EQ(served::pickPreemptionVictim(Counts{{"a", 2}, {"b", 2}},
                                           {"b"}, 4),
              "");
    // Ties break to the lexicographically smallest name.
    EXPECT_EQ(served::pickPreemptionVictim(
                  Counts{{"c", 3}, {"b", 3}, {"a", 0}}, {"a"}, 6),
              "b");
}

// ---------------------------------------------------------------------
// Deterministic plans (stress seeds, connection misbehavior).
// ---------------------------------------------------------------------

TEST(ServedPlans, DerivedSeedsAreStableAndFamilyDisjoint)
{
    std::uint64_t a0 = faults::derivePlanSeed(1, "random", 0);
    EXPECT_EQ(a0, faults::derivePlanSeed(1, "random", 0));
    EXPECT_NE(a0, faults::derivePlanSeed(1, "random", 1));
    EXPECT_NE(a0, faults::derivePlanSeed(1, "burst", 0));
    EXPECT_NE(a0, faults::derivePlanSeed(2, "random", 0));
}

TEST(ServedPlans, ConnectionPlanIsDeterministicPerCoordinate)
{
    faults::ConnectionPlan plan(0xfeed, {});
    faults::ConnectionPlan replay(0xfeed, {});
    bool saw_hostile = false;
    for (std::size_t client = 0; client < 8; ++client) {
        for (std::size_t request = 0; request < 32; ++request) {
            faults::ClientAction action =
                plan.action(client, request);
            EXPECT_EQ(action, replay.action(client, request));
            saw_hostile |= action != faults::ClientAction::Behave;
        }
    }
    EXPECT_TRUE(saw_hostile);  // default rates sum to 0.35

    EXPECT_EQ(faults::ConnectionPlan::wellBehaved().action(3, 9),
              faults::ClientAction::Behave);

    for (std::size_t request = 0; request < 64; ++request) {
        std::size_t cut = plan.truncateAt(0, request, 100);
        EXPECT_GE(cut, 1u);
        EXPECT_LT(cut, 100u);
    }
}

// ---------------------------------------------------------------------
// Verdict store (crash-safe sharded LRU).
// ---------------------------------------------------------------------

TEST(ServedVerdictStore, LruEvictsTheColdestEntry)
{
    guard::VerdictStoreConfig config;
    config.shards = 1;
    config.max_entries_per_shard = 2;
    guard::VerdictStore store(config);

    store.store(1, syntheticVerdict(1));
    store.store(2, syntheticVerdict(2));
    ASSERT_TRUE(store.lookup(1).has_value());  // 2 is now coldest
    store.store(3, syntheticVerdict(3));
    EXPECT_FALSE(store.lookup(2).has_value());
    EXPECT_TRUE(store.lookup(1).has_value());
    EXPECT_TRUE(store.lookup(3).has_value());
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.stats().entries, 2u);
}

TEST(ServedVerdictStore, PersistsWriteThroughAndReloads)
{
    std::string dir = tempPath("verdict-store-reload");
    std::filesystem::remove_all(dir);
    guard::VerdictStoreConfig config;
    config.dir = dir;
    config.shards = 2;

    {
        guard::VerdictStore store(config);
        store.store(5, syntheticVerdict(5));
        store.store(std::uint64_t{1} << 48,
                    syntheticVerdict(6));  // lands in the other shard
        // No explicit save: persist_on_store already wrote through.
    }
    guard::VerdictStore reloaded(config);
    Result<std::size_t> loaded = reloaded.load();
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value(), 2u);
    auto verdict = reloaded.lookup(5);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->toJson().dump(2),
              syntheticVerdict(5).toJson().dump(2));
    // Atomic write-rename leaves no temp droppings behind.
    for (std::size_t shard = 0; shard < 2; ++shard) {
        std::string tmp = dir + "/verdicts-" +
                          std::to_string(shard) + ".json.tmp";
        std::ifstream probe(tmp);
        EXPECT_FALSE(probe.good()) << tmp;
    }
}

TEST(ServedVerdictStore, CorruptShardIsSkippedNotFatal)
{
    std::string dir = tempPath("verdict-store-corrupt");
    std::filesystem::remove_all(dir);
    guard::VerdictStoreConfig config;
    config.dir = dir;
    config.shards = 2;

    {
        guard::VerdictStore store(config);
        store.store(9, syntheticVerdict(9));  // shard 0
    }
    {
        // Simulate a torn write in the *other* shard file.
        std::ofstream out(dir + "/verdicts-1.json");
        out << "{\"version\":1,\"entries\":[{\"key\"";
    }
    guard::VerdictStore reloaded(config);
    Result<std::size_t> loaded = reloaded.load();
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value(), 1u);  // the good shard still loads
    EXPECT_TRUE(reloaded.lookup(9).has_value());
    EXPECT_GE(reloaded.stats().corrupt_entries, 1u);
}

// ---------------------------------------------------------------------
// Verify-cache persistence hardening (the satellite this PR pins).
// ---------------------------------------------------------------------

TEST(ServedVerifyCache, CorruptEntriesAreSkippedAndCounted)
{
    std::string path = tempPath("verify-cache-mixed.json");
    obs::json::Value doc{obs::json::Object{}};
    doc.set("version", 1);
    obs::json::Value entries{obs::json::Array{}};
    obs::json::Value good{obs::json::Object{}};
    good.set("key", guard::formatCacheKey(42));
    good.set("verdict", syntheticVerdict(42).toJson());
    entries.push(std::move(good));
    obs::json::Value bad{obs::json::Object{}};
    bad.set("key", "0xdead");
    bad.set("verdict", "not an object");
    entries.push(std::move(bad));
    obs::json::Value keyless{obs::json::Object{}};
    keyless.set("verdict", syntheticVerdict(1).toJson());
    entries.push(std::move(keyless));
    doc.set("entries", std::move(entries));
    ASSERT_TRUE(guard::writeJsonAtomic(path, doc).ok());

    guard::VerifyCache cache;
    Result<bool> loaded = cache.loadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_TRUE(loaded.value());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.corruptEntries(), 2u);
    EXPECT_TRUE(cache.lookup(42).has_value());
}

TEST(ServedVerifyCache, WholeFileGarbageIsAnEmptyCacheNotACrash)
{
    std::string path = tempPath("verify-cache-garbage.json");
    {
        std::ofstream out(path);
        out << "]]]] definitely not json {{";
    }
    guard::VerifyCache cache;
    Result<bool> loaded = cache.loadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_FALSE(loaded.value());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_GE(cache.corruptEntries(), 1u);
}

TEST(ServedVerifyCache, AtomicSaveLeavesNoTempFile)
{
    std::string path = tempPath("verify-cache-atomic.json");
    guard::VerifyCache cache;
    cache.store(7, syntheticVerdict(7));
    ASSERT_TRUE(cache.saveFile(path).ok());
    std::ifstream saved(path);
    EXPECT_TRUE(saved.good());
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST(ServedVerifyCache, FullDeviceWriteFailsLoudly)
{
    // /dev/full accepts opens and drops writes with ENOSPC at flush —
    // exactly the silent-success bug the flushing writeFile fixes.
    std::ifstream probe("/dev/full");
    if (!probe.good())
        GTEST_SKIP() << "no /dev/full on this system";
    obs::json::Value doc{obs::json::Object{}};
    doc.set("k", 1);
    Result<bool> wrote = obs::json::writeFile("/dev/full", doc);
    EXPECT_FALSE(wrote.ok());
}

// ---------------------------------------------------------------------
// Latency reservoir.
// ---------------------------------------------------------------------

TEST(ServedLatency, NearestRankPercentilesOverTheWindow)
{
    obs::LatencyReservoir reservoir(128);
    for (int i = 1; i <= 100; ++i)
        reservoir.record(static_cast<double>(i));
    EXPECT_EQ(reservoir.count(), 100u);
    EXPECT_DOUBLE_EQ(reservoir.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(reservoir.max(), 100.0);

    obs::LatencyReservoir tiny(4);
    for (double ms : {10.0, 20.0, 30.0, 40.0, 50.0})
        tiny.record(ms);  // 10 falls out of the window
    EXPECT_DOUBLE_EQ(tiny.percentile(100), 50.0);
    EXPECT_DOUBLE_EQ(tiny.percentile(1), 20.0);
    EXPECT_EQ(tiny.count(), 5u);  // lifetime count, not window size
}

// ---------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------

served::SchedulerConfig
schedulerConfig(std::size_t workers, std::size_t queue)
{
    served::SchedulerConfig config;
    config.workers = workers;
    config.queue_capacity = queue;
    return config;
}

TEST(ServedScheduler, PingRoundTrips)
{
    served::Scheduler scheduler(schedulerConfig(1, 4));
    ASSERT_TRUE(scheduler.start().ok());
    JobSpec ping;
    ping.kind = "ping";
    served::JobOutcome outcome = scheduler.submitAndWait("t", ping);
    EXPECT_EQ(outcome.status, "ok");
    const obs::json::Value* pong = outcome.result.find("pong");
    ASSERT_NE(pong, nullptr);
    EXPECT_TRUE(pong->isBool() && pong->asBool());
    scheduler.stop();
}

TEST(ServedScheduler, FloodBeyondCapacityShedsWithHintsAndNeverHangs)
{
    served::Scheduler scheduler(schedulerConfig(1, 1));
    ASSERT_TRUE(scheduler.start().ok());

    const std::string dot = gcdDot();
    constexpr std::size_t kFlood = 8;  // 4x (workers + queue)
    std::vector<served::JobOutcome> outcomes(kFlood);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kFlood; ++i) {
        threads.emplace_back([&, i] {
            JobSpec spec = verifySpec(dot);
            // Unique seed per job: no cache short-circuits, every
            // admitted job occupies the worker for real.
            spec.options.verify_budget.seed = 1000 + i;
            outcomes[i] = scheduler.submitAndWait(
                "flood-" + std::to_string(i), spec);
        });
    }
    for (std::thread& thread : threads)
        thread.join();

    std::size_t ok = 0, rejected = 0;
    for (const served::JobOutcome& outcome : outcomes) {
        ASSERT_TRUE(outcome.status == "ok" ||
                    outcome.status == "rejected")
            << outcome.status << ": " << outcome.error;
        if (outcome.status == "ok") {
            ++ok;
        } else {
            ++rejected;
            // A structured rejection: a reason and a retry hint.
            EXPECT_FALSE(outcome.error.empty());
            EXPECT_GT(outcome.retry_after_ms, 0.0);
        }
    }
    EXPECT_EQ(ok + rejected, kFlood);
    EXPECT_GE(ok, 1u);  // the flood never starves everyone

    served::SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.accepted + stats.shed, kFlood);
    EXPECT_EQ(stats.shed, rejected);
    EXPECT_EQ(stats.completed, ok);
    scheduler.stop();
}

TEST(ServedScheduler, DeadlineNeverPoisonsTheVerdictStore)
{
    served::Scheduler scheduler(schedulerConfig(1, 4));
    ASSERT_TRUE(scheduler.start().ok());
    const std::string dot = gcdDot();

    // A deadline that has already expired: the job is answered (as a
    // cancellation or a fully degraded run), and whatever it produced
    // must NOT be committed as the circuit's verdict.
    served::JobOutcome rushed =
        scheduler.submitAndWait("t", verifySpec(dot), 1e-9);
    EXPECT_TRUE(rushed.status == "cancelled" || rushed.status == "ok")
        << rushed.status << ": " << rushed.error;

    served::JobOutcome honest =
        scheduler.submitAndWait("t", verifySpec(dot));
    ASSERT_EQ(honest.status, "ok") << honest.error;
    const obs::json::Value* hit = honest.result.find("verify_cache_hit");
    ASSERT_NE(hit, nullptr);
    EXPECT_FALSE(hit->asBool())
        << "deadline-degraded verdict was served from the store";

    // The honest verdict, however, is committed: the same request
    // again is a hit with the identical verdict.
    served::JobOutcome repeat =
        scheduler.submitAndWait("t", verifySpec(dot));
    ASSERT_EQ(repeat.status, "ok") << repeat.error;
    const obs::json::Value* repeat_hit =
        repeat.result.find("verify_cache_hit");
    ASSERT_NE(repeat_hit, nullptr);
    EXPECT_TRUE(repeat_hit->asBool());
    EXPECT_EQ(honest.result.find("verdict")->dump(2),
              repeat.result.find("verdict")->dump(2));
    scheduler.stop();
}

// ---------------------------------------------------------------------
// Daemon end-to-end.
// ---------------------------------------------------------------------

served::ClientConfig
clientConfig(const std::string& socket_path)
{
    served::ClientConfig config;
    config.socket_path = socket_path;
    config.sleep_between_retries = false;  // tests stay fast
    return config;
}

TEST(ServedDaemon, VerdictsByteIdenticalToOneShotOnEveryBenchmark)
{
    std::string path = socketPath("byte-identity");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler = schedulerConfig(2, 8);
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());
    served::Client client(clientConfig(path));

    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec bench =
            circuits::buildBenchmark(name).take();
        const ExprHigh& graph =
            bench.df_ooo_input ? *bench.df_ooo_input : bench.df_io;
        JobSpec spec = verifySpec(printDot(graph), bench.num_tags);
        // Recompute every time: byte identity must come from the
        // verification core, not from one request warming the store.
        spec.options.verify_cache = false;

        // The one-shot baseline: a fresh Compiler, same options.
        Compiler compiler;
        CompileOptions options = spec.options;
        Result<CompileReport> oneshot =
            compiler.compileDot(spec.circuit_dot, options);
        ASSERT_TRUE(oneshot.ok()) << name << ": "
                                  << oneshot.error().message;
        std::string baseline_verdict =
            oneshot.value().verdict.toJson().dump(2);
        std::string baseline_dot = oneshot.value().output_dot;

        for (std::size_t threads : {1, 2, 8}) {
            spec.options.threads = threads;
            Result<served::JobResponse> response =
                client.request(spec);
            ASSERT_TRUE(response.ok())
                << name << " threads " << threads << ": "
                << response.error().message;
            ASSERT_EQ(response.value().status, "ok")
                << name << " threads " << threads << ": "
                << response.value().error;
            const obs::json::Value& result = response.value().result;
            const obs::json::Value* verdict = result.find("verdict");
            const obs::json::Value* output_dot =
                result.find("output_dot");
            ASSERT_NE(verdict, nullptr) << name;
            ASSERT_NE(output_dot, nullptr) << name;
            EXPECT_EQ(verdict->dump(2), baseline_verdict)
                << name << " threads " << threads;
            EXPECT_EQ(output_dot->asString(), baseline_dot)
                << name << " threads " << threads;
        }
    }
    daemon.stop();
}

TEST(ServedDaemon, MisbehavingClientsDoNotStarveHealthyOnes)
{
    std::string path = socketPath("misbehave");
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler = schedulerConfig(1, 4);
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());

    const std::string dot = gcdDot();
    JobSpec spec = verifySpec(dot);
    served::JobRequest request;
    request.id = 1;
    request.job = spec.toJson();
    std::string frame = served::encodeFrame(request.toJson().dump());

    {  // Half-written frame, then hang up.
        Result<net::Socket> raw = net::connectUnix(path);
        ASSERT_TRUE(raw.ok());
        net::writeAll(raw.value(), frame.substr(0, frame.size() / 2),
                      1000);
    }
    {  // Junk payload behind a valid length prefix.
        Result<net::Socket> raw = net::connectUnix(path);
        ASSERT_TRUE(raw.ok());
        net::writeAll(raw.value(), served::encodeFrame("Z}junk!{"),
                      1000);
        std::string reply;
        Result<bool> got = served::readFrame(raw.value(), reply, 5000);
        // A structured error response comes back before the drop.
        ASSERT_TRUE(got.ok() && got.value());
        Result<served::JobResponse> parsed = served::jobResponseFromJson(
            obs::json::parse(reply).take());
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value().status, "error");
    }
    {  // Full request, vanish before the response.
        Result<net::Socket> raw = net::connectUnix(path);
        ASSERT_TRUE(raw.ok());
        net::writeAll(raw.value(), frame, 1000);
    }

    // The healthy client still gets served.
    served::Client client(clientConfig(path));
    Result<bool> pong = client.ping();
    ASSERT_TRUE(pong.ok()) << pong.error().message;
    EXPECT_TRUE(pong.value());
    Result<served::JobResponse> response = client.request(spec);
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(response.value().status, "ok")
        << response.value().error;
    EXPECT_GE(daemon.connectionsAccepted(), 4u);
    daemon.stop();
}

TEST(ServedDaemon, KillThenRestartServesEveryCommittedVerdict)
{
    std::string path = socketPath("crash-recovery");
    std::string store_dir = tempPath("served-crash-store");
    // A previous run's store would turn the "fresh" request into a
    // hit; this test owns the directory.
    std::filesystem::remove_all(store_dir);
    served::DaemonConfig config;
    config.socket_path = path;
    config.scheduler = schedulerConfig(1, 4);
    config.scheduler.store.dir = store_dir;

    const std::string dot = gcdDot();
    std::string committed_verdict;
    {
        served::Daemon daemon(config);
        ASSERT_TRUE(daemon.start().ok());
        served::Client client(clientConfig(path));
        Result<served::JobResponse> first =
            client.request(verifySpec(dot));
        ASSERT_TRUE(first.ok()) << first.error().message;
        ASSERT_EQ(first.value().status, "ok") << first.value().error;
        EXPECT_FALSE(
            first.value().result.find("verify_cache_hit")->asBool());
        committed_verdict =
            first.value().result.find("verdict")->dump(2);
        // Crash drill: no graceful persistence pass. Everything the
        // store committed write-through must already be on disk.
        daemon.kill();
    }
    {
        served::Daemon daemon(config);
        ASSERT_TRUE(daemon.start().ok());
        served::Client client(clientConfig(path));
        Result<served::JobResponse> again =
            client.request(verifySpec(dot));
        ASSERT_TRUE(again.ok()) << again.error().message;
        ASSERT_EQ(again.value().status, "ok") << again.value().error;
        EXPECT_TRUE(
            again.value().result.find("verify_cache_hit")->asBool())
            << "pre-kill verdict was lost across the restart";
        EXPECT_EQ(again.value().result.find("verdict")->dump(2),
                  committed_verdict);
        daemon.stop();
    }
}

TEST(ServedDaemon, LoopbackTcpServesTheSameProtocol)
{
    std::string path = socketPath("tcp");
    served::DaemonConfig config;
    config.socket_path = path;
    config.tcp_port = 0;  // ephemeral
    config.scheduler = schedulerConfig(1, 4);
    served::Daemon daemon(config);
    ASSERT_TRUE(daemon.start().ok());

    served::ClientConfig cc;
    cc.tcp_port = daemon.tcpPort();
    cc.sleep_between_retries = false;
    served::Client client(cc);
    Result<bool> pong = client.ping();
    ASSERT_TRUE(pong.ok()) << pong.error().message;
    EXPECT_TRUE(pong.value());
    daemon.stop();
}

TEST(ServedScheduler, InstrumentedSchedulerOverheadUnderTwoTimes)
{
    // The service-plane twin of ObsGcd.OverheadUnderTwoTimes: a
    // scheduler with the full observability plane attached (logger,
    // spans, flight recorder, per-verb reservoirs, per-job metric
    // scopes) must keep its p50 request latency within 2x of the
    // uninstrumented scheduler on the same replay.
    const std::string dot = gcdDot();
    auto replay_p50 = [&](bool observed) {
        served::SchedulerConfig config = schedulerConfig(1, 8);
        if (observed)
            config.observer =
                std::make_shared<served::ServiceObserver>();
        served::Scheduler scheduler(config);
        EXPECT_TRUE(scheduler.start().ok());
        obs::LatencyReservoir latency;
        for (std::size_t r = 0; r < 13; ++r) {
            JobSpec spec = verifySpec(dot);
            spec.options.verify_cache = false;  // real work each time
            spec.options.verify_budget.seed = 4200 + r;
            auto start = std::chrono::steady_clock::now();
            served::JobOutcome outcome =
                scheduler.submitAndWait("overhead", spec);
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
            EXPECT_EQ(outcome.status, "ok") << outcome.error;
            if (r >= 2)  // skip warmup (allocator, first-touch)
                latency.record(ms);
        }
        scheduler.stop();
        return latency.percentile(50);
    };

    double plain = replay_p50(false);
    double observed = replay_p50(true);
    EXPECT_LT(observed, plain * 2.0)
        << "observability overhead " << observed / plain
        << "x (plain p50 " << plain << "ms, observed p50 "
        << observed << "ms)";
}

}  // namespace
}  // namespace graphiti
