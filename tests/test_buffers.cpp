/**
 * @file
 * Tests for the buffer-placement pass: default slack everywhere,
 * tag-scaled slack inside Tagger/Untagger regions, and its effect on
 * simulated throughput (the serialization the pass exists to fix).
 */

#include <gtest/gtest.h>

#include "arch/buffers.hpp"
#include "bench_circuits/gcd.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace graphiti::arch {
namespace {

TEST(Buffers, DefaultSlotsOutsideTaggedRegions)
{
    ExprHigh g = circuits::buildGcdInOrder();
    BufferPlacement placement = placeBuffers(g, 2);
    EXPECT_EQ(placement.slots.size(), g.edges().size());
    for (const auto& [edge, slots] : placement.slots)
        EXPECT_EQ(slots, 2u) << edge.src.toString();
    EXPECT_EQ(placement.buffer_ff, 0);
}

TEST(Buffers, TaggedRegionChannelsScaleWithTags)
{
    Environment env;
    ExprHigh g = circuits::buildGcdOutOfOrder(env.functions(), 16);
    BufferPlacement placement = placeBuffers(g, 2);
    // The loopback channel (branch -> merge) lies inside the region.
    Edge loopback{PortRef{"branch", "out0"}, PortRef{"merge", "in0"}};
    EXPECT_EQ(placement.slotsFor(loopback, 2), 16u);
    // The tagger's external output does not.
    bool found_external = false;
    for (const auto& [edge, slots] : placement.slots) {
        if (edge.src.inst == "tagger" && edge.src.port == "out1") {
            EXPECT_EQ(slots, 2u);
            found_external = true;
        }
    }
    // tagger.out1 is bound to io, not an edge, in this circuit; the
    // entry channel tagger.out0 -> merge is in-region instead.
    Edge entry{PortRef{"tagger", "out0"}, PortRef{"merge", "in1"}};
    EXPECT_EQ(placement.slotsFor(entry, 2), 16u);
    EXPECT_GT(placement.buffer_ff, 0);
    (void)found_external;
}

TEST(Buffers, SlotsForFallsBack)
{
    BufferPlacement placement;
    Edge ghost{PortRef{"a", "out0"}, PortRef{"b", "in0"}};
    EXPECT_EQ(placement.slotsFor(ghost, 7), 7u);
}

TEST(Buffers, UndersizedChannelsSerializeTheLoop)
{
    // Simulate the transformed GCD with the automatic placement
    // versus a simulator forced to tiny channels: the placement must
    // win (the serialization of section 6.1's buffer-sizing concern).
    Environment env;
    Result<PipelineResult> transformed =
        runOooPipeline(circuits::buildGcdInOrder(), env,
                       {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(transformed.ok());

    std::vector<Token> as, bs;
    for (int i = 0; i < 16; ++i) {
        as.emplace_back(Value(1071 + 13 * i));
        bs.emplace_back(Value(462 + 7 * i));
    }
    auto run = [&](std::size_t slots) {
        sim::SimConfig config;
        config.channel_slots = slots;
        sim::Simulator simulator =
            sim::Simulator::build(transformed.value().graph,
                                  env.functionsPtr(), config)
                .take();
        auto r = simulator.run({as, bs}, as.size());
        EXPECT_TRUE(r.ok()) << r.error().message;
        return r.ok() ? r.value().cycles : std::size_t{0};
    };
    // channel_slots is the *default*; the placement raises tagged
    // channels to the tag count either way, so compare via tag budget
    // instead: a 1-tag pipeline serializes.
    Environment env1;
    Result<PipelineResult> one_tag =
        runOooPipeline(circuits::buildGcdInOrder(), env1,
                       {.num_tags = 1, .reexpand = true});
    ASSERT_TRUE(one_tag.ok());
    sim::Simulator serial =
        sim::Simulator::build(one_tag.value().graph,
                              env1.functionsPtr())
            .take();
    auto serial_run = serial.run({as, bs}, as.size());
    ASSERT_TRUE(serial_run.ok());
    EXPECT_LT(run(2), serial_run.value().cycles);
}

}  // namespace
}  // namespace graphiti::arch
