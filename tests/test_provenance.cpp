/**
 * @file
 * Tests for token provenance and critical-path attribution
 * (src/obs/provenance.*, src/obs/critpath.*): the exact attribution
 * identity on the gcd workload, reorder-histogram shape on the
 * sequential vs transformed circuit, byte-identical determinism under
 * a fault plan, bounded-ring truncation, the TraceSink ring buffer
 * (satellite of the same PR), and stress-harness failure artifacts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "faults/fault_plan.hpp"
#include "faults/stress.hpp"
#include "obs/critpath.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"

namespace graphiti {
namespace {

namespace json = obs::json;

std::vector<Token>
intStream(std::initializer_list<std::int64_t> values)
{
    std::vector<Token> out;
    for (std::int64_t v : values)
        out.emplace_back(Value(v));
    return out;
}

/** The figure-2 gcd workload: three (a, b) streams, three outputs. */
faults::Workload
gcdWorkload()
{
    faults::Workload w;
    w.inputs = {intStream({1071, 987, 864}), intStream({462, 610, 528})};
    w.expected_outputs = 3;
    return w;
}

/** Compile the in-order gcd through the verified pipeline. */
Result<CompileReport>
compileGcd(Compiler& compiler)
{
    CompileOptions options;
    options.num_tags = 8;
    return compiler.compileGraph(circuits::buildGcdInOrder(), options);
}

#if GRAPHITI_OBS_ENABLED

void
expectAttributionExact(const obs::CritPathReport& report)
{
    obs::CycleAttribution sum;
    std::size_t complete = 0;
    for (const obs::TokenProfile& t : report.tokens) {
        if (t.truncated)
            continue;
        ++complete;
        EXPECT_EQ(t.attribution.total(), t.latency)
            << "port " << t.port << " ordinal " << t.ordinal;
        EXPECT_EQ(t.completion_cycle - t.birth_cycle, t.latency);
        sum += t.attribution;
    }
    EXPECT_GT(complete, 0u);
    EXPECT_EQ(sum.compute, report.totals.compute);
    EXPECT_EQ(sum.queue_wait, report.totals.queue_wait);
    EXPECT_EQ(sum.backpressure, report.totals.backpressure);
}

TEST(ProvGcd, AttributionSumsToLatency)
{
    Compiler compiler;
    Result<CompileReport> compiled = compileGcd(compiler);
    ASSERT_TRUE(compiled.ok()) << compiled.error().message;

    const ExprHigh sequential = circuits::buildGcdInOrder();
    const ExprHigh& transformed = compiled.value().graph;
    for (const ExprHigh* graph : {&sequential, &transformed}) {
        Result<ProfileBundle> bundle =
            compiler.profileRun(*graph, gcdWorkload());
        ASSERT_TRUE(bundle.ok()) << bundle.error().message;
        EXPECT_EQ(bundle.value().report.truncated_tokens, 0u);
        expectAttributionExact(bundle.value().report);
        // Every output token was profiled.
        EXPECT_EQ(bundle.value().report.tokens.size(), 3u);
    }
}

TEST(ProvGcd, SequentialReorderDegenerate)
{
    Compiler compiler;
    Result<ProfileBundle> bundle =
        compiler.profileRun(circuits::buildGcdInOrder(), gcdWorkload());
    ASSERT_TRUE(bundle.ok()) << bundle.error().message;
    const obs::CritPathReport& report = bundle.value().report;
    // No tagger in the sequential circuit, FIFO completions: every
    // reorder sample is zero.
    EXPECT_EQ(report.tag_returns, 0u);
    EXPECT_TRUE(report.reorder.degenerate());
    EXPECT_FALSE(report.completion_latency.degenerate());
}

TEST(ProvGcd, TransformedReorderNonDegenerate)
{
    Compiler compiler;
    Result<CompileReport> compiled = compileGcd(compiler);
    ASSERT_TRUE(compiled.ok()) << compiled.error().message;
    Result<ProfileBundle> bundle =
        compiler.profileRun(compiled.value().graph, gcdWorkload());
    ASSERT_TRUE(bundle.ok()) << bundle.error().message;
    const obs::CritPathReport& report = bundle.value().report;
    // The 14-iteration stream (987, 610) is overtaken by its 3- and
    // 5-iteration neighbours, so tagged returns come back out of
    // program order.
    EXPECT_GT(report.tag_returns, 0u);
    EXPECT_FALSE(report.reorder.degenerate());
    // Bottlenecks are ranked and reference real channels.
    ASSERT_FALSE(report.bottleneck_channels.empty());
    for (int ch : report.bottleneck_channels) {
        ASSERT_GE(ch, 0);
        ASSERT_LT(static_cast<std::size_t>(ch), report.channels.size());
    }
}

TEST(ProvDeterminism, ByteIdenticalUnderFaultPlan)
{
    Compiler compiler;
    Result<CompileReport> compiled = compileGcd(compiler);
    ASSERT_TRUE(compiled.ok()) << compiled.error().message;

    auto profile = [&](std::uint64_t seed) {
        ProfileOptions options;
        options.sim.faults = std::make_shared<faults::FaultPlan>(
            faults::FaultPlan::random(seed));
        Result<ProfileBundle> bundle = compiler.profileRun(
            compiled.value().graph, gcdWorkload(), options);
        EXPECT_TRUE(bundle.ok()) << bundle.error().message;
        return std::pair{bundle.value().log.toJson().dump(),
                         bundle.value().report.toJson().dump()};
    };

    auto [log_a, report_a] = profile(0xfeedULL);
    auto [log_b, report_b] = profile(0xfeedULL);
    EXPECT_EQ(log_a, log_b);        // byte-identical hop log
    EXPECT_EQ(report_a, report_b);  // byte-identical analysis
    // ... and a different plan really does change the log.
    auto [log_c, report_c] = profile(0xbeefULL);
    EXPECT_NE(log_a, log_c);
    (void)report_c;
}

TEST(ProvRing, EvictionTruncatesInsteadOfMisattributing)
{
    Compiler compiler;
    ProfileOptions options;
    options.provenance.max_firings = 32;  // far below the ~1000 firings
    Result<ProfileBundle> bundle = compiler.profileRun(
        circuits::buildGcdInOrder(), gcdWorkload(), options);
    ASSERT_TRUE(bundle.ok()) << bundle.error().message;
    const obs::ProvenanceLog& log = bundle.value().log;
    EXPECT_LE(log.firings.size(), 32u);
    EXPECT_GT(log.dropped_firings, 0u);
    // Early tokens crossed the evicted window: flagged, not guessed.
    EXPECT_GT(bundle.value().report.truncated_tokens, 0u);
    // Whatever still walks to a birth keeps the exact identity.
    for (const obs::TokenProfile& t : bundle.value().report.tokens) {
        if (t.truncated)
            continue;
        EXPECT_EQ(t.attribution.total(), t.latency);
    }
}

#else  // !GRAPHITI_OBS_ENABLED

TEST(ProvGcd, ProfileRunErrorsWhenObsDisabled)
{
    // Under GRAPHITI_OBS=OFF the simulator's provenance hooks compile
    // out; profileRun must refuse rather than return an empty profile.
    Compiler compiler;
    Result<ProfileBundle> bundle =
        compiler.profileRun(circuits::buildGcdInOrder(), gcdWorkload());
    ASSERT_FALSE(bundle.ok());
    EXPECT_NE(bundle.error().message.find("GRAPHITI_OBS"),
              std::string::npos);
}

#endif  // GRAPHITI_OBS_ENABLED

// -------------------------------------------- TraceSink ring buffer

obs::TraceRecord
fireRecord(std::size_t cycle)
{
    obs::TraceRecord rec;
    rec.cycle = cycle;
    rec.node = "n";
    rec.kind = obs::EventKind::Fire;
    return rec;
}

TEST(TraceSinkRing, UnboundedByDefault)
{
    obs::PerfettoTraceSink sink;
    for (std::size_t i = 0; i < 100; ++i)
        sink.event(fireRecord(i));
    EXPECT_EQ(sink.droppedEvents(), 0u);
    // 100 events + 1 thread_name metadata record.
    EXPECT_EQ(sink.numEvents(), 101u);
}

TEST(TraceSinkRing, CapacityDropsOldest)
{
    obs::PerfettoTraceSink sink;
    sink.setCapacity(8);
    for (std::size_t i = 0; i < 100; ++i)
        sink.event(fireRecord(i));
    EXPECT_EQ(sink.numEvents(), 8u);
    EXPECT_EQ(sink.droppedEvents(), 93u);  // 101 buffered - 8 kept
    json::Value doc = sink.toJson();
    const json::Value* dropped = doc.find("droppedEvents");
    ASSERT_NE(dropped, nullptr);
    // The newest events survive.
    std::string dump = doc.dump();
    EXPECT_NE(dump.find("\"ts\":99"), std::string::npos);
}

TEST(TraceSinkRing, SpillFileKeepsFullDocument)
{
    std::string dir = ::testing::TempDir();
    std::string spill = dir + "/graphiti_spill.jsonl";
    std::string out = dir + "/graphiti_trace.json";

    obs::PerfettoTraceSink sink;
    sink.setCapacity(8);
    Result<bool> set = sink.setSpillFile(spill);
    ASSERT_TRUE(set.ok()) << set.error().message;
    for (std::size_t i = 0; i < 100; ++i)
        sink.event(fireRecord(i));
    EXPECT_EQ(sink.droppedEvents(), 0u);
    EXPECT_GT(sink.spilledEvents(), 0u);
    ASSERT_TRUE(sink.writeFile(out).ok());

    // The stitched document is valid JSON containing every event.
    std::string text;
    {
        FILE* f = fopen(out.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n;
        while ((n = fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        fclose(f);
    }
    Result<json::Value> parsed = json::parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const json::Value* events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_EQ(events->asArray().size(), 101u);
}

// ------------------------------------- stress failure artifacts

TEST(StressArtifact, RendersDiagnosisMetricsAndHopTail)
{
    // Drive the in-order gcd into a watchdog verdict directly: demand
    // a fourth output the three input streams can never produce.
    Environment env;
    auto scope = std::make_shared<obs::Scope>();
    scope->attachProvenance(std::make_shared<obs::ProvenanceTracker>());
    sim::SimConfig config;
    config.obs = scope;
    Result<sim::Simulator> built = sim::Simulator::build(
        circuits::buildGcdInOrder(), env.functionsPtr(), config);
    ASSERT_TRUE(built.ok()) << built.error().message;
    sim::Simulator simulator = built.take();
    faults::Workload w = gcdWorkload();
    Result<sim::SimResult> run =
        simulator.run(w.inputs, w.expected_outputs + 1);
    ASSERT_FALSE(run.ok());
    ASSERT_TRUE(simulator.lastDiagnosis().has_value());

    std::string artifact = faults::failureArtifact(
        &*simulator.lastDiagnosis(), run.error().message, *scope, 16);
    Result<json::Value> doc = json::parse(artifact);
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    ASSERT_NE(doc.value().find("error"), nullptr);
    ASSERT_NE(doc.value().find("diagnosis"), nullptr);
    ASSERT_NE(doc.value().find("metrics"), nullptr);
    const json::Value* prov = doc.value().find("provenance");
    ASSERT_NE(prov, nullptr);
#if GRAPHITI_OBS_ENABLED
    // The hop-log tail carries the firings leading up to the stall.
    const json::Value* tail = prov->find("tail");
    ASSERT_NE(tail, nullptr);
    ASSERT_TRUE(tail->isArray());
    EXPECT_GT(tail->asArray().size(), 0u);
#endif
}

TEST(StressArtifact, HarnessAttachesArtifactToFailedPlan)
{
    // A cycle budget the fault-free baseline meets comfortably but
    // adversarial plans blow through: failed plans must carry a
    // reproduced post-mortem artifact.
    Environment env;
    faults::Workload w = gcdWorkload();
    sim::SimConfig probe;
    Result<sim::Simulator> built = sim::Simulator::build(
        circuits::buildGcdInOrder(), env.functionsPtr(), probe);
    ASSERT_TRUE(built.ok()) << built.error().message;
    sim::Simulator simulator = built.take();
    Result<sim::SimResult> baseline =
        simulator.run(w.inputs, w.expected_outputs);
    ASSERT_TRUE(baseline.ok()) << baseline.error().message;

    faults::StressOptions options;
    options.random_plans = 0;
    options.structured = true;
    options.max_starve_plans = 0;
    options.sim.max_cycles = baseline.value().cycles + 8;
    options.artifact_tail_firings = 16;
    faults::StressHarness harness(options);
    Result<faults::StressReport> report = harness.run(
        circuits::buildGcdInOrder(), env.functionsPtr(), w);
    ASSERT_TRUE(report.ok()) << report.error().message;

    std::size_t failed = 0, with_artifact = 0;
    for (const faults::PlanOutcome& o : report.value().outcomes) {
        if (o.completed)
            continue;
        ++failed;
        if (o.failure_artifact.empty())
            continue;
        ++with_artifact;
        Result<json::Value> doc = json::parse(o.failure_artifact);
        ASSERT_TRUE(doc.ok()) << doc.error().message;
        EXPECT_NE(doc.value().find("error"), nullptr);
        EXPECT_NE(doc.value().find("provenance"), nullptr);
    }
    ASSERT_GT(failed, 0u) << "expected the max-backpressure plan to "
                             "exceed the cycle budget";
    EXPECT_EQ(with_artifact, failed);
}

}  // namespace
}  // namespace graphiti
