/**
 * @file
 * Scalability of the rewriting pipeline (section 6.3): graphs with
 * many independent loops and a couple of hundred nodes are all
 * transformed, every loop independently, and the result still
 * simulates correctly.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>

#include "bench_circuits/gcd.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace graphiti {
namespace {

TEST(Scale, FarmOfTenLoopsFullyTransforms)
{
    ExprHigh farm = circuits::buildGcdFarm(10);
    EXPECT_GE(farm.numNodes(), 130u);
    ASSERT_TRUE(farm.validate().ok());

    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(farm, env, {.num_tags = 4, .reexpand = true});
    ASSERT_TRUE(result.ok()) << result.error().message;
    ASSERT_EQ(result.value().loops.size(), 10u);
    for (const LoopTransformReport& loop : result.value().loops)
        EXPECT_TRUE(loop.transformed) << loop.refusal;

    int taggers = 0;
    for (const NodeDecl& node : result.value().graph.nodes())
        taggers += node.type == "tagger";
    EXPECT_EQ(taggers, 10);
    EXPECT_GT(result.value().stats.rewrites_applied, 80u);
}

TEST(Scale, TransformedFarmComputesEveryStream)
{
    constexpr int kCopies = 4;
    ExprHigh farm = circuits::buildGcdFarm(kCopies);
    Environment env;
    Result<PipelineResult> result =
        runOooPipeline(farm, env, {.num_tags = 4, .reexpand = true});
    ASSERT_TRUE(result.ok()) << result.error().message;

    sim::Simulator simulator =
        sim::Simulator::build(result.value().graph, env.functionsPtr())
            .take();
    std::vector<std::vector<Token>> inputs(2 * kCopies);
    const std::vector<std::pair<int, int>> pairs = {
        {48, 18}, {1071, 462}, {7, 13}};
    for (int k = 0; k < kCopies; ++k) {
        for (auto [a, b] : pairs) {
            inputs[2 * k].emplace_back(Value(a + k));
            inputs[2 * k + 1].emplace_back(Value(b));
        }
    }
    Result<sim::SimResult> run =
        simulator.run(inputs, pairs.size());
    ASSERT_TRUE(run.ok()) << run.error().message;
    for (int k = 0; k < kCopies; ++k) {
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            EXPECT_EQ(run.value().outputs[k][i].value.asInt(),
                      std::gcd(pairs[i].first + k, pairs[i].second))
                << "farm unit " << k << " stream " << i;
        }
    }
}

TEST(Scale, PipelineTimeGrowsModestly)
{
    // Not a benchmark, just a guardrail: 10 loops must finish fast
    // enough to live in the test suite.
    ExprHigh farm = circuits::buildGcdFarm(10);
    Environment env;
    auto start = std::chrono::steady_clock::now();
    Result<PipelineResult> result = runOooPipeline(farm, env, {});
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ASSERT_TRUE(result.ok());
    EXPECT_LT(elapsed, 30.0);
}

}  // namespace
}  // namespace graphiti
