/**
 * @file
 * Tests for the bounded deadlock-freedom checker: live circuits pass,
 * stuck rendezvous are found, and the input-could-unblock distinction
 * is reported.
 */

#include <gtest/gtest.h>

#include "bench_circuits/gcd.hpp"
#include "refine/liveness.hpp"

namespace graphiti {
namespace {

DenotedModule
denote(const ExprHigh& g, Environment& env)
{
    return DenotedModule::denote(lowerToExprLow(g).value(), env).take();
}

TEST(Liveness, BufferChainIsDeadlockFree)
{
    Environment env(4);
    ExprHigh g;
    g.addNode("b1", "buffer");
    g.addNode("b2", "buffer");
    g.bindInput(0, PortRef{"b1", "in0"});
    g.bindOutput(0, PortRef{"b2", "out0"});
    g.connect("b1", "out0", "b2", "in0");
    DenotedModule mod = denote(g, env);
    auto report = checkDeadlockFree(
        mod, InputDomain::uniform(mod, {Token(Value(1))}),
        {.max_states = 10000, .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().deadlock_free);
    EXPECT_GT(report.value().states_explored, 1u);
}

TEST(Liveness, HalfFedJoinIsStuckOnInput)
{
    // A join whose second operand is never wired: after one token on
    // in0, the circuit holds a token but cannot progress — unless the
    // environment feeds in1 (input_could_unblock).
    Environment env(4);
    ExprHigh g;
    g.addNode("j", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"j", "in0"});
    g.bindInput(1, PortRef{"j", "in1"});
    g.bindOutput(0, PortRef{"j", "out0"});
    DenotedModule mod = denote(g, env);
    // Only offer tokens at in0.
    InputDomain domain;
    domain.tokens[LowPortId::ioPort(0)] = {Token(Value(1))};
    auto report = checkDeadlockFree(mod, domain,
                                    {.max_states = 10000,
                                     .input_budget = 2});
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().deadlock_free);
    EXPECT_FALSE(report.value().stuck_state.empty());
}

TEST(Liveness, MismatchedTagsDeadlock)
{
    // Two differently-tagged tokens meeting at a join can never fire:
    // a genuine deadlock no input can fix.
    Environment env(4);
    ExprHigh g;
    g.addNode("j", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"j", "in0"});
    g.bindInput(1, PortRef{"j", "in1"});
    g.bindOutput(0, PortRef{"j", "out0"});
    DenotedModule mod = denote(g, env);
    InputDomain domain;
    domain.tokens[LowPortId::ioPort(0)] = {Token(Value(1), 0)};
    domain.tokens[LowPortId::ioPort(1)] = {Token(Value(2), 1)};
    auto report = checkDeadlockFree(mod, domain,
                                    {.max_states = 10000,
                                     .input_budget = 2});
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().deadlock_free);
}

TEST(Liveness, GcdLoopsAreDeadlockFree)
{
    Environment env(3);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    DenotedModule mod = denote(seq, env);
    auto report = checkDeadlockFree(
        mod,
        InputDomain::uniform(
            mod, {Token(Value::tuple(Value(4), Value(2)))}),
        {.max_states = 100000, .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().deadlock_free)
        << report.value().stuck_state;
}

TEST(Liveness, TaggedGcdLoopIsDeadlockFree)
{
    Environment env(3);
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
    DenotedModule mod = denote(ooo, env);
    auto report = checkDeadlockFree(
        mod,
        InputDomain::uniform(
            mod, {Token(Value::tuple(Value(4), Value(2)))}),
        {.max_states = 200000, .input_budget = 2});
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().deadlock_free)
        << report.value().stuck_state;
}

TEST(Liveness, DivergentModuloIsFlagged)
{
    // mod by zero: the operator is permanently stuck holding tokens.
    Environment env(3);
    ExprHigh g;
    g.addNode("mod", "operator", {{"op", "mod"}});
    g.bindInput(0, PortRef{"mod", "in0"});
    g.bindInput(1, PortRef{"mod", "in1"});
    g.bindOutput(0, PortRef{"mod", "out0"});
    DenotedModule mod = denote(g, env);
    InputDomain domain;
    domain.tokens[LowPortId::ioPort(0)] = {Token(Value(5))};
    domain.tokens[LowPortId::ioPort(1)] = {Token(Value(0))};
    auto report = checkDeadlockFree(mod, domain,
                                    {.max_states = 10000,
                                     .input_budget = 2});
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().deadlock_free);
}

}  // namespace
}  // namespace graphiti
