/**
 * @file
 * Equivalence tests of the compact state encoding (label: par).
 *
 * The exploration core stores interned pool-id rows + CSR edge tables
 * instead of deep GraphState copies, and can spill a parked frontier
 * to disk. None of that may be observable: this suite re-implements
 * the pre-encoding deep-state sequential BFS as a reference and
 * asserts fingerprints are byte-identical to it on the gcd instance
 * and on every table-2 benchmark, at threads 1/2/8; that governed
 * verdict JSON and counterexample text do not depend on thread count
 * or on the spill tier; that park+resume under a tiny spill_bytes
 * reproduces the one-shot space — pool ids included; and that the
 * TokenQueue head-index pop is invisible to ==/hash()/toString().
 */

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "guard/governor.hpp"
#include "refine/refinement.hpp"
#include "refine/state_space.hpp"

namespace graphiti {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

std::vector<Token>
gcdPairs()
{
    return {Token(Value::tuple(Value(6), Value(4))),
            Token(Value::tuple(Value(9), Value(6)))};
}

/** The gcd refinement instance used across the equivalence tests. */
struct GcdInstance
{
    Environment env{4};
    ExprHigh seq;
    ExprHigh ooo;
    DenotedModule impl;
    DenotedModule spec;

    GcdInstance()
        : seq(circuits::buildGcdNormalizedLoop(env.functions())),
          ooo(circuits::buildGcdOutOfOrder(env.functions(), 2)),
          impl(DenotedModule::denote(lowerToExprLow(ooo).value(), env)
                   .take()),
          spec(DenotedModule::denote(lowerToExprLow(seq).value(), env)
                   .take())
    {
    }
};

// ---------------------------------------------------------------------
// Reference explorer: the pre-encoding deep-GraphState sequential BFS,
// fingerprinted in the exact same format as StateSpace::fingerprint.
// ---------------------------------------------------------------------

std::uint64_t
fnv64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv64(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

struct RefSpace
{
    struct InputEdge
    {
        std::uint32_t port_idx, token_idx, dst;
    };
    struct OutputEdge
    {
        std::uint32_t port_idx;
        Token token;
        std::uint32_t dst;
    };

    std::vector<std::vector<std::uint32_t>> internal;
    std::vector<std::vector<InputEdge>> inputs;
    std::vector<std::vector<OutputEdge>> outputs;
    std::vector<std::uint32_t> budget;
    std::vector<std::uint32_t> frontier;

    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        h = fnv64(h, budget.size());
        for (std::uint32_t s = 0; s < budget.size(); ++s) {
            h = fnv64(h, budget[s]);
            h = fnv64(h, internal[s].size());
            for (std::uint32_t dst : internal[s])
                h = fnv64(h, dst);
            h = fnv64(h, inputs[s].size());
            for (const InputEdge& e : inputs[s]) {
                h = fnv64(h, e.port_idx);
                h = fnv64(h, e.token_idx);
                h = fnv64(h, e.dst);
            }
            h = fnv64(h, outputs[s].size());
            for (const OutputEdge& e : outputs[s]) {
                h = fnv64(h, e.port_idx);
                h = fnv64(h, e.token.toString());
                h = fnv64(h, e.dst);
            }
        }
        h = fnv64(h, frontier.size());
        for (std::uint32_t s : frontier)
            h = fnv64(h, s);
        return h;
    }
};

/** Deep-state sequential worklist exploration, park-on-cap — the old
 * encoding's semantics, kept deliberately naive. */
RefSpace
referenceExplore(const DenotedModule& mod, const InputDomain& domain,
                 std::size_t max_states, std::size_t input_budget)
{
    RefSpace ref;
    std::vector<GraphState> concrete;
    std::vector<LowPortId> in_ports = mod.inputNames();
    std::vector<LowPortId> out_ports = mod.outputNames();
    std::vector<std::vector<Token>> domain_tokens;
    for (const LowPortId& port : in_ports) {
        auto it = domain.tokens.find(port);
        domain_tokens.push_back(it == domain.tokens.end()
                                    ? std::vector<Token>{}
                                    : it->second);
    }

    std::unordered_map<std::size_t, std::vector<std::uint32_t>> index;
    auto lookup = [&](const GraphState& state,
                      std::uint32_t b) -> std::optional<std::uint32_t> {
        auto it = index.find(state.hash() * 31 + b);
        if (it == index.end())
            return std::nullopt;
        for (std::uint32_t id : it->second) {
            if (ref.budget[id] == b && concrete[id] == state)
                return id;
        }
        return std::nullopt;
    };

    std::deque<std::uint32_t> frontier;
    bool capped = false;
    auto intern = [&](GraphState state,
                      std::uint32_t b) -> std::optional<std::uint32_t> {
        if (auto hit = lookup(state, b))
            return hit;
        if (concrete.size() >= max_states) {
            capped = true;
            return std::nullopt;
        }
        std::uint32_t id = static_cast<std::uint32_t>(concrete.size());
        index[state.hash() * 31 + b].push_back(id);
        concrete.push_back(std::move(state));
        ref.budget.push_back(b);
        ref.internal.emplace_back();
        ref.inputs.emplace_back();
        ref.outputs.emplace_back();
        frontier.push_back(id);
        return id;
    };

    intern(mod.initialState(),
           static_cast<std::uint32_t>(input_budget));
    while (!frontier.empty() && !capped) {
        std::uint32_t id = frontier.front();
        frontier.pop_front();
        const GraphState state = concrete[id];
        std::uint32_t b = ref.budget[id];
        bool parked = false;
        auto record = [&](std::optional<std::uint32_t> dst) {
            if (dst)
                return true;
            ref.internal[id].clear();
            ref.inputs[id].clear();
            ref.outputs[id].clear();
            ref.frontier.push_back(id);
            parked = true;
            return false;
        };
        for (GraphState& next : mod.internalSteps(state)) {
            auto dst = intern(std::move(next), b);
            if (!record(dst))
                break;
            ref.internal[id].push_back(*dst);
        }
        if (!parked && b > 0) {
            for (std::uint32_t p = 0;
                 p < in_ports.size() && !parked; ++p) {
                const auto& toks = domain_tokens[p];
                for (std::uint32_t t = 0;
                     t < toks.size() && !parked; ++t) {
                    for (GraphState& next :
                         mod.inputStep(state, in_ports[p], toks[t])) {
                        auto dst = intern(std::move(next), b - 1);
                        if (!record(dst))
                            break;
                        ref.inputs[id].push_back(
                            RefSpace::InputEdge{p, t, *dst});
                    }
                }
            }
        }
        if (!parked) {
            for (std::uint32_t p = 0;
                 p < out_ports.size() && !parked; ++p) {
                for (auto& [token, next] :
                     mod.outputStep(state, out_ports[p])) {
                    auto dst = intern(std::move(next), b);
                    if (!record(dst))
                        break;
                    ref.outputs[id].push_back(RefSpace::OutputEdge{
                        p, std::move(token), *dst});
                }
            }
        }
    }
    for (std::uint32_t id : frontier)
        ref.frontier.push_back(id);
    return ref;
}

// ---------------------------------------------------------------------
// Old-vs-new fingerprint equivalence.
// ---------------------------------------------------------------------

TEST(EncodingEquivalence, GcdMatchesDeepReferenceAtEveryThreadCount)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());
    for (const DenotedModule* mod : {&gcd.impl, &gcd.spec}) {
        RefSpace ref = referenceExplore(*mod, domain, 400000, 2);
        ASSERT_TRUE(ref.frontier.empty());
        std::size_t base_bytes = 0;
        for (std::size_t threads : kThreadCounts) {
            ExplorationLimits limits;
            limits.max_states = 400000;
            limits.input_budget = 2;
            limits.threads = threads;
            Result<StateSpace> space =
                StateSpace::explore(*mod, domain, limits);
            ASSERT_TRUE(space.ok()) << space.error().message;
            EXPECT_EQ(space.value().fingerprint(), ref.fingerprint())
                << "threads=" << threads;
            // Size-based accounting: capacity-independent, so equal
            // at every thread count.
            if (threads == 1)
                base_bytes = space.value().approxBytes();
            else
                EXPECT_EQ(space.value().approxBytes(), base_bytes)
                    << "threads=" << threads;
        }
    }
}

TEST(EncodingEquivalence, EveryBenchmarkMatchesDeepReferenceParked)
{
    // Tight cap: the benchmark spaces are large, so the reference and
    // the re-encoded explorer both park — the fingerprint then also
    // covers the parked frontier ids.
    constexpr std::size_t kCap = 800;
    std::vector<Token> toks = {Token(Value(0)), Token(Value(1))};
    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec spec =
            circuits::buildBenchmark(name).take();
        Environment env(3);
        DenotedModule mod =
            DenotedModule::denote(lowerToExprLow(spec.df_io).value(),
                                  env)
                .take();
        InputDomain domain = InputDomain::uniform(mod, toks);
        RefSpace ref = referenceExplore(mod, domain, kCap, 1);
        for (std::size_t threads : kThreadCounts) {
            ExplorationLimits limits;
            limits.max_states = kCap;
            limits.input_budget = 1;
            limits.threads = threads;
            Result<StateSpace> space =
                StateSpace::explorePartial(mod, domain, limits);
            ASSERT_TRUE(space.ok())
                << name << ": " << space.error().message;
            EXPECT_EQ(space.value().fingerprint(), ref.fingerprint())
                << name << " diverges at threads=" << threads;
        }
    }
}

// ---------------------------------------------------------------------
// Verdicts, counterexamples, and describeState.
// ---------------------------------------------------------------------

TEST(EncodingEquivalence, CounterexampleTextIdenticalAcrossThreads)
{
    // add vs mul genuinely fails; the counterexample text decodes
    // concrete states through the pool and must not depend on the
    // thread count.
    Environment env(4);
    ExprHigh add;
    add.addNode("n", "operator", {{"op", "add"}});
    add.bindInput(0, PortRef{"n", "in0"});
    add.bindInput(1, PortRef{"n", "in1"});
    add.bindOutput(0, PortRef{"n", "out0"});
    ExprHigh mul;
    mul.addNode("n", "operator", {{"op", "mul"}});
    mul.bindInput(0, PortRef{"n", "in0"});
    mul.bindInput(1, PortRef{"n", "in1"});
    mul.bindOutput(0, PortRef{"n", "out0"});

    std::string base;
    for (std::size_t threads : kThreadCounts) {
        auto report = checkGraphRefinement(
            add, mul, env,
            {Token(Value(2)), Token(Value(3))},
            {.max_states = 10000, .input_budget = 2,
             .threads = threads, .stop = {}});
        ASSERT_TRUE(report.ok()) << report.error().message;
        EXPECT_FALSE(report.value().refines);
        ASSERT_FALSE(report.value().counterexample.empty());
        if (threads == 1)
            base = report.value().counterexample;
        else
            EXPECT_EQ(report.value().counterexample, base)
                << "threads=" << threads;
    }
}

TEST(EncodingEquivalence, DescribeStateDecodesThePool)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());
    ExplorationLimits limits;
    limits.max_states = 400000;
    limits.input_budget = 2;
    Result<StateSpace> space =
        StateSpace::explore(gcd.impl, domain, limits);
    ASSERT_TRUE(space.ok()) << space.error().message;
    const StateSpace& s = space.value();
    // Every state decodes to exactly its interned concrete text.
    GraphState initial = gcd.impl.initialState();
    std::string described = s.describeState(0);
    EXPECT_NE(described.find("state 0 (budget 2)"), std::string::npos);
    EXPECT_NE(described.find(initial.toString()), std::string::npos);
    // The pool shares component states massively: far fewer distinct
    // CompStates than states x components.
    ASSERT_GT(s.numStates(), 0u);
    std::size_t width = s.encodedRow(0).size();
    EXPECT_LT(s.pool().size(), s.numStates() * width / 4);
}

// ---------------------------------------------------------------------
// Spill tier.
// ---------------------------------------------------------------------

TEST(SpillTier, ParkSpillsAndResumesToTheOneShotSpace)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.impl, gcdPairs());

    ExplorationLimits one_shot;
    one_shot.max_states = 400000;
    one_shot.input_budget = 2;
    Result<StateSpace> full =
        StateSpace::explore(gcd.impl, domain, one_shot);
    ASSERT_TRUE(full.ok()) << full.error().message;

    // Park under a tiny spill cap: the cold frontier rows must leave
    // RAM for the spill file.
    ExplorationLimits capped = one_shot;
    capped.max_states = 90;
    capped.spill_bytes = 256;
    Result<StateSpace> partial =
        StateSpace::explorePartial(gcd.impl, domain, capped);
    ASSERT_TRUE(partial.ok()) << partial.error().message;
    StateSpace space = partial.take();
    ASSERT_FALSE(space.complete());
    ASSERT_GT(space.spillBytes(), 0u);
    EXPECT_EQ(space.spillStats().spills, 1u);
    EXPECT_EQ(space.breakdown().spill, space.spillBytes());

    // An identically-capped park without the spill tier: same
    // fingerprint, same decoded states — the spill is pure memory
    // policy, and spilled rows stay readable on demand.
    ExplorationLimits no_spill = capped;
    no_spill.spill_bytes = 0;
    Result<StateSpace> resident =
        StateSpace::explorePartial(gcd.impl, domain, no_spill);
    ASSERT_TRUE(resident.ok()) << resident.error().message;
    EXPECT_EQ(space.fingerprint(), resident.value().fingerprint());
    EXPECT_GT(resident.value().approxBytes(), space.approxBytes());
    std::uint32_t last =
        static_cast<std::uint32_t>(space.numStates()) - 1;
    EXPECT_EQ(space.describeState(last),
              resident.value().describeState(last));
    EXPECT_EQ(space.tokensInFlight(last),
              resident.value().tokensInFlight(last));

    // Resume pages the rows back and completes to the one-shot space.
    while (!space.complete()) {
        Result<bool> more = space.resume(gcd.impl, 200);
        ASSERT_TRUE(more.ok()) << more.error().message;
    }
    EXPECT_EQ(space.spillBytes(), 0u);
    EXPECT_GE(space.spillStats().pages_in, 1u);
    EXPECT_EQ(space.spillStats().paged_in_bytes,
              space.spillStats().spilled_bytes);
    EXPECT_EQ(space.numStates(), full.value().numStates());
    EXPECT_EQ(space.fingerprint(), full.value().fingerprint());
}

TEST(SpillTier, PoolIdsStableAcrossParkAndResume)
{
    GcdInstance gcd;
    InputDomain domain = InputDomain::uniform(gcd.spec, gcdPairs());

    ExplorationLimits one_shot;
    one_shot.max_states = 400000;
    one_shot.input_budget = 2;
    Result<StateSpace> full =
        StateSpace::explore(gcd.spec, domain, one_shot);
    ASSERT_TRUE(full.ok()) << full.error().message;

    ExplorationLimits capped = one_shot;
    capped.max_states = 60;
    capped.spill_bytes = 128;
    Result<StateSpace> partial =
        StateSpace::explorePartial(gcd.spec, domain, capped);
    ASSERT_TRUE(partial.ok()) << partial.error().message;
    StateSpace space = partial.take();
    while (!space.complete()) {
        Result<bool> more = space.resume(gcd.spec, 150);
        ASSERT_TRUE(more.ok()) << more.error().message;
    }
    // Canonical interning: the resumed space assigned the exact pool
    // ids the one-shot run did, for every state row.
    ASSERT_EQ(space.numStates(), full.value().numStates());
    EXPECT_EQ(space.pool().size(), full.value().pool().size());
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(space.numStates()); ++s)
        ASSERT_EQ(space.encodedRow(s), full.value().encodedRow(s))
            << "state " << s;
}

TEST(SpillTier, GovernedVerdictByteIdenticalWithAndWithoutSpill)
{
    // Budgets that drive the ladder onto the BoundedPartial rung: the
    // parked frontier then exceeds the tiny spill cap, so the whole
    // game (including describeState reads for any counterexample)
    // runs against a spilled space — and must not be able to tell.
    GcdInstance gcd;
    std::string base;
    for (std::size_t spill : {std::size_t{0}, std::size_t{512}}) {
        for (std::size_t threads : kThreadCounts) {
            guard::VerificationBudget budget;
            budget.max_states = 400;
            budget.partial_max_states = 200;
            budget.input_budget = 1;
            budget.trace_walks = 2;
            budget.threads = threads;
            budget.spill_bytes = spill;
            guard::Governor governor(budget);
            guard::VerificationVerdict verdict = governor.verifyGraphs(
                gcd.ooo, gcd.seq, gcd.env, gcdPairs());
            std::string json = verdict.toJson().dump(2);
            if (base.empty())
                base = json;
            else
                EXPECT_EQ(json, base) << "spill=" << spill
                                      << " threads=" << threads;
        }
    }
}

// ---------------------------------------------------------------------
// TokenQueue: the O(1) pop must be unobservable.
// ---------------------------------------------------------------------

TEST(TokenQueue, HeadIndexIsInvisibleToEqualityHashAndText)
{
    // Build the same logical queue two ways: directly, and via enough
    // push/pop churn to leave a nonzero head index (and to cross the
    // compaction threshold).
    CompState direct;
    direct.queues.resize(2);
    direct.enq(0, Token(Value(40)));
    direct.enq(0, Token(Value(41)));

    CompState churned;
    churned.queues.resize(2);
    for (int i = 0; i < 40; ++i)
        churned.enq(0, Token(Value(i)));
    for (int i = 0; i < 40; ++i)
        churned.deq(0);
    churned.enq(0, Token(Value(40)));
    churned.enq(0, Token(Value(41)));

    EXPECT_EQ(direct, churned);
    EXPECT_EQ(direct.hash(), churned.hash());
    EXPECT_EQ(direct.toString(), churned.toString());
    EXPECT_EQ(direct.approxBytes(), churned.approxBytes());
    EXPECT_EQ(direct.totalTokens(), churned.totalTokens());
}

TEST(TokenQueue, MatchesNaiveModelThroughMixedOperations)
{
    TokenQueue q;
    std::vector<Token> model;
    auto check = [&] {
        ASSERT_EQ(q.size(), model.size());
        for (std::size_t i = 0; i < model.size(); ++i)
            ASSERT_TRUE(q[i] == model[i]) << "index " << i;
        ASSERT_EQ(q.empty(), model.empty());
        if (!model.empty()) {
            ASSERT_TRUE(q.front() == model.front());
        }
    };
    // Deterministic interleaving crossing the compaction bound
    // several times, with mid-queue erases (the Untagger pick).
    int next = 0;
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 23; ++i) {
            q.push_back(Token(Value(next)));
            model.emplace_back(Value(next));
            ++next;
            check();
        }
        for (int i = 0; i < 19; ++i) {
            q.popFront();
            model.erase(model.begin());
            check();
        }
        if (q.size() > 2) {
            q.eraseAt(1);
            model.erase(model.begin() + 1);
            check();
        }
    }
    while (!model.empty()) {
        q.popFront();
        model.erase(model.begin());
        check();
    }
}

}  // namespace
}  // namespace graphiti
