/**
 * @file
 * Tests for the Verilog back-end: netlist structure, bus sizing from
 * the type checker, per-arity primitive selection, determinism, and
 * the pure-node guard.
 */

#include <gtest/gtest.h>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "emit/verilog.hpp"
#include "rewrite/ooo_pipeline.hpp"

namespace graphiti::emit {
namespace {

int
countOccurrences(const std::string& haystack, const std::string& needle)
{
    int count = 0;
    for (std::size_t at = haystack.find(needle);
         at != std::string::npos;
         at = haystack.find(needle, at + needle.size()))
        ++count;
    return count;
}

TEST(Verilog, EmitsGcdNetlist)
{
    Result<std::string> v = emitVerilog(circuits::buildGcdInOrder(),
                                        {.module_name = "gcd"});
    ASSERT_TRUE(v.ok()) << v.error().message;
    const std::string& text = v.value();
    EXPECT_NE(text.find("module gcd ("), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
    // One instance per node.
    EXPECT_EQ(countOccurrences(text, "graphiti_mux "), 2);
    EXPECT_EQ(countOccurrences(text, "graphiti_init"), 2);
    EXPECT_EQ(countOccurrences(text, "graphiti_branch "), 2);
    EXPECT_EQ(countOccurrences(text, "graphiti_op_mod "), 1);
    // Per-arity forks.
    EXPECT_NE(text.find("graphiti_fork2"), std::string::npos);
    EXPECT_NE(text.find("graphiti_fork3"), std::string::npos);
    EXPECT_NE(text.find("graphiti_fork4"), std::string::npos);
    // Operator latency parameter threaded through.
    EXPECT_NE(text.find(".LATENCY(4)"), std::string::npos);
}

TEST(Verilog, BusWidthsFollowTypes)
{
    // bool wires are 1 bit wide; int wires full width.
    ExprHigh g;
    g.addNode("cB", "constant", {{"value", "true"}});
    g.addNode("cI", "constant", {{"value", "7"}});
    g.addNode("mux", "mux");
    g.bindInput(0, PortRef{"cB", "in0"});
    g.bindInput(1, PortRef{"cI", "in0"});
    g.bindInput(2, PortRef{"mux", "in2"});
    g.connect("cB", "out0", "mux", "in0");
    g.connect("cI", "out0", "mux", "in1");
    g.bindOutput(0, PortRef{"mux", "out0"});
    Result<std::string> v = emitVerilog(g, {.int_width = 32});
    ASSERT_TRUE(v.ok()) << v.error().message;
    EXPECT_NE(v.value().find("wire [0:0] cB_out0_data"),
              std::string::npos);
    EXPECT_NE(v.value().find("wire [31:0] cI_out0_data"),
              std::string::npos);
}

TEST(Verilog, PairWiresAreWidened)
{
    ExprHigh g;
    g.addNode("cI", "constant", {{"value", "1"}});
    g.addNode("cJ", "constant", {{"value", "2"}});
    g.addNode("join", "join", {{"in", "2"}});
    g.addNode("sink", "sink");
    g.bindInput(0, PortRef{"cI", "in0"});
    g.bindInput(1, PortRef{"cJ", "in0"});
    g.connect("cI", "out0", "join", "in0");
    g.connect("cJ", "out0", "join", "in1");
    g.connect("join", "out0", "sink", "in0");
    Result<std::string> v = emitVerilog(g);
    ASSERT_TRUE(v.ok()) << v.error().message;
    EXPECT_NE(v.value().find("wire [63:0] join_out0_data"),
              std::string::npos);
}

TEST(Verilog, TransformedBenchmarkEmits)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark("matvec").take();
    Environment env;
    Result<PipelineResult> transformed = runOooPipeline(
        spec.df_io, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(transformed.ok());
    Result<std::string> v = emitVerilog(transformed.value().graph,
                                        {.module_name = "matvec_ooo"});
    ASSERT_TRUE(v.ok()) << v.error().message;
    EXPECT_NE(v.value().find("graphiti_tagger #(.TAGS(8))"),
              std::string::npos);
    EXPECT_NE(v.value().find("graphiti_merge"), std::string::npos);
    EXPECT_NE(v.value().find("graphiti_load"), std::string::npos);
}

TEST(Verilog, PureNodesMustBeReexpanded)
{
    Environment env;
    ExprHigh g = circuits::buildGcdNormalizedLoop(env.functions());
    Result<std::string> v = emitVerilog(g);
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.error().message.find("re-expand"), std::string::npos);
}

TEST(Verilog, IllTypedGraphRejected)
{
    ExprHigh g;
    g.addNode("cF", "constant", {{"value", "1.5"}});
    g.addNode("br", "branch");
    g.bindInput(0, PortRef{"cF", "in0"});
    g.bindInput(1, PortRef{"br", "in0"});
    g.connect("cF", "out0", "br", "in1");
    g.bindOutput(0, PortRef{"br", "out0"});
    g.bindOutput(1, PortRef{"br", "out1"});
    EXPECT_FALSE(emitVerilog(g).ok());
}

TEST(Verilog, OutputIsDeterministic)
{
    ExprHigh g = circuits::buildGcdInOrder();
    EXPECT_EQ(emitVerilog(g).value(), emitVerilog(g).value());
}

TEST(Verilog, PrimitivesLibraryIsNonEmpty)
{
    std::string lib = emitPrimitives();
    EXPECT_NE(lib.find("module graphiti_buffer"), std::string::npos);
    EXPECT_NE(lib.find("module graphiti_fork2"), std::string::npos);
    EXPECT_NE(lib.find("module graphiti_join2"), std::string::npos);
}

}  // namespace
}  // namespace graphiti::emit
