/**
 * @file
 * Unit tests for the dot parser and printer.
 */

#include <gtest/gtest.h>

#include "dot/dot.hpp"

namespace graphiti {
namespace {

const char* kSample = R"(
digraph circuit {
  // a mux feeding a modulo operator
  mux1 [type = "mux"];
  mod1 [type = "operator", op = "mod", latency = "4"];
  in_a [type = "input", index = "0"];
  out_r [type = "output", index = "0"];
  in_a -> mux1 [to = "in2"];
  mux1 -> mod1 [from = "out0", to = "in0"];
  /* second operand hard-wired for the test */
  c5 [type = "constant", value = "5"];
  src [type = "source"];
  src -> c5 [from = "out0", to = "in0"];
  c5 -> mod1 [to = "in1"];
  k [type = "init"];
  k -> mux1 [to = "in0"];
  mod1 -> out_r [from = "out0"];
  b [type = "buffer"];
  b2 [type = "buffer"];
  b -> b2;
}
)";

TEST(Dot, ParsesSample)
{
    Result<ExprHigh> g = parseDot(kSample);
    ASSERT_TRUE(g.ok()) << g.error().message;
    EXPECT_TRUE(g.value().hasNode("mux1"));
    EXPECT_TRUE(g.value().hasNode("mod1"));
    EXPECT_EQ(g.value().findNode("mod1")->attrs.at("op"), "mod");
    // io bindings
    ASSERT_TRUE(g.value().inputs().at(0).has_value());
    EXPECT_EQ(g.value().inputs()[0]->inst, "mux1");
    EXPECT_EQ(g.value().inputs()[0]->port, "in2");
    ASSERT_TRUE(g.value().outputs().at(0).has_value());
    EXPECT_EQ(g.value().outputs()[0]->inst, "mod1");
}

TEST(Dot, DefaultPortsAreOut0In0)
{
    Result<ExprHigh> g = parseDot(kSample);
    ASSERT_TRUE(g.ok());
    auto driver = g.value().driverOf(PortRef{"b2", "in0"});
    ASSERT_TRUE(driver.has_value());
    EXPECT_EQ(driver->port, "out0");
}

TEST(Dot, RoundTrip)
{
    Result<ExprHigh> g = parseDot(kSample);
    ASSERT_TRUE(g.ok());
    std::string printed = printDot(g.value());
    Result<ExprHigh> reparsed = parseDot(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    EXPECT_TRUE(g.value().sameAs(reparsed.value()));
}

TEST(Dot, CommentsAreSkipped)
{
    Result<ExprHigh> g = parseDot(
        "digraph g { // line\n# hash\n/* block\nblock */ "
        "n [type = \"buffer\"]; }");
    ASSERT_TRUE(g.ok()) << g.error().message;
    EXPECT_TRUE(g.value().hasNode("n"));
}

TEST(Dot, MissingTypeFails)
{
    EXPECT_FALSE(parseDot("digraph g { n [op = \"mod\"]; }").ok());
}

TEST(Dot, MissingBraceFails)
{
    EXPECT_FALSE(parseDot("digraph g  n [type = \"buffer\"]; }").ok());
}

TEST(Dot, UnterminatedStringFails)
{
    EXPECT_FALSE(parseDot("digraph g { n [type = \"buf ] }").ok());
}

TEST(Dot, IoNodeNeedsIndex)
{
    EXPECT_FALSE(parseDot("digraph g { i [type = \"input\"]; }").ok());
}

TEST(Dot, EdgeBetweenIoNodesFails)
{
    EXPECT_FALSE(parseDot("digraph g { "
                          "i [type = \"input\", index = \"0\"]; "
                          "o [type = \"output\", index = \"0\"]; "
                          "i -> o; }")
                     .ok());
}

TEST(Dot, DoubleDrivenPortFailsValidation)
{
    EXPECT_FALSE(parseDot("digraph g { "
                          "a [type = \"buffer\"]; b [type = \"buffer\"]; "
                          "c [type = \"buffer\"]; "
                          "a -> c; b -> c; }")
                     .ok());
}

TEST(Dot, QuotedEscapes)
{
    Result<ExprHigh> g = parseDot(
        "digraph g { n [type = \"buffer\", note = \"say \\\"hi\\\"\"]; }");
    ASSERT_TRUE(g.ok()) << g.error().message;
    EXPECT_EQ(g.value().findNode("n")->attrs.at("note"), "say \"hi\"");
}

TEST(Dot, PrintedOutputIsStable)
{
    Result<ExprHigh> g = parseDot(kSample);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(printDot(g.value()), printDot(g.value()));
}

}  // namespace
}  // namespace graphiti
