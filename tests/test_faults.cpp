/**
 * @file
 * Tests for the fault-injection & hazard-stress subsystem: seeded
 * plans are deterministic, the latency-insensitivity invariant holds
 * for the GCD circuits (in-order and tagged out-of-order) and for
 * every evaluation benchmark, the watchdog tells deadlock from
 * livelock and produces a usable stuck-state diagnosis, and partial
 * state-space exploration resumes to the one-shot result.
 */

#include <gtest/gtest.h>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "faults/stress.hpp"
#include "refine/state_space.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace graphiti::faults {
namespace {

std::vector<Token>
intStream(std::initializer_list<std::int64_t> values)
{
    std::vector<Token> out;
    for (std::int64_t v : values)
        out.emplace_back(Value(v));
    return out;
}

/** The figure-2 GCD workload as a stress Workload. */
Workload
gcdWorkload(int pairs = 12)
{
    Workload w;
    std::vector<Token> as, bs;
    for (int i = 0; i < pairs; ++i) {
        as.emplace_back(Value(1071 + 17 * i));
        bs.emplace_back(Value(462 + 3 * i));
    }
    w.inputs = {std::move(as), std::move(bs)};
    w.expected_outputs = static_cast<std::size_t>(pairs);
    return w;
}

/** Small plan battery keeping the stress smoke profile under budget. */
StressOptions
smokeOptions()
{
    StressOptions options;
    options.random_plans = 3;
    options.max_starve_plans = 6;
    options.plan_config.horizon = 2048;
    return options;
}

Result<sim::SimResult>
runWithPlan(const ExprHigh& g, std::shared_ptr<FnRegistry> registry,
            const Workload& w, std::shared_ptr<sim::FaultInjector> plan)
{
    sim::SimConfig config;
    config.faults = std::move(plan);
    sim::Simulator sim = sim::Simulator::build(g, registry, config).take();
    for (const auto& [name, data] : w.memories)
        sim.setMemory(name, data);
    return sim.run(w.inputs, w.expected_outputs, w.serial_io);
}

TEST(FaultPlan, SameSeedReproducesTheRun)
{
    Environment env;
    ExprHigh gcd = circuits::buildGcdInOrder();
    Result<PipelineResult> ooo =
        runOooPipeline(gcd, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(ooo.ok()) << ooo.error().message;

    Workload w = gcdWorkload();
    auto plan_a = std::make_shared<FaultPlan>(FaultPlan::random(42));
    auto plan_b = std::make_shared<FaultPlan>(FaultPlan::random(42));
    Result<sim::SimResult> a =
        runWithPlan(ooo.value().graph, env.functionsPtr(), w, plan_a);
    Result<sim::SimResult> b =
        runWithPlan(ooo.value().graph, env.functionsPtr(), w, plan_b);
    ASSERT_TRUE(a.ok()) << a.error().message;
    ASSERT_TRUE(b.ok()) << b.error().message;
    EXPECT_EQ(a.value().cycles, b.value().cycles);
    ASSERT_EQ(a.value().outputs.size(), b.value().outputs.size());
    for (std::size_t p = 0; p < a.value().outputs.size(); ++p)
        EXPECT_EQ(a.value().outputs[p], b.value().outputs[p]);
}

TEST(FaultPlan, DifferentSeedsChangeTimingButNotResults)
{
    Environment env;
    ExprHigh gcd = circuits::buildGcdInOrder();
    Workload w = gcdWorkload();

    Result<sim::SimResult> baseline =
        runWithPlan(gcd, env.functionsPtr(), w, nullptr);
    ASSERT_TRUE(baseline.ok()) << baseline.error().message;

    std::vector<std::size_t> cycle_counts;
    for (std::uint64_t seed : {7ULL, 1234ULL, 99999ULL}) {
        auto plan = std::make_shared<FaultPlan>(FaultPlan::random(seed));
        Result<sim::SimResult> r =
            runWithPlan(gcd, env.functionsPtr(), w, plan);
        ASSERT_TRUE(r.ok()) << "seed " << seed << ": "
                            << r.error().message;
        EXPECT_EQ(r.value().outputs[0], baseline.value().outputs[0])
            << "seed " << seed;
        cycle_counts.push_back(r.value().cycles);
    }
    // Faults must actually perturb the schedule.
    for (std::size_t c : cycle_counts)
        EXPECT_GT(c, baseline.value().cycles);
}

TEST(Stress, GcdInOrderIsLatencyInsensitive)
{
    Environment env;
    StressHarness harness(smokeOptions());
    Result<StressReport> report = harness.run(
        circuits::buildGcdInOrder(), env.functionsPtr(), gcdWorkload());
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().invariant_holds)
        << report.value().first_violation;
    EXPECT_GT(report.value().plansRun(), 5u);
}

TEST(Stress, TaggedOooLoopIsLatencyInsensitive)
{
    Environment env;
    ExprHigh gcd = circuits::buildGcdInOrder();
    Result<PipelineResult> ooo =
        runOooPipeline(gcd, env, {.num_tags = 8, .reexpand = true});
    ASSERT_TRUE(ooo.ok()) << ooo.error().message;

    StressHarness harness(smokeOptions());
    Result<StressReport> report = harness.runPair(
        gcd, ooo.value().graph, env.functionsPtr(), gcdWorkload());
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().invariant_holds)
        << report.value().first_violation;
}

// ---------------------------------------------------------------------
// The acceptance matrix: every evaluation benchmark, original and
// rewritten, under the full plan battery.
// ---------------------------------------------------------------------

class BenchmarkStress : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkStress, HoldsLatencyInsensitivityInvariant)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark(GetParam()).take();
    Environment env;
    Result<PipelineResult> transformed = runOooPipeline(
        spec.df_io, env, {.num_tags = spec.num_tags, .reexpand = true});
    ASSERT_TRUE(transformed.ok()) << transformed.error().message;

    Workload w;
    w.memories = spec.memories;
    w.inputs = spec.inputs;
    w.expected_outputs = spec.expected_outputs;
    w.serial_io = spec.serial_io;

    StressOptions options = smokeOptions();
    options.random_plans = 2;
    options.max_starve_plans = 4;
    StressHarness harness(options);
    // For bicg the pipeline refuses the transform and hands back the
    // original, so the pair degenerates to stressing DF-IO twice.
    Result<StressReport> report = harness.runPair(
        spec.df_io, transformed.value().graph, env.functionsPtr(), w);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().invariant_holds)
        << GetParam() << ": " << report.value().first_violation;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkStress,
                         ::testing::ValuesIn(circuits::benchmarkNames()),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (char& c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ---------------------------------------------------------------------
// Watchdog classification.
// ---------------------------------------------------------------------

TEST(Watchdog, DeadlockIsClassifiedAndDiagnosed)
{
    // A join whose second operand never arrives: tokens wait, nothing
    // can move.
    ExprHigh g;
    g.addNode("j", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"j", "in0"});
    g.bindInput(1, PortRef{"j", "in1"});
    g.bindOutput(0, PortRef{"j", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    sim::Simulator sim = sim::Simulator::build(g, registry).take();
    Result<sim::SimResult> r = sim.run({intStream({1}), {}}, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("deadlock"), std::string::npos);
    ASSERT_TRUE(sim.lastDiagnosis().has_value());
    const sim::StuckDiagnosis& d = *sim.lastDiagnosis();
    EXPECT_EQ(d.kind, sim::StuckKind::Deadlock);
    ASSERT_FALSE(d.blocked.empty());
    EXPECT_EQ(d.blocked[0].name, "j");
    // The wavefront names the missing operand.
    ASSERT_FALSE(d.blocked[0].waiting_on.empty());
    EXPECT_NE(d.blocked[0].waiting_on[0].find("in1 empty"),
              std::string::npos);
    EXPECT_FALSE(d.occupied_channels.empty());
}

TEST(Watchdog, LivelockIsDistinguishedFromDeadlock)
{
    // A source/sink pair churns tokens forever while the bound output
    // (a join with a forever-missing operand) never advances: internal
    // activity without output progress.
    ExprHigh g;
    g.addNode("src", "source");
    g.addNode("snk", "sink");
    g.addNode("j", "join", {{"in", "2"}});
    g.connect("src", "out0", "snk", "in0");
    g.bindInput(0, PortRef{"j", "in0"});
    g.bindInput(1, PortRef{"j", "in1"});
    g.bindOutput(0, PortRef{"j", "out0"});
    auto registry = std::make_shared<FnRegistry>();
    sim::SimConfig config;
    config.livelock_window = 300;
    sim::Simulator sim =
        sim::Simulator::build(g, registry, config).take();
    Result<sim::SimResult> r = sim.run({intStream({1}), {}}, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("livelock"), std::string::npos);
    ASSERT_TRUE(sim.lastDiagnosis().has_value());
    EXPECT_EQ(sim.lastDiagnosis()->kind, sim::StuckKind::Livelock);
}

/**
 * A zero-slack token ring: four init components seed four tokens
 * into a four-channel cycle. With the default two slots per channel
 * the ring has bubbles and circulates forever; squeezed to a single
 * slot everywhere it has token count == slot count, so after the
 * initial pushes no component has output space and nothing can ever
 * move — the buffer-sizing hazard arch/buffers.hpp exists to
 * prevent, distilled to four nodes. The idle join gives the run an
 * output to wait for (it never arrives; the watchdog must explain
 * why).
 */
ExprHigh
tokenRing()
{
    ExprHigh g;
    g.addNode("i1", "init");
    g.addNode("i2", "init");
    g.addNode("i3", "init");
    g.addNode("i4", "init");
    g.connect("i1", "out0", "i2", "in0");
    g.connect("i2", "out0", "i3", "in0");
    g.connect("i3", "out0", "i4", "in0");
    g.connect("i4", "out0", "i1", "in0");
    g.addNode("probe", "join", {{"in", "2"}});
    g.bindInput(0, PortRef{"probe", "in0"});
    g.bindInput(1, PortRef{"probe", "in1"});
    g.bindOutput(0, PortRef{"probe", "out0"});
    return g;
}

TEST(Watchdog, UnderBufferedCircuitReportsDeadlockWithDiagnosis)
{
    auto registry = std::make_shared<FnRegistry>();
    sim::SimConfig config;
    config.livelock_window = 300;
    config.faults =
        std::make_shared<FaultPlan>(FaultPlan::singleSlot());
    sim::Simulator sim =
        sim::Simulator::build(tokenRing(), registry, config).take();
    Result<sim::SimResult> r = sim.run({{}, {}}, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("deadlock"), std::string::npos)
        << r.error().message;
    ASSERT_TRUE(sim.lastDiagnosis().has_value());
    const sim::StuckDiagnosis& d = *sim.lastDiagnosis();
    EXPECT_EQ(d.kind, sim::StuckKind::Deadlock);
    // All four ring channels are full and all four inits blocked.
    EXPECT_EQ(d.occupied_channels.size(), 4u);
    EXPECT_EQ(d.blocked.size(), 4u);
    EXPECT_FALSE(d.toString().empty());
}

TEST(Watchdog, SameRingWithSlackLivelocksInsteadOfDeadlocking)
{
    // Un-squeezed, the identical circuit circulates forever: the
    // watchdog must report livelock, not deadlock — the difference
    // between "needs more buffering" and "needs a different circuit".
    auto registry = std::make_shared<FnRegistry>();
    sim::SimConfig config;
    config.livelock_window = 300;
    sim::Simulator sim =
        sim::Simulator::build(tokenRing(), registry, config).take();
    Result<sim::SimResult> r = sim.run({{}, {}}, 1);
    ASSERT_FALSE(r.ok());
    ASSERT_TRUE(sim.lastDiagnosis().has_value());
    EXPECT_EQ(sim.lastDiagnosis()->kind, sim::StuckKind::Livelock);
}

// ---------------------------------------------------------------------
// Resumable state-space exploration.
// ---------------------------------------------------------------------

TEST(StateSpacePartial, ResumeReachesTheOneShotStateCount)
{
    Environment env(4);
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    InputDomain domain = InputDomain::uniform(
        mod, {Token(Value(1)), Token(Value(2))});

    ExplorationLimits full{.max_states = 10000, .input_budget = 3};
    StateSpace one_shot = StateSpace::explore(mod, domain, full).take();
    ASSERT_TRUE(one_shot.complete());

    // Tight cap: the partial space parks a frontier instead of dying.
    StateSpace partial =
        StateSpace::explorePartial(
            mod, domain, {.max_states = 4, .input_budget = 3})
            .take();
    EXPECT_FALSE(partial.complete());
    EXPECT_FALSE(partial.pendingFrontier().empty());
    EXPECT_LE(partial.numStates(), 4u);

    // Resume in small increments until done; the result must be the
    // state space one-shot exploration builds.
    for (int round = 0; round < 100 && !partial.complete(); ++round)
        ASSERT_TRUE(partial.resume(mod, 4).ok());
    ASSERT_TRUE(partial.complete());
    EXPECT_EQ(partial.numStates(), one_shot.numStates());
    EXPECT_TRUE(partial.pendingFrontier().empty());
}

TEST(StateSpacePartial, StrictExploreStillFailsAtTheCap)
{
    Environment env(8);
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    DenotedModule mod =
        DenotedModule::denote(lowerToExprLow(g).value(), env).take();
    InputDomain domain = InputDomain::uniform(
        mod, {Token(Value(1)), Token(Value(2)), Token(Value(3))});
    EXPECT_FALSE(StateSpace::explore(mod, domain,
                                     {.max_states = 3,
                                      .input_budget = 3})
                     .ok());
}

// ---------------------------------------------------------------------
// Compiler surface.
// ---------------------------------------------------------------------

TEST(Compiler, StressCompilationValidatesGcd)
{
    Compiler compiler;
    ExprHigh gcd = circuits::buildGcdInOrder();
    Result<CompileReport> compiled =
        compiler.compileGraph(gcd, {.num_tags = 8});
    ASSERT_TRUE(compiled.ok()) << compiled.error().message;

    StressOptions options = smokeOptions();
    options.random_plans = 2;
    options.max_starve_plans = 4;
    Result<StressReport> report = compiler.stressCompilation(
        gcd, compiled.value().graph, gcdWorkload(8), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_TRUE(report.value().invariant_holds)
        << report.value().first_violation;
    EXPECT_GT(report.value().plansRun(), 0u);
}

}  // namespace
}  // namespace graphiti::faults
