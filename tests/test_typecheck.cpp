/**
 * @file
 * Tests for the well-typedness checker (section 6.3): type inference
 * over the component rules, pair construction/destruction, and
 * rejection of ill-typed wiring.
 */

#include <gtest/gtest.h>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "graph/typecheck.hpp"
#include "rewrite/ooo_pipeline.hpp"

namespace graphiti {
namespace {

TEST(TypeCheck, BenchmarkCircuitsAreWellTyped)
{
    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec spec =
            circuits::buildBenchmark(name).take();
        Result<TypeReport> report = checkWellTyped(spec.df_io);
        EXPECT_TRUE(report.ok())
            << name << ": "
            << (report.ok() ? "" : report.error().message);
        if (spec.df_ooo_input) {
            Result<TypeReport> variant =
                checkWellTyped(*spec.df_ooo_input);
            EXPECT_TRUE(variant.ok())
                << name << " (ooo variant): "
                << (variant.ok() ? "" : variant.error().message);
        }
    }
}

TEST(TypeCheck, TransformedCircuitsStayWellTyped)
{
    Environment env;
    Result<PipelineResult> transformed =
        runOooPipeline(circuits::buildGcdInOrder(), env,
                       {.num_tags = 4, .reexpand = true});
    ASSERT_TRUE(transformed.ok());
    Result<TypeReport> report =
        checkWellTyped(transformed.value().graph);
    EXPECT_TRUE(report.ok())
        << (report.ok() ? "" : report.error().message);
}

TEST(TypeCheck, InfersIntThroughArithmetic)
{
    ExprHigh g;
    g.addNode("f", "fork", {{"out", "2"}});
    g.addNode("add", "operator", {{"op", "add"}});
    g.bindInput(0, PortRef{"f", "in0"});
    g.connect("f", "out0", "add", "in0");
    g.connect("f", "out1", "add", "in1");
    g.bindOutput(0, PortRef{"add", "out0"});
    Result<TypeReport> report = checkWellTyped(g);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value()
                  .wire_types.at(PortRef{"f", "out0"})
                  .kind,
              WireType::Kind::integer);
    EXPECT_EQ(report.value()
                  .wire_types.at(PortRef{"add", "out0"})
                  .kind,
              WireType::Kind::integer);
}

TEST(TypeCheck, InfersPairThroughJoinSplit)
{
    ExprHigh g;
    g.addNode("cI", "constant", {{"value", "3"}});
    g.addNode("cF", "constant", {{"value", "1.5"}});
    g.addNode("join", "join", {{"in", "2"}});
    g.addNode("split", "split");
    g.bindInput(0, PortRef{"cI", "in0"});
    g.bindInput(1, PortRef{"cF", "in0"});
    g.connect("cI", "out0", "join", "in0");
    g.connect("cF", "out0", "join", "in1");
    g.connect("join", "out0", "split", "in0");
    g.bindOutput(0, PortRef{"split", "out0"});
    g.bindOutput(1, PortRef{"split", "out1"});
    Result<TypeReport> report = checkWellTyped(g);
    ASSERT_TRUE(report.ok()) << report.error().message;
    const WireType& joined =
        report.value().wire_types.at(PortRef{"join", "out0"});
    ASSERT_EQ(joined.kind, WireType::Kind::pair);
    EXPECT_EQ(joined.first->kind, WireType::Kind::integer);
    EXPECT_EQ(joined.second->kind, WireType::Kind::floating);
    EXPECT_EQ(report.value()
                  .wire_types.at(PortRef{"split", "out1"})
                  .kind,
              WireType::Kind::floating);
}

TEST(TypeCheck, RejectsFloatBranchCondition)
{
    ExprHigh g;
    g.addNode("cF", "constant", {{"value", "1.5"}});
    g.addNode("br", "branch");
    g.bindInput(0, PortRef{"cF", "in0"});
    g.bindInput(1, PortRef{"br", "in0"});
    g.connect("cF", "out0", "br", "in1");
    g.bindOutput(0, PortRef{"br", "out0"});
    g.bindOutput(1, PortRef{"br", "out1"});
    Result<TypeReport> report = checkWellTyped(g);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.error().message.find("type conflict"),
              std::string::npos);
}

TEST(TypeCheck, RejectsIntIntoFloatAdder)
{
    ExprHigh g;
    g.addNode("cI", "constant", {{"value", "3"}});
    g.addNode("cF", "constant", {{"value", "1.5"}});
    g.addNode("fadd", "operator", {{"op", "fadd"}});
    g.bindInput(0, PortRef{"cI", "in0"});
    g.bindInput(1, PortRef{"cF", "in0"});
    g.connect("cI", "out0", "fadd", "in0");
    g.connect("cF", "out0", "fadd", "in1");
    g.bindOutput(0, PortRef{"fadd", "out0"});
    EXPECT_FALSE(checkWellTyped(g).ok());
}

TEST(TypeCheck, RejectsMismatchedMuxArms)
{
    ExprHigh g;
    g.addNode("cI", "constant", {{"value", "3"}});
    g.addNode("cF", "constant", {{"value", "1.5"}});
    g.addNode("mux", "mux");
    g.bindInput(0, PortRef{"cI", "in0"});
    g.bindInput(1, PortRef{"cF", "in0"});
    g.bindInput(2, PortRef{"mux", "in0"});
    g.connect("cI", "out0", "mux", "in1");
    g.connect("cF", "out0", "mux", "in2");
    g.bindOutput(0, PortRef{"mux", "out0"});
    EXPECT_FALSE(checkWellTyped(g).ok());
}

TEST(TypeCheck, RejectsEqOnDifferentTypes)
{
    ExprHigh g;
    g.addNode("cI", "constant", {{"value", "3"}});
    g.addNode("cF", "constant", {{"value", "1.5"}});
    g.addNode("eq", "operator", {{"op", "eq"}});
    g.bindInput(0, PortRef{"cI", "in0"});
    g.bindInput(1, PortRef{"cF", "in0"});
    g.connect("cI", "out0", "eq", "in0");
    g.connect("cF", "out0", "eq", "in1");
    g.bindOutput(0, PortRef{"eq", "out0"});
    EXPECT_FALSE(checkWellTyped(g).ok());
}

TEST(TypeCheck, PolymorphicWiresStayUnknown)
{
    ExprHigh g;
    g.addNode("b", "buffer");
    g.bindInput(0, PortRef{"b", "in0"});
    g.bindOutput(0, PortRef{"b", "out0"});
    Result<TypeReport> report = checkWellTyped(g);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value()
                  .wire_types.at(PortRef{"b", "out0"})
                  .kind,
              WireType::Kind::unknown);
}

TEST(TypeCheck, SelectUnifiesArmsWithOutput)
{
    ExprHigh g;
    g.addNode("cB", "constant", {{"value", "true"}});
    g.addNode("cF1", "constant", {{"value", "1.5"}});
    g.addNode("cF2", "constant", {{"value", "2.5"}});
    g.addNode("sel", "operator", {{"op", "select"}});
    g.bindInput(0, PortRef{"cB", "in0"});
    g.bindInput(1, PortRef{"cF1", "in0"});
    g.bindInput(2, PortRef{"cF2", "in0"});
    g.connect("cB", "out0", "sel", "in0");
    g.connect("cF1", "out0", "sel", "in1");
    g.connect("cF2", "out0", "sel", "in2");
    g.bindOutput(0, PortRef{"sel", "out0"});
    Result<TypeReport> report = checkWellTyped(g);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_EQ(report.value()
                  .wire_types.at(PortRef{"sel", "out0"})
                  .kind,
              WireType::Kind::floating);
}

TEST(TypeCheck, WireTypeToString)
{
    WireType t = WireType::pairOf(WireType::integer(),
                                  WireType::boolean());
    EXPECT_EQ(t.toString(), "(int, bool)");
    EXPECT_EQ(WireType::unknown().toString(), "?");
}

}  // namespace
}  // namespace graphiti
