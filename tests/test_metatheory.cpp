/**
 * @file
 * The refinement metatheory of section 4.6, checked on concrete
 * instances: ⊑ is a preorder (reflexive, transitive), it is preserved
 * by graph contexts (product and connection — the congruence that
 * makes theorem 4.6 go through), and counterexamples come back as
 * playable attack strategies.
 */

#include <gtest/gtest.h>

#include "rewrite/catalog.hpp"
#include "refine/refinement.hpp"

namespace graphiti {
namespace {

ExprHigh
bufferChain(int length)
{
    ExprHigh g;
    std::string prev;
    for (int i = 0; i < length; ++i) {
        std::string name = "b" + std::to_string(i);
        g.addNode(name, "buffer");
        if (i == 0)
            g.bindInput(0, PortRef{name, "in0"});
        else
            g.connect(prev, "out0", name, "in0");
        prev = name;
    }
    g.bindOutput(0, PortRef{prev, "out0"});
    return g;
}

bool
refines(const ExprHigh& impl, const ExprHigh& spec)
{
    Environment env(4);
    auto report = checkGraphRefinement(
        impl, spec, env, {Token(Value(1)), Token(Value(2))},
        {.max_states = 100000, .input_budget = 2});
    EXPECT_TRUE(report.ok()) << report.error().message;
    return report.ok() && report.value().refines;
}

TEST(Metatheory, PreorderOnBufferChains)
{
    ExprHigh b1 = bufferChain(1);
    ExprHigh b2 = bufferChain(2);
    ExprHigh b3 = bufferChain(3);
    // Reflexivity.
    EXPECT_TRUE(refines(b2, b2));
    // The chain pairs refine in both directions (same unbounded-FIFO
    // behavior), giving transitivity chains to check.
    EXPECT_TRUE(refines(b3, b2));
    EXPECT_TRUE(refines(b2, b1));
    EXPECT_TRUE(refines(b3, b1));  // transitivity instance
}

/**
 * Congruence: embed both sides of a verified rewrite in the *same*
 * context (extra components and connections around the boundary) and
 * check the refinement still holds — the content of theorem 4.6.
 */
TEST(Metatheory, RefinementIsPreservedByContext)
{
    RewriteDef def = catalog::forkToPureDup();  // rhs ⊑ lhs, verified

    auto embed = [](const ExprHigh& fragment) {
        // Context: a buffer feeds the fragment's io0; the fragment's
        // two outputs are joined back together.
        PortRef frag_in = *fragment.inputs().at(0);
        PortRef frag_out0 = *fragment.outputs().at(0);
        PortRef frag_out1 = *fragment.outputs().at(1);
        ExprHigh g;
        for (const NodeDecl& n : fragment.nodes())
            g.addNode(n.name, n.type, n.attrs);
        for (const Edge& e : fragment.edges())
            g.connect(e.src, e.dst);
        g.addNode("ctx_in", "buffer");
        g.addNode("ctx_join", "join", {{"in", "2"}});
        g.bindInput(0, PortRef{"ctx_in", "in0"});
        g.connect(PortRef{"ctx_in", "out0"}, frag_in);
        g.connect(frag_out0, PortRef{"ctx_join", "in0"});
        g.connect(frag_out1, PortRef{"ctx_join", "in1"});
        g.bindOutput(0, PortRef{"ctx_join", "out0"});
        return g;
    };

    ExprHigh ctx_lhs = embed(def.lhs);
    ExprHigh ctx_rhs = embed(def.rhs);
    ASSERT_TRUE(ctx_lhs.validate().ok())
        << ctx_lhs.validate().error().message;
    ASSERT_TRUE(ctx_rhs.validate().ok())
        << ctx_rhs.validate().error().message;
    EXPECT_TRUE(refines(ctx_rhs, ctx_lhs));
}

TEST(Metatheory, NonRefinementYieldsAttackStrategy)
{
    // A constant-5 circuit does not refine a constant-6 circuit; the
    // counterexample must be a playable step sequence ending in the
    // mismatched output.
    ExprHigh five;
    five.addNode("c", "constant", {{"value", "5"}});
    five.bindInput(0, PortRef{"c", "in0"});
    five.bindOutput(0, PortRef{"c", "out0"});
    ExprHigh six;
    six.addNode("c", "constant", {{"value", "6"}});
    six.bindInput(0, PortRef{"c", "in0"});
    six.bindOutput(0, PortRef{"c", "out0"});

    Environment env(4);
    auto report = checkGraphRefinement(five, six, env,
                                       {Token(Value())},
                                       {.max_states = 1000,
                                        .input_budget = 1});
    ASSERT_TRUE(report.ok());
    ASSERT_FALSE(report.value().refines);
    const std::string& cex = report.value().counterexample;
    EXPECT_NE(cex.find("step 0"), std::string::npos) << cex;
    EXPECT_NE(cex.find("output of 5"), std::string::npos) << cex;
}

}  // namespace
}  // namespace graphiti
