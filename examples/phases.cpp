/**
 * @file
 * phases: the figure 4 walkthrough.
 *
 * Runs the out-of-order pipeline on the GCD circuit with snapshots
 * enabled and prints the graph after each phase — the normalization
 * (figure 4b), the pure-generated loop (figure 4c's Pure + Split),
 * the tagged loop (figure 4d) and the re-expanded final circuit.
 * Pass --dot to also dump each snapshot as a dot document.
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "bench_circuits/gcd.hpp"
#include "dot/dot.hpp"
#include "rewrite/ooo_pipeline.hpp"

int
main(int argc, char** argv)
{
    using namespace graphiti;

    bool dump_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

    Environment env;
    Result<PipelineResult> result = runOooPipeline(
        circuits::buildGcdInOrder(), env,
        {.num_tags = 4, .reexpand = true, .keep_snapshots = true});
    if (!result.ok()) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     result.error().message.c_str());
        return 1;
    }

    for (const PipelineSnapshot& snap : result.value().snapshots) {
        std::map<std::string, int> census;
        for (const NodeDecl& node : snap.graph.nodes())
            ++census[node.type];
        std::printf("%-16s %2zu nodes, %2zu edges:", snap.phase.c_str(),
                    snap.graph.numNodes(), snap.graph.edges().size());
        for (const auto& [type, count] : census)
            std::printf(" %s=%d", type.c_str(), count);
        std::printf("\n");
        if (dump_dot)
            std::printf("%s\n", printDot(snap.graph, snap.phase).c_str());
    }
    std::printf("\nrewrites applied: %zu\n",
                result.value().stats.rewrites_applied);
    for (const auto& [rule, count] :
         result.value().stats.per_rule)
        std::printf("  %-18s %zu\n", rule.c_str(), count);
    return 0;
}
