/**
 * @file
 * Quickstart: the section 2 story end to end.
 *
 * Builds the in-order GCD circuit (figure 2b), compiles it with the
 * verified out-of-order pipeline (producing the figure 2c shape),
 * checks the result on a stream of inputs in the cycle simulator, and
 * discharges the refinement obligation of the compilation on a
 * bounded instantiation.
 */

#include <cstdio>
#include <numeric>

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "sim/sim.hpp"

int
main()
{
    using namespace graphiti;

    // 1. The input circuit: a sequential GCD loop as a dynamic HLS
    //    front-end would emit it.
    ExprHigh in_order = circuits::buildGcdInOrder();
    std::printf("input circuit: %zu nodes, %zu edges\n",
                in_order.numNodes(), in_order.edges().size());

    // 2. Compile: normalize the loop, prove the body pure, swap the
    //    Mux for a tagged Merge inside a Tagger/Untagger.
    Compiler compiler;
    Result<CompileReport> compiled =
        compiler.compileGraph(in_order, {.num_tags = 8});
    if (!compiled.ok()) {
        std::fprintf(stderr, "compilation failed: %s\n",
                     compiled.error().message.c_str());
        return 1;
    }
    const CompileReport& report = compiled.value();
    std::printf("applied %zu rewrites in %.3f s; loop %s\n",
                report.rewrites.rewrites_applied, report.seconds,
                report.loops.at(0).transformed ? "transformed"
                                               : "refused");

    // 3. Simulate both circuits on the same stream.
    auto run = [&](const ExprHigh& g) {
        sim::Simulator simulator =
            sim::Simulator::build(g, compiler.environment()
                                         .functionsPtr())
                .take();
        std::vector<Token> as, bs;
        for (int i = 0; i < 16; ++i) {
            as.emplace_back(Value(1071 + 13 * i));
            bs.emplace_back(Value(462 + 7 * i));
        }
        auto result = simulator.run({as, bs}, as.size());
        if (!result.ok()) {
            std::fprintf(stderr, "simulation failed: %s\n",
                         result.error().message.c_str());
            std::exit(1);
        }
        return result.take();
    };
    sim::SimResult before = run(in_order);
    sim::SimResult after = run(report.graph);

    bool identical = before.outputs == after.outputs;
    std::printf("results identical and in program order: %s\n",
                identical ? "yes" : "NO");
    for (std::size_t i = 0; i < 3; ++i)
        std::printf("  gcd #%zu = %s\n", i,
                    after.outputs[0][i].value.toString().c_str());
    std::printf("cycles: %zu in-order -> %zu out-of-order (%.2fx)\n",
                before.cycles, after.cycles,
                static_cast<double>(before.cycles) /
                    static_cast<double>(after.cycles));

    // 4. Bounded formal validation of this very compilation (the
    //    checker analogue of theorem 5.3): compile the *normalized*
    //    loop, whose state space is small enough to explore.
    Compiler verifier;
    ExprHigh normalized = circuits::buildGcdNormalizedLoop(
        verifier.environment().functions());
    Result<CompileReport> small = verifier.compileGraph(
        normalized, {.num_tags = 2, .reexpand = false});
    if (small.ok()) {
        auto verdict = verifier.verifyCompilation(
            normalized, small.value().graph,
            {Token(Value::tuple(Value(3), Value(2))),
             Token(Value::tuple(Value(4), Value(2)))},
            {.max_states = 400000, .input_budget = 2});
        std::printf("bounded refinement check (ooo ⊑ seq): %s "
                    "(%zu impl states, %zu game pairs)\n",
                    verdict.ok() && verdict.value().refines ? "PASSED"
                                                            : "FAILED",
                    verdict.ok() ? verdict.value().impl_states : 0,
                    verdict.ok() ? verdict.value().reachable_pairs : 0);
    }
    return identical ? 0 : 1;
}
