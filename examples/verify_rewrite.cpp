/**
 * @file
 * verify_rewrite: extending GRAPHITI with a new, checked rewrite.
 *
 * The paper positions GRAPHITI as "an environment to verify new
 * rewrites, which can then be plugged into the top-level rewriting
 * loop". This example does exactly that: it defines a buffer-
 * duplication rewrite (buffer -> buffer; buffer), discharges its
 * refinement obligation with the checker, registers it in an engine,
 * and applies it — then shows the checker *rejecting* a deliberately
 * unsound variant (a rewrite replacing an adder by a multiplier).
 */

#include <cstdio>

#include "rewrite/engine.hpp"

int
main()
{
    using namespace graphiti;

    // A sound rewrite: one buffer becomes two in sequence.
    RewriteDef deepen;
    deepen.name = "buffer-deepen";
    deepen.lhs.addNode("b", "buffer");
    deepen.lhs.bindInput(0, PortRef{"b", "in0"});
    deepen.lhs.bindOutput(0, PortRef{"b", "out0"});
    deepen.rhs.addNode("b1", "buffer");
    deepen.rhs.addNode("b2", "buffer");
    deepen.rhs.connect("b1", "out0", "b2", "in0");
    deepen.rhs.bindInput(0, PortRef{"b1", "in0"});
    deepen.rhs.bindOutput(0, PortRef{"b2", "out0"});

    Environment env(4);
    auto verdict = verifyRewrite(deepen, env,
                                 {Token(Value(1)), Token(Value(2))},
                                 {.max_states = 50000,
                                  .input_budget = 3});
    std::printf("buffer-deepen refinement (rhs ⊑ lhs): %s\n",
                verdict.ok() && verdict.value().refines ? "PROVED"
                                                        : "REJECTED");
    if (!verdict.ok() || !verdict.value().refines)
        return 1;
    deepen.verified = true;

    // Plug it into the engine and run it.
    ExprHigh g;
    g.addNode("buf", "buffer");
    g.bindInput(0, PortRef{"buf", "in0"});
    g.bindOutput(0, PortRef{"buf", "out0"});
    RewriteEngine engine;
    if (!engine.addRule(deepen).ok())
        return 1;
    Result<ExprHigh> rewritten = engine.applyOnce(g, "buffer-deepen");
    std::printf("applied: %zu node(s) -> %zu node(s)\n", g.numNodes(),
                rewritten.ok() ? rewritten.value().numNodes() : 0);

    // An unsound rewrite: the checker must find a counterexample.
    RewriteDef bogus;
    bogus.name = "add-becomes-mul";
    bogus.lhs.addNode("a", "operator", {{"op", "add"}});
    bogus.lhs.bindInput(0, PortRef{"a", "in0"});
    bogus.lhs.bindInput(1, PortRef{"a", "in1"});
    bogus.lhs.bindOutput(0, PortRef{"a", "out0"});
    bogus.rhs.addNode("m", "operator", {{"op", "mul"}});
    bogus.rhs.bindInput(0, PortRef{"m", "in0"});
    bogus.rhs.bindInput(1, PortRef{"m", "in1"});
    bogus.rhs.bindOutput(0, PortRef{"m", "out0"});

    auto bad = verifyRewrite(bogus, env,
                             {Token(Value(2)), Token(Value(3))},
                             {.max_states = 50000, .input_budget = 2});
    std::printf("add-becomes-mul refinement: %s\n",
                bad.ok() && bad.value().refines ? "PROVED (BUG!)"
                                                : "REJECTED, as it "
                                                  "must be");
    if (bad.ok() && !bad.value().refines)
        std::printf("checker counterexample (excerpt):\n  %.120s...\n",
                    bad.value().counterexample.c_str());
    return bad.ok() && bad.value().refines ? 1 : 0;
}
