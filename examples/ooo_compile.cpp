/**
 * @file
 * ooo_compile: the command-line rewriter of figure 1.
 *
 * Reads a Dynamatic-style dot graph (file argument or stdin), runs the
 * verified out-of-order pipeline, and writes the optimized dot graph
 * to stdout; the transformation report goes to stderr. This mirrors
 * the C binary extracted from the Lean development (section 6.3).
 *
 * Usage:
 *     ooo_compile [--tags N] [--no-reexpand] [--verilog] [input.dot]
 *
 * --verilog emits a structural RTL netlist instead of dot. With no
 * input file, a demo GCD circuit is compiled so the binary is
 * self-contained for the bench sweep.
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "dot/dot.hpp"
#include "emit/verilog.hpp"

int
main(int argc, char** argv)
{
    using namespace graphiti;

    CompileOptions options;
    std::string input_path;
    bool emit_verilog = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tags") == 0 && i + 1 < argc) {
            options.num_tags = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--no-reexpand") == 0) {
            options.reexpand = false;
        } else if (std::strcmp(argv[i], "--verilog") == 0) {
            emit_verilog = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::fprintf(stderr,
                         "usage: %s [--tags N] [--no-reexpand] "
                         "[--verilog] [input.dot]\n",
                         argv[0]);
            return 0;
        } else {
            input_path = argv[i];
        }
    }

    std::string dot_text;
    if (!input_path.empty()) {
        std::ifstream in(input_path);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         input_path.c_str());
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        dot_text = buffer.str();
    } else if (isatty(0) == 0) {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        dot_text = buffer.str();
    }
    if (dot_text.empty()) {
        std::fprintf(stderr,
                     "no input given; compiling the demo GCD circuit\n");
        dot_text = printDot(circuits::buildGcdInOrder());
    }

    Compiler compiler;
    Result<CompileReport> report = compiler.compileDot(dot_text,
                                                       options);
    if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report.error().message.c_str());
        return 1;
    }

    if (emit_verilog) {
        Result<std::string> rtl =
            emit::emitVerilog(report.value().graph);
        if (!rtl.ok()) {
            std::fprintf(stderr, "verilog error: %s\n",
                         rtl.error().message.c_str());
            return 1;
        }
        std::fputs(rtl.value().c_str(), stdout);
    } else {
        std::fputs(report.value().output_dot.c_str(), stdout);
    }
    std::fprintf(stderr, "%zu rewrites in %.3f s\n",
                 report.value().rewrites.rewrites_applied,
                 report.value().seconds);
    for (const LoopTransformReport& loop : report.value().loops) {
        if (loop.transformed)
            std::fprintf(stderr,
                         "loop at %s: transformed (body fn %s, latency "
                         "%d, term %zu -> %zu nodes)\n",
                         loop.header_mux.c_str(), loop.body_fn.c_str(),
                         loop.body_latency, loop.term_size_before,
                         loop.term_size_after);
        else
            std::fprintf(stderr, "loop at %s: refused: %s\n",
                         loop.header_mux.c_str(), loop.refusal.c_str());
    }
    return 0;
}
