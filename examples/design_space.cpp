/**
 * @file
 * design_space: tag-budget exploration on one benchmark.
 *
 * The Tagger/Untagger's tag count bounds how many loop instances can
 * be in flight, trading throughput against flip-flops (the mechanism
 * behind the per-benchmark tag choices of Elakhras et al. and the
 * matvec FF blow-up in table 3). This example sweeps the budget on a
 * chosen benchmark and prints the pareto table.
 *
 * Usage: design_space [benchmark] (default: matvec)
 */

#include <cstdio>
#include <string>

#include "arch/area_timing.hpp"
#include "bench_circuits/benchmarks.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

int
main(int argc, char** argv)
{
    using namespace graphiti;

    std::string name = argc > 1 ? argv[1] : "matvec";
    Result<circuits::BenchmarkSpec> spec_result =
        circuits::buildBenchmark(name);
    if (!spec_result.ok()) {
        std::fprintf(stderr, "%s\n",
                     spec_result.error().message.c_str());
        return 1;
    }
    circuits::BenchmarkSpec spec = spec_result.take();

    auto simulate = [&](const ExprHigh& g,
                        std::shared_ptr<FnRegistry> registry) {
        sim::Simulator simulator =
            sim::Simulator::build(g, registry).take();
        for (const auto& [mem, data] : spec.memories)
            simulator.setMemory(mem, data);
        auto r = simulator.run(spec.inputs, spec.expected_outputs,
                               spec.serial_io);
        return r.ok() ? r.value().cycles : std::size_t{0};
    };

    std::size_t io_cycles = simulate(
        spec.df_io, std::make_shared<FnRegistry>());
    arch::AreaReport io_area = arch::areaOf(spec.df_io);
    std::printf("benchmark %s: DF-IO %zu cycles, %d FF\n\n",
                name.c_str(), io_cycles, io_area.ff);
    std::printf("%5s | %8s | %8s | %8s | %9s\n", "tags", "cycles",
                "speedup", "FF", "FF ratio");

    for (int tags : {1, 2, 4, 8, 16, 32, 50, 64}) {
        Environment env;
        Result<PipelineResult> transformed = runOooPipeline(
            spec.df_io, env, {.num_tags = tags, .reexpand = true});
        if (!transformed.ok() ||
            !transformed.value().loops.at(0).transformed) {
            std::printf("%5d | refused/failed\n", tags);
            continue;
        }
        std::size_t cycles = simulate(transformed.value().graph,
                                      env.functionsPtr());
        arch::AreaReport area =
            arch::areaOf(transformed.value().graph);
        std::printf("%5d | %8zu | %7.2fx | %8d | %8.2fx\n", tags,
                    cycles,
                    static_cast<double>(io_cycles) /
                        static_cast<double>(cycles),
                    area.ff,
                    static_cast<double>(area.ff) /
                        static_cast<double>(io_area.ff));
    }
    return 0;
}
