#include "static_hls/static_hls.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "graph/signatures.hpp"

namespace graphiti::static_hls {

namespace {

/** Functional-unit class an operation is scheduled on. */
std::string
fuClass(const std::string& op)
{
    if (op == "fadd" || op == "fsub")
        return "fadd";
    if (op == "fmul")
        return "fmul";
    if (op == "fdiv")
        return "fdiv";
    if (op == "mul")
        return "mul";
    if (op == "div" || op == "mod")
        return "div";
    if (op == "load")
        return "mem_read";
    if (op == "store")
        return "mem_write";
    return "alu";  // adds, compares, logic: cheap, effectively shared
}

int
opLatency(const std::string& op)
{
    if (op == "load")
        return 2;
    if (op == "store")
        return 1;
    int latency = operatorLatency(op);
    return std::max(1, latency);
}

/**
 * Resource-constrained list scheduling of one iteration: one FU per
 * class, ops start when dependencies completed and the FU is free
 * (Vericert shares units and serializes on them).
 * @return the schedule length in states.
 */
std::size_t
scheduleIteration(const std::vector<StaticOp>& body,
                  std::set<std::string>& fu_classes)
{
    std::map<std::string, std::size_t> finish;  // op -> finish state
    std::map<std::string, std::size_t> fu_free;  // class -> next free
    std::size_t makespan = 0;

    // Ops are listed in topological order by construction; validate
    // while scheduling.
    for (const StaticOp& op : body) {
        std::size_t ready = 0;
        for (const std::string& dep : op.deps) {
            auto it = finish.find(dep);
            if (it == finish.end())
                throw std::runtime_error(
                    "static schedule: op '" + op.name +
                    "' depends on unknown/later op '" + dep + "'");
            ready = std::max(ready, it->second);
        }
        std::string fu = fuClass(op.op);
        fu_classes.insert(fu);
        std::size_t start = std::max(ready, fu_free[fu]);
        std::size_t end = start + static_cast<std::size_t>(
                                      opLatency(op.op));
        fu_free[fu] = end;
        finish[op.name] = end;
        makespan = std::max(makespan, end);
    }
    return makespan;
}

/** Area of one shared functional unit. */
arch::AreaReport
fuArea(const std::string& fu)
{
    if (fu == "fadd")
        return {320, 480, 2};
    if (fu == "fmul")
        return {95, 170, 3};
    if (fu == "fdiv")
        return {800, 1400, 0};
    if (fu == "mul")
        return {250, 120, 0};  // LUT-based integer multiply
    if (fu == "div")
        return {1150, 900, 0};
    if (fu == "mem_read" || fu == "mem_write")
        return {40, 30, 0};
    return {60, 40, 0};  // ALU
}

}  // namespace

StaticReport
scheduleAndEvaluate(const StaticKernel& kernel)
{
    StaticReport report;
    std::set<std::string> fu_classes;

    std::size_t cycles_per_outer = kernel.outer_overhead_states;
    std::size_t total_ops = 0;
    for (const StaticLoop& loop : kernel.loops) {
        std::size_t states = scheduleIteration(loop.body, fu_classes);
        // FSM control: one state to evaluate the loop condition and
        // branch back.
        states += 1;
        report.iteration_states.push_back(states);
        cycles_per_outer += states * loop.trips;
        total_ops += loop.body.size();
    }
    report.cycles = kernel.outer_trips * cycles_per_outer + 2;

    // Area: shared FUs + pipeline registers for live values + FSM.
    for (const std::string& fu : fu_classes)
        report.area += fuArea(fu);
    int live_values = static_cast<int>(total_ops) + 4;
    report.area.lut += 14 * live_values;  // operand muxing into FUs
    report.area.ff += 33 * live_values;   // 32-bit value + valid bit
    report.area.lut += 80;                // FSM
    report.area.ff += 16;

    // No elastic handshake: short control paths; congestion only.
    double max_delay = 3.4;  // the slow units are registered inside
    report.clock_period_ns = 1.0 + max_delay +
                             0.0006 * report.area.lut * 0.5;
    return report;
}

}  // namespace graphiti::static_hls
