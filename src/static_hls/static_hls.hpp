#ifndef GRAPHITI_STATIC_HLS_STATIC_HLS_HPP
#define GRAPHITI_STATIC_HLS_STATIC_HLS_HPP

/**
 * @file
 * A Vericert-style statically scheduled HLS baseline.
 *
 * Vericert (the only other verified HLS flow, compared in section 6)
 * compiles loops to a sequential finite state machine: one shared
 * functional unit per operation class, operations scheduled into
 * states by a resource-constrained list scheduler, and *no* loop
 * pipelining — the next iteration starts only when the previous one
 * finished. That yields far higher cycle counts on irregular loops,
 * but a shorter clock period (no elastic handshake logic) and much
 * smaller area (FU sharing, registers instead of queues) — the shape
 * of the Vericert columns in tables 2 and 3.
 */

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "arch/area_timing.hpp"
#include "support/result.hpp"

namespace graphiti::static_hls {

/** One operation of a loop iteration's dependence DAG. */
struct StaticOp
{
    std::string name;               ///< unique within the iteration
    std::string op;                 ///< operator class (add, fmul, load...)
    std::vector<std::string> deps;  ///< names this op waits for
};

/** One loop of the kernel, innermost iteration described by ops. */
struct StaticLoop
{
    std::vector<StaticOp> body;
    std::size_t trips = 1;  ///< iterations per entry
};

/** A kernel: nested loops flattened into (outer trips x inner loops). */
struct StaticKernel
{
    std::string name;
    std::size_t outer_trips = 1;
    std::vector<StaticLoop> loops;  ///< executed in sequence per trip
    /** States spent per outer iteration outside the inner loops
     * (address setup, result store, FSM glue). */
    std::size_t outer_overhead_states = 3;
};

/** Evaluation of a statically scheduled kernel. */
struct StaticReport
{
    std::size_t cycles = 0;
    double clock_period_ns = 0.0;
    arch::AreaReport area;
    /** Schedule length of each loop body, for inspection. */
    std::vector<std::size_t> iteration_states;
};

/**
 * Schedule @p kernel with one functional unit per op class and no
 * loop pipelining; report cycles, clock period and shared-FU area.
 */
StaticReport scheduleAndEvaluate(const StaticKernel& kernel);

}  // namespace graphiti::static_hls

#endif  // GRAPHITI_STATIC_HLS_STATIC_HLS_HPP
