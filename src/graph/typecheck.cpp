#include "graph/typecheck.hpp"

#include <vector>

#include "graph/signatures.hpp"

namespace graphiti {

WireType
WireType::pairOf(WireType a, WireType b)
{
    WireType t;
    t.kind = Kind::pair;
    t.first = std::make_shared<WireType>(std::move(a));
    t.second = std::make_shared<WireType>(std::move(b));
    return t;
}

std::string
WireType::toString() const
{
    switch (kind) {
      case Kind::unknown:
        return "?";
      case Kind::control:
        return "ctrl";
      case Kind::boolean:
        return "bool";
      case Kind::integer:
        return "int";
      case Kind::floating:
        return "float";
      case Kind::pair:
        return "(" + first->toString() + ", " + second->toString() + ")";
    }
    return "?";
}

namespace {

/** Mutable inference node (union-find over type terms). */
struct TNode
{
    enum class K { var, control, boolean, integer, floating, pair };

    K k = K::var;
    TNode* parent = nullptr;  // union-find link (vars only)
    TNode* a = nullptr;       // pair components
    TNode* b = nullptr;
};

class Unifier
{
  public:
    TNode*
    fresh(TNode::K k = TNode::K::var)
    {
        arena_.push_back(std::make_unique<TNode>());
        arena_.back()->k = k;
        return arena_.back().get();
    }

    TNode*
    pair(TNode* a, TNode* b)
    {
        TNode* p = fresh(TNode::K::pair);
        p->a = a;
        p->b = b;
        return p;
    }

    TNode*
    find(TNode* t)
    {
        while (t->parent != nullptr)
            t = t->parent;
        return t;
    }

    bool
    occurs(TNode* var, TNode* in)
    {
        in = find(in);
        if (in == var)
            return true;
        if (in->k == TNode::K::pair)
            return occurs(var, in->a) || occurs(var, in->b);
        return false;
    }

    /** Unify two type terms; on failure, returns a description. */
    Result<bool>
    unify(TNode* x, TNode* y)
    {
        x = find(x);
        y = find(y);
        if (x == y)
            return true;
        if (x->k == TNode::K::var) {
            if (occurs(x, y))
                return err("cyclic type");
            x->parent = y;
            return true;
        }
        if (y->k == TNode::K::var)
            return unify(y, x);
        if (x->k != y->k)
            return err(describe(x) + " vs " + describe(y));
        if (x->k == TNode::K::pair) {
            Result<bool> left = unify(x->a, y->a);
            if (!left.ok())
                return left;
            return unify(x->b, y->b);
        }
        return true;
    }

    std::string
    describe(TNode* t)
    {
        t = find(t);
        switch (t->k) {
          case TNode::K::var:
            return "?";
          case TNode::K::control:
            return "ctrl";
          case TNode::K::boolean:
            return "bool";
          case TNode::K::integer:
            return "int";
          case TNode::K::floating:
            return "float";
          case TNode::K::pair:
            return "(" + describe(t->a) + ", " + describe(t->b) + ")";
        }
        return "?";
    }

    WireType
    resolve(TNode* t)
    {
        t = find(t);
        switch (t->k) {
          case TNode::K::var:
            return WireType::unknown();
          case TNode::K::control:
            return WireType::control();
          case TNode::K::boolean:
            return WireType::boolean();
          case TNode::K::integer:
            return WireType::integer();
          case TNode::K::floating:
            return WireType::floating();
          case TNode::K::pair:
            return WireType::pairOf(resolve(t->a), resolve(t->b));
        }
        return WireType::unknown();
    }

  private:
    std::vector<std::unique_ptr<TNode>> arena_;
};

bool
intArith(const std::string& op)
{
    return op == "add" || op == "sub" || op == "mul" || op == "div" ||
           op == "mod" || op == "shl" || op == "shr" || op == "and" ||
           op == "or" || op == "xor" || op == "neg" || op == "abs";
}

bool
intCompare(const std::string& op)
{
    return op == "lt" || op == "le" || op == "gt" || op == "ge";
}

bool
floatArith(const std::string& op)
{
    return op == "fadd" || op == "fsub" || op == "fmul" ||
           op == "fdiv" || op == "fneg";
}

}  // namespace

Result<TypeReport>
checkWellTyped(const ExprHigh& graph)
{
    Result<bool> valid = graph.validate();
    if (!valid.ok())
        return valid.error().context("checkWellTyped");

    Unifier u;
    std::map<PortRef, TNode*> port_type;
    auto port = [&](const std::string& inst, const std::string& name) {
        PortRef ref{inst, name};
        auto it = port_type.find(ref);
        if (it != port_type.end())
            return it->second;
        TNode* t = u.fresh();
        port_type.emplace(ref, t);
        return t;
    };

    // Per-component typing rules.
    for (const NodeDecl& node : graph.nodes()) {
        Result<Signature> sig = signatureOf(node.type, node.attrs);
        if (!sig.ok())
            return sig.error().context("checkWellTyped: " + node.name);
        const std::string& n = node.name;
        std::vector<std::pair<TNode*, TNode*>> eqs;

        if (node.type == "fork") {
            for (const std::string& out : sig.value().outputs)
                eqs.emplace_back(port(n, "in0"), port(n, out));
        } else if (node.type == "join") {
            TNode* t = port(n, sig.value().inputs.back());
            for (std::size_t i = sig.value().inputs.size() - 1; i-- > 0;)
                t = u.pair(port(n, sig.value().inputs[i]), t);
            eqs.emplace_back(port(n, "out0"), t);
        } else if (node.type == "split") {
            eqs.emplace_back(
                port(n, "in0"),
                u.pair(port(n, "out0"), port(n, "out1")));
        } else if (node.type == "branch") {
            eqs.emplace_back(port(n, "in1"),
                             u.fresh(TNode::K::boolean));
            eqs.emplace_back(port(n, "in0"), port(n, "out0"));
            eqs.emplace_back(port(n, "in0"), port(n, "out1"));
        } else if (node.type == "mux") {
            eqs.emplace_back(port(n, "in0"),
                             u.fresh(TNode::K::boolean));
            eqs.emplace_back(port(n, "in1"), port(n, "out0"));
            eqs.emplace_back(port(n, "in2"), port(n, "out0"));
        } else if (node.type == "merge") {
            eqs.emplace_back(port(n, "in0"), port(n, "out0"));
            eqs.emplace_back(port(n, "in1"), port(n, "out0"));
        } else if (node.type == "init") {
            eqs.emplace_back(port(n, "in0"),
                             u.fresh(TNode::K::boolean));
            eqs.emplace_back(port(n, "out0"),
                             u.fresh(TNode::K::boolean));
        } else if (node.type == "buffer" || node.type == "tagger") {
            eqs.emplace_back(port(n, "in0"), port(n, "out0"));
            if (node.type == "tagger")
                eqs.emplace_back(port(n, "in1"), port(n, "out1"));
        } else if (node.type == "constant") {
            std::string value = attrStr(node.attrs, "value", "0");
            TNode::K k = TNode::K::integer;
            if (value == "true" || value == "false")
                k = TNode::K::boolean;
            else if (value.find('.') != std::string::npos)
                k = TNode::K::floating;
            else if (value == "unit" || value.empty())
                k = TNode::K::control;
            eqs.emplace_back(port(n, "out0"), u.fresh(k));
        } else if (node.type == "load") {
            eqs.emplace_back(port(n, "in0"),
                             u.fresh(TNode::K::integer));
            eqs.emplace_back(port(n, "out0"),
                             u.fresh(TNode::K::floating));
        } else if (node.type == "store") {
            eqs.emplace_back(port(n, "in0"),
                             u.fresh(TNode::K::integer));
            eqs.emplace_back(port(n, "out0"),
                             u.fresh(TNode::K::integer));
        } else if (node.type == "operator") {
            std::string op = attrStr(node.attrs, "op", "");
            auto all_inputs = [&](TNode::K k) {
                for (const std::string& in : sig.value().inputs)
                    eqs.emplace_back(port(n, in), u.fresh(k));
            };
            if (intArith(op)) {
                all_inputs(TNode::K::integer);
                eqs.emplace_back(port(n, "out0"),
                                 u.fresh(TNode::K::integer));
            } else if (intCompare(op)) {
                all_inputs(TNode::K::integer);
                eqs.emplace_back(port(n, "out0"),
                                 u.fresh(TNode::K::boolean));
            } else if (floatArith(op)) {
                all_inputs(TNode::K::floating);
                eqs.emplace_back(port(n, "out0"),
                                 u.fresh(TNode::K::floating));
            } else if (op == "flt" || op == "fge") {
                all_inputs(TNode::K::floating);
                eqs.emplace_back(port(n, "out0"),
                                 u.fresh(TNode::K::boolean));
            } else if (op == "eq" || op == "ne") {
                eqs.emplace_back(port(n, "in0"), port(n, "in1"));
                eqs.emplace_back(port(n, "out0"),
                                 u.fresh(TNode::K::boolean));
            } else if (op == "not") {
                eqs.emplace_back(port(n, "in0"),
                                 u.fresh(TNode::K::boolean));
                eqs.emplace_back(port(n, "out0"),
                                 u.fresh(TNode::K::boolean));
            } else if (op == "select") {
                eqs.emplace_back(port(n, "in0"),
                                 u.fresh(TNode::K::boolean));
                eqs.emplace_back(port(n, "in1"), port(n, "out0"));
                eqs.emplace_back(port(n, "in2"), port(n, "out0"));
            } else if (op == "id" || op == "trunc" || op == "zext" ||
                       op == "sext") {
                eqs.emplace_back(port(n, "in0"), port(n, "out0"));
            }
        }
        // pure / sink / source: no constraints.

        for (auto& [x, y] : eqs) {
            Result<bool> unified = u.unify(x, y);
            if (!unified.ok())
                return err("type conflict at " + n + ": " +
                           unified.error().message);
        }
    }

    // Connections: both endpoints carry one type (the section 6.3
    // well-typedness condition).
    for (const Edge& e : graph.edges()) {
        Result<bool> unified =
            u.unify(port(e.src.inst, e.src.port),
                    port(e.dst.inst, e.dst.port));
        if (!unified.ok())
            return err("type conflict on wire " + e.src.toString() +
                       " -> " + e.dst.toString() + ": " +
                       unified.error().message);
    }

    TypeReport report;
    for (const NodeDecl& node : graph.nodes()) {
        Result<Signature> sig = signatureOf(node.type, node.attrs);
        for (const std::string& out : sig.value().outputs)
            report.wire_types[PortRef{node.name, out}] =
                u.resolve(port(node.name, out));
    }
    return report;
}

}  // namespace graphiti
