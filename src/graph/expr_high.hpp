#ifndef GRAPHITI_GRAPH_EXPR_HIGH_HPP
#define GRAPHITI_GRAPH_EXPR_HIGH_HPP

/**
 * @file
 * EXPRHIGH: the user-facing dataflow graph representation.
 *
 * An ExprHigh graph mirrors the dot graphs exchanged with Dynamatic: a
 * set of named component instances, edges connecting an output port of
 * one instance to an input port of another, and numbered dangling I/O
 * ports representing the circuit boundary (section 3 / figure 1 of the
 * paper). Rewrites are *matched* on ExprHigh and *applied* on ExprLow.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace graphiti {

/** A reference to one port of a named instance, e.g. fork1.out0. */
struct PortRef
{
    std::string inst;
    std::string port;

    bool operator==(const PortRef&) const = default;
    auto operator<=>(const PortRef&) const = default;

    std::string toString() const { return inst + "." + port; }
};

/** Attribute map attached to a node (tag counts, constants, ops...). */
using AttrMap = std::map<std::string, std::string>;

/** A component instance declaration. */
struct NodeDecl
{
    std::string name;  ///< unique instance name
    std::string type;  ///< component type, e.g. "mux", "fork"
    AttrMap attrs;     ///< type parameters, e.g. {"op","mod"}

    bool operator==(const NodeDecl&) const = default;
};

/** A directed connection from an output port to an input port. */
struct Edge
{
    PortRef src;  ///< producer: instance output port
    PortRef dst;  ///< consumer: instance input port

    bool operator==(const Edge&) const = default;
    auto operator<=>(const Edge&) const = default;
};

/**
 * The high-level dataflow graph.
 *
 * Invariants established by validate(): instance names are unique, every
 * edge endpoint names an existing instance, each input port has at most
 * one driver, and I/O bindings reference existing ports.
 */
class ExprHigh
{
  public:
    /** Add an instance; returns its name for chaining. */
    const std::string& addNode(std::string name, std::string type,
                               AttrMap attrs = {});

    /** Connect src (an output port) to dst (an input port). */
    void connect(PortRef src, PortRef dst);
    void connect(const std::string& src_inst, const std::string& src_port,
                 const std::string& dst_inst, const std::string& dst_port);

    /** Bind graph input @p io_index to an instance input port. */
    void bindInput(std::size_t io_index, PortRef dst);
    /** Bind graph output @p io_index to an instance output port. */
    void bindOutput(std::size_t io_index, PortRef src);

    /** Remove a node and all edges touching it. */
    void removeNode(const std::string& name);

    /** Remove a specific edge; returns true if it existed. */
    bool removeEdge(const PortRef& src, const PortRef& dst);

    /** Rename an instance, updating all references. */
    void renameNode(const std::string& old_name,
                    const std::string& new_name);

    const std::vector<NodeDecl>& nodes() const { return nodes_; }
    const std::vector<Edge>& edges() const { return edges_; }
    const std::vector<std::optional<PortRef>>& inputs() const
    {
        return inputs_;
    }
    const std::vector<std::optional<PortRef>>& outputs() const
    {
        return outputs_;
    }

    /** Look up a node by name; nullptr when absent. */
    const NodeDecl* findNode(const std::string& name) const;
    NodeDecl* findNode(const std::string& name);

    bool hasNode(const std::string& name) const
    {
        return findNode(name) != nullptr;
    }

    /** The driver of an input port, if any. */
    std::optional<PortRef> driverOf(const PortRef& dst) const;

    /** All consumers of an output port. */
    std::vector<PortRef> consumersOf(const PortRef& src) const;

    /** A fresh instance name with the given prefix. */
    std::string freshName(const std::string& prefix) const;

    /** Structural equality (node order insensitive). */
    bool sameAs(const ExprHigh& other) const;

    /** Check the invariants listed in the class comment. */
    Result<bool> validate() const;

    std::size_t numNodes() const { return nodes_.size(); }

  private:
    std::vector<NodeDecl> nodes_;
    std::vector<Edge> edges_;
    std::vector<std::optional<PortRef>> inputs_;
    std::vector<std::optional<PortRef>> outputs_;
};

}  // namespace graphiti

#endif  // GRAPHITI_GRAPH_EXPR_HIGH_HPP
