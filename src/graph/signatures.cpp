#include "graph/signatures.hpp"

#include <cctype>
#include <map>

namespace graphiti {

int
attrInt(const AttrMap& attrs, const std::string& key, int default_value)
{
    auto it = attrs.find(key);
    if (it == attrs.end())
        return default_value;
    // Hand-rolled parse: attribute values come straight from untrusted
    // dot input, and std::stoi throws on garbage or overflow. Malformed
    // values fall back to the default instead of crashing the pipeline
    // (the guard::Validator reports them as diagnostics).
    const std::string& text = it->second;
    std::size_t pos = 0;
    bool negative = false;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
        negative = text[pos] == '-';
        ++pos;
    }
    if (pos >= text.size())
        return default_value;
    long value = 0;
    for (; pos < text.size(); ++pos) {
        if (!std::isdigit(static_cast<unsigned char>(text[pos])))
            return default_value;
        value = value * 10 + (text[pos] - '0');
        if (value > 1'000'000'000L)  // clamp: no attribute is this big
            return default_value;
    }
    return static_cast<int>(negative ? -value : value);
}

std::string
attrStr(const AttrMap& attrs, const std::string& key,
        const std::string& default_value)
{
    auto it = attrs.find(key);
    if (it == attrs.end())
        return default_value;
    return it->second;
}

int
operatorArity(const std::string& op)
{
    static const std::map<std::string, int> arities = {
        {"add", 2},  {"sub", 2},  {"mul", 2},   {"div", 2},  {"mod", 2},
        {"shl", 2},  {"shr", 2},  {"and", 2},   {"or", 2},   {"xor", 2},
        {"lt", 2},   {"le", 2},   {"gt", 2},    {"ge", 2},   {"eq", 2},
        {"ne", 2},   {"not", 1},  {"neg", 1},   {"select", 3},
        {"fadd", 2}, {"fsub", 2}, {"fmul", 2},  {"fdiv", 2},
        {"flt", 2},  {"fge", 2},  {"fneg", 1},  {"abs", 1},
        {"id", 1},   {"trunc", 1}, {"zext", 1}, {"sext", 1},
    };
    auto it = arities.find(op);
    return it == arities.end() ? -1 : it->second;
}

bool
operatorIsPredicate(const std::string& op)
{
    return op == "lt" || op == "le" || op == "gt" || op == "ge" ||
           op == "eq" || op == "ne" || op == "flt" || op == "fge";
}

int
operatorLatency(const std::string& op)
{
    static const std::map<std::string, int> latencies = {
        {"mul", 4},  {"div", 8},  {"mod", 8},
        {"fadd", 10}, {"fsub", 10}, {"fmul", 6}, {"fdiv", 30},
        {"flt", 2},  {"fge", 2},
    };
    auto it = latencies.find(op);
    return it == latencies.end() ? 0 : it->second;
}

bool
typeHasSideEffects(const std::string& type)
{
    return type == "store" || type == "mem_controller";
}

namespace {

Signature
simpleSignature(int num_in, int num_out)
{
    Signature sig;
    for (int i = 0; i < num_in; ++i)
        sig.inputs.push_back("in" + std::to_string(i));
    for (int i = 0; i < num_out; ++i)
        sig.outputs.push_back("out" + std::to_string(i));
    return sig;
}

}  // namespace

Result<Signature>
signatureOf(const std::string& type, const AttrMap& attrs)
{
    if (type == "fork")
        return simpleSignature(1, attrInt(attrs, "out", 2));
    if (type == "join")
        return simpleSignature(attrInt(attrs, "in", 2), 1);
    if (type == "split")
        return simpleSignature(1, 2);
    if (type == "branch")
        return simpleSignature(2, 2);
    if (type == "mux")
        return simpleSignature(3, 1);
    if (type == "merge")
        return simpleSignature(2, 1);
    if (type == "init")
        return simpleSignature(1, 1);
    if (type == "buffer")
        return simpleSignature(1, 1);
    if (type == "sink")
        return simpleSignature(1, 0);
    if (type == "source")
        return simpleSignature(0, 1);
    if (type == "constant")
        return simpleSignature(1, 1);
    if (type == "pure")
        return simpleSignature(1, 1);
    if (type == "tagger")
        return simpleSignature(2, 2);
    if (type == "load")
        return simpleSignature(1, 1);
    if (type == "store")
        return simpleSignature(2, 1);
    if (type == "operator") {
        std::string op = attrStr(attrs, "op", "");
        int arity = operatorArity(op);
        if (arity < 0)
            return err("unknown operator: '" + op + "'");
        return simpleSignature(arity, 1);
    }
    return err("unknown component type: '" + type + "'");
}

}  // namespace graphiti
