#include "graph/expr_high.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace graphiti {

const std::string&
ExprHigh::addNode(std::string name, std::string type, AttrMap attrs)
{
    if (hasNode(name))
        throw std::runtime_error("duplicate node name: " + name);
    nodes_.push_back(NodeDecl{std::move(name), std::move(type),
                              std::move(attrs)});
    return nodes_.back().name;
}

void
ExprHigh::connect(PortRef src, PortRef dst)
{
    edges_.push_back(Edge{std::move(src), std::move(dst)});
}

void
ExprHigh::connect(const std::string& src_inst, const std::string& src_port,
                  const std::string& dst_inst, const std::string& dst_port)
{
    connect(PortRef{src_inst, src_port}, PortRef{dst_inst, dst_port});
}

void
ExprHigh::bindInput(std::size_t io_index, PortRef dst)
{
    if (inputs_.size() <= io_index)
        inputs_.resize(io_index + 1);
    inputs_[io_index] = std::move(dst);
}

void
ExprHigh::bindOutput(std::size_t io_index, PortRef src)
{
    if (outputs_.size() <= io_index)
        outputs_.resize(io_index + 1);
    outputs_[io_index] = std::move(src);
}

void
ExprHigh::removeNode(const std::string& name)
{
    nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                                [&](const NodeDecl& n) {
                                    return n.name == name;
                                }),
                 nodes_.end());
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [&](const Edge& e) {
                                    return e.src.inst == name ||
                                           e.dst.inst == name;
                                }),
                 edges_.end());
    for (auto& io : inputs_)
        if (io && io->inst == name)
            io.reset();
    for (auto& io : outputs_)
        if (io && io->inst == name)
            io.reset();
}

bool
ExprHigh::removeEdge(const PortRef& src, const PortRef& dst)
{
    auto it = std::find(edges_.begin(), edges_.end(), Edge{src, dst});
    if (it == edges_.end())
        return false;
    edges_.erase(it);
    return true;
}

void
ExprHigh::renameNode(const std::string& old_name,
                     const std::string& new_name)
{
    if (old_name == new_name)
        return;
    if (hasNode(new_name))
        throw std::runtime_error("renameNode: target exists: " + new_name);
    NodeDecl* node = findNode(old_name);
    if (node == nullptr)
        throw std::runtime_error("renameNode: no such node: " + old_name);
    node->name = new_name;
    for (Edge& e : edges_) {
        if (e.src.inst == old_name)
            e.src.inst = new_name;
        if (e.dst.inst == old_name)
            e.dst.inst = new_name;
    }
    for (auto& io : inputs_)
        if (io && io->inst == old_name)
            io->inst = new_name;
    for (auto& io : outputs_)
        if (io && io->inst == old_name)
            io->inst = new_name;
}

const NodeDecl*
ExprHigh::findNode(const std::string& name) const
{
    for (const NodeDecl& n : nodes_)
        if (n.name == name)
            return &n;
    return nullptr;
}

NodeDecl*
ExprHigh::findNode(const std::string& name)
{
    for (NodeDecl& n : nodes_)
        if (n.name == name)
            return &n;
    return nullptr;
}

std::optional<PortRef>
ExprHigh::driverOf(const PortRef& dst) const
{
    for (const Edge& e : edges_)
        if (e.dst == dst)
            return e.src;
    return std::nullopt;
}

std::vector<PortRef>
ExprHigh::consumersOf(const PortRef& src) const
{
    std::vector<PortRef> out;
    for (const Edge& e : edges_)
        if (e.src == src)
            out.push_back(e.dst);
    return out;
}

std::string
ExprHigh::freshName(const std::string& prefix) const
{
    for (std::size_t i = 0;; ++i) {
        std::string candidate = prefix + std::to_string(i);
        if (!hasNode(candidate))
            return candidate;
    }
}

bool
ExprHigh::sameAs(const ExprHigh& other) const
{
    auto node_key = [](const NodeDecl& n) {
        return std::tuple(n.name, n.type, n.attrs);
    };
    std::vector<std::tuple<std::string, std::string, AttrMap>> a, b;
    for (const NodeDecl& n : nodes_)
        a.push_back(node_key(n));
    for (const NodeDecl& n : other.nodes_)
        b.push_back(node_key(n));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b)
        return false;

    std::vector<Edge> ea = edges_, eb = other.edges_;
    std::sort(ea.begin(), ea.end());
    std::sort(eb.begin(), eb.end());
    return ea == eb && inputs_ == other.inputs_ &&
           outputs_ == other.outputs_;
}

Result<bool>
ExprHigh::validate() const
{
    std::set<std::string> names;
    for (const NodeDecl& n : nodes_) {
        if (!names.insert(n.name).second)
            return err("duplicate instance name: " + n.name);
    }
    std::set<PortRef> driven;
    std::set<PortRef> driving;
    for (const Edge& e : edges_) {
        if (names.count(e.src.inst) == 0)
            return err("edge source names missing instance: " +
                       e.src.toString());
        if (names.count(e.dst.inst) == 0)
            return err("edge target names missing instance: " +
                       e.dst.toString());
        if (!driven.insert(e.dst).second)
            return err("input port driven twice: " + e.dst.toString());
        if (!driving.insert(e.src).second)
            return err("output port used twice (insert a fork): " +
                       e.src.toString());
    }
    for (const auto& io : inputs_) {
        if (io && names.count(io->inst) == 0)
            return err("graph input bound to missing instance: " +
                       io->toString());
        if (io && driven.count(*io) > 0)
            return err("graph input port also driven by an edge: " +
                       io->toString());
    }
    for (const auto& io : outputs_) {
        if (io && names.count(io->inst) == 0)
            return err("graph output bound to missing instance: " +
                       io->toString());
        if (io && driving.count(*io) > 0)
            return err("graph output port also consumed by an edge: " +
                       io->toString());
    }
    return true;
}

}  // namespace graphiti
