#ifndef GRAPHITI_GRAPH_TYPECHECK_HPP
#define GRAPHITI_GRAPH_TYPECHECK_HPP

/**
 * @file
 * Well-typedness of dataflow graphs (section 6.3).
 *
 * The paper resolves the tension between parametric rewrites and
 * concrete environments by demanding *well-typed graphs*: every
 * connection carries one consistent value type. This module infers
 * wire types by unification over the component typing rules — Branch
 * and Mux conditions are booleans, Join builds pairs that Split takes
 * apart, arithmetic is int or float per operator — and reports the
 * first conflict with the offending wire.
 *
 * Pure components (and anything else with an unconstrained
 * signature) keep polymorphic wires; unknowns are fine, conflicts are
 * not.
 */

#include <map>
#include <memory>
#include <string>

#include "graph/expr_high.hpp"
#include "support/result.hpp"

namespace graphiti {

/** An inferred wire type. */
class WireType
{
  public:
    enum class Kind { unknown, control, boolean, integer, floating,
                      pair };

    Kind kind = Kind::unknown;
    /** Components of a pair type. */
    std::shared_ptr<WireType> first;
    std::shared_ptr<WireType> second;

    static WireType unknown() { return WireType{}; }
    static WireType control() { return of(Kind::control); }
    static WireType boolean() { return of(Kind::boolean); }
    static WireType integer() { return of(Kind::integer); }
    static WireType floating() { return of(Kind::floating); }
    static WireType pairOf(WireType a, WireType b);

    std::string toString() const;

  private:
    static WireType
    of(Kind k)
    {
        WireType t;
        t.kind = k;
        return t;
    }
};

/** The result of type inference: resolved port types. */
struct TypeReport
{
    /** Inferred type of every output port (wires are named by their
     * driver). */
    std::map<PortRef, WireType> wire_types;
};

/**
 * Infer and check wire types of @p graph. Fails with the offending
 * wire on any conflict (e.g. a float driving a Branch condition).
 */
Result<TypeReport> checkWellTyped(const ExprHigh& graph);

}  // namespace graphiti

#endif  // GRAPHITI_GRAPH_TYPECHECK_HPP
