#include "graph/expr_low.hpp"

#include <algorithm>
#include <set>

#include "graph/signatures.hpp"

namespace graphiti {

std::string
LowPortId::toString() const
{
    if (kind == Kind::io)
        return "io" + std::to_string(io);
    return "(" + inst + "," + wire + ")";
}

ExprLow
ExprLow::base(LowBase component)
{
    ExprLow e;
    e.kind_ = Kind::base;
    e.base_ = std::make_unique<LowBase>(std::move(component));
    return e;
}

ExprLow
ExprLow::product(ExprLow lhs, ExprLow rhs)
{
    ExprLow e;
    e.kind_ = Kind::product;
    e.lhs_ = std::make_unique<ExprLow>(std::move(lhs));
    e.rhs_ = std::make_unique<ExprLow>(std::move(rhs));
    return e;
}

ExprLow
ExprLow::connect(LowPortId output, LowPortId input, ExprLow inner)
{
    ExprLow e;
    e.kind_ = Kind::connect;
    e.conn_output_ = std::move(output);
    e.conn_input_ = std::move(input);
    e.lhs_ = std::make_unique<ExprLow>(std::move(inner));
    return e;
}

ExprLow::ExprLow(const ExprLow& other) { *this = other; }

ExprLow&
ExprLow::operator=(const ExprLow& other)
{
    if (this == &other)
        return *this;
    kind_ = other.kind_;
    base_ = other.base_ ? std::make_unique<LowBase>(*other.base_) : nullptr;
    lhs_ = other.lhs_ ? std::make_unique<ExprLow>(*other.lhs_) : nullptr;
    rhs_ = other.rhs_ ? std::make_unique<ExprLow>(*other.rhs_) : nullptr;
    conn_output_ = other.conn_output_;
    conn_input_ = other.conn_input_;
    return *this;
}

bool
ExprLow::operator==(const ExprLow& other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::base:
        return *base_ == *other.base_;
      case Kind::product:
        return *lhs_ == *other.lhs_ && *rhs_ == *other.rhs_;
      case Kind::connect:
        return conn_output_ == other.conn_output_ &&
               conn_input_ == other.conn_input_ && *lhs_ == *other.lhs_;
    }
    return false;
}

std::pair<ExprLow, int>
ExprLow::substitute(const ExprLow& lhs, const ExprLow& rhs) const
{
    if (*this == lhs)
        return {rhs, 1};
    switch (kind_) {
      case Kind::base:
        return {*this, 0};
      case Kind::product: {
        auto [l, nl] = lhs_->substitute(lhs, rhs);
        auto [r, nr] = rhs_->substitute(lhs, rhs);
        return {product(std::move(l), std::move(r)), nl + nr};
      }
      case Kind::connect: {
        auto [e, n] = lhs_->substitute(lhs, rhs);
        return {connect(conn_output_, conn_input_, std::move(e)), n};
      }
    }
    return {*this, 0};
}

void
ExprLow::forEachBase(const std::function<void(const LowBase&)>& fn) const
{
    switch (kind_) {
      case Kind::base:
        fn(*base_);
        return;
      case Kind::product:
        lhs_->forEachBase(fn);
        rhs_->forEachBase(fn);
        return;
      case Kind::connect:
        lhs_->forEachBase(fn);
        return;
    }
}

void
ExprLow::forEachConnection(
    const std::function<void(const LowPortId&, const LowPortId&)>& fn) const
{
    switch (kind_) {
      case Kind::base:
        return;
      case Kind::product:
        lhs_->forEachConnection(fn);
        rhs_->forEachConnection(fn);
        return;
      case Kind::connect:
        lhs_->forEachConnection(fn);
        fn(conn_output_, conn_input_);
        return;
    }
}

std::size_t
ExprLow::numBases() const
{
    std::size_t n = 0;
    forEachBase([&](const LowBase&) { ++n; });
    return n;
}

std::string
ExprLow::toString() const
{
    switch (kind_) {
      case Kind::base:
        return base_->inst + ":" + base_->type;
      case Kind::product:
        return "(" + lhs_->toString() + " (x) " + rhs_->toString() + ")";
      case Kind::connect:
        return "connect(" + conn_output_.toString() + ", " +
               conn_input_.toString() + ", " + lhs_->toString() + ")";
    }
    return "?";
}

namespace {

/** A connection pending placement in the lowered expression. */
struct PendingConn
{
    LowPortId output;
    LowPortId input;
    std::size_t max_position;  ///< latest group index among endpoints

    auto
    key() const
    {
        return std::tuple(output, input);
    }
};

}  // namespace

namespace {

Result<std::pair<ExprLow, ExprLow>>
lowerImpl(const ExprHigh& graph, const std::vector<std::string>& order,
          std::size_t prefix);

}  // namespace

Result<ExprLow>
lowerToExprLow(const ExprHigh& graph, const std::vector<std::string>& order)
{
    Result<std::pair<ExprLow, ExprLow>> result =
        lowerImpl(graph, order, 0);
    if (!result.ok())
        return result.error();
    return std::move(result.value().first);
}

Result<std::pair<ExprLow, ExprLow>>
lowerWithPrefix(const ExprHigh& graph,
                const std::vector<std::string>& order, std::size_t prefix)
{
    if (prefix == 0 || prefix > order.size())
        return err("lowerWithPrefix: prefix out of range");
    return lowerImpl(graph, order, prefix);
}

namespace {

Result<std::pair<ExprLow, ExprLow>>
lowerImpl(const ExprHigh& graph, const std::vector<std::string>& order_in,
          std::size_t prefix)
{
    const std::vector<std::string>& order = order_in;
    Result<bool> valid = graph.validate();
    if (!valid.ok())
        return valid.error().context("lowerToExprLow");
    if (graph.numNodes() == 0)
        return err("lowerToExprLow: empty graph");

    std::vector<std::string> node_order = order;
    if (node_order.empty())
        for (const NodeDecl& n : graph.nodes())
            node_order.push_back(n.name);
    if (node_order.size() != graph.numNodes())
        return err("lowerToExprLow: order must list every node");

    std::map<std::string, std::size_t> position;
    for (std::size_t i = 0; i < node_order.size(); ++i) {
        if (!graph.hasNode(node_order[i]))
            return err("lowerToExprLow: unknown node in order: " +
                       node_order[i]);
        position[node_order[i]] = i;
    }
    if (position.size() != node_order.size())
        return err("lowerToExprLow: duplicate node in order");

    // Graph-level names: every port is named by its own
    // (instance, port) identity, unless it is bound to a numbered I/O
    // port (figure 6b of the paper). Edges become connect() wrappers.
    std::map<PortRef, std::uint32_t> io_inputs;
    std::map<PortRef, std::uint32_t> io_outputs;
    for (std::size_t i = 0; i < graph.inputs().size(); ++i)
        if (graph.inputs()[i])
            io_inputs[*graph.inputs()[i]] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < graph.outputs().size(); ++i)
        if (graph.outputs()[i])
            io_outputs[*graph.outputs()[i]] = static_cast<std::uint32_t>(i);

    std::vector<LowBase> bases;
    for (const std::string& name : node_order) {
        const NodeDecl& node = *graph.findNode(name);
        Result<Signature> sig = signatureOf(node.type, node.attrs);
        if (!sig.ok())
            return sig.error().context("lowerToExprLow: node " + name);
        LowBase base;
        base.inst = node.name;
        base.type = node.type;
        base.attrs = node.attrs;
        for (const std::string& port : sig.value().inputs) {
            auto it = io_inputs.find(PortRef{name, port});
            base.inputs[port] = it != io_inputs.end()
                                    ? LowPortId::ioPort(it->second)
                                    : LowPortId::localPort(name, port);
        }
        for (const std::string& port : sig.value().outputs) {
            auto it = io_outputs.find(PortRef{name, port});
            base.outputs[port] = it != io_outputs.end()
                                     ? LowPortId::ioPort(it->second)
                                     : LowPortId::localPort(name, port);
        }
        bases.push_back(std::move(base));
    }

    // Every edge becomes a connect wrapped just outside the product
    // prefix that contains both endpoints. Building the fold left to
    // right and applying each connect as soon as its endpoints are in
    // scope keeps sub-graphs that appear as a prefix of `order`
    // contiguous, which is what lets the rewriter substitute them
    // structurally (section 4.2's base-motion step).
    std::vector<PendingConn> conns;
    for (const Edge& e : graph.edges()) {
        conns.push_back(PendingConn{
            LowPortId::localPort(e.src.inst, e.src.port),
            LowPortId::localPort(e.dst.inst, e.dst.port),
            std::max(position[e.src.inst], position[e.dst.inst])});
    }
    std::stable_sort(conns.begin(), conns.end(),
                     [](const PendingConn& a, const PendingConn& b) {
                         if (a.max_position != b.max_position)
                             return a.max_position < b.max_position;
                         return a.key() < b.key();
                     });

    ExprLow expr = ExprLow::base(bases[0]);
    std::size_t next_conn = 0;
    auto applyConns = [&](std::size_t upto) {
        while (next_conn < conns.size() &&
               conns[next_conn].max_position <= upto) {
            expr = ExprLow::connect(conns[next_conn].output,
                                    conns[next_conn].input,
                                    std::move(expr));
            ++next_conn;
        }
    };
    applyConns(0);
    ExprLow prefix_expr = expr;
    for (std::size_t i = 1; i < bases.size(); ++i) {
        expr = ExprLow::product(std::move(expr), ExprLow::base(bases[i]));
        applyConns(i);
        if (prefix > 0 && i == prefix - 1)
            prefix_expr = expr;
    }
    return std::pair<ExprLow, ExprLow>(std::move(expr),
                                       std::move(prefix_expr));
}

}  // namespace

Result<ExprHigh>
liftToExprHigh(const ExprLow& expr)
{
    ExprHigh graph;
    std::map<LowPortId, PortRef> producers;  // graph name -> output port
    std::map<LowPortId, PortRef> consumers;  // consumer name -> input port
    bool dup_error = false;
    std::string dup_name;

    expr.forEachBase([&](const LowBase& base) {
        if (graph.hasNode(base.inst)) {
            dup_error = true;
            dup_name = base.inst;
            return;
        }
        graph.addNode(base.inst, base.type, base.attrs);
        for (const auto& [port, name] : base.outputs) {
            if (name.kind == LowPortId::Kind::io) {
                graph.bindOutput(name.io, PortRef{base.inst, port});
            } else if (!producers.emplace(name, PortRef{base.inst, port})
                            .second) {
                dup_error = true;
                dup_name = name.toString();
                return;
            }
        }
        for (const auto& [port, name] : base.inputs) {
            if (name.kind == LowPortId::Kind::io) {
                graph.bindInput(name.io, PortRef{base.inst, port});
            } else if (!consumers.emplace(name, PortRef{base.inst, port})
                            .second) {
                dup_error = true;
                dup_name = name.toString();
                return;
            }
        }
    });
    if (dup_error)
        return err("liftToExprHigh: duplicate instance or port name: " +
                   dup_name);

    Result<ExprHigh> failure = err("");
    bool failed = false;
    expr.forEachConnection([&](const LowPortId& out, const LowPortId& in) {
        auto pit = producers.find(out);
        auto cit = consumers.find(in);
        if (pit == producers.end() || cit == consumers.end()) {
            if (!failed)
                failure = err("liftToExprHigh: dangling connect " +
                              out.toString() + " -> " + in.toString());
            failed = true;
            return;
        }
        graph.connect(pit->second, cit->second);
    });
    if (failed)
        return failure;

    Result<bool> valid = graph.validate();
    if (!valid.ok())
        return valid.error().context("liftToExprHigh");
    return graph;
}

}  // namespace graphiti
