#ifndef GRAPHITI_GRAPH_SIGNATURES_HPP
#define GRAPHITI_GRAPH_SIGNATURES_HPP

/**
 * @file
 * Port signatures for the dataflow component catalog (Table 1).
 *
 * Every layer of the system — validation, denotation, rewriting, the
 * cycle simulator and the area model — must agree on which ports a
 * component exposes. This header is the single source of truth.
 *
 * Conventions (fixed across the library):
 *  - input ports are named in0, in1, ...; outputs out0, out1, ...
 *  - branch: in0 = data, in1 = condition; out0 = taken when the
 *    condition is true, out1 when false.
 *  - mux: in0 = condition, in1 = selected when true, in2 when false.
 *  - tagger: in0 = fresh token entering the region, in1 = tagged token
 *    returning from the loop exit; out0 = tagged token into the loop,
 *    out1 = in-order untagged output.
 */

#include <string>
#include <vector>

#include "graph/expr_high.hpp"
#include "support/result.hpp"

namespace graphiti {

/** The input/output port lists of a component instance. */
struct Signature
{
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
};

/**
 * Signature of component @p type parameterized by @p attrs.
 *
 * Fails when the type is unknown or a required attribute is missing
 * (e.g. an "operator" without an "op" attribute).
 */
Result<Signature> signatureOf(const std::string& type,
                              const AttrMap& attrs);

/** Arity of a named operator (mod: 2, select: 3, ...); -1 if unknown. */
int operatorArity(const std::string& op);

/** True when the operator produces a boolean (comparisons). */
bool operatorIsPredicate(const std::string& op);

/**
 * Pipeline latency (cycles) of the hardware unit implementing @p op,
 * matching the component library Dynamatic-style flows use (floating
 * point units are deeply pipelined, integer logic is combinational).
 * Unknown operators get 0.
 */
int operatorLatency(const std::string& op);

/** True for component types with externally visible side effects. */
bool typeHasSideEffects(const std::string& type);

/** Read an integer attribute with a default. */
int attrInt(const AttrMap& attrs, const std::string& key,
            int default_value);

/** Read a string attribute with a default. */
std::string attrStr(const AttrMap& attrs, const std::string& key,
                    const std::string& default_value);

}  // namespace graphiti

#endif  // GRAPHITI_GRAPH_SIGNATURES_HPP
