#ifndef GRAPHITI_GRAPH_EXPR_LOW_HPP
#define GRAPHITI_GRAPH_EXPR_LOW_HPP

/**
 * @file
 * EXPRLOW: the inductively defined graph representation (section 4.1).
 *
 * An ExprLow expression is either a base component (with port maps from
 * module-local port names to graph-level port names), a product of two
 * expressions, or a connection of an output port to an input port of a
 * sub-expression:
 *
 *     ExprLow ::= C_L | ExprLow (x) ExprLow | connect(o, i, ExprLow)
 *
 * Graph-level port names (the paper's I) are either numbered I/O ports
 * or (instance, wire) pairs. The denotational semantics (semantics/)
 * interprets ExprLow by structural recursion; the rewriting function
 * (section 4.2) substitutes structurally equal sub-expressions.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/expr_high.hpp"
#include "support/result.hpp"

namespace graphiti {

/**
 * A graph-level port name: a numbered I/O port, or a local
 * (instance, wire) pair (section 4.1's I).
 */
struct LowPortId
{
    enum class Kind { io, local };

    Kind kind = Kind::local;
    std::uint32_t io = 0;
    std::string inst;
    std::string wire;

    static LowPortId ioPort(std::uint32_t n)
    {
        LowPortId p;
        p.kind = Kind::io;
        p.io = n;
        return p;
    }

    static LowPortId localPort(std::string inst, std::string wire)
    {
        LowPortId p;
        p.kind = Kind::local;
        p.inst = std::move(inst);
        p.wire = std::move(wire);
        return p;
    }

    bool operator==(const LowPortId&) const = default;
    auto operator<=>(const LowPortId&) const = default;

    std::string toString() const;
};

/**
 * A base component C_L = (port maps) x type: the module-local input
 * and output port names mapped to graph-level names.
 */
struct LowBase
{
    std::string inst;  ///< instance name (kept for lifting)
    std::string type;
    AttrMap attrs;
    std::map<std::string, LowPortId> inputs;   ///< local -> graph name
    std::map<std::string, LowPortId> outputs;  ///< local -> graph name

    bool operator==(const LowBase&) const = default;
};

/**
 * The inductive graph expression. Immutable after construction; all
 * mutation happens by rebuilding (which is what the rewriting function
 * does anyway).
 */
class ExprLow
{
  public:
    enum class Kind { base, product, connect };

    /** Construct a base component expression. */
    static ExprLow base(LowBase component);

    /** Construct a product of two expressions. */
    static ExprLow product(ExprLow lhs, ExprLow rhs);

    /** Construct connect(o, i, e). */
    static ExprLow connect(LowPortId output, LowPortId input, ExprLow e);

    ExprLow(const ExprLow& other);
    ExprLow& operator=(const ExprLow& other);
    ExprLow(ExprLow&&) noexcept = default;
    ExprLow& operator=(ExprLow&&) noexcept = default;

    Kind kind() const { return kind_; }
    const LowBase& asBase() const { return *base_; }
    const ExprLow& left() const { return *lhs_; }
    const ExprLow& right() const { return *rhs_; }
    const LowPortId& connectOutput() const { return conn_output_; }
    const LowPortId& connectInput() const { return conn_input_; }

    /** Structural equality. */
    bool operator==(const ExprLow& other) const;

    /**
     * The rewriting function e[lhs := rhs] of section 4.2: replace
     * every sub-expression structurally equal to @p lhs by @p rhs.
     * Returns the rewritten expression and how many replacements
     * occurred.
     */
    std::pair<ExprLow, int> substitute(const ExprLow& lhs,
                                       const ExprLow& rhs) const;

    /** Visit all base components, left to right. */
    void forEachBase(const std::function<void(const LowBase&)>& fn) const;

    /** Visit all connections, innermost first. */
    void forEachConnection(
        const std::function<void(const LowPortId&, const LowPortId&)>& fn)
        const;

    /** Number of base components. */
    std::size_t numBases() const;

    std::string toString() const;

  private:
    ExprLow() = default;

    Kind kind_ = Kind::base;
    std::unique_ptr<LowBase> base_;
    std::unique_ptr<ExprLow> lhs_;
    std::unique_ptr<ExprLow> rhs_;
    LowPortId conn_output_;
    LowPortId conn_input_;
};

/**
 * Lower an ExprHigh graph to ExprLow.
 *
 * Base components appear in @p order (instance names; defaults to the
 * graph's node order). The matched-subgraph isolation the paper
 * performs with base-motion lemmas (section 4.2) is realized here by
 * choosing an order that groups the matched nodes first, so the lowered
 * lhs appears literally as a sub-expression.
 *
 * Connections are emitted outermost for edges between nodes later in
 * the order, so that connections internal to a prefix group stay inside
 * that group's sub-expression.
 */
Result<ExprLow> lowerToExprLow(const ExprHigh& graph,
                               const std::vector<std::string>& order = {});

/**
 * Lower @p graph with the first @p prefix nodes of @p order isolated:
 * returns the full expression and the sub-expression covering exactly
 * those nodes (their product wrapped in their internal connections).
 * The sub-expression appears literally inside the full expression, so
 * ExprLow::substitute can replace it (the base-motion isolation of
 * section 4.2).
 */
Result<std::pair<ExprLow, ExprLow>>
lowerWithPrefix(const ExprHigh& graph,
                const std::vector<std::string>& order, std::size_t prefix);

/** Lift an ExprLow expression back to an ExprHigh graph. */
Result<ExprHigh> liftToExprHigh(const ExprLow& expr);

}  // namespace graphiti

#endif  // GRAPHITI_GRAPH_EXPR_LOW_HPP
