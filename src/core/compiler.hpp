#ifndef GRAPHITI_CORE_COMPILER_HPP
#define GRAPHITI_CORE_COMPILER_HPP

/**
 * @file
 * The public compiler API: the tool flow of figure 1.
 *
 * A Compiler accepts a dataflow circuit (dot text or ExprHigh), runs
 * the verified out-of-order rewriting pipeline, and returns the
 * optimized circuit together with a report: which loops were
 * transformed, which were refused (and why), how many rewrites were
 * applied and how long rewriting took (section 6.3's metrics).
 *
 * Usage:
 *
 *     graphiti::Compiler compiler;
 *     auto result = compiler.compileDot(dot_text, {.num_tags = 8});
 *     if (result.ok())
 *         std::cout << result.value().output_dot;
 *
 * For bounded formal validation of a specific compilation,
 * verifyCompilation checks transformed ⊑ original with the refinement
 * checker on a caller-provided token domain; stressCompilation
 * complements it dynamically, replaying a concrete workload under
 * adversarial fault plans and checking latency-insensitivity.
 */

#include <memory>
#include <string>

#include "faults/stress.hpp"
#include "guard/governor.hpp"
#include "guard/validator.hpp"
#include "guard/verdict_store.hpp"
#include "guard/verify_cache.hpp"
#include "obs/critpath.hpp"
#include "obs/scope.hpp"
#include "refine/refinement.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "semantics/environment.hpp"
#include "support/result.hpp"

namespace graphiti {

/** Options of one compilation. */
struct CompileOptions
{
    /** Tag count for inserted Tagger/Untagger components. */
    int num_tags = 8;
    /** Re-expand Pure bodies into their original operators. */
    bool reexpand = true;
    /**
     * Paranoid mode: re-discharge the refinement obligation of every
     * verified catalog rewrite before rewriting (slower; the checks
     * are also run by the test suite).
     */
    bool verify_rewrites = false;
    /**
     * Observability scope installed (thread-locally) for the duration
     * of the compilation, so the rewrite engine, e-graph and
     * refinement checker record into its registry. Null = keep
     * whatever scope is already current.
     */
    std::shared_ptr<obs::Scope> obs;
    /**
     * Guarded mode (default on): structurally validate the input
     * circuit before rewriting (errors become structured diagnostics,
     * not crashes), run every rewrite as a validate-or-rollback
     * transaction, and re-validate the output. Rolled-back rewrites
     * are reported in CompileReport::rollbacks.
     */
    bool validate = true;
    /**
     * Run the resource-governed verification ladder after rewriting
     * (transformed ⊑ original) and report the achieved assurance in
     * CompileReport::verification_level. Off by default: bounded
     * verification costs real time even when governed.
     */
    bool governed_verify = false;
    /** Resource budget of the governed verification. */
    guard::VerificationBudget verify_budget;
    /** Token domain of the governed verification; empty = {0, 1}. */
    std::vector<Token> verify_tokens;
    /**
     * Worker lanes for the verification core (exploration, the
     * simulation game, trace walks): 0 = hardware concurrency
     * (default), 1 = today's sequential code path, reproduced
     * exactly. Verdicts are byte-identical at any value
     * (docs/parallelism.md). Overrides verify_budget.threads unless
     * that was set explicitly (non-1).
     */
    std::size_t threads = 0;
    /**
     * Memoize governed verdicts by a canonical structural hash of
     * (circuits, budget, token domain), so recompiling an unchanged
     * circuit skips exploration. Only deterministic verdicts
     * (deadline_seconds == 0) are ever cached.
     */
    bool verify_cache = true;
    /** Optional JSON file the verdict cache persists through (loaded
     * before the governed rung, saved after a miss). */
    std::string verify_cache_file;
    /**
     * Caller-owned cancellation handle (must be armed — see
     * StopToken::manual / withDeadline — to have any effect). The
     * governed verification ladder polls it, so a served job's
     * deadline, a client disconnect, or a fair-share preemption
     * unwinds the compile with an honest degraded verdict instead of
     * hanging a worker. Verdicts produced after the token fired are
     * wall-clock artifacts and are never cached.
     */
    StopToken stop;
};

/** Outcome of one compilation. */
struct CompileReport
{
    ExprHigh graph;          ///< the optimized circuit
    std::string output_dot;  ///< the same circuit, printed
    std::vector<LoopTransformReport> loops;
    EngineStats rewrites;
    double seconds = 0.0;    ///< rewriting wall time
    /** Post-transform structural validation of the output circuit
     * (empty when CompileOptions::validate was off). */
    guard::ValidationReport validation;
    /** Rewrites vetoed and rolled back by the transaction post-check. */
    std::vector<RewriteRollback> rollbacks;
    /** Assurance achieved by governed verification: "full",
     * "bounded-partial", "trace-inclusion", "none", or "not-run". */
    std::string verification_level = "not-run";
    /** Why verification degraded below full; empty otherwise. */
    std::string degradation_reason;
    /** Full governed-verification verdict (level None when not run). */
    guard::VerificationVerdict verdict;
    /** The governed verdict came from the verification cache — no
     * exploration ran for it. */
    bool verify_cache_hit = false;
    /** Canonical cache key of the governed verification ("0x…");
     * empty when governed verification did not run. */
    std::string verify_cache_key;
    /**
     * High-water byte estimates of the governed verification's
     * exploration (both state spaces + dedup indexes) and simulation
     * game. Resource accounting only: deterministic per
     * (seed, budget) at any thread count, 0 on a cache hit (no
     * exploration ran) or when observability is compiled out.
     */
    std::size_t verify_explore_peak_bytes = 0;
    std::size_t verify_game_peak_bytes = 0;

    /**
     * Machine-readable summary (loops, rewrite counts, timing); the
     * circuit itself is reported only by node count, not re-printed.
     */
    obs::json::Value toJson() const;
};

/** Options of one profiled run (see Compiler::profileRun). */
struct ProfileOptions
{
    /** Base simulator configuration (the obs slot is overwritten with
     * the profiling scope). */
    sim::SimConfig sim;
    /** Provenance capacity limits. */
    obs::ProvenanceConfig provenance;
    /** Critical-path analysis limits. */
    obs::CritPathOptions critpath;
};

/** Outcome of one profiled run: the raw hop log, its critical-path
 * analysis, and the simulation result itself. */
struct ProfileBundle
{
    obs::ProvenanceLog log;
    obs::CritPathReport report;
    sim::SimResult sim;
};

/** The GRAPHITI compiler. */
class Compiler
{
  public:
    Compiler() = default;

    /** The environment (component semantics + pure-fn registry). */
    Environment& environment() { return env_; }
    const Environment& environment() const { return env_; }

    /** Compile a dot document. */
    Result<CompileReport> compileDot(const std::string& dot_text,
                                     const CompileOptions& options = {});

    /** Compile an already-parsed graph. */
    Result<CompileReport> compileGraph(const ExprHigh& graph,
                                       const CompileOptions& options = {});

    /**
     * Bounded formal validation: check transformed ⊑ original on the
     * finite instantiation given by @p tokens and @p limits, using a
     * bounded-queue copy of this compiler's environment.
     */
    Result<RefinementReport> verifyCompilation(
        const ExprHigh& original, const ExprHigh& transformed,
        const std::vector<Token>& tokens, const ExplorationLimits& limits);

    /**
     * Dynamic validation of a specific compilation: stress both
     * circuits on @p workload under adversarial timing (seeded
     * random and structured fault plans) and check the
     * latency-insensitivity invariant plus original/transformed
     * agreement. Uses this compiler's pure-fn registry, so call it
     * after compileGraph registered the transformed circuit's
     * functions.
     */
    Result<faults::StressReport> stressCompilation(
        const ExprHigh& original, const ExprHigh& transformed,
        const faults::Workload& workload,
        const faults::StressOptions& options = {});

    /**
     * Profile one run of @p graph on @p workload with full token
     * provenance: attach a fresh obs scope + ProvenanceTracker,
     * simulate, and replay the hop log into per-token critical paths
     * and cycle attributions (compute / queue wait / backpressure).
     * Uses this compiler's pure-fn registry, so call it after
     * compileGraph when profiling a transformed circuit. Errors under
     * GRAPHITI_OBS=OFF builds — provenance hooks compile to no-ops
     * there, so a profile would be silently empty.
     */
    Result<ProfileBundle> profileRun(const ExprHigh& graph,
                                     const faults::Workload& workload,
                                     const ProfileOptions& options = {});

    /** The in-process governed-verdict cache (hits/misses/size). */
    const guard::VerifyCache& verifyCache() const { return verify_cache_; }

    /**
     * Share a sharded, LRU-bounded, crash-safe verdict store (the
     * served daemon's): when set, governed verdict lookups and
     * commits go through it instead of the per-Compiler cache, so
     * every request — and every daemon restart — sees the same
     * committed verdicts. The store is thread-safe; the Compiler
     * itself still is not (use one Compiler per job).
     */
    void
    setVerdictStore(std::shared_ptr<guard::VerdictStore> store)
    {
        verdict_store_ = std::move(store);
    }
    const std::shared_ptr<guard::VerdictStore>&
    verdictStore() const
    {
        return verdict_store_;
    }

  private:
    Environment env_;
    guard::VerifyCache verify_cache_;
    std::shared_ptr<guard::VerdictStore> verdict_store_;
};

}  // namespace graphiti

#endif  // GRAPHITI_CORE_COMPILER_HPP
