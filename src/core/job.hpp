#ifndef GRAPHITI_CORE_JOB_HPP
#define GRAPHITI_CORE_JOB_HPP

/**
 * @file
 * The job API: one compile/validate/verify/profile request as plain
 * data, and one function that executes it.
 *
 * This is the seam the served daemon shares with the one-shot CLI
 * flow: both paths build a JobSpec and call runJob on a fresh
 * Compiler, so a verdict served over a socket is byte-identical to
 * the verdict the same request produces in-process — the contract
 * tests/test_served.cpp pins down benchmark by benchmark
 * (docs/service.md).
 *
 * Job kinds:
 *   ping      liveness probe; returns {"pong": true};
 *   compile   run the verified OoO pipeline on `circuit_dot`;
 *   verify    compile with governed verification forced on;
 *   validate  structural validation only (no rewriting);
 *   profile   compile, then simulate the transformed circuit on the
 *             request's workload; returns cycle counts.
 *   stats / jobs / health
 *             read-only service introspection
 *             (docs/service_observability.md). Parsed here so specs
 *             round-trip, but answered by the served daemon before
 *             the scheduler; runJob refuses them deterministically.
 *
 * Determinism: every knob that reaches the verification ladder is
 * part of the spec (and of the verdict cache key); wall-clock fields
 * (`seconds`) appear only in the full report, never in the verdict.
 */

#include <string>

#include "core/compiler.hpp"
#include "obs/json.hpp"
#include "support/cancel.hpp"
#include "support/result.hpp"

namespace graphiti {

/** One job, as carried by the served protocol. */
struct JobSpec
{
    std::string kind = "compile";
    /** The input circuit (dot text); required except for ping and
     * the introspection kinds. */
    std::string circuit_dot;
    /** Compilation knobs (subset settable over the wire). */
    CompileOptions options;
    /** Workload of a profile job. */
    faults::Workload workload;

    obs::json::Value toJson() const;
};

/** Serialize the wire-settable subset of CompileOptions. */
obs::json::Value compileOptionsToJson(const CompileOptions& options);

/** Parse options as serialized by compileOptionsToJson; unknown
 * fields are ignored, absent fields keep their defaults. */
Result<CompileOptions> compileOptionsFromJson(const obs::json::Value& v);

/** Parse a JobSpec from its toJson form. */
Result<JobSpec> jobSpecFromJson(const obs::json::Value& v);

/**
 * Execute @p spec on @p compiler. @p stop is the caller's
 * cancellation handle (deadline / disconnect / preemption); it is
 * installed as CompileOptions::stop and SimConfig::stop for the run.
 * The result object always carries "kind"; failures are Result
 * errors, not half-filled objects.
 */
Result<obs::json::Value> runJob(Compiler& compiler, const JobSpec& spec,
                                const StopToken& stop = {});

}  // namespace graphiti

#endif  // GRAPHITI_CORE_JOB_HPP
