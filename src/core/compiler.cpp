#include "core/compiler.hpp"

#include <chrono>
#include <optional>

#include "dot/dot.hpp"
#include "graph/typecheck.hpp"
#include "guard/transaction.hpp"
#include "rewrite/catalog_verify.hpp"

namespace graphiti {

obs::json::Value
CompileReport::toJson() const
{
    namespace json = obs::json;
    json::Value out{json::Object{}};
    out.set("nodes", graph.numNodes());
    out.set("seconds", seconds);
    out.set("rewrites", rewrites.toJson());
    json::Value loop_arr{json::Array{}};
    for (const LoopTransformReport& loop : loops) {
        json::Value entry{json::Object{}};
        entry.set("header_mux", loop.header_mux);
        entry.set("transformed", loop.transformed);
        if (!loop.refusal.empty())
            entry.set("refusal", loop.refusal);
        if (loop.transformed) {
            entry.set("body_fn", loop.body_fn);
            entry.set("body_latency", loop.body_latency);
            entry.set("term_size_before", loop.term_size_before);
            entry.set("term_size_after", loop.term_size_after);
        }
        loop_arr.push(std::move(entry));
    }
    out.set("loops", std::move(loop_arr));
    out.set("validation", validation.toJson());
    json::Value rollback_arr{json::Array{}};
    for (const RewriteRollback& rb : rollbacks) {
        json::Value entry{json::Object{}};
        entry.set("rule", rb.rule);
        entry.set("reason", rb.reason);
        rollback_arr.push(std::move(entry));
    }
    out.set("rollbacks", std::move(rollback_arr));
    out.set("verification_level", verification_level);
    if (!degradation_reason.empty())
        out.set("degradation_reason", degradation_reason);
    if (verification_level != "not-run") {
        out.set("verification", verdict.toJson());
        out.set("verify_cache_hit", verify_cache_hit);
        out.set("verify_cache_key", verify_cache_key);
        json::Value peak{json::Object{}};
        peak.set("explore", verify_explore_peak_bytes);
        peak.set("game", verify_game_peak_bytes);
        peak.set("total",
                 verify_explore_peak_bytes + verify_game_peak_bytes);
        out.set("verify_peak_bytes", std::move(peak));
    }
    return out;
}

Result<CompileReport>
Compiler::compileDot(const std::string& dot_text,
                     const CompileOptions& options)
{
    Result<ExprHigh> parsed = parseDot(dot_text);
    if (!parsed.ok())
        return parsed.error().context("compileDot");
    return compileGraph(parsed.value(), options);
}

Result<CompileReport>
Compiler::compileGraph(const ExprHigh& graph,
                       const CompileOptions& options)
{
    // Route the whole compilation (typecheck, catalog verification,
    // pipeline) through the caller's scope when one is given; with no
    // explicit scope, inherit whatever the calling thread installed —
    // the served worker installs the per-job scope this way, and the
    // jobs/metricsz verbs read its probe live.
    obs::ScopedInstall obs_install(
        options.obs != nullptr ? options.obs.get() : obs::current());
    GRAPHITI_OBS_TIMER(obs_timer, "compile.seconds");
    GRAPHITI_OBS_COUNT("compile.runs", 1);

    // Well-typedness (section 6.3): every wire must carry one
    // consistent type before we reason about rewrites.
    Result<TypeReport> typed = checkWellTyped(graph);
    if (!typed.ok())
        return typed.error().context("compileGraph");

    // Guarded mode: reject malformed inputs with structured
    // diagnostics before any rewrite can trip over them.
    if (options.validate) {
        guard::ValidationReport pre = guard::validateCircuit(graph);
        if (!pre.ok())
            return err("compileGraph: input circuit failed validation\n" +
                       pre.render());
    }

    if (options.verify_rewrites) {
        Result<CatalogVerification> catalog = verifyCatalog();
        if (!catalog.ok())
            return catalog.error().context("compileGraph");
        if (!catalog.value().all_ok)
            return err("catalog verification failed: " +
                       catalog.value().first_failure);
    }

    auto start = std::chrono::steady_clock::now();
    PipelineOptions popts;
    popts.num_tags = options.num_tags;
    popts.reexpand = options.reexpand;
    if (options.validate) {
        // Transactional rewriting: every rule application must leave a
        // structurally valid fragment or it is rolled back.
        popts.post_check = guard::validatorPostCheck();
    }
    Result<PipelineResult> pipeline = runOooPipeline(graph, env_, popts);
    if (!pipeline.ok())
        return pipeline.error().context("compileGraph");
    auto end = std::chrono::steady_clock::now();

    CompileReport report;
    report.graph = std::move(pipeline.value().graph);
    report.output_dot = printDot(report.graph);
    report.loops = std::move(pipeline.value().loops);
    report.rewrites = pipeline.value().stats;
    report.rollbacks = std::move(pipeline.value().rollbacks);
    report.seconds =
        std::chrono::duration<double>(end - start).count();

    if (options.validate) {
        report.validation = guard::validateCircuit(report.graph);
        if (!report.validation.ok())
            return err(
                "compileGraph: transformed circuit failed validation "
                "(compiler bug)\n" +
                report.validation.render());
    }

    if (options.governed_verify) {
        guard::VerificationBudget budget = options.verify_budget;
        // CompileOptions::threads is the master knob; an explicitly
        // non-default budget.threads wins over it.
        if (budget.threads == 1)
            budget.threads = ThreadPool::resolveThreads(options.threads);
        std::vector<Token> tokens = options.verify_tokens;
        if (tokens.empty())
            tokens = {Token(Value(0)), Token(Value(1))};
        std::uint64_t key = guard::verificationCacheKey(
            report.graph, graph, budget, tokens);
        report.verify_cache_key = guard::formatCacheKey(key);
        bool cacheable =
            options.verify_cache && guard::isCacheable(budget);
        if (cacheable && verdict_store_ == nullptr &&
            !options.verify_cache_file.empty()) {
            Result<bool> loaded =
                verify_cache_.loadFile(options.verify_cache_file);
            if (!loaded.ok())
                return loaded.error().context("compileGraph");
        }
        std::optional<guard::VerificationVerdict> cached;
        if (cacheable)
            cached = verdict_store_ != nullptr
                         ? verdict_store_->lookup(key)
                         : verify_cache_.lookup(key);
        if (cached) {
            report.verdict = *cached;
            report.verify_cache_hit = true;
            GRAPHITI_OBS_COUNT("guard.verify.cache_hits", 1);
        } else {
            if (cacheable)
                GRAPHITI_OBS_COUNT("guard.verify.cache_misses", 1);
            guard::Governor governor(budget, options.stop);
            // Bounded-queue environment sharing this compiler's
            // registry, sized like verifyCompilation's.
            Environment bounded(budget.input_budget + 2,
                                env_.functionsPtr());
            report.verdict = governor.verifyGraphs(report.graph, graph,
                                                   bounded, tokens);
            // A verdict computed after the caller's token fired is a
            // wall-clock artifact (the ladder degraded because of the
            // cancellation) — committing it would poison the cache
            // for every future deterministic request.
            if (cacheable && options.stop.stopRequested())
                cacheable = false;
            if (cacheable) {
                if (verdict_store_ != nullptr) {
                    verdict_store_->store(key, report.verdict);
                } else {
                    verify_cache_.store(key, report.verdict);
                    if (!options.verify_cache_file.empty()) {
                        Result<bool> saved = verify_cache_.saveFile(
                            options.verify_cache_file);
                        if (!saved.ok())
                            return saved.error().context(
                                "compileGraph");
                    }
                }
            }
        }
        report.verification_level =
            guard::toString(report.verdict.level);
        report.degradation_reason = report.verdict.degradation_reason;
        // Per-phase peak bytes (0 on a cache hit: nothing explored).
        report.verify_explore_peak_bytes =
            report.verdict.explore_peak_bytes;
        report.verify_game_peak_bytes = report.verdict.report.peak_bytes;
        GRAPHITI_OBS_GAUGE("guard.verify.peak_bytes.cache",
                           verdict_store_ != nullptr
                               ? verdict_store_->approxBytes()
                               : verify_cache_.approxBytes());
        // A counterexample on any rung is a genuine violation and
        // fails the compilation; level "none" without one just means
        // the budget bought no assurance — the report says so.
        if (!report.verdict.ok && !report.verdict.counterexample.empty())
            return err("compileGraph: governed verification found a "
                       "violation at level " +
                       report.verification_level + ":\n" +
                       report.verdict.counterexample);
    }
    return report;
}

Result<RefinementReport>
Compiler::verifyCompilation(const ExprHigh& original,
                            const ExprHigh& transformed,
                            const std::vector<Token>& tokens,
                            const ExplorationLimits& limits)
{
    // Bounded-queue environment sharing this compiler's registry (the
    // transformed graph references pure functions registered during
    // compilation).
    Environment bounded(limits.input_budget + 2, env_.functionsPtr());
    return checkGraphRefinement(transformed, original, bounded, tokens,
                                limits);
}

Result<faults::StressReport>
Compiler::stressCompilation(const ExprHigh& original,
                            const ExprHigh& transformed,
                            const faults::Workload& workload,
                            const faults::StressOptions& options)
{
    faults::StressHarness harness(options);
    return harness.runPair(original, transformed, env_.functionsPtr(),
                           workload);
}

Result<ProfileBundle>
Compiler::profileRun(const ExprHigh& graph,
                     const faults::Workload& workload,
                     const ProfileOptions& options)
{
#if GRAPHITI_OBS_ENABLED
    auto scope = std::make_shared<obs::Scope>();
    auto tracker =
        std::make_shared<obs::ProvenanceTracker>(options.provenance);
    scope->attachProvenance(tracker);

    sim::SimConfig config = options.sim;
    config.obs = scope;
    Result<sim::Simulator> built =
        sim::Simulator::build(graph, env_.functionsPtr(), config);
    if (!built.ok())
        return built.error().context("profileRun");
    sim::Simulator simulator = built.take();
    for (const auto& [name, data] : workload.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> run = simulator.run(
        workload.inputs, workload.expected_outputs, workload.serial_io);
    if (!run.ok())
        return run.error().context("profileRun");

    ProfileBundle bundle;
    bundle.log = tracker->log();
    bundle.report = obs::analyzeCriticalPaths(bundle.log,
                                              options.critpath);
    bundle.sim = run.take();
    return bundle;
#else
    (void)graph;
    (void)workload;
    (void)options;
    return err("profileRun requires a GRAPHITI_OBS=ON build "
               "(provenance hooks compile to no-ops when disabled)");
#endif
}

}  // namespace graphiti
