#include "core/job.hpp"

#include "dot/dot.hpp"
#include "guard/validator.hpp"
#include "sim/sim.hpp"

namespace graphiti {

namespace json = obs::json;

obs::json::Value
compileOptionsToJson(const CompileOptions& options)
{
    json::Value out{json::Object{}};
    out.set("num_tags", options.num_tags);
    out.set("reexpand", options.reexpand);
    out.set("validate", options.validate);
    out.set("governed_verify", options.governed_verify);
    out.set("threads", options.threads);
    out.set("verify_cache", options.verify_cache);
    json::Value budget{json::Object{}};
    budget.set("max_states", options.verify_budget.max_states);
    budget.set("partial_max_states",
               options.verify_budget.partial_max_states);
    budget.set("input_budget", options.verify_budget.input_budget);
    budget.set("trace_walks", options.verify_budget.trace_walks);
    budget.set("trace_max_steps", options.verify_budget.trace.max_steps);
    budget.set("trace_max_inputs",
               options.verify_budget.trace.max_inputs);
    budget.set("seed", options.verify_budget.seed);
    budget.set("spill_bytes", options.verify_budget.spill_bytes);
    out.set("budget", std::move(budget));
    return out;
}

namespace {

Result<std::size_t>
sizeField(const json::Value& v, const char* key, std::size_t fallback)
{
    const json::Value* f = v.find(key);
    if (f == nullptr)
        return fallback;
    if (!f->isNumber() || f->asNumber() < 0)
        return err(std::string("field \"") + key +
                   "\" must be a non-negative number");
    return static_cast<std::size_t>(f->asNumber());
}

Result<bool>
boolField(const json::Value& v, const char* key, bool fallback)
{
    const json::Value* f = v.find(key);
    if (f == nullptr)
        return fallback;
    if (!f->isBool())
        return err(std::string("field \"") + key +
                   "\" must be a boolean");
    return f->asBool();
}

}  // namespace

Result<CompileOptions>
compileOptionsFromJson(const obs::json::Value& v)
{
    CompileOptions options;
    if (v.isNull())
        return options;
    if (!v.isObject())
        return err("options must be a JSON object");

    Result<std::size_t> num_tags = sizeField(v, "num_tags", 8);
    if (!num_tags.ok())
        return num_tags.error().context("options");
    options.num_tags = static_cast<int>(num_tags.value());

    Result<bool> reexpand = boolField(v, "reexpand", options.reexpand);
    Result<bool> validate = boolField(v, "validate", options.validate);
    Result<bool> governed =
        boolField(v, "governed_verify", options.governed_verify);
    Result<bool> cache =
        boolField(v, "verify_cache", options.verify_cache);
    for (const Result<bool>* r : {&reexpand, &validate, &governed, &cache})
        if (!r->ok())
            return r->error().context("options");
    options.reexpand = reexpand.value();
    options.validate = validate.value();
    options.governed_verify = governed.value();
    options.verify_cache = cache.value();

    Result<std::size_t> threads =
        sizeField(v, "threads", options.threads);
    if (!threads.ok())
        return threads.error().context("options");
    options.threads = threads.value();

    const json::Value* budget = v.find("budget");
    if (budget != nullptr) {
        if (!budget->isObject())
            return err("options: \"budget\" must be a JSON object");
        guard::VerificationBudget& b = options.verify_budget;
        Result<std::size_t> max_states =
            sizeField(*budget, "max_states", b.max_states);
        Result<std::size_t> partial =
            sizeField(*budget, "partial_max_states",
                      b.partial_max_states);
        Result<std::size_t> input_budget =
            sizeField(*budget, "input_budget", b.input_budget);
        Result<std::size_t> walks =
            sizeField(*budget, "trace_walks", b.trace_walks);
        Result<std::size_t> steps =
            sizeField(*budget, "trace_max_steps", b.trace.max_steps);
        Result<std::size_t> inputs =
            sizeField(*budget, "trace_max_inputs", b.trace.max_inputs);
        Result<std::size_t> seed = sizeField(*budget, "seed", b.seed);
        Result<std::size_t> spill =
            sizeField(*budget, "spill_bytes", b.spill_bytes);
        for (const Result<std::size_t>* r :
             {&max_states, &partial, &input_budget, &walks, &steps,
              &inputs, &seed, &spill})
            if (!r->ok())
                return r->error().context("options.budget");
        b.max_states = max_states.value();
        b.partial_max_states = partial.value();
        b.input_budget = input_budget.value();
        b.trace_walks = walks.value();
        b.trace.max_steps = steps.value();
        b.trace.max_inputs = inputs.value();
        b.seed = static_cast<std::uint64_t>(seed.value());
        b.spill_bytes = spill.value();
    }
    return options;
}

namespace {

/**
 * Profile workloads travel as arrays of scalar streams:
 * [[1, 2, 3], [4.5, true]]. Tuples have no canonical wire form and
 * never appear in benchmark workloads, so they are rejected rather
 * than guessed at.
 */
Result<std::vector<std::vector<Token>>>
tokenStreamsFromJson(const json::Value& v)
{
    std::vector<std::vector<Token>> streams;
    if (v.isNull())
        return streams;
    if (!v.isArray())
        return err("\"inputs\" must be an array of scalar streams");
    for (const json::Value& stream : v.asArray()) {
        if (!stream.isArray())
            return err("each input stream must be an array of scalars");
        std::vector<Token> tokens;
        tokens.reserve(stream.asArray().size());
        for (const json::Value& item : stream.asArray()) {
            if (item.isBool()) {
                tokens.emplace_back(Value(item.asBool()));
            } else if (item.isNumber()) {
                double d = item.asNumber();
                // Integral doubles round-trip as int64 so pure-fn
                // arithmetic sees the same representation the
                // benchmark workloads construct in-process.
                auto i = static_cast<std::int64_t>(d);
                if (static_cast<double>(i) == d)
                    tokens.emplace_back(Value(i));
                else
                    tokens.emplace_back(Value(d));
            } else if (item.isNull()) {
                tokens.emplace_back(Value());  // unit / control token
            } else {
                return err("input tokens must be scalars "
                           "(bool, number, or null for unit)");
            }
        }
        streams.push_back(std::move(tokens));
    }
    return streams;
}

json::Value
tokenStreamsToJson(const std::vector<std::vector<Token>>& streams)
{
    json::Value out{json::Array{}};
    for (const std::vector<Token>& stream : streams) {
        json::Value arr{json::Array{}};
        for (const Token& token : stream) {
            const Value& value = token.value;
            if (value.isBool())
                arr.push(value.asBool());
            else if (value.isInt())
                arr.push(value.asInt());
            else if (value.isDouble())
                arr.push(value.asDouble());
            else
                arr.push(nullptr);
        }
        out.push(std::move(arr));
    }
    return out;
}

}  // namespace

obs::json::Value
JobSpec::toJson() const
{
    json::Value out{json::Object{}};
    out.set("kind", kind);
    if (!circuit_dot.empty())
        out.set("circuit_dot", circuit_dot);
    out.set("options", compileOptionsToJson(options));
    if (kind == "profile") {
        out.set("inputs", tokenStreamsToJson(workload.inputs));
        out.set("expected_outputs", workload.expected_outputs);
        out.set("serial_io", workload.serial_io);
        if (!workload.memories.empty()) {
            json::Value mem{json::Object{}};
            for (const auto& [name, data] : workload.memories) {
                json::Value arr{json::Array{}};
                for (double d : data)
                    arr.push(d);
                mem.set(name, std::move(arr));
            }
            out.set("memories", std::move(mem));
        }
    }
    return out;
}

Result<JobSpec>
jobSpecFromJson(const obs::json::Value& v)
{
    if (!v.isObject())
        return err("job spec must be a JSON object");
    JobSpec spec;
    const json::Value* kind = v.find("kind");
    if (kind != nullptr) {
        if (!kind->isString())
            return err("job \"kind\" must be a string");
        spec.kind = kind->asString();
    }
    bool introspection = spec.kind == "stats" ||
                         spec.kind == "jobs" ||
                         spec.kind == "health" ||
                         spec.kind == "metricsz";
    if (spec.kind != "ping" && spec.kind != "compile" &&
        spec.kind != "verify" && spec.kind != "validate" &&
        spec.kind != "profile" && !introspection)
        return err("unknown job kind \"" + spec.kind +
                   "\" (expected ping, compile, verify, validate, "
                   "profile, stats, jobs, health or metricsz)");

    const json::Value* dot = v.find("circuit_dot");
    if (dot != nullptr) {
        if (!dot->isString())
            return err("job \"circuit_dot\" must be a string");
        spec.circuit_dot = dot->asString();
    }
    if (spec.kind != "ping" && !introspection &&
        spec.circuit_dot.empty())
        return err("job kind \"" + spec.kind +
                   "\" requires a non-empty \"circuit_dot\"");

    const json::Value* options = v.find("options");
    Result<CompileOptions> parsed = compileOptionsFromJson(
        options != nullptr ? *options : json::Value{});
    if (!parsed.ok())
        return parsed.error().context("job spec");
    spec.options = parsed.take();

    if (spec.kind == "profile") {
        const json::Value* inputs = v.find("inputs");
        Result<std::vector<std::vector<Token>>> streams =
            tokenStreamsFromJson(inputs != nullptr ? *inputs
                                                   : json::Value{});
        if (!streams.ok())
            return streams.error().context("job spec");
        spec.workload.inputs = streams.take();
        Result<std::size_t> expected =
            sizeField(v, "expected_outputs", 0);
        if (!expected.ok())
            return expected.error().context("job spec");
        spec.workload.expected_outputs = expected.value();
        Result<bool> serial = boolField(v, "serial_io", false);
        if (!serial.ok())
            return serial.error().context("job spec");
        spec.workload.serial_io = serial.value();
        const json::Value* memories = v.find("memories");
        if (memories != nullptr) {
            if (!memories->isObject())
                return err("job \"memories\" must be an object of "
                           "number arrays");
            for (const auto& [name, data] : memories->asObject()) {
                if (!data.isArray())
                    return err("memory \"" + name +
                               "\" must be a number array");
                std::vector<double> values;
                values.reserve(data.asArray().size());
                for (const json::Value& item : data.asArray()) {
                    if (!item.isNumber())
                        return err("memory \"" + name +
                                   "\" must contain only numbers");
                    values.push_back(item.asNumber());
                }
                spec.workload.memories[name] = std::move(values);
            }
        }
    }
    return spec;
}

namespace {

/** The deterministic verdict surface of a compile report: everything
 * the byte-identity contract covers, nothing wall-clock. */
json::Value
compileResultJson(const CompileReport& report)
{
    json::Value out{json::Object{}};
    out.set("output_dot", report.output_dot);
    out.set("verification_level", report.verification_level);
    if (report.verification_level != "not-run") {
        out.set("verdict", report.verdict.toJson());
        out.set("verify_cache_hit", report.verify_cache_hit);
        out.set("verify_cache_key", report.verify_cache_key);
    }
    out.set("report", report.toJson());
    return out;
}

}  // namespace

Result<obs::json::Value>
runJob(Compiler& compiler, const JobSpec& spec, const StopToken& stop)
{
    json::Value out{json::Object{}};
    out.set("kind", spec.kind);

    if (spec.kind == "ping") {
        out.set("pong", true);
        return out;
    }

    if (spec.kind == "stats" || spec.kind == "jobs" ||
        spec.kind == "health" || spec.kind == "metricsz")
        // Deterministic by design: the daemon intercepts these before
        // the scheduler, so reaching runJob means the caller asked a
        // one-shot compiler a question only a live service can answer.
        return err("job kind \"" + spec.kind +
                   "\" is answered by a running daemon, not a "
                   "one-shot job runner");

    if (spec.kind == "validate") {
        Result<ExprHigh> parsed = parseDot(spec.circuit_dot);
        if (!parsed.ok())
            return parsed.error().context("runJob(validate)");
        guard::ValidationReport report =
            guard::validateCircuit(parsed.value());
        out.set("ok", report.ok());
        out.set("validation", report.toJson());
        return out;
    }

    CompileOptions options = spec.options;
    options.stop = stop;
    if (spec.kind == "verify")
        options.governed_verify = true;

    if (spec.kind == "compile" || spec.kind == "verify") {
        Result<CompileReport> compiled =
            compiler.compileDot(spec.circuit_dot, options);
        if (!compiled.ok())
            return compiled.error().context("runJob(" + spec.kind + ")");
        json::Value result = compileResultJson(compiled.value());
        for (auto& [key, value] : result.asObject())
            out.set(key, std::move(value));
        return out;
    }

    // profile: compile first (so pure functions land in the
    // compiler's registry), then simulate the transformed circuit on
    // the request's workload under the same stop token.
    Result<CompileReport> compiled =
        compiler.compileDot(spec.circuit_dot, options);
    if (!compiled.ok())
        return compiled.error().context("runJob(profile)");

    sim::SimConfig config;
    config.stop = stop;
    Result<sim::Simulator> built = sim::Simulator::build(
        compiled.value().graph, compiler.environment().functionsPtr(),
        config);
    if (!built.ok())
        return built.error().context("runJob(profile)");
    sim::Simulator simulator = built.take();
    for (const auto& [name, data] : spec.workload.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> run =
        simulator.run(spec.workload.inputs,
                      spec.workload.expected_outputs,
                      spec.workload.serial_io);
    if (!run.ok())
        return run.error().context("runJob(profile)");

    out.set("output_dot", compiled.value().output_dot);
    out.set("cycles", run.value().cycles);
    out.set("outputs", tokenStreamsToJson(run.value().outputs));
    return out;
}

}  // namespace graphiti
