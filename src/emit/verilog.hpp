#ifndef GRAPHITI_EMIT_VERILOG_HPP
#define GRAPHITI_EMIT_VERILOG_HPP

/**
 * @file
 * Structural Verilog emission.
 *
 * The paper's flow hands the rewritten dot graph back to Dynamatic for
 * VHDL netlist generation; this module is the analogous back-end: it
 * emits a synthesizable structural netlist where every component
 * becomes an instance of a parameterized elastic primitive
 * (valid/ready handshake, data bus sized by the type checker) and
 * every edge becomes a data/valid/ready wire triple.
 *
 * emitPrimitives() produces the behavioral library the netlist
 * instantiates, so the pair of outputs forms a self-contained design.
 */

#include <string>

#include "graph/expr_high.hpp"
#include "support/result.hpp"

namespace graphiti::emit {

/** Options for Verilog emission. */
struct VerilogOptions
{
    /** Module name of the emitted top. */
    std::string module_name = "circuit";
    /** Data width for integer wires. */
    int int_width = 32;
    /** Data width for floating-point wires. */
    int float_width = 32;
};

/**
 * Emit a structural netlist for @p graph. Runs the type checker to
 * size the buses; fails on ill-typed graphs or components without a
 * primitive mapping.
 */
Result<std::string> emitVerilog(const ExprHigh& graph,
                                const VerilogOptions& options = {});

/** The behavioral primitive library the netlists instantiate. */
std::string emitPrimitives();

}  // namespace graphiti::emit

#endif  // GRAPHITI_EMIT_VERILOG_HPP
