#ifndef GRAPHITI_ARCH_BUFFERS_HPP
#define GRAPHITI_ARCH_BUFFERS_HPP

/**
 * @file
 * Buffer placement (the Josipovic et al. [40] substitute, as adapted
 * by Elakhras et al. for tagged circuits).
 *
 * Dataflow circuits need slack on their channels: by default every
 * channel gets a transparent+opaque slot pair, but inside a
 * Tagger/Untagger region short bypass paths must hold one token per
 * in-flight loop instance, or the region serializes (and, with
 * adversarial arrival orders, deadlocks). This pass computes the slot
 * budget of every channel; the cycle simulator consumes it, and the
 * area model can charge for it.
 */

#include <map>

#include "graph/expr_high.hpp"

namespace graphiti::arch {

/** Slot assignment for every edge of a graph. */
struct BufferPlacement
{
    /** Edge -> number of buffer slots on that channel. */
    std::map<Edge, std::size_t> slots;
    /** Flip-flops implied by the slots above (for area accounting). */
    int buffer_ff = 0;

    std::size_t
    slotsFor(const Edge& e, std::size_t fallback) const
    {
        auto it = slots.find(e);
        return it == slots.end() ? fallback : it->second;
    }
};

/**
 * Compute buffer slots: @p default_slots everywhere, widened to the
 * tagger's tag count on channels whose endpoints both lie inside a
 * tagged region (including the tagger itself).
 */
BufferPlacement placeBuffers(const ExprHigh& graph,
                             std::size_t default_slots = 2);

}  // namespace graphiti::arch

#endif  // GRAPHITI_ARCH_BUFFERS_HPP
