#ifndef GRAPHITI_ARCH_AREA_TIMING_HPP
#define GRAPHITI_ARCH_AREA_TIMING_HPP

/**
 * @file
 * FPGA area and timing model (the Vivado substitute).
 *
 * Per-component LUT/FF/DSP costs and combinational delays are
 * calibrated to the 32-bit Kintex-7 component library a Dynamatic
 * flow uses. Components inside a Tagger/Untagger region carry tag
 * bits, widening their datapaths and adding tag-match logic — the
 * mechanism behind the area and clock-period increases of table 3.
 *
 * The clock period is modelled as a fixed register/routing overhead
 * plus the slowest component's combinational delay plus a congestion
 * term that grows with total LUT usage.
 */

#include <set>

#include "graph/expr_high.hpp"

namespace graphiti::arch {

/** Resource usage, in table 3's units. */
struct AreaReport
{
    int lut = 0;
    int ff = 0;
    int dsp = 0;

    AreaReport&
    operator+=(const AreaReport& other)
    {
        lut += other.lut;
        ff += other.ff;
        dsp += other.dsp;
        return *this;
    }
};

/** Area and delay of one component instance. */
struct ComponentCost
{
    AreaReport area;
    double delay_ns = 0.0;
};

/**
 * Cost of one node; @p tagged widens the datapath for components
 * inside a Tagger/Untagger region. Pure nodes cost the sum of their
 * `absorbed` inventory.
 */
ComponentCost costOf(const NodeDecl& node, bool tagged);

/** Nodes inside any Tagger/Untagger region of @p graph. */
std::set<std::string> taggedRegionOf(const ExprHigh& graph);

/** Total area of @p graph (table 3's LUT/FF/DSP columns). */
AreaReport areaOf(const ExprHigh& graph);

/** Post-place-and-route clock period estimate in ns (table 2). */
double clockPeriodOf(const ExprHigh& graph);

/** Execution time in ns: cycles x clock period. */
inline double
executionTimeNs(std::size_t cycles, double clock_period_ns)
{
    return static_cast<double>(cycles) * clock_period_ns;
}

}  // namespace graphiti::arch

#endif  // GRAPHITI_ARCH_AREA_TIMING_HPP
