#include "arch/buffers.hpp"

#include <algorithm>

#include "arch/area_timing.hpp"
#include "graph/signatures.hpp"

namespace graphiti::arch {

BufferPlacement
placeBuffers(const ExprHigh& graph, std::size_t default_slots)
{
    std::set<std::string> tagged = taggedRegionOf(graph);
    std::size_t region_tags = 0;
    for (const NodeDecl& node : graph.nodes()) {
        if (node.type == "tagger") {
            tagged.insert(node.name);
            region_tags = std::max(
                region_tags, static_cast<std::size_t>(
                                  attrInt(node.attrs, "tags", 4)));
        }
    }

    BufferPlacement placement;
    for (const Edge& e : graph.edges()) {
        std::size_t slots = default_slots;
        if (tagged.count(e.src.inst) > 0 &&
            tagged.count(e.dst.inst) > 0)
            slots = std::max(slots, region_tags);
        placement.slots[e] = slots;
        // A slot is roughly a 32-bit word plus valid bit; only the
        // slots beyond the default pair are *extra* area relative to
        // the component library's built-in buffering.
        if (slots > default_slots)
            placement.buffer_ff +=
                static_cast<int>(slots - default_slots) * 33 / 4;
    }
    return placement;
}

}  // namespace graphiti::arch
