#include "arch/area_timing.hpp"

#include <cmath>
#include <deque>
#include <set>

#include "graph/signatures.hpp"
#include "support/strings.hpp"

namespace graphiti::arch {

namespace {

/** Cost table for operators (32-bit datapath, Kintex-7 flavor). */
ComponentCost
operatorCost(const std::string& op)
{
    if (op == "add" || op == "sub")
        return {{36, 0, 0}, 2.0};
    if (op == "mul")
        return {{45, 120, 3}, 2.9};
    if (op == "div" || op == "mod")
        return {{1150, 900, 0}, 3.5};
    if (op == "fadd" || op == "fsub")
        return {{320, 480, 2}, 3.2};
    if (op == "fmul")
        return {{95, 170, 3}, 3.0};
    if (op == "fdiv")
        return {{800, 1400, 0}, 3.6};
    if (op == "flt" || op == "fge")
        return {{82, 60, 0}, 2.2};
    if (op == "select")
        return {{34, 0, 0}, 1.1};
    if (operatorIsPredicate(op))
        return {{36, 0, 0}, 1.9};
    // Logic / shifts / casts.
    return {{20, 0, 0}, 1.2};
}

ComponentCost
baseCost(const std::string& type, const AttrMap& attrs)
{
    if (type == "fork") {
        int n = attrInt(attrs, "out", 2);
        return {{4 + 3 * n, 2 + n, 0}, 0.5};
    }
    if (type == "join") {
        int n = attrInt(attrs, "in", 2);
        return {{6 * n, 2 * n, 0}, 0.6};
    }
    if (type == "split")
        return {{4, 2, 0}, 0.4};
    if (type == "mux")
        return {{42, 34, 0}, 1.2};
    if (type == "merge")
        return {{36, 34, 0}, 1.1};
    if (type == "branch")
        return {{20, 2, 0}, 0.8};
    if (type == "init")
        return {{10, 35, 0}, 0.6};
    if (type == "buffer")
        return {{16, 66, 0}, 0.5};
    if (type == "sink")
        return {{1, 0, 0}, 0.1};
    if (type == "source")
        return {{1, 0, 0}, 0.1};
    if (type == "constant")
        return {{3, 0, 0}, 0.2};
    if (type == "operator")
        return operatorCost(attrStr(attrs, "op", ""));
    if (type == "load")
        return {{35, 42, 0}, 1.8};
    if (type == "store")
        return {{28, 22, 0}, 1.6};
    if (type == "tagger") {
        // Completion buffer: one data+tag slot per tag, allocation
        // and commit counters, tag-compare commit logic.
        int tags = attrInt(attrs, "tags", 4);
        return {{60 + 25 * tags, 40 + 70 * tags, 0},
                2.8 + 0.02 * tags};
    }
    if (type == "pure") {
        // Sum the absorbed inventory (set by pure generation).
        ComponentCost total{{0, 0, 0}, 0.0};
        for (const std::string& entry :
             split(attrStr(attrs, "absorbed", ""), ',')) {
            if (entry.empty())
                continue;
            std::vector<std::string> parts = split(entry, ':');
            AttrMap sub_attrs;
            if (parts.size() > 1)
                sub_attrs["op"] = parts[1];
            ComponentCost c = baseCost(parts[0], sub_attrs);
            total.area += c.area;
            total.delay_ns = std::max(total.delay_ns, c.delay_ns);
        }
        return total;
    }
    return {{0, 0, 0}, 0.0};
}

}  // namespace

ComponentCost
costOf(const NodeDecl& node, bool tagged)
{
    ComponentCost cost = baseCost(node.type, node.attrs);
    if (tagged && node.type != "tagger") {
        // Tag bits widen queues and handshake logic; joining paths
        // additionally compare tags.
        cost.area.lut = static_cast<int>(cost.area.lut * 1.15) + 6;
        cost.area.ff = static_cast<int>(cost.area.ff * 1.2) + 8;
        cost.delay_ns += 0.55;
    }
    return cost;
}

std::set<std::string>
taggedRegionOf(const ExprHigh& graph)
{
    std::set<std::string> tagged;
    for (const NodeDecl& node : graph.nodes()) {
        if (node.type != "tagger")
            continue;
        // Forward flood from tagger.out0, stopping at the tagger.
        std::deque<PortRef> frontier;
        for (const PortRef& c :
             graph.consumersOf(PortRef{node.name, "out0"}))
            frontier.push_back(c);
        while (!frontier.empty()) {
            PortRef at = frontier.front();
            frontier.pop_front();
            if (at.inst == node.name)
                continue;
            if (!tagged.insert(at.inst).second)
                continue;
            const NodeDecl* n = graph.findNode(at.inst);
            if (n == nullptr)
                continue;
            Result<Signature> sig = signatureOf(n->type, n->attrs);
            if (!sig.ok())
                continue;
            for (const std::string& port : sig.value().outputs)
                for (const PortRef& c :
                     graph.consumersOf(PortRef{at.inst, port}))
                    frontier.push_back(c);
        }
    }
    return tagged;
}

AreaReport
areaOf(const ExprHigh& graph)
{
    std::set<std::string> tagged = taggedRegionOf(graph);
    AreaReport total;
    for (const NodeDecl& node : graph.nodes())
        total += costOf(node, tagged.count(node.name) > 0).area;
    return total;
}

double
clockPeriodOf(const ExprHigh& graph)
{
    std::set<std::string> tagged = taggedRegionOf(graph);
    AreaReport total;
    double max_delay = 0.0;
    for (const NodeDecl& node : graph.nodes()) {
        ComponentCost cost = costOf(node, tagged.count(node.name) > 0);
        total += cost.area;
        max_delay = std::max(max_delay, cost.delay_ns);
    }
    // Register + clock overhead, slowest stage, routing congestion.
    return 1.2 + max_delay + 0.0006 * total.lut;
}

}  // namespace graphiti::arch
