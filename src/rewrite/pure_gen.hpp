#ifndef GRAPHITI_REWRITE_PURE_GEN_HPP
#define GRAPHITI_REWRITE_PURE_GEN_HPP

/**
 * @file
 * Pure generation (section 3.2): collapse a loop body into a single
 * Pure component followed by a Split.
 *
 * The body of a normalized loop is evaluated *symbolically*: every
 * wire is assigned a term over the loop-state variable (operators and
 * existing Pures become uninterpreted function nodes; Fork duplicates
 * terms; Join pairs them; Split projects). The resulting
 * (next-state, continue?) term is minimized with the e-graph oracle —
 * the role egg plays in the paper, deciding the order in which the
 * Split/Join algebra collapses — compiled into a registered PureFn,
 * and the whole region is replaced by Pure + Split through the
 * verified rewriting function.
 *
 * Bodies containing side-effecting components (stores) are rejected:
 * this is the guard that caught the original Dynamatic bug on bicg
 * (section 6.2), where the unverified flow reordered a loop with a
 * store in its body.
 */

#include "egraph/egraph.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/loop_rewrite.hpp"
#include "semantics/environment.hpp"

namespace graphiti {

/** Result of collapsing one loop body. */
struct PureGenResult
{
    ExprHigh graph;           ///< rewritten graph
    std::string fn_name;      ///< registered PureFn name
    std::string pure_node;    ///< inserted pure instance
    std::string split_node;   ///< inserted split instance
    RewriteDef region_def;    ///< the generated region rewrite
    RewriteMatch region_match;  ///< identity match it was applied at
    eg::TermExpr term;        ///< minimized (state', continue?) term
    std::size_t term_size_before = 0;
    std::size_t term_size_after = 0;
    int latency = 0;          ///< critical path of the absorbed ops
};

/**
 * Collapse the body of @p loop in @p graph into Pure + Split.
 *
 * Preconditions (established by the normalization phases):
 *  - the region is single-entry: mux.out0 has one consumer, in the
 *    body;
 *  - the region's only outputs drive branch.in0 (next state) and the
 *    condition fork / branch.in1.
 *
 * Fails with a descriptive error when the body has side effects or an
 * unsupported shape.
 */
Result<PureGenResult> generatePureBody(const ExprHigh& graph,
                                       const LoopInfo& loop,
                                       Environment& env,
                                       RewriteEngine& engine);

/**
 * Compile a body term to an executable unary function. Exposed for
 * testing; generatePureBody registers the compiled function under
 * PureGenResult::fn_name.
 */
Result<PureFn> compileTerm(const eg::TermExpr& term,
                           std::shared_ptr<FnRegistry> registry);

}  // namespace graphiti

#endif  // GRAPHITI_REWRITE_PURE_GEN_HPP
