#include "rewrite/rewrite.hpp"

#include <algorithm>
#include <set>

#include "graph/signatures.hpp"

namespace graphiti {

namespace {

/** Check port coverage: every signature port has an edge or io bind. */
Result<bool>
checkCoverage(const ExprHigh& g, const std::string& side)
{
    for (const NodeDecl& node : g.nodes()) {
        Result<Signature> sig = signatureOf(node.type, node.attrs);
        if (!sig.ok())
            return sig.error().context(side + " node " + node.name);
        for (const std::string& port : sig.value().inputs) {
            PortRef ref{node.name, port};
            bool covered = g.driverOf(ref).has_value();
            for (const auto& io : g.inputs())
                covered |= io && *io == ref;
            if (!covered)
                return err(side + " port uncovered: " + ref.toString());
        }
        for (const std::string& port : sig.value().outputs) {
            PortRef ref{node.name, port};
            bool covered = !g.consumersOf(ref).empty();
            for (const auto& io : g.outputs())
                covered |= io && *io == ref;
            if (!covered)
                return err(side + " port uncovered: " + ref.toString());
        }
    }
    return true;
}

std::set<std::size_t>
boundIndices(const std::vector<std::optional<PortRef>>& ios)
{
    std::set<std::size_t> out;
    for (std::size_t i = 0; i < ios.size(); ++i)
        if (ios[i])
            out.insert(i);
    return out;
}

bool
attrsMatch(const AttrMap& pattern, const AttrMap& concrete,
           std::map<std::string, std::string>& captures)
{
    for (const auto& [key, value] : pattern) {
        auto it = concrete.find(key);
        if (it == concrete.end())
            return false;
        if (!value.empty() && value[0] == '$') {
            auto [cap, inserted] = captures.emplace(value, it->second);
            if (!inserted && cap->second != it->second)
                return false;
        } else if (value != it->second) {
            return false;
        }
    }
    return true;
}

}  // namespace

Result<bool>
RewriteDef::validate() const
{
    Result<bool> lhs_ok = lhs.validate();
    if (!lhs_ok.ok())
        return lhs_ok.error().context(name + " lhs");
    Result<bool> coverage = checkCoverage(lhs, name + " lhs");
    if (!coverage.ok())
        return coverage;
    if (lhs.numNodes() == 0)
        return err(name + ": empty lhs");

    if (rhs.numNodes() == 0) {
        // Wire rewrite: passthroughs must pair existing boundary ports.
        if (passthrough.empty())
            return err(name + ": empty rhs needs passthrough wires");
        std::set<std::size_t> ins = boundIndices(lhs.inputs());
        std::set<std::size_t> outs = boundIndices(lhs.outputs());
        for (auto [in_io, out_io] : passthrough) {
            if (ins.count(in_io) == 0 || outs.count(out_io) == 0)
                return err(name + ": passthrough references unbound io");
        }
        return true;
    }

    Result<bool> rhs_ok = rhs.validate();
    if (!rhs_ok.ok())
        return rhs_ok.error().context(name + " rhs");
    coverage = checkCoverage(rhs, name + " rhs");
    if (!coverage.ok())
        return coverage;
    if (boundIndices(lhs.inputs()) != boundIndices(rhs.inputs()) ||
        boundIndices(lhs.outputs()) != boundIndices(rhs.outputs()))
        return err(name + ": lhs/rhs boundary indices differ");
    return true;
}

std::vector<std::string>
RewriteMatch::matchedNodes(const RewriteDef& def) const
{
    std::vector<std::string> out;
    for (const NodeDecl& pn : def.lhs.nodes())
        out.push_back(binding.at(pn.name));
    return out;
}

namespace {

/** Backtracking pattern matcher. */
class Matcher
{
  public:
    Matcher(const ExprHigh& graph, const RewriteDef& def)
        : graph_(graph), def_(def)
    {
    }

    std::vector<RewriteMatch>
    run(bool first_only)
    {
        first_only_ = first_only;
        RewriteMatch seed;
        assign(0, seed);
        return std::move(results_);
    }

  private:
    void
    assign(std::size_t idx, RewriteMatch& partial)
    {
        if (first_only_ && !results_.empty())
            return;
        if (idx == def_.lhs.nodes().size()) {
            if (verify(partial))
                results_.push_back(partial);
            return;
        }
        const NodeDecl& pn = def_.lhs.nodes()[idx];
        for (const NodeDecl& cn : graph_.nodes()) {
            if (cn.type != pn.type)
                continue;
            bool taken = false;
            for (const auto& [p, c] : partial.binding)
                taken |= c == cn.name;
            if (taken)
                continue;
            RewriteMatch attempt = partial;
            if (!attrsMatch(pn.attrs, cn.attrs, attempt.captures))
                continue;
            attempt.binding[pn.name] = cn.name;
            assign(idx + 1, attempt);
            if (first_only_ && !results_.empty())
                return;
        }
    }

    bool
    verify(const RewriteMatch& match) const
    {
        // Every pattern edge must exist concretely.
        for (const Edge& pe : def_.lhs.edges()) {
            Edge ce{PortRef{match.binding.at(pe.src.inst), pe.src.port},
                    PortRef{match.binding.at(pe.dst.inst), pe.dst.port}};
            if (std::find(graph_.edges().begin(), graph_.edges().end(),
                          ce) == graph_.edges().end())
                return false;
        }
        // Every concrete edge between matched nodes must have a
        // pattern counterpart (no unaccounted internal wiring).
        std::map<std::string, std::string> reverse;
        for (const auto& [p, c] : match.binding)
            reverse[c] = p;
        for (const Edge& ce : graph_.edges()) {
            auto src = reverse.find(ce.src.inst);
            auto dst = reverse.find(ce.dst.inst);
            if (src == reverse.end() || dst == reverse.end())
                continue;
            Edge pe{PortRef{src->second, ce.src.port},
                    PortRef{dst->second, ce.dst.port}};
            if (std::find(def_.lhs.edges().begin(),
                          def_.lhs.edges().end(),
                          pe) == def_.lhs.edges().end())
                return false;
        }
        return true;
    }

    const ExprHigh& graph_;
    const RewriteDef& def_;
    bool first_only_ = false;
    std::vector<RewriteMatch> results_;
};

/** The graph-level name of a concrete port (io or local identity). */
LowPortId
boundaryName(const ExprHigh& graph, const PortRef& port, bool is_input)
{
    const auto& ios = is_input ? graph.inputs() : graph.outputs();
    for (std::size_t i = 0; i < ios.size(); ++i)
        if (ios[i] && *ios[i] == port)
            return LowPortId::ioPort(static_cast<std::uint32_t>(i));
    return LowPortId::localPort(port.inst, port.port);
}

/** Apply a wire rewrite (empty rhs) by direct graph surgery. */
Result<ExprHigh>
applyWireRewrite(const ExprHigh& graph, const RewriteDef& def,
                 const RewriteMatch& match)
{
    ExprHigh out = graph;

    struct Wire
    {
        std::optional<PortRef> driver;      // or graph input
        std::optional<std::size_t> in_io;
        std::vector<PortRef> consumers;     // or graph output
        std::vector<std::size_t> out_ios;
    };
    std::vector<Wire> wires;
    for (auto [in_io, out_io] : def.passthrough) {
        const PortRef& lhs_in = *def.lhs.inputs()[in_io];
        const PortRef& lhs_out = *def.lhs.outputs()[out_io];
        PortRef concrete_in{match.binding.at(lhs_in.inst), lhs_in.port};
        PortRef concrete_out{match.binding.at(lhs_out.inst),
                             lhs_out.port};
        Wire wire;
        wire.driver = out.driverOf(concrete_in);
        for (std::size_t i = 0; i < out.inputs().size(); ++i)
            if (out.inputs()[i] && *out.inputs()[i] == concrete_in)
                wire.in_io = i;
        wire.consumers = out.consumersOf(concrete_out);
        for (std::size_t i = 0; i < out.outputs().size(); ++i)
            if (out.outputs()[i] && *out.outputs()[i] == concrete_out)
                wire.out_ios.push_back(i);
        wires.push_back(std::move(wire));
    }

    for (const auto& [pn, cn] : match.binding)
        out.removeNode(cn);

    for (const Wire& wire : wires) {
        if (wire.driver) {
            for (const PortRef& consumer : wire.consumers)
                out.connect(*wire.driver, consumer);
            for (std::size_t io : wire.out_ios)
                out.bindOutput(io, *wire.driver);
        } else if (wire.in_io) {
            if (wire.consumers.size() + wire.out_ios.size() > 1)
                return err(def.name +
                           ": passthrough would fan out a graph input");
            for (const PortRef& consumer : wire.consumers)
                out.bindInput(*wire.in_io, consumer);
            if (!wire.out_ios.empty())
                return err(def.name +
                           ": passthrough connects graph input directly "
                           "to graph output");
        }
        // A wire with neither driver nor io simply disappears.
    }

    Result<bool> valid = out.validate();
    if (!valid.ok())
        return valid.error().context(def.name + " wire application");
    return out;
}

}  // namespace

Result<bool>
validateMatch(const ExprHigh& graph, const RewriteDef& def,
              RewriteMatch& match)
{
    // Node types and attribute constraints.
    std::map<std::string, std::string>& captures = match.captures;
    for (const NodeDecl& pn : def.lhs.nodes()) {
        auto it = match.binding.find(pn.name);
        if (it == match.binding.end())
            return err(def.name + ": match misses pattern node " +
                       pn.name);
        const NodeDecl* cn = graph.findNode(it->second);
        if (cn == nullptr)
            return err(def.name + ": match names missing node " +
                       it->second);
        if (cn->type != pn.type)
            return err(def.name + ": type mismatch at " + cn->name);
        if (!attrsMatch(pn.attrs, cn->attrs, captures))
            return err(def.name + ": attribute mismatch at " + cn->name);
    }
    // Pattern edges exist.
    for (const Edge& pe : def.lhs.edges()) {
        Edge ce{PortRef{match.binding.at(pe.src.inst), pe.src.port},
                PortRef{match.binding.at(pe.dst.inst), pe.dst.port}};
        if (std::find(graph.edges().begin(), graph.edges().end(), ce) ==
            graph.edges().end())
            return err(def.name + ": pattern edge missing: " +
                       ce.src.toString() + " -> " + ce.dst.toString());
    }
    // No unaccounted internal wiring.
    std::map<std::string, std::string> reverse;
    for (const auto& [p, c] : match.binding)
        reverse[c] = p;
    for (const Edge& ce : graph.edges()) {
        auto src = reverse.find(ce.src.inst);
        auto dst = reverse.find(ce.dst.inst);
        if (src == reverse.end() || dst == reverse.end())
            continue;
        Edge pe{PortRef{src->second, ce.src.port},
                PortRef{dst->second, ce.dst.port}};
        if (std::find(def.lhs.edges().begin(), def.lhs.edges().end(),
                      pe) == def.lhs.edges().end())
            return err(def.name + ": unaccounted internal edge: " +
                       ce.src.toString() + " -> " + ce.dst.toString());
    }
    return true;
}

std::vector<RewriteMatch>
matchRewrite(const ExprHigh& graph, const RewriteDef& def)
{
    Matcher matcher(graph, def);
    return matcher.run(false);
}

std::optional<RewriteMatch>
matchRewriteOnce(const ExprHigh& graph, const RewriteDef& def)
{
    Matcher matcher(graph, def);
    std::vector<RewriteMatch> all = matcher.run(true);
    if (all.empty())
        return std::nullopt;
    return std::move(all[0]);
}

RewriteDef
instantiateCaptures(const RewriteDef& def,
                    const std::map<std::string, std::string>& captures)
{
    RewriteDef out = def;
    auto substitute = [&](ExprHigh& g) {
        for (const NodeDecl& node : g.nodes()) {
            AttrMap updated = node.attrs;
            for (auto& [key, value] : updated) {
                auto it = captures.find(value);
                if (it != captures.end())
                    value = it->second;
            }
            g.findNode(node.name)->attrs = std::move(updated);
        }
    };
    substitute(out.lhs);
    substitute(out.rhs);
    return out;
}

Result<ExprHigh>
applyRewrite(const ExprHigh& graph, const RewriteDef& def,
             const RewriteMatch& match_in)
{
    RewriteMatch match = match_in;
    Result<bool> match_ok = validateMatch(graph, def, match);
    if (!match_ok.ok())
        return match_ok.error();

    if (def.rhs.numNodes() == 0)
        return applyWireRewrite(graph, def, match);

    RewriteDef concrete = instantiateCaptures(def, match.captures);

    // Lower the graph with the matched nodes isolated as a prefix.
    std::vector<std::string> matched = match.matchedNodes(concrete);
    std::vector<std::string> order = matched;
    std::set<std::string> matched_set(matched.begin(), matched.end());
    for (const NodeDecl& node : graph.nodes())
        if (matched_set.count(node.name) == 0)
            order.push_back(node.name);

    Result<std::pair<ExprLow, ExprLow>> lowered =
        lowerWithPrefix(graph, order, matched.size());
    if (!lowered.ok())
        return lowered.error().context(def.name);
    const ExprLow& full = lowered.value().first;
    const ExprLow& lhs_sub = lowered.value().second;

    // Boundary graph-level names, per lhs io index.
    std::map<std::size_t, LowPortId> in_names;
    std::map<std::size_t, LowPortId> out_names;
    for (std::size_t i = 0; i < concrete.lhs.inputs().size(); ++i) {
        if (!concrete.lhs.inputs()[i])
            continue;
        const PortRef& p = *concrete.lhs.inputs()[i];
        in_names[i] = boundaryName(
            graph, PortRef{match.binding.at(p.inst), p.port}, true);
    }
    for (std::size_t i = 0; i < concrete.lhs.outputs().size(); ++i) {
        if (!concrete.lhs.outputs()[i])
            continue;
        const PortRef& p = *concrete.lhs.outputs()[i];
        out_names[i] = boundaryName(
            graph, PortRef{match.binding.at(p.inst), p.port}, false);
    }

    // Fresh instance names for the rhs template nodes.
    std::set<std::string> used;
    for (const NodeDecl& node : graph.nodes())
        used.insert(node.name);
    std::map<std::string, std::string> fresh;
    for (const NodeDecl& node : concrete.rhs.nodes()) {
        for (std::size_t i = 0;; ++i) {
            std::string candidate = node.name + std::to_string(i);
            if (used.insert(candidate).second) {
                fresh[node.name] = candidate;
                break;
            }
        }
    }

    // Build the rhs sub-expression: identity names internally, the
    // lhs boundary names on the boundary.
    std::vector<LowBase> bases;
    for (const NodeDecl& node : concrete.rhs.nodes()) {
        Result<Signature> sig = signatureOf(node.type, node.attrs);
        if (!sig.ok())
            return sig.error().context(def.name + " rhs");
        LowBase base;
        base.inst = fresh[node.name];
        base.type = node.type;
        base.attrs = node.attrs;
        for (const std::string& port : sig.value().inputs) {
            LowPortId id = LowPortId::localPort(base.inst, port);
            for (std::size_t i = 0; i < concrete.rhs.inputs().size();
                 ++i) {
                if (concrete.rhs.inputs()[i] &&
                    *concrete.rhs.inputs()[i] ==
                        PortRef{node.name, port})
                    id = in_names.at(i);
            }
            base.inputs[port] = id;
        }
        for (const std::string& port : sig.value().outputs) {
            LowPortId id = LowPortId::localPort(base.inst, port);
            for (std::size_t i = 0; i < concrete.rhs.outputs().size();
                 ++i) {
                if (concrete.rhs.outputs()[i] &&
                    *concrete.rhs.outputs()[i] ==
                        PortRef{node.name, port})
                    id = out_names.at(i);
            }
            base.outputs[port] = id;
        }
        bases.push_back(std::move(base));
    }

    ExprLow rhs_sub = ExprLow::base(bases[0]);
    for (std::size_t i = 1; i < bases.size(); ++i)
        rhs_sub = ExprLow::product(std::move(rhs_sub),
                                   ExprLow::base(bases[i]));
    std::vector<Edge> rhs_edges = concrete.rhs.edges();
    std::sort(rhs_edges.begin(), rhs_edges.end());
    for (const Edge& e : rhs_edges) {
        rhs_sub = ExprLow::connect(
            LowPortId::localPort(fresh[e.src.inst], e.src.port),
            LowPortId::localPort(fresh[e.dst.inst], e.dst.port),
            std::move(rhs_sub));
    }

    auto [rewritten, count] = full.substitute(lhs_sub, rhs_sub);
    if (count != 1)
        return err(def.name + ": substitution found " +
                   std::to_string(count) + " occurrences (expected 1)");
    return liftToExprHigh(rewritten);
}

Result<RefinementReport>
verifyRewrite(const RewriteDef& def, const Environment& env,
              const std::vector<Token>& tokens,
              const ExplorationLimits& limits)
{
    if (def.rhs.numNodes() == 0)
        return err(def.name +
                   ": wire rewrites have no module denotation to check");
    return checkGraphRefinement(def.rhs, def.lhs, env, tokens, limits);
}

}  // namespace graphiti
