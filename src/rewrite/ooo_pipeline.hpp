#ifndef GRAPHITI_REWRITE_OOO_PIPELINE_HPP
#define GRAPHITI_REWRITE_OOO_PIPELINE_HPP

/**
 * @file
 * The five-phase out-of-order transformation of section 3.1.
 *
 * 1. *Normalize*: combine the loop's Mux/Branch/Init pairs into a
 *    single guarded loop (figure 3a rewrites), regrouping the
 *    condition fork tree with oracle-generated fork rewrites.
 * 2. *Cleanup*: eliminate the Split/Join/Fork residue (figure 3b).
 * 3. *Pure generation* (section 3.2): collapse the loop body into a
 *    single Pure + Split, guided by the e-graph oracle; refuse loops
 *    whose bodies perform stores (the bicg guard of section 6.2).
 * 4. *Main rewrite* (figure 3d, section 5): Mux -> tagged Merge with
 *    a Tagger/Untagger around the loop.
 * 5. *Re-expansion*: replay the pure-generation rewrite backwards so
 *    the final circuit contains the original operators (now inside
 *    the tagged region).
 *
 * The driver is the untrusted oracle of the paper: it only decides
 * *where* rewrites apply; every graph mutation goes through the
 * verified rewriting function.
 */

#include <string>
#include <vector>

#include "rewrite/engine.hpp"
#include "rewrite/loop_rewrite.hpp"
#include "rewrite/pure_gen.hpp"

namespace graphiti {

/** Per-loop outcome of the pipeline. */
struct LoopTransformReport
{
    std::string header_mux;  ///< original loop-header mux (first of group)
    bool transformed = false;
    /** Why the loop was left alone (side effects, shape). Empty when
     * transformed. */
    std::string refusal;
    std::string body_fn;      ///< registered body function
    int body_latency = 0;     ///< critical path of the absorbed body
    std::size_t term_size_before = 0;
    std::size_t term_size_after = 0;
};

/** Pipeline configuration. */
struct PipelineOptions
{
    /** Tag count for the inserted Tagger/Untagger. */
    int num_tags = 8;
    /** Replay pure generation backwards at the end (phase 5). */
    bool reexpand = true;
    /** Record the graph after each phase (the figure 4 walkthrough). */
    bool keep_snapshots = false;
    /**
     * Transactional guard: installed on the pipeline's engine, so
     * every rewrite application is validated and rolled back on
     * failure (see RewriteEngine::setPostCheck). Vetoed applications
     * surface in PipelineResult::rollbacks.
     */
    PostCheck post_check;
};

/** A labelled intermediate graph (with keep_snapshots). */
struct PipelineSnapshot
{
    std::string phase;
    ExprHigh graph;
};

/** Pipeline outcome. */
struct PipelineResult
{
    ExprHigh graph;
    EngineStats stats;
    std::vector<LoopTransformReport> loops;
    /** One entry per completed phase when keep_snapshots is set
     * (figure 4's a-d sequence). */
    std::vector<PipelineSnapshot> snapshots;
    /** Applications vetoed by the post-check (empty when healthy). */
    std::vector<RewriteRollback> rollbacks;
};

/**
 * Run the full out-of-order pipeline on every Mux/Branch loop of
 * @p graph. Loops that cannot be transformed soundly are reported and
 * left untouched (the graph still improves where possible).
 */
Result<PipelineResult> runOooPipeline(const ExprHigh& graph,
                                      Environment& env,
                                      const PipelineOptions& options = {});

}  // namespace graphiti

#endif  // GRAPHITI_REWRITE_OOO_PIPELINE_HPP
