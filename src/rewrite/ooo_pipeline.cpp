#include "rewrite/ooo_pipeline.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/signatures.hpp"
#include "rewrite/catalog.hpp"

namespace graphiti {

namespace {

/** Trace a condition wire back through forks to its source port. */
std::optional<PortRef>
condSource(const ExprHigh& g, const PortRef& consumer)
{
    std::optional<PortRef> driver = g.driverOf(consumer);
    while (driver) {
        const NodeDecl* node = g.findNode(driver->inst);
        if (node == nullptr)
            return std::nullopt;
        if (node->type != "fork")
            return driver;
        driver = g.driverOf(PortRef{node->name, "in0"});
    }
    return std::nullopt;
}

/** A fork tree rooted at the consumer of @p source. */
struct ForkTree
{
    std::vector<std::string> forks;     ///< fork nodes, DFS order
    std::vector<PortRef> leaves;        ///< non-fork consumer ports
    std::vector<PortRef> leaf_sources;  ///< fork output driving each leaf
};

/** Collect the (binary, post fork-split) tree hanging off @p source. */
std::optional<ForkTree>
collectForkTree(const ExprHigh& g, const PortRef& source)
{
    std::vector<PortRef> consumers = g.consumersOf(source);
    if (consumers.size() != 1)
        return std::nullopt;
    const NodeDecl* root = g.findNode(consumers[0].inst);
    if (root == nullptr || root->type != "fork")
        return std::nullopt;

    ForkTree tree;
    std::function<bool(const std::string&)> visit =
        [&](const std::string& fork) -> bool {
        tree.forks.push_back(fork);
        int arity = attrInt(g.findNode(fork)->attrs, "out", 2);
        for (int i = 0; i < arity; ++i) {
            PortRef out{fork, "out" + std::to_string(i)};
            std::vector<PortRef> next = g.consumersOf(out);
            if (next.size() != 1)
                return false;  // dangling fork output: unsupported
            const NodeDecl* child = g.findNode(next[0].inst);
            if (child != nullptr && child->type == "fork") {
                if (!visit(child->name))
                    return false;
            } else {
                tree.leaves.push_back(next[0]);
                tree.leaf_sources.push_back(out);
            }
        }
        return true;
    };
    if (!visit(root->name))
        return std::nullopt;
    return tree;
}

/**
 * Regroup the condition fork tree so that the @p front_groups leaves
 * are each served by a dedicated fork2, with the second-to-last level
 * pairing the groups (this parent becomes the normalized loop's
 * condition fork). Remaining leaves chain off the top. One generated
 * rewrite, applied through the engine.
 */
Result<ExprHigh>
regroupCondTree(RewriteEngine& engine, const ExprHigh& g,
                const PortRef& source,
                const std::vector<std::vector<PortRef>>& front_groups)
{
    std::optional<ForkTree> tree = collectForkTree(g, source);
    if (!tree)
        return err("regroup: condition is not a clean fork tree");

    // Leaf -> io index (its position in the lhs enumeration).
    std::map<PortRef, std::size_t> leaf_io;
    for (std::size_t i = 0; i < tree->leaves.size(); ++i)
        leaf_io[tree->leaves[i]] = i;

    std::set<PortRef> in_front;
    for (const auto& group : front_groups)
        for (const PortRef& leaf : group) {
            if (leaf_io.find(leaf) == leaf_io.end())
                return err("regroup: requested leaf " + leaf.toString() +
                           " is not in the tree");
            in_front.insert(leaf);
        }
    std::vector<PortRef> rest;
    for (const PortRef& leaf : tree->leaves)
        if (in_front.count(leaf) == 0)
            rest.push_back(leaf);

    RewriteDef def;
    def.name = "fork-regroup";
    // lhs: the concrete tree.
    for (const std::string& fork : tree->forks)
        def.lhs.addNode(fork, "fork", g.findNode(fork)->attrs);
    for (const Edge& e : g.edges()) {
        bool src_in = std::find(tree->forks.begin(), tree->forks.end(),
                                e.src.inst) != tree->forks.end();
        bool dst_in = std::find(tree->forks.begin(), tree->forks.end(),
                                e.dst.inst) != tree->forks.end();
        if (src_in && dst_in)
            def.lhs.connect(e.src, e.dst);
    }
    def.lhs.bindInput(0, PortRef{tree->forks.front(), "in0"});
    for (std::size_t i = 0; i < tree->leaves.size(); ++i)
        def.lhs.bindOutput(i, tree->leaf_sources[i]);

    // rhs: chain of `rest` leaves ending in the group parent.
    int counter = 0;
    auto fresh = [&] { return "rf" + std::to_string(counter++); };

    // Build the group forks bottom-up as (name, outputs -> io index).
    struct Pending
    {
        std::string name;
    };
    // group fork for each front group (size 1 groups attach directly).
    std::vector<std::string> group_forks;
    std::vector<std::optional<std::size_t>> group_direct_io;
    for (const auto& group : front_groups) {
        if (group.size() == 1) {
            group_forks.push_back("");
            group_direct_io.push_back(leaf_io[group[0]]);
            continue;
        }
        // Right chain within the group.
        std::string name = fresh();
        def.rhs.addNode(name, "fork", {{"out", "2"}});
        std::string current = name;
        for (std::size_t i = 0; i + 1 < group.size(); ++i) {
            def.rhs.bindOutput(leaf_io[group[i]],
                               PortRef{current, "out0"});
            if (i + 2 == group.size()) {
                def.rhs.bindOutput(leaf_io[group[i + 1]],
                                   PortRef{current, "out1"});
            } else {
                std::string next = fresh();
                def.rhs.addNode(next, "fork", {{"out", "2"}});
                def.rhs.connect(current, "out1", next, "in0");
                current = next;
            }
        }
        group_forks.push_back(name);
        group_direct_io.push_back(std::nullopt);
    }

    // Parent pairing the (typically two) groups: a right chain.
    std::string parent = fresh();
    def.rhs.addNode(parent, "fork",
                    {{"out", std::to_string(front_groups.size())}});
    for (std::size_t i = 0; i < front_groups.size(); ++i) {
        std::string port = "out" + std::to_string(i);
        if (group_direct_io[i])
            def.rhs.bindOutput(*group_direct_io[i], PortRef{parent, port});
        else
            def.rhs.connect(parent, port, group_forks[i], "in0");
    }

    // Chain the rest above the parent.
    std::string top = parent;
    for (std::size_t i = rest.size(); i-- > 0;) {
        std::string name = fresh();
        def.rhs.addNode(name, "fork", {{"out", "2"}});
        def.rhs.bindOutput(leaf_io[rest[i]], PortRef{name, "out0"});
        def.rhs.connect(name, "out1", top, "in0");
        top = name;
    }
    def.rhs.bindInput(0, PortRef{top, "in0"});

    RewriteMatch match;
    for (const std::string& fork : tree->forks)
        match.binding[fork] = fork;
    return engine.applyAt(g, def, match)
        .withContext("fork-regroup");
}

/** Names used by the combining phase for one loop. */
struct LoopGroup
{
    PortRef cond_source;
    std::vector<LoopInfo> loops;
};

std::vector<LoopGroup>
groupLoops(const ExprHigh& g, const std::vector<LoopInfo>& loops)
{
    std::vector<LoopGroup> groups;
    for (const LoopInfo& loop : loops) {
        std::optional<PortRef> source =
            condSource(g, PortRef{loop.branch, "in1"});
        if (!source)
            continue;
        bool placed = false;
        for (LoopGroup& group : groups) {
            if (group.cond_source == *source) {
                group.loops.push_back(loop);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back(LoopGroup{*source, {loop}});
    }
    return groups;
}

std::vector<std::string>
forkSplitRuleNames()
{
    std::vector<std::string> names;
    for (int arity = 3; arity <= 8; ++arity)
        names.push_back("fork-split-" + std::to_string(arity));
    return names;
}

/** Phase 1 step: combine loops A and B of one group into one loop. */
Result<ExprHigh>
combineLoopPair(RewriteEngine& engine, const ExprHigh& graph,
                const LoopInfo& a, const LoopInfo& b,
                const PortRef& cond_source)
{
    // Normalize fork arities, then regroup the condition tree so the
    // two branches and the two inits get dedicated fork2s.
    Result<ExprHigh> g = engine.applyExhaustively(graph,
                                                  forkSplitRuleNames());
    if (!g.ok())
        return g;
    g = regroupCondTree(engine, g.value(), cond_source,
                        {{PortRef{a.branch, "in1"}, PortRef{b.branch, "in1"}},
                         {PortRef{a.init, "in0"}, PortRef{b.init, "in0"}}});
    if (!g.ok())
        return g;

    // combine-init at the init pair's fork.
    std::optional<PortRef> init_fork =
        g.value().driverOf(PortRef{a.init, "in0"});
    if (!init_fork)
        return err("combine: init fork vanished");
    RewriteMatch m;
    m.binding = {{"forkC", init_fork->inst},
                 {"initA", a.init},
                 {"initB", b.init}};
    g = engine.applyAt(g.value(), *engine.findRule("combine-init"), m);
    if (!g.ok())
        return g;

    // combine-mux at the fork now feeding both mux conditions.
    std::optional<PortRef> mux_fork =
        g.value().driverOf(PortRef{a.mux, "in0"});
    if (!mux_fork)
        return err("combine: mux condition fork vanished");
    m.binding = {{"forkC", mux_fork->inst},
                 {"muxA", a.mux},
                 {"muxB", b.mux}};
    m.captures.clear();
    g = engine.applyAt(g.value(), *engine.findRule("combine-mux"), m);
    if (!g.ok())
        return g;

    // combine-branch at the fork feeding both branch conditions.
    std::optional<PortRef> br_fork =
        g.value().driverOf(PortRef{a.branch, "in1"});
    if (!br_fork)
        return err("combine: branch condition fork vanished");
    m.binding = {{"forkC", br_fork->inst},
                 {"brA", a.branch},
                 {"brB", b.branch}};
    m.captures.clear();
    g = engine.applyAt(g.value(), *engine.findRule("combine-branch"), m);
    if (!g.ok())
        return g;

    // Cleanup (phase 2): dissolve split/join residue on the loopback.
    return engine.applyExhaustively(g.value(), {"split-join-elim"});
}

/** Phases 3-5 on a fully combined loop. */
Result<ExprHigh>
transformSingleLoop(RewriteEngine& engine, Environment& env,
                    const ExprHigh& graph, const LoopInfo& loop,
                    const PipelineOptions& options,
                    LoopTransformReport& report,
                    std::vector<PipelineSnapshot>* snapshots)
{
    auto snapshot = [&](const char* phase, const ExprHigh& g) {
        if (snapshots != nullptr)
            snapshots->push_back(PipelineSnapshot{phase, g});
    };
    // Phase 3: pure generation (includes the side-effect guard).
    Result<PureGenResult> pure = generatePureBody(graph, loop, env,
                                                  engine);
    if (!pure.ok())
        return pure.error();
    ExprHigh g = pure.value().graph;
    report.body_fn = pure.value().fn_name;
    report.body_latency = pure.value().latency;
    report.term_size_before = pure.value().term_size_before;
    report.term_size_after = pure.value().term_size_after;
    snapshot("pure-generation", g);

    // The condition fork must route out0 -> branch, out1 -> init.
    std::optional<PortRef> cond_fork_out =
        g.driverOf(PortRef{loop.branch, "in1"});
    if (!cond_fork_out)
        return err("normalized loop lost its condition");
    if (cond_fork_out->port != "out0") {
        RewriteMatch swap;
        swap.binding = {{"f", cond_fork_out->inst}};
        Result<ExprHigh> swapped =
            engine.applyAt(g, *engine.findRule("fork-swap"), swap);
        if (!swapped.ok())
            return swapped;
        g = swapped.take();
    }

    // Phase 4: the main out-of-order rewrite at an explicit match.
    std::optional<PortRef> fork_ref = g.driverOf(PortRef{loop.branch,
                                                         "in1"});
    std::string pure_node;
    std::string split_node;
    for (const NodeDecl& node : g.nodes())
        if (node.type == "pure" &&
            attrStr(node.attrs, "fn", "") == report.body_fn)
            pure_node = node.name;
    if (pure_node.empty() || !fork_ref)
        return err("normalized loop shape incomplete");
    auto split_consumers = g.consumersOf(PortRef{pure_node, "out0"});
    if (split_consumers.size() != 1)
        return err("pure body output is not split");
    split_node = split_consumers[0].inst;

    RewriteDef ooo = oooLoopRewrite();
    RewriteMatch match;
    match.binding = {{"mux", loop.mux},       {"init", loop.init},
                     {"body", pure_node},     {"split", split_node},
                     {"forkC", fork_ref->inst}, {"branch", loop.branch}};
    match.captures = {{"$f", report.body_fn},
                      {"$tags", std::to_string(options.num_tags)}};
    Result<ExprHigh> rewritten = engine.applyAt(g, ooo, match);
    if (!rewritten.ok())
        return rewritten;
    g = rewritten.take();
    snapshot("ooo-rewrite", g);

    // Restore the pure annotations the template match dropped.
    std::string new_pure;
    for (const NodeDecl& node : g.nodes()) {
        if (node.type == "pure" &&
            attrStr(node.attrs, "fn", "") == report.body_fn) {
            new_pure = node.name;
            NodeDecl* mutable_node = g.findNode(node.name);
            mutable_node->attrs["latency"] =
                std::to_string(report.body_latency);
            for (const NodeDecl& rn : pure.value().region_def.rhs.nodes())
                if (rn.type == "pure")
                    mutable_node->attrs["absorbed"] =
                        attrStr(rn.attrs, "absorbed", "");
        }
    }

    // Phase 5: replay pure generation backwards so the final circuit
    // carries the original operators inside the tagged region.
    if (options.reexpand && !new_pure.empty()) {
        auto consumers = g.consumersOf(PortRef{new_pure, "out0"});
        if (consumers.size() == 1) {
            RewriteDef reverse;
            reverse.name = "pure-expand";
            reverse.lhs.addNode("purebody", "pure",
                                g.findNode(new_pure)->attrs);
            reverse.lhs.addNode("puresplit", "split");
            reverse.lhs.connect("purebody", "out0", "puresplit", "in0");
            reverse.lhs.bindInput(0, PortRef{"purebody", "in0"});
            reverse.lhs.bindOutput(0, PortRef{"puresplit", "out0"});
            reverse.lhs.bindOutput(1, PortRef{"puresplit", "out1"});
            reverse.rhs = pure.value().region_def.lhs;

            RewriteMatch expand;
            expand.binding = {{"purebody", new_pure},
                              {"puresplit", consumers[0].inst}};
            Result<ExprHigh> expanded = engine.applyAt(g, reverse,
                                                       expand);
            if (!expanded.ok())
                return expanded.error().context("phase 5 re-expansion");
            g = expanded.take();
            snapshot("re-expansion", g);
        }
    }
    report.transformed = true;
    return g;
}

}  // namespace

Result<PipelineResult>
runOooPipeline(const ExprHigh& graph, Environment& env,
               const PipelineOptions& options)
{
    RewriteEngine engine;
    if (options.post_check)
        engine.setPostCheck(options.post_check);
    for (RewriteDef& def : catalog::allRewrites()) {
        Result<bool> added = engine.addRule(std::move(def));
        if (!added.ok())
            return added.error().context("pipeline setup");
    }

    PipelineResult result;
    result.graph = graph;
    std::vector<PipelineSnapshot>* snaps =
        options.keep_snapshots ? &result.snapshots : nullptr;
    if (snaps != nullptr)
        snaps->push_back(PipelineSnapshot{"input", graph});

    // Phase 0: the side-effect guard (section 6.2). Loop groups whose
    // bodies store to memory are refused *before* any rewriting, so
    // the circuit stays exactly DF-IO there (as GRAPHITI does on
    // bicg).
    std::set<std::string> attempted;
    {
        std::vector<LoopInfo> loops = findLoops(result.graph);
        for (const LoopGroup& group : groupLoops(result.graph, loops)) {
            if (!groupHasSideEffects(result.graph, group.loops))
                continue;
            LoopTransformReport report;
            report.header_mux = group.loops[0].mux;
            report.refusal =
                "loop body performs stores; out-of-order execution "
                "would reorder observable memory effects (refusing, as "
                "on bicg)";
            result.loops.push_back(std::move(report));
            for (const LoopInfo& loop : group.loops)
                attempted.insert(loop.mux);
        }
    }

    // Phase 1+2: combine multi-variable loops pairwise.
    for (std::size_t guard = 0; guard < 64; ++guard) {
        std::vector<LoopInfo> loops = findLoops(result.graph);
        std::vector<LoopGroup> groups = groupLoops(result.graph, loops);
        const LoopGroup* multi = nullptr;
        for (const LoopGroup& group : groups) {
            bool refused = false;
            for (const LoopInfo& loop : group.loops)
                refused |= attempted.count(loop.mux) > 0;
            if (group.loops.size() > 1 && !refused)
                multi = &group;
        }
        if (multi == nullptr)
            break;
        Result<ExprHigh> combined = combineLoopPair(
            engine, result.graph, multi->loops[0], multi->loops[1],
            multi->cond_source);
        if (!combined.ok())
            return combined.error().context("loop combining");
        result.graph = combined.take();
        if (snaps != nullptr)
            snaps->push_back(
                PipelineSnapshot{"combine", result.graph});
    }

    // Phases 3-5 per remaining loop, re-discovering loop structure
    // after every transformation (the graph changes under us).
    for (std::size_t guard = 0; guard < 64; ++guard) {
        std::vector<LoopInfo> loops = findLoops(result.graph);
        const LoopInfo* next = nullptr;
        for (const LoopInfo& loop : loops)
            if (attempted.count(loop.mux) == 0) {
                next = &loop;
                break;
            }
        if (next == nullptr)
            break;
        attempted.insert(next->mux);
        LoopTransformReport report;
        report.header_mux = next->mux;
        Result<ExprHigh> transformed = transformSingleLoop(
            engine, env, result.graph, *next, options, report, snaps);
        if (transformed.ok()) {
            result.graph = transformed.take();
        } else {
            report.transformed = false;
            report.refusal = transformed.error().message;
        }
        result.loops.push_back(std::move(report));
    }

    result.stats = engine.stats();
    result.rollbacks = engine.rollbacks();
    return result;
}

}  // namespace graphiti
