#include "rewrite/loop_rewrite.hpp"

#include <deque>
#include <set>

#include "graph/signatures.hpp"

namespace graphiti {

RewriteDef
oooLoopRewrite()
{
    RewriteDef def;
    def.name = "ooo-loop";
    def.verified = true;

    // lhs: the normalized sequential loop (figure 3d left).
    def.lhs.addNode("mux", "mux");
    def.lhs.addNode("init", "init", {{"value", "false"}});
    def.lhs.addNode("body", "pure", {{"fn", "$f"}});
    def.lhs.addNode("split", "split");
    def.lhs.addNode("forkC", "fork", {{"out", "2"}});
    def.lhs.addNode("branch", "branch");
    def.lhs.connect("init", "out0", "mux", "in0");
    def.lhs.connect("mux", "out0", "body", "in0");
    def.lhs.connect("body", "out0", "split", "in0");
    def.lhs.connect("split", "out0", "branch", "in0");
    def.lhs.connect("split", "out1", "forkC", "in0");
    def.lhs.connect("forkC", "out0", "branch", "in1");
    def.lhs.connect("forkC", "out1", "init", "in0");
    def.lhs.connect("branch", "out0", "mux", "in1");
    def.lhs.bindInput(0, PortRef{"mux", "in2"});
    def.lhs.bindOutput(0, PortRef{"branch", "out1"});

    // rhs: the tagged out-of-order loop (figure 3d right).
    def.rhs.addNode("tagger", "tagger", {{"tags", "$tags"}});
    def.rhs.addNode("merge", "merge");
    def.rhs.addNode("body", "pure", {{"fn", "$f"}});
    def.rhs.addNode("split", "split");
    def.rhs.addNode("branch", "branch");
    def.rhs.connect("tagger", "out0", "merge", "in1");
    def.rhs.connect("branch", "out0", "merge", "in0");
    def.rhs.connect("merge", "out0", "body", "in0");
    def.rhs.connect("body", "out0", "split", "in0");
    def.rhs.connect("split", "out0", "branch", "in0");
    def.rhs.connect("split", "out1", "branch", "in1");
    def.rhs.connect("branch", "out1", "tagger", "in1");
    def.rhs.bindInput(0, PortRef{"tagger", "in0"});
    def.rhs.bindOutput(0, PortRef{"tagger", "out1"});
    return def;
}

namespace {

/** Forward reachable node set starting from the consumers of @p from,
 * stopping at (not entering) nodes in @p stop. */
std::set<std::string>
forwardReach(const ExprHigh& g, const PortRef& from,
             const std::set<std::string>& stop)
{
    std::set<std::string> seen;
    std::deque<std::string> frontier;
    for (const PortRef& consumer : g.consumersOf(from)) {
        if (stop.count(consumer.inst) == 0 &&
            seen.insert(consumer.inst).second)
            frontier.push_back(consumer.inst);
    }
    while (!frontier.empty()) {
        std::string node = frontier.front();
        frontier.pop_front();
        for (const Edge& e : g.edges()) {
            if (e.src.inst != node)
                continue;
            if (stop.count(e.dst.inst) > 0)
                continue;
            if (seen.insert(e.dst.inst).second)
                frontier.push_back(e.dst.inst);
        }
    }
    return seen;
}

}  // namespace

bool
groupHasSideEffects(const ExprHigh& graph,
                    const std::vector<LoopInfo>& group)
{
    std::set<std::string> stop;
    for (const LoopInfo& loop : group) {
        stop.insert(loop.mux);
        stop.insert(loop.branch);
        stop.insert(loop.init);
    }
    for (const LoopInfo& loop : group) {
        for (const std::string& node :
             forwardReach(graph, PortRef{loop.mux, "out0"}, stop)) {
            const NodeDecl* decl = graph.findNode(node);
            if (decl != nullptr && typeHasSideEffects(decl->type))
                return true;
        }
    }
    return false;
}

std::vector<LoopInfo>
findLoops(const ExprHigh& graph)
{
    std::vector<LoopInfo> loops;
    for (const NodeDecl& mux : graph.nodes()) {
        if (mux.type != "mux")
            continue;
        // mux.in1 (the true side) must be fed by a branch's out0.
        std::optional<PortRef> loopback =
            graph.driverOf(PortRef{mux.name, "in1"});
        if (!loopback || loopback->port != "out0")
            continue;
        const NodeDecl* branch = graph.findNode(loopback->inst);
        if (branch == nullptr || branch->type != "branch")
            continue;
        // mux.in0 (the condition) must trace back to an init,
        // possibly through a fork.
        std::optional<PortRef> cond =
            graph.driverOf(PortRef{mux.name, "in0"});
        while (cond) {
            const NodeDecl* node = graph.findNode(cond->inst);
            if (node == nullptr)
                break;
            if (node->type == "init")
                break;
            if (node->type == "fork") {
                cond = graph.driverOf(PortRef{node->name, "in0"});
                continue;
            }
            cond.reset();
        }
        if (!cond)
            continue;

        LoopInfo loop;
        loop.mux = mux.name;
        loop.branch = branch->name;
        loop.init = cond->inst;

        // The body is everything the loop header reaches before the
        // loop's own control nodes — including dead-end computations
        // that feed only sinks (they execute every iteration).
        std::set<std::string> stop = {loop.mux, loop.branch, loop.init};
        std::set<std::string> fwd =
            forwardReach(graph, PortRef{mux.name, "out0"}, stop);
        for (const NodeDecl& node : graph.nodes()) {
            if (fwd.count(node.name) > 0) {
                loop.body.push_back(node.name);
                loop.has_side_effects |= typeHasSideEffects(node.type);
            }
        }
        loops.push_back(std::move(loop));
    }
    return loops;
}

}  // namespace graphiti
