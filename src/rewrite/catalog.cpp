#include "rewrite/catalog.hpp"

namespace graphiti::catalog {

RewriteDef
combineMux()
{
    RewriteDef def;
    def.name = "combine-mux";
    def.verified = true;

    // lhs: forkC duplicates one condition to two muxes.
    def.lhs.addNode("forkC", "fork", {{"out", "2"}});
    def.lhs.addNode("muxA", "mux");
    def.lhs.addNode("muxB", "mux");
    def.lhs.connect("forkC", "out0", "muxA", "in0");
    def.lhs.connect("forkC", "out1", "muxB", "in0");
    def.lhs.bindInput(0, PortRef{"forkC", "in0"});  // condition
    def.lhs.bindInput(1, PortRef{"muxA", "in1"});   // A true
    def.lhs.bindInput(2, PortRef{"muxA", "in2"});   // A false
    def.lhs.bindInput(3, PortRef{"muxB", "in1"});   // B true
    def.lhs.bindInput(4, PortRef{"muxB", "in2"});   // B false
    def.lhs.bindOutput(0, PortRef{"muxA", "out0"});
    def.lhs.bindOutput(1, PortRef{"muxB", "out0"});

    // rhs: join the data pairs, select once, split the result.
    def.rhs.addNode("joinT", "join", {{"in", "2"}});
    def.rhs.addNode("joinF", "join", {{"in", "2"}});
    def.rhs.addNode("mux", "mux");
    def.rhs.addNode("split", "split");
    def.rhs.connect("joinT", "out0", "mux", "in1");
    def.rhs.connect("joinF", "out0", "mux", "in2");
    def.rhs.connect("mux", "out0", "split", "in0");
    def.rhs.bindInput(0, PortRef{"mux", "in0"});
    def.rhs.bindInput(1, PortRef{"joinT", "in0"});
    def.rhs.bindInput(2, PortRef{"joinF", "in0"});
    def.rhs.bindInput(3, PortRef{"joinT", "in1"});
    def.rhs.bindInput(4, PortRef{"joinF", "in1"});
    def.rhs.bindOutput(0, PortRef{"split", "out0"});
    def.rhs.bindOutput(1, PortRef{"split", "out1"});
    return def;
}

RewriteDef
combineBranch()
{
    RewriteDef def;
    def.name = "combine-branch";
    def.verified = true;

    def.lhs.addNode("forkC", "fork", {{"out", "2"}});
    def.lhs.addNode("brA", "branch");
    def.lhs.addNode("brB", "branch");
    def.lhs.connect("forkC", "out0", "brA", "in1");
    def.lhs.connect("forkC", "out1", "brB", "in1");
    def.lhs.bindInput(0, PortRef{"forkC", "in0"});  // condition
    def.lhs.bindInput(1, PortRef{"brA", "in0"});    // A data
    def.lhs.bindInput(2, PortRef{"brB", "in0"});    // B data
    def.lhs.bindOutput(0, PortRef{"brA", "out0"});  // A true
    def.lhs.bindOutput(1, PortRef{"brA", "out1"});  // A false
    def.lhs.bindOutput(2, PortRef{"brB", "out0"});  // B true
    def.lhs.bindOutput(3, PortRef{"brB", "out1"});  // B false

    def.rhs.addNode("join", "join", {{"in", "2"}});
    def.rhs.addNode("branch", "branch");
    def.rhs.addNode("splitT", "split");
    def.rhs.addNode("splitF", "split");
    def.rhs.connect("join", "out0", "branch", "in0");
    def.rhs.connect("branch", "out0", "splitT", "in0");
    def.rhs.connect("branch", "out1", "splitF", "in0");
    def.rhs.bindInput(0, PortRef{"branch", "in1"});
    def.rhs.bindInput(1, PortRef{"join", "in0"});
    def.rhs.bindInput(2, PortRef{"join", "in1"});
    def.rhs.bindOutput(0, PortRef{"splitT", "out0"});
    def.rhs.bindOutput(1, PortRef{"splitF", "out0"});
    def.rhs.bindOutput(2, PortRef{"splitT", "out1"});
    def.rhs.bindOutput(3, PortRef{"splitF", "out1"});
    return def;
}

RewriteDef
combineInit()
{
    RewriteDef def;
    def.name = "combine-init";
    def.verified = true;

    def.lhs.addNode("forkC", "fork", {{"out", "2"}});
    def.lhs.addNode("initA", "init", {{"value", "$v"}});
    def.lhs.addNode("initB", "init", {{"value", "$v"}});
    def.lhs.connect("forkC", "out0", "initA", "in0");
    def.lhs.connect("forkC", "out1", "initB", "in0");
    def.lhs.bindInput(0, PortRef{"forkC", "in0"});
    def.lhs.bindOutput(0, PortRef{"initA", "out0"});
    def.lhs.bindOutput(1, PortRef{"initB", "out0"});

    def.rhs.addNode("init", "init", {{"value", "$v"}});
    def.rhs.addNode("fork", "fork", {{"out", "2"}});
    def.rhs.connect("init", "out0", "fork", "in0");
    def.rhs.bindInput(0, PortRef{"init", "in0"});
    def.rhs.bindOutput(0, PortRef{"fork", "out0"});
    def.rhs.bindOutput(1, PortRef{"fork", "out1"});
    return def;
}

RewriteDef
splitJoinElim()
{
    RewriteDef def;
    def.name = "split-join-elim";
    def.lhs.addNode("split", "split");
    def.lhs.addNode("join", "join", {{"in", "2"}});
    def.lhs.connect("split", "out0", "join", "in0");
    def.lhs.connect("split", "out1", "join", "in1");
    def.lhs.bindInput(0, PortRef{"split", "in0"});
    def.lhs.bindOutput(0, PortRef{"join", "out0"});
    def.passthrough = {{0, 0}};
    return def;
}

RewriteDef
joinSplitElim()
{
    RewriteDef def;
    def.name = "join-split-elim";
    def.lhs.addNode("join", "join", {{"in", "2"}});
    def.lhs.addNode("split", "split");
    def.lhs.connect("join", "out0", "split", "in0");
    def.lhs.bindInput(0, PortRef{"join", "in0"});
    def.lhs.bindInput(1, PortRef{"join", "in1"});
    def.lhs.bindOutput(0, PortRef{"split", "out0"});
    def.lhs.bindOutput(1, PortRef{"split", "out1"});
    def.passthrough = {{0, 0}, {1, 1}};
    return def;
}

RewriteDef
forkSinkElim0()
{
    RewriteDef def;
    def.name = "fork-sink-elim0";
    def.lhs.addNode("fork", "fork", {{"out", "2"}});
    def.lhs.addNode("sink", "sink");
    def.lhs.connect("fork", "out0", "sink", "in0");
    def.lhs.bindInput(0, PortRef{"fork", "in0"});
    def.lhs.bindOutput(0, PortRef{"fork", "out1"});
    def.passthrough = {{0, 0}};
    return def;
}

RewriteDef
forkSinkElim1()
{
    RewriteDef def;
    def.name = "fork-sink-elim1";
    def.lhs.addNode("fork", "fork", {{"out", "2"}});
    def.lhs.addNode("sink", "sink");
    def.lhs.connect("fork", "out1", "sink", "in0");
    def.lhs.bindInput(0, PortRef{"fork", "in0"});
    def.lhs.bindOutput(0, PortRef{"fork", "out0"});
    def.passthrough = {{0, 0}};
    return def;
}

RewriteDef
bufferElim()
{
    RewriteDef def;
    def.name = "buffer-elim";
    def.lhs.addNode("buffer", "buffer");
    def.lhs.bindInput(0, PortRef{"buffer", "in0"});
    def.lhs.bindOutput(0, PortRef{"buffer", "out0"});
    def.passthrough = {{0, 0}};
    return def;
}

RewriteDef
forkAssocLeft()
{
    RewriteDef def;
    def.name = "fork-assoc-left";
    def.verified = true;

    // lhs: f1 -> (a, f2 -> (b, c))
    def.lhs.addNode("f1", "fork", {{"out", "2"}});
    def.lhs.addNode("f2", "fork", {{"out", "2"}});
    def.lhs.connect("f1", "out1", "f2", "in0");
    def.lhs.bindInput(0, PortRef{"f1", "in0"});
    def.lhs.bindOutput(0, PortRef{"f1", "out0"});  // a
    def.lhs.bindOutput(1, PortRef{"f2", "out0"});  // b
    def.lhs.bindOutput(2, PortRef{"f2", "out1"});  // c

    // rhs: g1 -> (g2 -> (a, b), c)
    def.rhs.addNode("g1", "fork", {{"out", "2"}});
    def.rhs.addNode("g2", "fork", {{"out", "2"}});
    def.rhs.connect("g1", "out0", "g2", "in0");
    def.rhs.bindInput(0, PortRef{"g1", "in0"});
    def.rhs.bindOutput(0, PortRef{"g2", "out0"});  // a
    def.rhs.bindOutput(1, PortRef{"g2", "out1"});  // b
    def.rhs.bindOutput(2, PortRef{"g1", "out1"});  // c
    return def;
}

RewriteDef
forkAssocRight()
{
    RewriteDef left = forkAssocLeft();
    RewriteDef def;
    def.name = "fork-assoc-right";
    def.verified = true;
    def.lhs = left.rhs;
    def.rhs = left.lhs;
    return def;
}

RewriteDef
forkSwap()
{
    RewriteDef def;
    def.name = "fork-swap";
    def.verified = true;
    def.lhs.addNode("f", "fork", {{"out", "2"}});
    def.lhs.bindInput(0, PortRef{"f", "in0"});
    def.lhs.bindOutput(0, PortRef{"f", "out0"});
    def.lhs.bindOutput(1, PortRef{"f", "out1"});
    def.rhs.addNode("g", "fork", {{"out", "2"}});
    def.rhs.bindInput(0, PortRef{"g", "in0"});
    def.rhs.bindOutput(0, PortRef{"g", "out1"});
    def.rhs.bindOutput(1, PortRef{"g", "out0"});
    return def;
}

RewriteDef
forkSplit(int arity)
{
    RewriteDef def;
    def.name = "fork-split-" + std::to_string(arity);
    def.verified = true;

    def.lhs.addNode("f", "fork", {{"out", std::to_string(arity)}});
    def.lhs.bindInput(0, PortRef{"f", "in0"});
    for (int i = 0; i < arity; ++i)
        def.lhs.bindOutput(i, PortRef{"f", "out" + std::to_string(i)});

    def.rhs.addNode("head", "fork", {{"out", "2"}});
    def.rhs.addNode("tail", "fork",
                    {{"out", std::to_string(arity - 1)}});
    def.rhs.connect("head", "out1", "tail", "in0");
    def.rhs.bindInput(0, PortRef{"head", "in0"});
    def.rhs.bindOutput(0, PortRef{"head", "out0"});
    for (int i = 1; i < arity; ++i)
        def.rhs.bindOutput(i,
                           PortRef{"tail", "out" + std::to_string(i - 1)});
    return def;
}

RewriteDef
forkToPureDup()
{
    RewriteDef def;
    def.name = "fork-to-pure-dup";
    def.verified = true;
    def.lhs.addNode("f", "fork", {{"out", "2"}});
    def.lhs.bindInput(0, PortRef{"f", "in0"});
    def.lhs.bindOutput(0, PortRef{"f", "out0"});
    def.lhs.bindOutput(1, PortRef{"f", "out1"});
    def.rhs.addNode("dup", "pure", {{"fn", "dup"}});
    def.rhs.addNode("split", "split");
    def.rhs.connect("dup", "out0", "split", "in0");
    def.rhs.bindInput(0, PortRef{"dup", "in0"});
    def.rhs.bindOutput(0, PortRef{"split", "out0"});
    def.rhs.bindOutput(1, PortRef{"split", "out1"});
    return def;
}

RewriteDef
splitSink0()
{
    RewriteDef def;
    def.name = "split-sink0";
    def.verified = true;
    def.lhs.addNode("split", "split");
    def.lhs.addNode("sink", "sink");
    def.lhs.connect("split", "out0", "sink", "in0");
    def.lhs.bindInput(0, PortRef{"split", "in0"});
    def.lhs.bindOutput(0, PortRef{"split", "out1"});
    def.rhs.addNode("snd", "pure", {{"fn", "snd"}});
    def.rhs.bindInput(0, PortRef{"snd", "in0"});
    def.rhs.bindOutput(0, PortRef{"snd", "out0"});
    return def;
}

RewriteDef
splitSink1()
{
    RewriteDef def;
    def.name = "split-sink1";
    def.verified = true;
    def.lhs.addNode("split", "split");
    def.lhs.addNode("sink", "sink");
    def.lhs.connect("split", "out1", "sink", "in0");
    def.lhs.bindInput(0, PortRef{"split", "in0"});
    def.lhs.bindOutput(0, PortRef{"split", "out0"});
    def.rhs.addNode("fst", "pure", {{"fn", "fst"}});
    def.rhs.bindInput(0, PortRef{"fst", "in0"});
    def.rhs.bindOutput(0, PortRef{"fst", "out0"});
    return def;
}

RewriteDef
mergeComm()
{
    RewriteDef def;
    def.name = "merge-comm";
    def.verified = true;
    def.lhs.addNode("m", "merge");
    def.lhs.bindInput(0, PortRef{"m", "in0"});
    def.lhs.bindInput(1, PortRef{"m", "in1"});
    def.lhs.bindOutput(0, PortRef{"m", "out0"});
    def.rhs.addNode("n", "merge");
    def.rhs.bindInput(0, PortRef{"n", "in1"});
    def.rhs.bindInput(1, PortRef{"n", "in0"});
    def.rhs.bindOutput(0, PortRef{"n", "out0"});
    return def;
}

RewriteDef
joinFuse()
{
    RewriteDef def;
    def.name = "join-fuse";
    def.verified = true;
    // lhs: join2(a, join2(b, c)) — right nesting matches join3.
    def.lhs.addNode("inner", "join", {{"in", "2"}});
    def.lhs.addNode("outer", "join", {{"in", "2"}});
    def.lhs.connect("inner", "out0", "outer", "in1");
    def.lhs.bindInput(0, PortRef{"outer", "in0"});
    def.lhs.bindInput(1, PortRef{"inner", "in0"});
    def.lhs.bindInput(2, PortRef{"inner", "in1"});
    def.lhs.bindOutput(0, PortRef{"outer", "out0"});
    def.rhs.addNode("join3", "join", {{"in", "3"}});
    def.rhs.bindInput(0, PortRef{"join3", "in0"});
    def.rhs.bindInput(1, PortRef{"join3", "in1"});
    def.rhs.bindInput(2, PortRef{"join3", "in2"});
    def.rhs.bindOutput(0, PortRef{"join3", "out0"});
    return def;
}

RewriteDef
joinUnfuse()
{
    RewriteDef fuse = joinFuse();
    RewriteDef def;
    def.name = "join-unfuse";
    def.verified = true;
    def.lhs = fuse.rhs;
    def.rhs = fuse.lhs;
    return def;
}

RewriteDef
bufferDeepen()
{
    RewriteDef def;
    def.name = "buffer-deepen";
    def.verified = true;
    def.lhs.addNode("b", "buffer");
    def.lhs.bindInput(0, PortRef{"b", "in0"});
    def.lhs.bindOutput(0, PortRef{"b", "out0"});
    def.rhs.addNode("b1", "buffer");
    def.rhs.addNode("b2", "buffer");
    def.rhs.connect("b1", "out0", "b2", "in0");
    def.rhs.bindInput(0, PortRef{"b1", "in0"});
    def.rhs.bindOutput(0, PortRef{"b2", "out0"});
    return def;
}

std::vector<RewriteDef>
allRewrites()
{
    std::vector<RewriteDef> out = {
        combineMux(),     combineBranch(),  combineInit(),
        splitJoinElim(),  joinSplitElim(),  forkSinkElim0(),
        forkSinkElim1(),  bufferElim(),     forkAssocLeft(),
        forkAssocRight(), forkSwap(),       forkToPureDup(),
        splitSink0(),     splitSink1(),     mergeComm(),
        joinFuse(),       joinUnfuse(),     bufferDeepen(),
    };
    for (int arity = 3; arity <= 8; ++arity)
        out.push_back(forkSplit(arity));
    return out;
}

}  // namespace graphiti::catalog
