#include "rewrite/engine.hpp"

namespace graphiti {

Result<bool>
RewriteEngine::addRule(RewriteDef def)
{
    Result<bool> valid = def.validate();
    if (!valid.ok())
        return valid;
    if (rules_.count(def.name) > 0)
        return err("duplicate rule name: " + def.name);
    rules_.emplace(def.name, std::move(def));
    return true;
}

const RewriteDef*
RewriteEngine::findRule(const std::string& name) const
{
    auto it = rules_.find(name);
    return it == rules_.end() ? nullptr : &it->second;
}

Result<ExprHigh>
RewriteEngine::commit(Result<ExprHigh> candidate, const std::string& rule)
{
    if (!candidate.ok())
        return candidate;
    if (post_check_) {
        std::optional<std::string> veto = post_check_(candidate.value());
        if (veto) {
            rollbacks_.push_back(RewriteRollback{rule, *veto});
            GRAPHITI_OBS_COUNT("rewrite.rollbacks", 1);
            return err(rule + ": rolled back (post-check): " + *veto);
        }
    }
    stats_.record(rule);
    return candidate;
}

Result<ExprHigh>
RewriteEngine::applyOnce(const ExprHigh& graph, const std::string& rule)
{
    const RewriteDef* def = findRule(rule);
    if (def == nullptr)
        return err("unknown rule: " + rule);
    GRAPHITI_OBS_COUNT("rewrite.match_attempts", 1);
    std::optional<RewriteMatch> match = matchRewriteOnce(graph, *def);
    if (!match)
        return err(rule + ": no match");
    return commit(applyRewrite(graph, *def, *match), rule);
}

Result<ExprHigh>
RewriteEngine::applyAt(const ExprHigh& graph, const RewriteDef& def,
                       const RewriteMatch& match)
{
    return commit(applyRewrite(graph, def, match), def.name);
}

Result<ExprHigh>
RewriteEngine::applyExhaustively(const ExprHigh& graph,
                                 const std::vector<std::string>& rules,
                                 std::size_t max_applications)
{
    GRAPHITI_OBS_TIMER(obs_timer, "rewrite.exhaustive_seconds");
    ExprHigh current = graph;
    for (std::size_t applied = 0; applied < max_applications;) {
        bool progressed = false;
        for (const std::string& rule : rules) {
            const RewriteDef* def = findRule(rule);
            if (def == nullptr)
                return err("unknown rule: " + rule);
            GRAPHITI_OBS_COUNT("rewrite.match_attempts", 1);
            // A match can be inapplicable (e.g. a wire rewrite whose
            // fused wire would connect io to io) or vetoed by the
            // post-check; try the next one.
            for (const RewriteMatch& match : matchRewrite(current, *def)) {
                Result<ExprHigh> next = commit(
                    applyRewrite(current, *def, match), rule);
                if (!next.ok())
                    continue;
                current = next.take();
                ++applied;
                progressed = true;
                break;
            }
            if (progressed)
                break;
        }
        if (!progressed)
            return current;
    }
    return err("applyExhaustively: exceeded max applications");
}

}  // namespace graphiti
