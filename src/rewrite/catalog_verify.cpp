#include "rewrite/catalog_verify.hpp"

#include "rewrite/catalog.hpp"

namespace graphiti {

namespace {

/** Canonical boundary tokens per rule (types per the lhs ports). */
std::vector<Token>
tokensFor(const RewriteDef& def)
{
    if (def.name == "split-sink0" || def.name == "split-sink1")
        return {Token(Value::tuple(Value(1), Value(2))),
                Token(Value::tuple(Value(3), Value(4)))};
    if (def.name == "combine-mux" || def.name == "combine-branch" ||
        def.name == "combine-init")
        return {Token(Value(true)), Token(Value(1))};
    return {Token(Value(1)), Token(Value(2))};
}

/** Default values for capture variables left open by the template. */
std::map<std::string, std::string>
defaultCaptures(const RewriteDef& def)
{
    std::map<std::string, std::string> captures;
    auto scan = [&](const ExprHigh& g) {
        for (const NodeDecl& node : g.nodes())
            for (const auto& [key, value] : node.attrs)
                if (!value.empty() && value[0] == '$')
                    captures.emplace(value, key == "value" ? "false"
                                                           : "2");
    };
    scan(def.lhs);
    scan(def.rhs);
    return captures;
}

}  // namespace

Result<CatalogVerification>
verifyCatalog(const ExplorationLimits& limits)
{
    CatalogVerification out;
    for (const RewriteDef& def : catalog::allRewrites()) {
        if (!def.verified || def.rhs.numNodes() == 0)
            continue;
        RewriteDef concrete =
            instantiateCaptures(def, defaultCaptures(def));
        Environment env(3);
        Result<RefinementReport> report =
            verifyRewrite(concrete, env, tokensFor(def), limits);
        if (!report.ok())
            return report.error().context("verifyCatalog: " + def.name);
        out.results[def.name] = report.value().refines;
        if (!report.value().refines && out.all_ok) {
            out.all_ok = false;
            out.first_failure =
                def.name + ": " + report.value().counterexample;
        }
    }
    return out;
}

}  // namespace graphiti
