#ifndef GRAPHITI_REWRITE_REWRITE_HPP
#define GRAPHITI_REWRITE_REWRITE_HPP

/**
 * @file
 * Dataflow graph rewrites (section 3) and the verified rewriting
 * function that applies them (section 4.2 / theorem 4.6).
 *
 * A rewrite is a pair of graphs: a left-hand side *pattern* and a
 * right-hand side *template*. Both are ExprHigh fragments whose
 * numbered I/O bindings mark the boundary ports; lhs and rhs must
 * expose the same boundary indices so the replacement reconnects
 * seamlessly. Pattern node attributes constrain the match; an
 * attribute value "$x" captures the concrete value, and "$x" in an rhs
 * attribute substitutes it.
 *
 * Application is the paper's mechanism made concrete:
 *  1. the matcher finds an embedding of the lhs in the target graph;
 *  2. the target is lowered to ExprLow with the matched nodes first,
 *     isolating them as a literal sub-expression (section 4.2's
 *     base-motion step);
 *  3. a concrete rhs sub-expression is built reusing the boundary's
 *     graph-level port names;
 *  4. ExprLow::substitute replaces lhs by rhs and the result is
 *     lifted back to ExprHigh.
 *
 * Theorem 4.6 then reduces the correctness of the whole application
 * to the refinement obligation rhs ⊑ lhs, which verifyRewrite()
 * discharges with the refinement checker on a finite instantiation.
 */

#include <optional>
#include <string>
#include <vector>

#include "graph/expr_high.hpp"
#include "graph/expr_low.hpp"
#include "refine/refinement.hpp"
#include "support/result.hpp"

namespace graphiti {

/** A rewrite definition: lhs pattern, rhs template, metadata. */
struct RewriteDef
{
    std::string name;
    ExprHigh lhs;
    ExprHigh rhs;
    /**
     * Whether the rewrite's refinement obligation is discharged by the
     * checker (mirrors the paper's verified/unverified split of the
     * catalog).
     */
    bool verified = false;

    /**
     * Wire rewrites: when the rhs has no nodes, each (input io,
     * output io) pair here fuses the boundary driver directly onto
     * the boundary consumers. These bypass the ExprLow substitution
     * (a bare wire has no component denotation) and stay unverified,
     * like the paper's minor rewrites.
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> passthrough;

    /** Structural sanity checks (port coverage, boundary parity). */
    Result<bool> validate() const;
};

/** One embedding of a pattern into a concrete graph. */
struct RewriteMatch
{
    /** pattern instance name -> concrete instance name. */
    std::map<std::string, std::string> binding;
    /** capture variable ("$x") -> concrete attribute value. */
    std::map<std::string, std::string> captures;

    /** Concrete node names in lhs pattern order. */
    std::vector<std::string> matchedNodes(const RewriteDef& def) const;
};

/**
 * Find all embeddings of @p def.lhs in @p graph (in deterministic
 * order). Boundary ports may attach to anything outside the match;
 * internal pattern edges must match exactly and matched nodes must
 * have no unaccounted internal connections.
 */
std::vector<RewriteMatch> matchRewrite(const ExprHigh& graph,
                                       const RewriteDef& def);

/** First match, if any. */
std::optional<RewriteMatch> matchRewriteOnce(const ExprHigh& graph,
                                             const RewriteDef& def);

/**
 * Check that @p match is a genuine embedding of @p def.lhs in
 * @p graph (types, attributes, edges, no unaccounted internal
 * wiring). applyRewrite re-checks this, so oracle-supplied matches
 * cannot silently corrupt a graph. Fills in any captures the match
 * did not carry.
 */
Result<bool> validateMatch(const ExprHigh& graph, const RewriteDef& def,
                           RewriteMatch& match);

/**
 * Apply @p def at @p match via ExprLow substitution. Returns the
 * rewritten graph; fails on malformed definitions (never mutates the
 * input).
 */
Result<ExprHigh> applyRewrite(const ExprHigh& graph,
                              const RewriteDef& def,
                              const RewriteMatch& match);

/**
 * Discharge the refinement obligation of @p def on a finite
 * instantiation: check rhs ⊑ lhs with the given boundary tokens.
 * (The captures of a representative match can be substituted first
 * with instantiateCaptures.)
 */
Result<RefinementReport> verifyRewrite(const RewriteDef& def,
                                       const Environment& env,
                                       const std::vector<Token>& tokens,
                                       const ExplorationLimits& limits);

/** Substitute capture values into a definition's attribute slots. */
RewriteDef instantiateCaptures(
    const RewriteDef& def,
    const std::map<std::string, std::string>& captures);

}  // namespace graphiti

#endif  // GRAPHITI_REWRITE_REWRITE_HPP
