#ifndef GRAPHITI_REWRITE_CATALOG_HPP
#define GRAPHITI_REWRITE_CATALOG_HPP

/**
 * @file
 * The rewrite catalog of figure 3.
 *
 * Combining rewrites (figure 3a) normalize a loop guarded by several
 * Mux/Branch pairs into one guarded by a single pair, at the cost of
 * extra synchronization (Joins) — the effect discussed in section 6.2.
 * Elimination rewrites (figure 3b) clean up the Split/Join/Fork
 * residue. The main out-of-order loop rewrite (figure 3d) is in
 * loop_rewrite.hpp.
 *
 * Each entry is a RewriteDef whose refinement obligation
 * (rhs ⊑ lhs) is dischargeable with verifyRewrite; the catalog test
 * does so for every verifiable entry. Wire rewrites (empty rhs) have
 * no module denotation and stay unverified, mirroring the paper's
 * minor-rewrite status.
 */

#include <vector>

#include "rewrite/rewrite.hpp"

namespace graphiti::catalog {

/** Figure 3a: two Muxes with a common forked condition -> Join + one
 * Mux + Split. */
RewriteDef combineMux();

/** Figure 3a variant: two Branches with a common forked condition ->
 * Join + one Branch + two Splits. */
RewriteDef combineBranch();

/** Two Inits fed from one Fork -> one Init + Fork. */
RewriteDef combineInit();

/** Figure 3b: Split immediately re-Joined -> wire. */
RewriteDef splitJoinElim();

/** Figure 3b: Join immediately re-Split -> wires. */
RewriteDef joinSplitElim();

/** Fork with one output sunk -> wire (two variants by sunk side). */
RewriteDef forkSinkElim0();
RewriteDef forkSinkElim1();

/** Buffer -> wire. */
RewriteDef bufferElim();

/** Fork tree reassociation: (a, (b, c)) -> ((a, b), c). */
RewriteDef forkAssocLeft();

/** Fork tree reassociation: ((a, b), c) -> (a, (b, c)). */
RewriteDef forkAssocRight();

/** Fork output swap: (a, b) -> (b, a). */
RewriteDef forkSwap();

/** Split an n-ary fork into fork2 + fork(n-1), for n >= 3. */
RewriteDef forkSplit(int arity);

/** Figure 5d: a Fork becomes Pure(dup) followed by a Split. */
RewriteDef forkToPureDup();

/** Split with one side sunk -> Pure(snd) / Pure(fst). */
RewriteDef splitSink0();
RewriteDef splitSink1();

/** Merge is commutative: swap its inputs. */
RewriteDef mergeComm();

/** Two nested binary Joins -> one ternary Join (right-nested pairs
 * coincide), and its inverse. */
RewriteDef joinFuse();
RewriteDef joinUnfuse();

/** Introduction rewrite: one buffer becomes two in sequence. */
RewriteDef bufferDeepen();

/** All catalog entries (fork splits for arities 3..8 included). */
std::vector<RewriteDef> allRewrites();

}  // namespace graphiti::catalog

#endif  // GRAPHITI_REWRITE_CATALOG_HPP
