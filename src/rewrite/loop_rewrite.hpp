#ifndef GRAPHITI_REWRITE_LOOP_REWRITE_HPP
#define GRAPHITI_REWRITE_LOOP_REWRITE_HPP

/**
 * @file
 * The core out-of-order loop rewrite (figure 3d, verified in
 * section 5) and the loop-structure detector that locates where it
 * applies.
 *
 * The rewrite matches the normalized loop — one Mux guarded by an
 * Init, a Pure body, a Split producing (next state, continue?), a
 * condition Fork and one Branch — and replaces it by a tagged Merge
 * loop wrapped in a Tagger/Untagger. Section 5 proves the refinement
 * for arbitrary f; the catalog test discharges it on representative
 * instantiations with the checker.
 */

#include <optional>
#include <vector>

#include "rewrite/rewrite.hpp"

namespace graphiti {

/**
 * Figure 3d. The Pure body's function is captured as $f; the rhs
 * tagger's tag count is the $tags capture, which the caller supplies
 * via instantiateCaptures (it does not occur in the lhs).
 */
RewriteDef oooLoopRewrite();

/** A detected Mux/Branch loop in a dataflow graph. */
struct LoopInfo
{
    std::string mux;     ///< loop-header mux
    std::string branch;  ///< loop-exit branch
    std::string init;    ///< init driving the mux condition
    /** Nodes strictly inside the loop body (mux out -> branch in). */
    std::vector<std::string> body;
    /** True when the body contains a component with side effects
     * (stores) — the condition that makes the out-of-order rewrite
     * unsound (the bicg case of section 6.2). */
    bool has_side_effects = false;
};

/**
 * Detect Mux/Branch loops: a mux whose in1 is fed (directly) from a
 * branch.out0 and whose condition comes from an init. The body is the
 * forward reachable set from mux.out0 intersected with the backward
 * reachable set from the branch and the init, minus the control
 * nodes themselves.
 */
std::vector<LoopInfo> findLoops(const ExprHigh& graph);

/**
 * Whether the *group* of loops (Mux/Branch pairs sharing one
 * condition, i.e. one source-level loop with several variables) has a
 * side-effecting component in its shared body. Computed with every
 * group member's control nodes as boundaries, so stores after the
 * loop exits are not miscounted.
 */
bool groupHasSideEffects(const ExprHigh& graph,
                         const std::vector<LoopInfo>& group);

}  // namespace graphiti

#endif  // GRAPHITI_REWRITE_LOOP_REWRITE_HPP
