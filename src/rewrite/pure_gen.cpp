#include "rewrite/pure_gen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/signatures.hpp"
#include "support/strings.hpp"

namespace graphiti {

namespace {

using eg::TermExpr;

/** Symbolic transfer of one region node: input terms -> output terms,
 * keyed by output port name. */
Result<std::map<std::string, TermExpr>>
symbolicTransfer(const NodeDecl& node,
                 const std::vector<TermExpr>& inputs)
{
    std::map<std::string, TermExpr> out;
    if (node.type == "fork") {
        int n = attrInt(node.attrs, "out", 2);
        for (int i = 0; i < n; ++i)
            out["out" + std::to_string(i)] = inputs.at(0);
        return out;
    }
    if (node.type == "join") {
        TermExpr t = inputs.back();
        for (std::size_t i = inputs.size() - 1; i-- > 0;)
            t = TermExpr::node("pair", {inputs[i], std::move(t)});
        out["out0"] = std::move(t);
        return out;
    }
    if (node.type == "split") {
        out["out0"] = TermExpr::node("fst", {inputs.at(0)});
        out["out1"] = TermExpr::node("snd", {inputs.at(0)});
        return out;
    }
    if (node.type == "operator") {
        out["out0"] = TermExpr::node("op:" + attrStr(node.attrs, "op", ""),
                                     inputs);
        return out;
    }
    if (node.type == "constant") {
        // The trigger input only gates timing; the value is static.
        out["out0"] =
            TermExpr::leaf("const:" + attrStr(node.attrs, "value", "0"));
        return out;
    }
    if (node.type == "pure") {
        out["out0"] = TermExpr::node(
            "fn:" + attrStr(node.attrs, "fn", ""), {inputs.at(0)});
        return out;
    }
    if (node.type == "load") {
        out["out0"] = TermExpr::node(
            "load:" + attrStr(node.attrs, "memory", "mem"),
            {inputs.at(0)});
        return out;
    }
    if (node.type == "buffer") {
        out["out0"] = inputs.at(0);
        return out;
    }
    if (node.type == "sink") {
        // Dead-end computation: consumed, no observable value.
        return out;
    }
    return err("pure generation cannot absorb a '" + node.type +
               "' component (node " + node.name + ")");
}

/** Latency contributed by one absorbed node. */
int
nodeLatency(const NodeDecl& node)
{
    if (node.type == "operator")
        return attrInt(node.attrs, "latency",
                       operatorLatency(attrStr(node.attrs, "op", "")));
    if (node.type == "load")
        return attrInt(node.attrs, "latency", 1);
    if (node.type == "pure")
        return attrInt(node.attrs, "latency", 0);
    return 0;
}

}  // namespace

Result<PureFn>
compileTerm(const eg::TermExpr& term, std::shared_ptr<FnRegistry> registry)
{
    if (term.op == "x")
        return PureFn([](const Value& v) { return v; });

    if (term.op == "pair") {
        Result<PureFn> a = compileTerm(term.children.at(0), registry);
        if (!a.ok())
            return a;
        Result<PureFn> b = compileTerm(term.children.at(1), registry);
        if (!b.ok())
            return b;
        return PureFn([fa = a.take(), fb = b.take()](const Value& v) {
            return Value::tuple(fa(v), fb(v));
        });
    }
    if (term.op == "fst" || term.op == "snd") {
        Result<PureFn> a = compileTerm(term.children.at(0), registry);
        if (!a.ok())
            return a;
        bool first = term.op == "fst";
        return PureFn([fa = a.take(), first](const Value& v) {
            // Keep the intermediate alive: asTuple() returns a
            // reference into it.
            Value inner = fa(v);
            return first ? inner.asTuple().at(0)
                         : inner.asTuple().at(1);
        });
    }
    if (startsWith(term.op, "op:")) {
        std::string op = term.op.substr(3);
        std::vector<PureFn> args;
        for (const eg::TermExpr& child : term.children) {
            Result<PureFn> a = compileTerm(child, registry);
            if (!a.ok())
                return a;
            args.push_back(a.take());
        }
        return PureFn([op, args](const Value& v) {
            std::vector<Value> values;
            values.reserve(args.size());
            for (const PureFn& arg : args)
                values.push_back(arg(v));
            Result<Value> result = evalOperator(op, values);
            if (!result.ok())
                throw std::runtime_error(
                    "body function diverged (as would the circuit): " +
                    result.error().message);
            return result.take();
        });
    }
    if (startsWith(term.op, "const:")) {
        Result<Value> value = parseConstant(term.op.substr(6));
        if (!value.ok())
            return value.error();
        return PureFn([c = value.take()](const Value&) { return c; });
    }
    if (startsWith(term.op, "fn:")) {
        std::string name = term.op.substr(3);
        if (!registry->has(name))
            return err("compileTerm: unregistered function " + name);
        Result<PureFn> a = compileTerm(term.children.at(0), registry);
        if (!a.ok())
            return a;
        // Weak capture: compiled bodies are stored back into the
        // registry, so a shared_ptr here would be a reference cycle
        // (leak). Lookup stays lazy — replacing the registered
        // function changes the compiled one.
        return PureFn(
            [weak = std::weak_ptr<FnRegistry>(registry), name,
             fa = a.take()](const Value& v) {
                auto reg = weak.lock();
                if (!reg)
                    throw std::runtime_error(
                        "compileTerm: registry of function '" + name +
                        "' no longer exists");
                return (*reg->find(name))(fa(v));
            });
    }
    if (startsWith(term.op, "load:")) {
        // Memory is uninterpreted at the semantics level (the cycle
        // simulator resolves loads against real arrays).
        return compileTerm(term.children.at(0), registry);
    }
    return err("compileTerm: unknown term operator " + term.op);
}

Result<PureGenResult>
generatePureBody(const ExprHigh& graph, const LoopInfo& loop,
                 Environment& env, RewriteEngine& engine)
{
    if (loop.has_side_effects)
        return err("loop body of mux " + loop.mux +
                   " performs stores; out-of-order execution would "
                   "reorder observable memory effects (refusing, as on "
                   "bicg)");

    // Locate the condition fork: driver of branch.in1, a fork that
    // also feeds init.in0.
    std::optional<PortRef> cond_driver =
        graph.driverOf(PortRef{loop.branch, "in1"});
    if (!cond_driver)
        return err("loop branch has no condition driver");
    const NodeDecl* cond_fork = graph.findNode(cond_driver->inst);
    if (cond_fork == nullptr || cond_fork->type != "fork")
        return err("loop condition is not forked to branch and init; "
                   "normalize first");
    std::optional<PortRef> init_driver =
        graph.driverOf(PortRef{loop.init, "in0"});
    if (!init_driver || init_driver->inst != cond_fork->name)
        return err("condition fork does not feed the loop init");

    // The region: the loop body minus the condition fork.
    std::set<std::string> region(loop.body.begin(), loop.body.end());
    region.erase(cond_fork->name);
    if (region.empty())
        return err("empty loop body");

    // Entry: the unique consumer of mux.out0, inside the region.
    std::vector<PortRef> entries =
        graph.consumersOf(PortRef{loop.mux, "out0"});
    if (entries.size() != 1 || region.count(entries[0].inst) == 0)
        return err("loop body is not single-entry; normalize first");
    PortRef entry = entries[0];

    // Outputs: drivers of branch.in0 (next state) and cond_fork.in0.
    std::optional<PortRef> data_out =
        graph.driverOf(PortRef{loop.branch, "in0"});
    std::optional<PortRef> cond_out =
        graph.driverOf(PortRef{cond_fork->name, "in0"});
    if (!data_out || region.count(data_out->inst) == 0)
        return err("next-state wire does not come from the loop body");
    if (!cond_out || region.count(cond_out->inst) == 0)
        return err("condition wire does not come from the loop body");

    // Symbolic evaluation in topological order.
    std::map<PortRef, TermExpr> wire_terms;
    wire_terms[PortRef{loop.mux, "out0"}] = TermExpr::leaf("x");
    std::set<std::string> pending = region;
    while (!pending.empty()) {
        bool progressed = false;
        for (auto it = pending.begin(); it != pending.end();) {
            const NodeDecl& node = *graph.findNode(*it);
            Result<Signature> sig = signatureOf(node.type, node.attrs);
            if (!sig.ok())
                return sig.error().context("pure generation");
            std::vector<TermExpr> inputs;
            bool ready = true;
            for (const std::string& port : sig.value().inputs) {
                std::optional<PortRef> driver =
                    graph.driverOf(PortRef{node.name, port});
                if (!driver)
                    return err("pure generation: body port " + node.name +
                               "." + port + " has no driver");
                auto term = wire_terms.find(*driver);
                if (term == wire_terms.end()) {
                    ready = false;
                    break;
                }
                inputs.push_back(term->second);
            }
            if (!ready) {
                ++it;
                continue;
            }
            Result<std::map<std::string, TermExpr>> outs =
                symbolicTransfer(node, inputs);
            if (!outs.ok())
                return outs.error();
            for (auto& [port, term] : outs.value())
                wire_terms[PortRef{node.name, port}] = std::move(term);
            it = pending.erase(it);
            progressed = true;
        }
        if (!progressed)
            return err("pure generation: loop body has an internal "
                       "cycle or depends on values from outside the "
                       "loop; cannot order it");
    }

    TermExpr body_term = TermExpr::node(
        "pair", {wire_terms.at(*data_out), wire_terms.at(*cond_out)});

    // Minimize with the e-graph oracle (the egg role of section 3.2).
    eg::EGraph egraph;
    eg::ClassId cls = egraph.addTerm(body_term);
    egraph.saturate(eg::pairAlgebraRules());
    Result<TermExpr> minimized = egraph.extract(cls);
    if (!minimized.ok())
        return minimized.error().context("pure generation");

    // Compile and register the body function.
    Result<PureFn> compiled =
        compileTerm(minimized.value(), env.functionsPtr());
    if (!compiled.ok())
        return compiled.error();
    std::string fn_name = env.functions().freshName("body_fn");
    env.functions().add(fn_name, compiled.take());

    // Latency: the critical path of the absorbed components.
    std::map<std::string, int> path;
    int critical = 0;
    // Topological relaxation; region is acyclic (checked above).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const std::string& name : region) {
            const NodeDecl& node = *graph.findNode(name);
            Result<Signature> sig = signatureOf(node.type, node.attrs);
            int longest = 0;
            for (const std::string& port : sig.value().inputs) {
                std::optional<PortRef> driver =
                    graph.driverOf(PortRef{name, port});
                if (driver && path.count(driver->inst) > 0)
                    longest = std::max(longest, path[driver->inst]);
            }
            int total = longest + nodeLatency(node);
            if (path.find(name) == path.end() || path[name] != total) {
                path[name] = total;
                changed = true;
            }
            critical = std::max(critical, total);
        }
    }

    // Absorbed component inventory for the area model.
    std::vector<std::string> absorbed;
    for (const std::string& name : region) {
        const NodeDecl& node = *graph.findNode(name);
        std::string entry = node.type;
        if (node.type == "operator")
            entry += ":" + attrStr(node.attrs, "op", "");
        absorbed.push_back(entry);
    }
    std::sort(absorbed.begin(), absorbed.end());

    // Build the region rewrite and apply it through the engine.
    PureGenResult result;
    result.fn_name = fn_name;
    result.term = minimized.take();
    result.term_size_before = body_term.size();
    result.term_size_after = result.term.size();
    result.latency = critical;

    RewriteDef def;
    def.name = "pure-gen";
    for (const std::string& name : region) {
        const NodeDecl& node = *graph.findNode(name);
        def.lhs.addNode(node.name, node.type, node.attrs);
    }
    for (const Edge& e : graph.edges())
        if (region.count(e.src.inst) > 0 && region.count(e.dst.inst) > 0)
            def.lhs.connect(e.src, e.dst);
    def.lhs.bindInput(0, entry);
    def.lhs.bindOutput(0, *data_out);
    def.lhs.bindOutput(1, *cond_out);

    def.rhs.addNode("purebody", "pure",
                    {{"fn", fn_name},
                     {"latency", std::to_string(critical)},
                     {"absorbed", join(absorbed, ",")}});
    def.rhs.addNode("puresplit", "split");
    def.rhs.connect("purebody", "out0", "puresplit", "in0");
    def.rhs.bindInput(0, PortRef{"purebody", "in0"});
    def.rhs.bindOutput(0, PortRef{"puresplit", "out0"});
    def.rhs.bindOutput(1, PortRef{"puresplit", "out1"});

    Result<bool> valid = def.validate();
    if (!valid.ok())
        return valid.error().context(
            "pure generation: the loop body is not closed (it has "
            "connections besides state-in/state-out/condition)");

    RewriteMatch match;
    for (const std::string& name : region)
        match.binding[name] = name;
    Result<ExprHigh> rewritten = engine.applyAt(graph, def, match);
    if (!rewritten.ok())
        return rewritten.error().context("pure generation");

    result.graph = rewritten.take();
    result.region_def = std::move(def);
    result.region_match = std::move(match);

    for (const NodeDecl& node : result.graph.nodes()) {
        if (node.type == "pure" &&
            attrStr(node.attrs, "fn", "") == fn_name) {
            result.pure_node = node.name;
            auto consumers =
                result.graph.consumersOf(PortRef{node.name, "out0"});
            if (consumers.size() == 1)
                result.split_node = consumers[0].inst;
        }
    }
    if (result.pure_node.empty() || result.split_node.empty())
        return err("pure generation: inserted nodes not found");
    return result;
}

}  // namespace graphiti
