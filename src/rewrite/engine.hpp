#ifndef GRAPHITI_REWRITE_ENGINE_HPP
#define GRAPHITI_REWRITE_ENGINE_HPP

/**
 * @file
 * The rewriting engine: a registry of rewrite definitions plus
 * application strategies.
 *
 * Following section 3, the *strategy* (which rewrite to apply where)
 * is untrusted oracle territory; only the application mechanism and
 * each rewrite's refinement obligation carry correctness weight. The
 * engine therefore exposes both oracle-directed application
 * (applyAt) and exhaustive application of confluent rule sets
 * (applyExhaustively), and keeps statistics for the rewriting-cost
 * evaluation of section 6.3.
 */

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/scope.hpp"
#include "rewrite/rewrite.hpp"

namespace graphiti {

/**
 * Post-application well-formedness check. Invoked on the candidate
 * graph after every successful rewrite application; returning a
 * reason string vetoes the application (the engine discards the
 * candidate and keeps the pre-rewrite graph — a rollback). Returning
 * nullopt commits it. guard::validatorPostCheck() builds one from the
 * structural validator; the hook is kept generic so rewrite/ does not
 * depend on guard/.
 */
using PostCheck =
    std::function<std::optional<std::string>(const ExprHigh&)>;

/** One vetoed rewrite application. */
struct RewriteRollback
{
    std::string rule;    ///< rule whose application was rolled back
    std::string reason;  ///< post-check diagnostic
};

/** Counters reported by the engine (section 6.3's evaluation). */
struct EngineStats
{
    std::size_t rewrites_applied = 0;
    std::map<std::string, std::size_t> per_rule;

    void
    record(const std::string& rule)
    {
        ++rewrites_applied;
        ++per_rule[rule];
        GRAPHITI_OBS_COUNT("rewrite.applied", 1);
        GRAPHITI_OBS_COUNT("rewrite.rule." + rule, 1);
    }

    /** Per-rule application counts as a JSON object. */
    obs::json::Value
    toJson() const
    {
        obs::json::Value out{obs::json::Object{}};
        out.set("rewrites_applied", rewrites_applied);
        obs::json::Value rules{obs::json::Object{}};
        for (const auto& [rule, count] : per_rule)
            rules.set(rule, count);
        out.set("per_rule", std::move(rules));
        return out;
    }

    void
    merge(const EngineStats& other)
    {
        rewrites_applied += other.rewrites_applied;
        for (const auto& [rule, count] : other.per_rule)
            per_rule[rule] += count;
    }
};

/** The rewrite engine. */
class RewriteEngine
{
  public:
    /** Register @p def; fails when the definition is malformed. */
    Result<bool> addRule(RewriteDef def);

    /** Look up a registered rule; nullptr when absent. */
    const RewriteDef* findRule(const std::string& name) const;

    /**
     * Apply @p rule at its first match. Returns the rewritten graph,
     * or an error mentioning "no match" when the rule does not apply.
     */
    Result<ExprHigh> applyOnce(const ExprHigh& graph,
                               const std::string& rule);

    /** Apply a (possibly unregistered) definition at a given match. */
    Result<ExprHigh> applyAt(const ExprHigh& graph, const RewriteDef& def,
                             const RewriteMatch& match);

    /**
     * Repeatedly apply the rules named in @p rules (first match, first
     * rule wins) until none applies or @p max_applications is hit.
     */
    Result<ExprHigh> applyExhaustively(
        const ExprHigh& graph, const std::vector<std::string>& rules,
        std::size_t max_applications = 10000);

    const EngineStats& stats() const { return stats_; }
    void resetStats() { stats_ = EngineStats{}; }

    /**
     * Install a transactional post-check: every application is
     * validated before it is committed, and vetoed applications are
     * recorded in rollbacks() instead of corrupting the graph.
     * Applications always build a candidate copy (the input graph is
     * never mutated), so rollback is simply discarding the candidate.
     */
    void setPostCheck(PostCheck check) { post_check_ = std::move(check); }

    /** Applications vetoed by the post-check, in order. */
    const std::vector<RewriteRollback>& rollbacks() const
    {
        return rollbacks_;
    }
    void clearRollbacks() { rollbacks_.clear(); }

  private:
    /** Commit or veto a freshly rewritten candidate. */
    Result<ExprHigh> commit(Result<ExprHigh> candidate,
                            const std::string& rule);

    std::map<std::string, RewriteDef> rules_;
    EngineStats stats_;
    PostCheck post_check_;
    std::vector<RewriteRollback> rollbacks_;
};

}  // namespace graphiti

#endif  // GRAPHITI_REWRITE_ENGINE_HPP
