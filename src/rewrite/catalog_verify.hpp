#ifndef GRAPHITI_REWRITE_CATALOG_VERIFY_HPP
#define GRAPHITI_REWRITE_CATALOG_VERIFY_HPP

/**
 * @file
 * Self-verification of the rewrite catalog.
 *
 * Discharges the refinement obligation (rhs ⊑ lhs) of every
 * verified-flagged catalog rewrite on its canonical finite
 * instantiation — the library-level equivalent of re-checking the
 * paper's proofs before trusting the pipeline. The Compiler exposes
 * this as a paranoid compile option; the test suite runs it
 * unconditionally.
 */

#include <map>

#include "refine/refinement.hpp"
#include "rewrite/rewrite.hpp"

namespace graphiti {

/** Outcome of verifying the catalog. */
struct CatalogVerification
{
    /** rule name -> refines (only verified-flagged, checkable rules). */
    std::map<std::string, bool> results;
    bool all_ok = true;
    /** First failing rule's counterexample (empty when all_ok). */
    std::string first_failure;
};

/**
 * Verify every catalog rewrite that carries the verified flag and has
 * a denotable rhs. Wire rewrites (no rhs module) and explicitly
 * unverified rewrites are skipped, mirroring the paper's
 * verified/unverified split.
 */
Result<CatalogVerification> verifyCatalog(
    const ExplorationLimits& limits = {.max_states = 300000,
                                       .input_budget = 2,
                                       .stop = {}});

}  // namespace graphiti

#endif  // GRAPHITI_REWRITE_CATALOG_VERIFY_HPP
