#ifndef GRAPHITI_SIM_SIM_HPP
#define GRAPHITI_SIM_SIM_HPP

/**
 * @file
 * Cycle-accurate simulator for latency-insensitive dataflow circuits.
 *
 * This is the ModelSim substitute of the evaluation flow: it executes
 * an ExprHigh circuit at the handshake level and reports the cycle
 * count that determines the execution-time columns of table 2.
 *
 * Timing model:
 *  - every edge is an elastic channel with a fixed number of buffer
 *    slots; a producer stalls when the channel is full;
 *  - handshake components (fork, join, mux, merge, branch, split,
 *    init, constant, sink, tagger) fire at most once per cycle and
 *    their token traversal costs one cycle;
 *  - operators, loads and pure bodies are fully pipelined units with
 *    initiation interval 1 and a per-op latency (operatorLatency or
 *    the node's `latency` attribute);
 *  - stores commit to memory when both operands are available.
 *
 * Tagged execution: tokens carry the Tagger's reorder tags; since all
 * body paths originate at the single loop Merge and channels are
 * FIFO, matching input tokens always carry equal tags — the simulator
 * checks this invariant and reports a hard error on violation.
 *
 * Fault injection: a FaultInjector installed in SimConfig is consulted
 * every cycle and may suppress a channel's valid signal (stall burst),
 * suppress its ready signal (backpressure), stretch an operator's
 * latency (jitter) or shrink a channel's slot count (squeeze). The
 * latency-insensitivity theorems of the paper promise that none of
 * these change the output token sequences; src/faults builds seeded
 * plans on top of these hooks to test exactly that.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/expr_high.hpp"
#include "obs/scope.hpp"
#include "semantics/functions.hpp"
#include "support/cancel.hpp"
#include "support/result.hpp"
#include "support/token.hpp"

namespace graphiti::sim {

/**
 * Injection hooks consulted by the simulator.
 *
 * Channels are numbered in construction order: one per graph edge (in
 * edge order), then one per bound graph input, then one per bound
 * graph output — so a plan keyed by channel index is reproducible for
 * a fixed graph.
 *
 * All faults must be silent at and after horizon(): the watchdog
 * treats a fault that blocks an otherwise-possible move as progress,
 * so an unbounded fault schedule could mask a real deadlock.
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /** Extra latency cycles for a token accepted by @p node now. */
    virtual int
    latencyJitter(const std::string& node, std::size_t cycle)
    {
        (void)node;
        (void)cycle;
        return 0;
    }

    /** Suppress the valid signal of @p channel this cycle (the head
     * token, if any, is invisible to its consumer). */
    virtual bool
    dropValid(std::size_t channel, std::size_t cycle)
    {
        (void)channel;
        (void)cycle;
        return false;
    }

    /** Suppress the ready signal of @p channel this cycle (producers
     * see it as full). */
    virtual bool
    dropReady(std::size_t channel, std::size_t cycle)
    {
        (void)channel;
        (void)cycle;
        return false;
    }

    /**
     * Adjust the slot count of @p channel once, at build time.
     * @p pinned channels were sized by buffer placement for
     * deadlock-freedom (tagged regions) or are graph I/O; squeezing
     * them below @p base changes the circuit, not just its timing.
     */
    virtual std::size_t
    adjustCapacity(std::size_t channel, std::size_t base, bool pinned)
    {
        (void)channel;
        (void)pinned;
        return base;
    }

    /** First cycle from which every hook is guaranteed quiescent. */
    virtual std::size_t horizon() const { return 0; }
};

/** Simulator configuration. */
struct SimConfig
{
    /** Buffer slots per channel (Dynamatic places at least one
     * transparent + one opaque slot on most edges). */
    std::size_t channel_slots = 2;
    /** Cycle limit before the run is declared hung. */
    std::size_t max_cycles = 10'000'000;
    /** Load unit latency in cycles. */
    int load_latency = 2;
    /** Record per-cycle firing events of these nodes (figure 2d/2e
     * traces). */
    std::vector<std::string> trace_nodes;
    /** Optional fault-injection hooks (see FaultInjector). */
    std::shared_ptr<FaultInjector> faults;
    /**
     * Observability scope: run metrics, per-node fire/stall events on
     * the scope's trace sink, channel valid/ready/data waveforms on
     * its VCD writer. Falls back to obs::current() when unset; all
     * hooks compile to no-ops under GRAPHITI_OBS=OFF.
     */
    std::shared_ptr<obs::Scope> obs;
    /** Watchdog: cycles without any token movement or in-flight
     * computation before the run is declared deadlocked. */
    std::size_t stall_window = 4;
    /** Watchdog: cycles without output progress (while internal
     * activity continues) before the run is declared livelocked. */
    std::size_t livelock_window = 200'000;
    /**
     * Cooperative cancellation: polled once per simulated cycle (and
     * during the drain); a fired token aborts the run with a
     * structured "cancelled" error instead of running to max_cycles.
     */
    StopToken stop;
    /** Post-output drain: extra cycles allowed (past the last output
     * and past any fault horizon) for in-flight side effects — e.g. a
     * store racing the final output token — to land before final
     * memories are read. Drain stops early once the circuit
     * quiesces; it is not counted in SimResult::cycles. */
    std::size_t drain_limit = 4096;
    /**
     * Validation knob: step every node every cycle instead of only
     * the ready worklist (nodes adjacent to a channel that changed
     * last cycle). Fault injection forces the full sweep internally;
     * cycle counts, outputs and traces are identical either way
     * (asserted by tests/test_parallel.cpp).
     */
    bool full_sweep = false;
};

/** Watchdog verdict for a run that stopped making progress. */
enum class StuckKind
{
    Deadlock,      ///< no token can move, ever
    Livelock,      ///< tokens keep moving but outputs never advance
    SlowProgress,  ///< outputs advance, but the cycle limit was hit
};

const char* toString(StuckKind kind);

/** Snapshot of one stuck (or suspect) channel. */
struct ChannelStatus
{
    std::string description;  ///< "a.out0 -> b.in1", "input#0", ...
    std::size_t occupancy = 0;
    std::size_t capacity = 0;
};

/** One node of the blocked wavefront: holds or awaits tokens but
 * could not fire. */
struct BlockedNode
{
    std::string name;
    std::string type;
    /** Why it could not fire: "in1 empty", "out0 full", ... */
    std::vector<std::string> waiting_on;
    /** Tokens held in input channels, pipeline and completion. */
    std::size_t held_tokens = 0;
    /** Cycle of the node's last token movement, if it ever fired. */
    std::optional<std::size_t> last_fire;
};

/**
 * Stuck-state diagnosis produced by the watchdog: what kind of
 * no-progress situation was detected and where the tokens are.
 */
struct StuckDiagnosis
{
    StuckKind kind = StuckKind::Deadlock;
    std::size_t cycle = 0;
    std::size_t last_progress_cycle = 0;
    std::size_t last_output_cycle = 0;
    std::vector<std::size_t> outputs_collected;
    std::size_t expected_outputs = 0;
    std::vector<ChannelStatus> occupied_channels;
    std::vector<BlockedNode> blocked;

    /** The shared rendering used by simulator errors and reports. */
    std::string toString() const;
};

/**
 * One recorded event, for execution traces. The schema (cycle, node,
 * channel, kind, detail) is obs::TraceRecord — the same struct every
 * obs::TraceSink backend consumes, so SimResult::trace and exported
 * trace files can never drift apart.
 */
using TraceEvent = obs::TraceRecord;

/** Result of a simulation run. */
struct SimResult
{
    std::size_t cycles = 0;
    /** Tokens collected at each graph output, in arrival order. */
    std::vector<std::vector<Token>> outputs;
    std::vector<TraceEvent> trace;
    /** Final memory contents (after stores). */
    std::map<std::string, std::vector<double>> memories;
};

/** The simulator. */
class Simulator
{
  public:
    /**
     * Build a simulator for @p graph. Pure nodes resolve their `fn`
     * attribute in @p functions; memory nodes resolve their `memory`
     * attribute in the memories installed via setMemory.
     */
    static Result<Simulator> build(const ExprHigh& graph,
                                   std::shared_ptr<FnRegistry> functions,
                                   const SimConfig& config = {});

    /** Install (or replace) the contents of memory @p name. */
    void setMemory(const std::string& name, std::vector<double> data);

    /**
     * Run until @p expected_outputs tokens arrived at every bound
     * graph output (and all inputs were consumed), or the cycle limit
     * is hit (an error).
     *
     * @param inputs one token stream per graph input index.
     * @param serial_io when true, input k+1 (across all streams) is
     *        offered only after output k has been collected —
     *        modelling a dependent outer loop (gsum-single).
     */
    Result<SimResult> run(const std::vector<std::vector<Token>>& inputs,
                          std::size_t expected_outputs,
                          bool serial_io = false);

    /** Watchdog diagnosis of the most recent failed run (empty when
     * the run succeeded or failed for a non-progress reason). */
    const std::optional<StuckDiagnosis>& lastDiagnosis() const
    {
        return diagnosis_;
    }

    /**
     * Number of channels the simulator builds for @p graph — the
     * index space FaultInjector hooks are keyed by.
     */
    static std::size_t channelCount(const ExprHigh& graph);

  private:
    Simulator() = default;

    struct Channel
    {
        std::deque<Token> slots;
        std::size_t capacity = 2;

        bool full() const { return slots.size() >= capacity; }
        bool empty() const { return slots.empty(); }
    };

    class Impl;

    ExprHigh graph_;
    std::shared_ptr<FnRegistry> functions_;
    SimConfig config_;
    std::map<std::string, std::vector<double>> memories_;
    std::optional<StuckDiagnosis> diagnosis_;
};

}  // namespace graphiti::sim

#endif  // GRAPHITI_SIM_SIM_HPP
