#ifndef GRAPHITI_SIM_SIM_HPP
#define GRAPHITI_SIM_SIM_HPP

/**
 * @file
 * Cycle-accurate simulator for latency-insensitive dataflow circuits.
 *
 * This is the ModelSim substitute of the evaluation flow: it executes
 * an ExprHigh circuit at the handshake level and reports the cycle
 * count that determines the execution-time columns of table 2.
 *
 * Timing model:
 *  - every edge is an elastic channel with a fixed number of buffer
 *    slots; a producer stalls when the channel is full;
 *  - handshake components (fork, join, mux, merge, branch, split,
 *    init, constant, sink, tagger) fire at most once per cycle and
 *    their token traversal costs one cycle;
 *  - operators, loads and pure bodies are fully pipelined units with
 *    initiation interval 1 and a per-op latency (operatorLatency or
 *    the node's `latency` attribute);
 *  - stores commit to memory when both operands are available.
 *
 * Tagged execution: tokens carry the Tagger's reorder tags; since all
 * body paths originate at the single loop Merge and channels are
 * FIFO, matching input tokens always carry equal tags — the simulator
 * checks this invariant and reports a hard error on violation.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/expr_high.hpp"
#include "semantics/functions.hpp"
#include "support/result.hpp"
#include "support/token.hpp"

namespace graphiti::sim {

/** Simulator configuration. */
struct SimConfig
{
    /** Buffer slots per channel (Dynamatic places at least one
     * transparent + one opaque slot on most edges). */
    std::size_t channel_slots = 2;
    /** Cycle limit before the run is declared hung. */
    std::size_t max_cycles = 10'000'000;
    /** Load unit latency in cycles. */
    int load_latency = 2;
    /** Record per-cycle firing events of these nodes (figure 2d/2e
     * traces). */
    std::vector<std::string> trace_nodes;
};

/** One recorded firing, for execution traces. */
struct TraceEvent
{
    std::size_t cycle;
    std::string node;
    std::string detail;
};

/** Result of a simulation run. */
struct SimResult
{
    std::size_t cycles = 0;
    /** Tokens collected at each graph output, in arrival order. */
    std::vector<std::vector<Token>> outputs;
    std::vector<TraceEvent> trace;
    /** Final memory contents (after stores). */
    std::map<std::string, std::vector<double>> memories;
};

/** The simulator. */
class Simulator
{
  public:
    /**
     * Build a simulator for @p graph. Pure nodes resolve their `fn`
     * attribute in @p functions; memory nodes resolve their `memory`
     * attribute in the memories installed via setMemory.
     */
    static Result<Simulator> build(const ExprHigh& graph,
                                   std::shared_ptr<FnRegistry> functions,
                                   const SimConfig& config = {});

    /** Install (or replace) the contents of memory @p name. */
    void setMemory(const std::string& name, std::vector<double> data);

    /**
     * Run until @p expected_outputs tokens arrived at every bound
     * graph output (and all inputs were consumed), or the cycle limit
     * is hit (an error).
     *
     * @param inputs one token stream per graph input index.
     * @param serial_io when true, input k+1 (across all streams) is
     *        offered only after output k has been collected —
     *        modelling a dependent outer loop (gsum-single).
     */
    Result<SimResult> run(const std::vector<std::vector<Token>>& inputs,
                          std::size_t expected_outputs,
                          bool serial_io = false);

  private:
    Simulator() = default;

    struct Channel
    {
        std::deque<Token> slots;
        std::size_t capacity = 2;

        bool full() const { return slots.size() >= capacity; }
        bool empty() const { return slots.empty(); }
    };

    class Impl;

    ExprHigh graph_;
    std::shared_ptr<FnRegistry> functions_;
    SimConfig config_;
    std::map<std::string, std::vector<double>> memories_;
};

}  // namespace graphiti::sim

#endif  // GRAPHITI_SIM_SIM_HPP
