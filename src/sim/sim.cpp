#include "sim/sim.hpp"

#include <algorithm>
#include <sstream>

#include "arch/buffers.hpp"
#include "graph/signatures.hpp"
#include "obs/scope.hpp"
#include "semantics/environment.hpp"

namespace graphiti::sim {

const char*
toString(StuckKind kind)
{
    switch (kind) {
        case StuckKind::Deadlock: return "deadlock";
        case StuckKind::Livelock: return "livelock";
        case StuckKind::SlowProgress: return "slow progress";
    }
    return "unknown";
}

std::string
StuckDiagnosis::toString() const
{
    std::ostringstream os;
    os << sim::toString(kind) << " at cycle " << cycle
       << " (last token movement cycle " << last_progress_cycle
       << ", last output cycle " << last_output_cycle << ")";
    os << "; outputs collected:";
    for (std::size_t n : outputs_collected)
        os << " " << n << "/" << expected_outputs;
    os << "; stuck channels:";
    if (occupied_channels.empty())
        os << " none";
    for (const ChannelStatus& ch : occupied_channels)
        os << " [" << ch.description << " " << ch.occupancy << "/"
           << ch.capacity << "]";
    os << "; blocked wavefront:";
    if (blocked.empty())
        os << " none";
    for (const BlockedNode& node : blocked) {
        os << " " << node.name << "(" << node.type << ", holds "
           << node.held_tokens << ", last fire ";
        if (node.last_fire)
            os << *node.last_fire;
        else
            os << "never";
        for (const std::string& reason : node.waiting_on)
            os << ", " << reason;
        os << ")";
    }
    return os.str();
}

namespace {

/** Component model dispatched by the per-cycle step (the string
 * `type` is kept for diagnostics only). */
enum class NodeKind : std::uint8_t
{
    Fork,
    Join,
    Split,
    Mux,
    Merge,
    Branch,
    Init,
    Buffer,
    Sink,
    Source,
    Constant,
    Operator,
    Pure,
    Load,
    Store,
    Tagger,
    Unknown,
};

NodeKind
kindOf(const std::string& type)
{
    if (type == "fork") return NodeKind::Fork;
    if (type == "join") return NodeKind::Join;
    if (type == "split") return NodeKind::Split;
    if (type == "mux") return NodeKind::Mux;
    if (type == "merge") return NodeKind::Merge;
    if (type == "branch") return NodeKind::Branch;
    if (type == "init") return NodeKind::Init;
    if (type == "buffer") return NodeKind::Buffer;
    if (type == "sink") return NodeKind::Sink;
    if (type == "source") return NodeKind::Source;
    if (type == "constant") return NodeKind::Constant;
    if (type == "operator") return NodeKind::Operator;
    if (type == "pure") return NodeKind::Pure;
    if (type == "load") return NodeKind::Load;
    if (type == "store") return NodeKind::Store;
    if (type == "tagger") return NodeKind::Tagger;
    return NodeKind::Unknown;
}

/** Per-node mutable simulation state. */
struct SimNode
{
    std::string name;
    std::string type;
    NodeKind kind = NodeKind::Unknown;
    AttrMap attrs;
    std::vector<int> in_channels;   // -1 when dangling
    std::vector<int> out_channels;  // -1 when dangling

    /** Cycle of the node's last token movement. */
    std::optional<std::size_t> last_fire;

    // Generic unit state.
    bool init_done = false;

    // Pipelined units: (cycles remaining, result).
    std::deque<std::pair<int, Token>> pipeline;
    std::deque<Token> completion;
    int latency = 0;

    // Tagger state. Returned tokens are indexed by tag — tags are
    // allocated modulo num_tags, so the reorder buffer is a flat
    // vector, not a map.
    int num_tags = 0;
    std::int64_t next_alloc = 0;
    std::int64_t next_commit = 0;
    std::vector<std::optional<Token>> returned;
    std::size_t returned_count = 0;

    // Resolved pure function.
    const PureFn* fn = nullptr;
};

bool
tagsAgree(const std::vector<const Token*>& tokens,
          std::optional<Tag>& common)
{
    common.reset();
    for (const Token* t : tokens) {
        if (!t->tag)
            continue;
        if (common && *common != *t->tag)
            return false;
        common = t->tag;
    }
    return true;
}

}  // namespace

/** The working core of the simulator (rebuilt for every run). */
class Simulator::Impl
{
  public:
    Impl(Simulator& owner) : owner_(owner) {}

    Result<SimResult>
    run(const std::vector<std::vector<Token>>& inputs,
        std::size_t expected_outputs, bool serial_io)
    {
        Result<bool> built = build();
        if (!built.ok())
            return built.error();
        memories_ = owner_.memories_;
        faults_ = owner_.config_.faults.get();

#if GRAPHITI_OBS_ENABLED
        obs_ = owner_.config_.obs ? owner_.config_.obs.get()
                                  : obs::current();
        if (obs_ != nullptr) {
            sink_ = obs_->trace();
            setupVcd();
        }
        obs::ScopedTimer run_timer =
            obs_ == nullptr ? obs::ScopedTimer{}
                            : obs_->metrics().timer("sim.run_seconds");
#endif
        provSetup();

        input_streams_ = inputs;
        input_pos_.assign(inputs.size(), 0);

        SimResult result;
        result.outputs.resize(output_channels_.size());

        // Ready-worklist schedule: only nodes adjacent to a channel
        // that changed last cycle (or with in-flight pipeline state)
        // are stepped, in node-index order so traces and obs events
        // are identical to the full sweep. Fault hooks may flip a
        // channel's valid/ready without any token movement, so fault
        // runs fall back to stepping everything.
        const bool worklist =
            faults_ == nullptr && !owner_.config_.full_sweep;
        awake_.assign(nodes_.size(), 1);
        next_awake_.assign(nodes_.size(), 0);

        std::size_t last_progress = 0;
        std::size_t last_output = 0;
        for (std::size_t cycle = 0; cycle < owner_.config_.max_cycles;
             ++cycle) {
            if (owner_.config_.stop.stopRequested())
                return err("simulation cancelled at cycle " +
                           std::to_string(cycle) + ": " +
                           owner_.config_.stop.reason());
            moves_ = 0;
            pipeline_busy_ = false;
            fault_hold_ = false;
            output_moved_ = false;
            cycle_ = cycle;
            trace_ = &result.trace;

            feedInputs(result, serial_io);
            for (std::size_t i = 0; i < nodes_.size(); ++i) {
                if (worklist && !awake_[i])
                    continue;
                stepping_ = i;
                SimNode& node = nodes_[i];
                std::size_t before = moves_;
                Result<bool> fired = step(node);
                if (!fired.ok())
                    return fired.error().context(
                        "cycle " + std::to_string(cycle) + ", node " +
                        node.name);
                if (moves_ > before) {
#if GRAPHITI_OBS_ENABLED
                    if (sink_ != nullptr)
                        observeFire(node, cycle);
#endif
                    node.last_fire = cycle;
                    next_awake_[i] = 1;  // internal state advanced
                }
                // Pipelined units must tick every cycle while tokens
                // are in flight or waiting on output space.
                if (!node.pipeline.empty() || !node.completion.empty())
                    next_awake_[i] = 1;
            }
            stepping_ = kNoNode;
            provBlocked();
            collectOutputs(result);
            commitStaged();
            awake_.swap(next_awake_);
            std::fill(next_awake_.begin(), next_awake_.end(),
                      std::uint8_t{0});
#if GRAPHITI_OBS_ENABLED
            if (obs_ != nullptr)
                observeCycle();
#endif

            if (done(result, expected_outputs)) {
                result.cycles = cycle + 1;
                Result<bool> drained = drain(cycle + 1);
                if (!drained.ok())
                    return drained.error();
                result.memories = memories_;
                provEnd(result.cycles);
#if GRAPHITI_OBS_ENABLED
                if (obs_ != nullptr)
                    finishObservation(result.cycles);
#endif
                return result;
            }
            // Watchdog. A fault that held back an otherwise-possible
            // move counts as progress: the injector's bounded horizon
            // guarantees the hold ends.
            if (moves_ > 0 || pipeline_busy_ || fault_hold_)
                last_progress = cycle;
            if (output_moved_)
                last_output = cycle;
            if (cycle - last_progress > owner_.config_.stall_window) {
                return stuck(StuckKind::Deadlock, result,
                             expected_outputs, last_progress,
                             last_output,
                             "simulation deadlocked at cycle " +
                                 std::to_string(cycle));
            }
            if (cycle - last_output > owner_.config_.livelock_window) {
                return stuck(StuckKind::Livelock, result,
                             expected_outputs, last_progress,
                             last_output,
                             "simulation livelocked at cycle " +
                                 std::to_string(cycle));
            }
        }
        std::size_t end = owner_.config_.max_cycles;
        StuckKind kind =
            end - last_output > owner_.config_.livelock_window
                ? StuckKind::Livelock
                : StuckKind::SlowProgress;
        return stuck(kind, result, expected_outputs, last_progress,
                     last_output, "simulation exceeded the cycle limit");
    }

  private:
    /**
     * Post-output settling phase. The final output token can race
     * side effects on parallel fork branches (matvec's store of
     * result[i] vs. the result token), so final memory read at the
     * instant of the last output is not a timing-invariant
     * observable. Keep stepping — without collecting outputs, so
     * perpetual producers backpressure themselves quiet — until the
     * circuit quiesces or a bound past any fault horizon expires.
     */
    Result<bool>
    drain(std::size_t start_cycle)
    {
        std::size_t horizon = faults_ ? faults_->horizon() : 0;
        std::size_t limit = std::max(start_cycle, horizon) +
                            owner_.config_.drain_limit;
        for (std::size_t cycle = start_cycle; cycle < limit; ++cycle) {
            if (owner_.config_.stop.stopRequested())
                return err("simulation cancelled during drain: " +
                           owner_.config_.stop.reason());
            moves_ = 0;
            pipeline_busy_ = false;
            fault_hold_ = false;
            cycle_ = cycle;
            for (SimNode& node : nodes_) {
                std::size_t before = moves_;
                Result<bool> fired = step(node);
                if (!fired.ok())
                    return fired.error().context(
                        "drain cycle " + std::to_string(cycle) +
                        ", node " + node.name);
                if (moves_ > before)
                    node.last_fire = cycle;
            }
            commitStaged();
            if (moves_ == 0 && !pipeline_busy_ && !fault_hold_)
                break;
        }
        return true;
    }

    Result<bool>
    build()
    {
        const ExprHigh& g = owner_.graph_;
        // Name lookup: a sorted flat vector binary-searched per edge
        // endpoint. The graph was validated, so every endpoint
        // resolves.
        std::vector<std::pair<std::string, std::size_t>> node_index;
        node_index.reserve(g.nodes().size());

        for (const NodeDecl& decl : g.nodes()) {
            Result<Signature> sig = signatureOf(decl.type, decl.attrs);
            if (!sig.ok())
                return sig.error().context("sim build: " + decl.name);
            SimNode node;
            node.name = decl.name;
            node.type = decl.type;
            node.kind = kindOf(decl.type);
            node.attrs = decl.attrs;
            node.in_channels.assign(sig.value().inputs.size(), -1);
            node.out_channels.assign(sig.value().outputs.size(), -1);
            if (node.kind == NodeKind::Operator) {
                node.latency = attrInt(
                    decl.attrs, "latency",
                    operatorLatency(attrStr(decl.attrs, "op", "")));
            } else if (node.kind == NodeKind::Load) {
                node.latency = attrInt(decl.attrs, "latency",
                                       owner_.config_.load_latency);
            } else if (node.kind == NodeKind::Pure) {
                node.latency = attrInt(decl.attrs, "latency", 0);
                node.fn = owner_.functions_->find(
                    attrStr(decl.attrs, "fn", ""));
                if (node.fn == nullptr)
                    return err("sim build: pure node " + decl.name +
                               " references unregistered fn");
            } else if (node.kind == NodeKind::Tagger) {
                node.num_tags = attrInt(decl.attrs, "tags", 4);
                node.returned.assign(
                    static_cast<std::size_t>(std::max(1, node.num_tags)),
                    std::nullopt);
            }
            node_index.emplace_back(decl.name, nodes_.size());
            nodes_.push_back(std::move(node));
        }
        std::sort(node_index.begin(), node_index.end());
        auto find_node = [&](const std::string& name) {
            auto it = std::lower_bound(
                node_index.begin(), node_index.end(), name,
                [](const std::pair<std::string, std::size_t>& entry,
                   const std::string& n) { return entry.first < n; });
            return it->second;
        };

        auto port_number = [](const std::string& port) {
            return std::stoi(port.substr(port.find_first_of("0123456789")));
        };

        // Buffer placement (Josipovic et al. [40], as adapted by
        // Elakhras et al.): channels inside a Tagger/Untagger region
        // get enough slots for the in-flight iterations, otherwise a
        // short bypass path fills up and serializes the loop (or
        // deadlocks it).
        arch::BufferPlacement placement =
            arch::placeBuffers(g, owner_.config_.channel_slots);
        FaultInjector* faults = owner_.config_.faults.get();
        auto add_channel = [&](std::size_t base, bool pinned,
                               std::string description) {
            int ch = static_cast<int>(channels_.size());
            std::size_t capacity = base;
            if (faults != nullptr)
                capacity = std::max<std::size_t>(
                    1, faults->adjustCapacity(ch, base, pinned));
            channels_.push_back(Channel{{}, capacity});
            channel_desc_.push_back(std::move(description));
            channel_producer_.push_back(-1);
            channel_consumer_.push_back(-1);
            return ch;
        };
        for (const Edge& e : g.edges()) {
            // Channels the placement widened beyond the default pair
            // are pinned: they hold the in-flight iterations of a
            // tagged region, and squeezing them alters the circuit
            // rather than its timing.
            std::size_t base =
                placement.slotsFor(e, owner_.config_.channel_slots);
            int ch = add_channel(
                base, base > owner_.config_.channel_slots,
                e.src.inst + "." + e.src.port + " -> " + e.dst.inst +
                    "." + e.dst.port);
            std::size_t src = find_node(e.src.inst);
            std::size_t dst = find_node(e.dst.inst);
            nodes_[src].out_channels[port_number(e.src.port)] = ch;
            nodes_[dst].in_channels[port_number(e.dst.port)] = ch;
            channel_producer_[ch] = static_cast<int>(src);
            channel_consumer_[ch] = static_cast<int>(dst);
        }
        for (std::size_t i = 0; i < g.inputs().size(); ++i) {
            if (!g.inputs()[i])
                continue;
            int ch = add_channel(owner_.config_.channel_slots, true,
                                 "input#" + std::to_string(i) + " -> " +
                                     g.inputs()[i]->inst + "." +
                                     g.inputs()[i]->port);
            std::size_t dst = find_node(g.inputs()[i]->inst);
            nodes_[dst].in_channels[port_number(g.inputs()[i]->port)] =
                ch;
            channel_consumer_[ch] = static_cast<int>(dst);
            input_channels_.push_back(ch);
        }
        for (std::size_t i = 0; i < g.outputs().size(); ++i) {
            if (!g.outputs()[i])
                continue;
            int ch = add_channel(1u << 30, true,
                                 g.outputs()[i]->inst + "." +
                                     g.outputs()[i]->port + " -> output#" +
                                     std::to_string(i));
            std::size_t src = find_node(g.outputs()[i]->inst);
            nodes_[src].out_channels[port_number(g.outputs()[i]->port)] =
                ch;
            channel_producer_[ch] = static_cast<int>(src);
            output_channels_.push_back(ch);
        }
        staged_.assign(channels_.size(), {});
        return true;
    }

    bool
    hasToken(int ch)
    {
        if (ch < 0 || channels_[ch].empty())
            return false;
        if (faults_ != nullptr &&
            faults_->dropValid(static_cast<std::size_t>(ch), cycle_)) {
            fault_hold_ = true;  // a consumable token was hidden
#if GRAPHITI_OBS_ENABLED
            if (obs_ != nullptr)
                observeFault(ch, "drop-valid");
#endif
            return false;
        }
        return true;
    }

    const Token&
    peek(int ch) const
    {
        return channels_[ch].slots.front();
    }

    Token
    pop(int ch)
    {
        Token t = channels_[ch].slots.front();
        channels_[ch].slots.pop_front();
        ++moves_;
        // The producer gained space. The sequential sweep makes a pop
        // visible to later-indexed nodes within the same cycle, so a
        // producer not yet stepped wakes now; otherwise next cycle.
        int p = channel_producer_[ch];
        if (p >= 0) {
            if (static_cast<std::size_t>(p) > stepping_)
                awake_[p] = 1;
            else
                next_awake_[p] = 1;
        }
        return t;
    }

    bool
    hasSpace(int ch)
    {
        if (ch < 0)
            return true;  // dangling outputs drop tokens
        if (channels_[ch].slots.size() + staged_[ch].size() >=
            channels_[ch].capacity)
            return false;
        if (faults_ != nullptr &&
            faults_->dropReady(static_cast<std::size_t>(ch), cycle_)) {
            fault_hold_ = true;  // available space was refused
#if GRAPHITI_OBS_ENABLED
            if (obs_ != nullptr)
                observeFault(ch, "drop-ready");
#endif
            return false;
        }
        return true;
    }

    void
    push(int ch, Token t)
    {
        if (ch < 0)
            return;
        staged_[ch].push_back(std::move(t));
        ++moves_;
        // Staged tokens become visible at commitStaged, so the
        // consumer can first use this one next cycle.
        int c = channel_consumer_[ch];
        if (c >= 0)
            next_awake_[c] = 1;
    }

    void
    commitStaged()
    {
        for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
            for (Token& t : staged_[ch])
                channels_[ch].slots.push_back(std::move(t));
            staged_[ch].clear();
        }
    }

    void
    trace(const SimNode& node, const std::string& detail,
          obs::EventKind kind = obs::EventKind::Fire)
    {
        for (const std::string& wanted : owner_.config_.trace_nodes)
            if (wanted == node.name)
                trace_->push_back(
                    TraceEvent{cycle_, node.name, -1, kind, detail});
    }

    void
    feedInputs(const SimResult& result, bool serial_io)
    {
        std::size_t collected =
            result.outputs.empty() ? 0 : result.outputs[0].size();
        for (std::size_t i = 0; i < input_streams_.size() &&
                                i < input_channels_.size();
             ++i) {
            std::size_t& pos = input_pos_[i];
            if (pos >= input_streams_[i].size())
                continue;
            if (serial_io && pos > collected)
                continue;
            int ch = input_channels_[i];
            if (hasSpace(ch)) {
                push(ch, input_streams_[i][pos]);
                ++pos;
                provInput(static_cast<int>(i), ch);
            }
        }
    }

    void
    collectOutputs(SimResult& result)
    {
        for (std::size_t i = 0; i < output_channels_.size(); ++i) {
            Channel& ch = channels_[output_channels_[i]];
            while (!ch.empty()) {
#if GRAPHITI_OBS_ENABLED
                if (obs_ != nullptr) {
                    ++stat_outputs_;
                    if (sink_ != nullptr)
                        sink_->event(TraceEvent{
                            cycle_, "output#" + std::to_string(i),
                            output_channels_[i],
                            obs::EventKind::Output,
                            ch.slots.front().toString()});
                }
#endif
                result.outputs[i].push_back(ch.slots.front());
                ch.slots.pop_front();
                provOutput(static_cast<int>(i), output_channels_[i]);
                ++moves_;
                output_moved_ = true;
            }
        }
    }

    bool
    done(const SimResult& result, std::size_t expected) const
    {
        for (const auto& stream : result.outputs)
            if (stream.size() < expected)
                return false;
        return true;
    }

    /** Build the watchdog's stuck-state diagnosis from the current
     * concrete state. */
    StuckDiagnosis
    buildDiagnosis(StuckKind kind, const SimResult& result,
                   std::size_t expected, std::size_t last_progress,
                   std::size_t last_output) const
    {
        StuckDiagnosis d;
        d.kind = kind;
        d.cycle = cycle_;
        d.last_progress_cycle = last_progress;
        d.last_output_cycle = last_output;
        d.expected_outputs = expected;
        for (const auto& stream : result.outputs)
            d.outputs_collected.push_back(stream.size());
        for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
            if (channels_[ch].empty())
                continue;
            d.occupied_channels.push_back(
                ChannelStatus{channel_desc_[ch],
                              channels_[ch].slots.size(),
                              channels_[ch].capacity});
        }
        for (const SimNode& node : nodes_) {
            BlockedNode b;
            b.name = node.name;
            b.type = node.type;
            b.last_fire = node.last_fire;
            b.held_tokens = node.pipeline.size() +
                            node.completion.size() +
                            node.returned_count;
            for (int ch : node.in_channels)
                if (ch >= 0)
                    b.held_tokens += channels_[ch].slots.size();
            if (b.held_tokens == 0)
                continue;  // only the wavefront holding tokens
            for (std::size_t i = 0; i < node.in_channels.size(); ++i) {
                int ch = node.in_channels[i];
                if (ch < 0 || channels_[ch].empty())
                    b.waiting_on.push_back(
                        "in" + std::to_string(i) + " empty");
            }
            for (std::size_t i = 0; i < node.out_channels.size(); ++i) {
                int ch = node.out_channels[i];
                if (ch >= 0 && channels_[ch].slots.size() >=
                                   channels_[ch].capacity)
                    b.waiting_on.push_back(
                        "out" + std::to_string(i) + " full");
            }
            d.blocked.push_back(std::move(b));
        }
        return d;
    }

    /** Record the diagnosis on the owner and render the error. */
    Error
    stuck(StuckKind kind, const SimResult& result, std::size_t expected,
          std::size_t last_progress, std::size_t last_output,
          const std::string& headline)
    {
        StuckDiagnosis d = buildDiagnosis(kind, result, expected,
                                          last_progress, last_output);
        std::string rendered = d.toString();
#if GRAPHITI_OBS_ENABLED
        if (obs_ != nullptr) {
            obs_->metrics().add("sim.stuck");
            obs_->metrics().add(std::string("sim.stuck.") +
                                sim::toString(kind));
            if (sink_ != nullptr)
                sink_->event(TraceEvent{cycle_, "watchdog", -1,
                                        obs::EventKind::Verdict,
                                        sim::toString(kind)});
            finishObservation(cycle_);
        }
#endif
        provEnd(cycle_);
        owner_.diagnosis_ = std::move(d);
        return err(headline + ": " + rendered);
    }

    /** Advance pipelined units and drain completions. */
    void
    advancePipeline(SimNode& node)
    {
        if (!node.pipeline.empty())
            pipeline_busy_ = true;  // in-flight computation is progress
        for (auto& [remaining, token] : node.pipeline)
            if (remaining > 0)
                --remaining;
        while (!node.pipeline.empty() &&
               node.pipeline.front().first == 0) {
            node.completion.push_back(
                std::move(node.pipeline.front().second));
            node.pipeline.pop_front();
            ++moves_;
        }
        while (!node.completion.empty() &&
               hasSpace(node.out_channels[0])) {
            push(node.out_channels[0],
                 std::move(node.completion.front()));
            node.completion.pop_front();
            provEmit(node);
            trace(node, "emit", obs::EventKind::Emit);
        }
    }

    Result<bool>
    step(SimNode& node)
    {
        if (node.kind == NodeKind::Fork) {
            if (!hasToken(node.in_channels[0]))
                return true;
            for (int ch : node.out_channels)
                if (!hasSpace(ch))
                    return true;
            Token t = pop(node.in_channels[0]);
            for (int ch : node.out_channels)
                push(ch, t);
            provFire(node, node.in_channels.data(), 1,
                     node.out_channels.data(),
                     node.out_channels.size());
            trace(node, "fire " + t.toString());
            return true;
        }
        if (node.kind == NodeKind::Join) {
            if (!hasSpace(node.out_channels[0]))
                return true;
            std::vector<const Token*> heads;
            for (int ch : node.in_channels) {
                if (!hasToken(ch))
                    return true;
                heads.push_back(&peek(ch));
            }
            std::optional<Tag> tag;
            if (!tagsAgree(heads, tag))
                return err("tag mismatch at join (tokens from "
                           "different iterations met)");
            Value v = heads.back()->value;
            for (std::size_t i = heads.size() - 1; i-- > 0;)
                v = Value::tuple(heads[i]->value, std::move(v));
            for (int ch : node.in_channels)
                pop(ch);
            Token out(std::move(v));
            out.tag = tag;
            push(node.out_channels[0], std::move(out));
            provFire(node, node.in_channels.data(),
                     node.in_channels.size(), node.out_channels.data(),
                     1);
            trace(node, "fire");
            return true;
        }
        if (node.kind == NodeKind::Split) {
            if (!hasToken(node.in_channels[0]) ||
                !hasSpace(node.out_channels[0]) ||
                !hasSpace(node.out_channels[1]))
                return true;
            Token t = pop(node.in_channels[0]);
            if (!t.value.isTuple() || t.value.asTuple().size() != 2)
                return err("split received a non-pair token " +
                           t.toString());
            Token left(t.value.asTuple()[0]);
            Token right(t.value.asTuple()[1]);
            left.tag = t.tag;
            right.tag = t.tag;
            push(node.out_channels[0], std::move(left));
            push(node.out_channels[1], std::move(right));
            provFire(node, node.in_channels.data(), 1,
                     node.out_channels.data(), 2);
            trace(node, "fire");
            return true;
        }
        if (node.kind == NodeKind::Mux) {
            if (!hasToken(node.in_channels[0]) ||
                !hasSpace(node.out_channels[0]))
                return true;
            bool sel = peek(node.in_channels[0]).value.asBool();
            int data_ch = node.in_channels[sel ? 1 : 2];
            if (!hasToken(data_ch))
                return true;
            pop(node.in_channels[0]);
            Token t = pop(data_ch);
            trace(node, std::string("fire ") + (sel ? "loop" : "entry"));
            push(node.out_channels[0], std::move(t));
            const int mux_ins[2] = {node.in_channels[0], data_ch};
            provFire(node, mux_ins, 2, node.out_channels.data(), 1);
            return true;
        }
        if (node.kind == NodeKind::Merge) {
            if (!hasSpace(node.out_channels[0]))
                return true;
            // Loopback (in0) has priority so in-flight iterations keep
            // draining; fresh tokens enter when the loop path is idle.
            for (int port : {0, 1}) {
                if (hasToken(node.in_channels[port])) {
                    Token t = pop(node.in_channels[port]);
                    trace(node, std::string("fire ") +
                                    (port == 0 ? "loop" : "entry") +
                                    " " + t.toString());
                    push(node.out_channels[0], std::move(t));
                    provFire(node, &node.in_channels[port], 1,
                             node.out_channels.data(), 1);
                    return true;
                }
            }
            return true;
        }
        if (node.kind == NodeKind::Branch) {
            if (!hasToken(node.in_channels[0]) ||
                !hasToken(node.in_channels[1]))
                return true;
            const Token& data = peek(node.in_channels[0]);
            const Token& cond = peek(node.in_channels[1]);
            std::optional<Tag> tag;
            if (!tagsAgree({&data, &cond}, tag))
                return err("tag mismatch at branch");
            int out = cond.value.asBool() ? 0 : 1;
            if (!hasSpace(node.out_channels[out]))
                return true;
            Token t = pop(node.in_channels[0]);
            pop(node.in_channels[1]);
            t.tag = tag;
            trace(node, out == 0 ? "loop" : "exit");
            push(node.out_channels[out], std::move(t));
            provFire(node, node.in_channels.data(), 2,
                     &node.out_channels[out], 1);
            return true;
        }
        if (node.kind == NodeKind::Init) {
            if (!hasSpace(node.out_channels[0]))
                return true;
            if (!node.init_done) {
                node.init_done = true;
                push(node.out_channels[0],
                     Token(Value(attrStr(node.attrs, "value", "false") ==
                                 "true")));
                provSpawn(node, node.out_channels[0]);
                trace(node, "initial");
                return true;
            }
            if (hasToken(node.in_channels[0])) {
                push(node.out_channels[0], pop(node.in_channels[0]));
                provFire(node, node.in_channels.data(), 1,
                         node.out_channels.data(), 1);
            }
            return true;
        }
        if (node.kind == NodeKind::Buffer) {
            if (hasToken(node.in_channels[0]) &&
                hasSpace(node.out_channels[0])) {
                push(node.out_channels[0], pop(node.in_channels[0]));
                provFire(node, node.in_channels.data(), 1,
                         node.out_channels.data(), 1);
            }
            return true;
        }
        if (node.kind == NodeKind::Sink) {
            if (hasToken(node.in_channels[0])) {
                pop(node.in_channels[0]);
                provFire(node, node.in_channels.data(), 1, nullptr, 0);
            }
            return true;
        }
        if (node.kind == NodeKind::Source) {
            if (hasSpace(node.out_channels[0])) {
                push(node.out_channels[0], Token(Value()));
                provSpawn(node, node.out_channels[0]);
            }
            return true;
        }
        if (node.kind == NodeKind::Constant) {
            if (!hasToken(node.in_channels[0]) ||
                !hasSpace(node.out_channels[0]))
                return true;
            Token trigger = pop(node.in_channels[0]);
            Result<Value> v =
                parseConstantValue(attrStr(node.attrs, "value", "0"));
            if (!v.ok())
                return v.error();
            Token out(v.take());
            out.tag = trigger.tag;
            push(node.out_channels[0], std::move(out));
            provFire(node, node.in_channels.data(), 1,
                     node.out_channels.data(), 1);
            return true;
        }
        if (node.kind == NodeKind::Operator ||
            node.kind == NodeKind::Pure ||
            node.kind == NodeKind::Load) {
            advancePipeline(node);
            // Accept at most one new token set per cycle (II = 1).
            std::vector<const Token*> heads;
            for (int ch : node.in_channels) {
                if (!hasToken(ch))
                    return true;
                heads.push_back(&peek(ch));
            }
            std::optional<Tag> tag;
            if (!tagsAgree(heads, tag))
                return err("tag mismatch at " + node.type);
            Token result;
            if (node.kind == NodeKind::Operator) {
                std::vector<Value> args;
                for (const Token* t : heads)
                    args.push_back(t->value);
                Result<Value> v = evalOperator(
                    attrStr(node.attrs, "op", ""), args);
                if (!v.ok())
                    return v.error();
                result.value = v.take();
            } else if (node.kind == NodeKind::Pure) {
                result.value = (*node.fn)(heads[0]->value);
            } else {  // load
                std::string mem = attrStr(node.attrs, "memory", "mem");
                auto it = memories_.find(mem);
                if (it == memories_.end())
                    return err("load from unknown memory " + mem);
                std::int64_t addr = heads[0]->value.asInt();
                if (addr < 0 ||
                    addr >= static_cast<std::int64_t>(it->second.size()))
                    return err("load out of bounds: " + mem + "[" +
                               std::to_string(addr) + "]");
                result.value = Value(it->second[addr]);
            }
            result.tag = tag;
            for (int ch : node.in_channels)
                pop(ch);
            int latency = std::max(1, node.latency);
            if (faults_ != nullptr)
                latency += std::max(
                    0, faults_->latencyJitter(node.name, cycle_));
            node.pipeline.emplace_back(latency, std::move(result));
            provAccept(node, latency);
            trace(node, "accept");
            return true;
        }
        if (node.kind == NodeKind::Store) {
            if (!hasToken(node.in_channels[0]) ||
                !hasToken(node.in_channels[1]) ||
                !hasSpace(node.out_channels[0]))
                return true;
            const Token& addr_tok = peek(node.in_channels[0]);
            const Token& data_tok = peek(node.in_channels[1]);
            std::optional<Tag> tag;
            if (!tagsAgree({&addr_tok, &data_tok}, tag))
                return err("tag mismatch at store");
            std::string mem = attrStr(node.attrs, "memory", "mem");
            auto it = memories_.find(mem);
            if (it == memories_.end())
                return err("store to unknown memory " + mem);
            std::int64_t addr = addr_tok.value.asInt();
            if (addr < 0 ||
                addr >= static_cast<std::int64_t>(it->second.size()))
                return err("store out of bounds: " + mem + "[" +
                           std::to_string(addr) + "]");
            it->second[addr] = data_tok.value.toDouble();
            pop(node.in_channels[0]);
            pop(node.in_channels[1]);
            Token done{Value(addr)};
            done.tag = tag;
            push(node.out_channels[0], std::move(done));
            provFire(node, node.in_channels.data(), 2,
                     node.out_channels.data(), 1);
            trace(node, "store");
            return true;
        }
        if (node.kind == NodeKind::Tagger) {
            // Allocate a tag for the oldest fresh token.
            if (hasToken(node.in_channels[0]) &&
                hasSpace(node.out_channels[0]) &&
                node.next_alloc - node.next_commit < node.num_tags) {
                Token t = pop(node.in_channels[0]);
                t.tag = static_cast<Tag>(node.next_alloc %
                                         node.num_tags);
                const std::int64_t alloc_idx = node.next_alloc;
                node.next_alloc += 1;
                trace(node, "tag " + t.toString());
                push(node.out_channels[0], std::move(t));
                provTagAlloc(node, alloc_idx);
            }
            // Accept a returning token.
            if (hasToken(node.in_channels[1])) {
                Token t = pop(node.in_channels[1]);
                if (!t.tag)
                    return err("untagged token returned to tagger");
                provTagReturn(node, *t.tag);
                std::size_t slot = *t.tag;
                if (slot >= node.returned.size())
                    node.returned.resize(slot + 1);
                if (!node.returned[slot]) {
                    node.returned[slot] = std::move(t);
                    ++node.returned_count;
                }
            }
            // Commit the oldest outstanding tag in program order.
            if (node.next_commit < node.next_alloc &&
                hasSpace(node.out_channels[1])) {
                std::size_t wanted = static_cast<std::size_t>(
                    node.next_commit % node.num_tags);
                if (wanted < node.returned.size() &&
                    node.returned[wanted]) {
                    Token out = std::move(*node.returned[wanted]);
                    out.tag.reset();
                    node.returned[wanted].reset();
                    --node.returned_count;
                    const std::int64_t commit_idx = node.next_commit;
                    node.next_commit += 1;
                    trace(node, "untag " + out.toString());
                    push(node.out_channels[1], std::move(out));
                    provTagCommit(node, commit_idx);
                }
            }
            return true;
        }
        return err("simulator has no model for component type '" +
                   node.type + "'");
    }

    // ----- provenance hooks (inert when no tracker is attached) -----
    //
    // The tracker mirrors every FIFO in the simulator, so each pop()/
    // push() path above must report through exactly one hook; the
    // bodies compile out entirely under GRAPHITI_OBS=OFF.

    std::uint32_t
    provNodeIndex(const SimNode& node) const
    {
        return static_cast<std::uint32_t>(&node - nodes_.data());
    }

    void
    provSetup()
    {
#if GRAPHITI_OBS_ENABLED
        prov_ = obs_ != nullptr ? obs_->provenance() : nullptr;
        if (prov_ == nullptr)
            return;
        std::vector<obs::ProvenanceLog::NodeInfo> nodes;
        nodes.reserve(nodes_.size());
        for (const SimNode& node : nodes_)
            nodes.push_back({node.name, node.type, node.latency,
                             node.in_channels, node.out_channels});
        std::vector<obs::ProvenanceLog::ChannelInfo> channels;
        channels.reserve(channels_.size());
        for (std::size_t ch = 0; ch < channels_.size(); ++ch)
            channels.push_back(
                {channel_desc_[ch], channels_[ch].capacity});
        prov_->beginRun(std::move(nodes), std::move(channels));
#endif
    }

    void
    provFire(const SimNode& node, const int* ins, std::size_t nins,
             const int* outs, std::size_t nouts)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onFire(provNodeIndex(node), cycle_, ins, nins, outs,
                          nouts);
#else
        (void)node;
        (void)ins;
        (void)nins;
        (void)outs;
        (void)nouts;
#endif
    }

    void
    provAccept(const SimNode& node, int latency)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onAccept(provNodeIndex(node), cycle_,
                            node.in_channels.data(),
                            node.in_channels.size(),
                            static_cast<std::uint32_t>(latency));
#else
        (void)node;
        (void)latency;
#endif
    }

    void
    provEmit(const SimNode& node)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onEmit(provNodeIndex(node), node.out_channels[0],
                          cycle_);
#else
        (void)node;
#endif
    }

    void
    provSpawn(const SimNode& node, int channel)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onSpawn(provNodeIndex(node), channel, cycle_);
#else
        (void)node;
        (void)channel;
#endif
    }

    void
    provInput(int port, int channel)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onBirth(channel, port, cycle_);
#else
        (void)port;
        (void)channel;
#endif
    }

    void
    provOutput(int port, int channel)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onOutput(port, channel, cycle_);
#else
        (void)port;
        (void)channel;
#endif
    }

    void
    provTagAlloc(const SimNode& node, std::int64_t alloc_idx)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onTagAlloc(provNodeIndex(node), cycle_,
                              node.in_channels[0], node.out_channels[0],
                              static_cast<std::uint64_t>(alloc_idx));
#else
        (void)node;
        (void)alloc_idx;
#endif
    }

    void
    provTagReturn(const SimNode& node, Tag tag)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ == nullptr)
            return;
        // Tags are unique within the outstanding window, so the
        // allocation index is recoverable from the tag alone.
        const std::int64_t n = node.num_tags;
        const std::int64_t idx =
            node.next_commit +
            ((static_cast<std::int64_t>(tag) - node.next_commit) % n +
             n) % n;
        prov_->onTagReturn(provNodeIndex(node), cycle_,
                           node.in_channels[1],
                           static_cast<std::uint64_t>(idx),
                           static_cast<std::uint32_t>(
                               idx - node.next_commit));
#else
        (void)node;
        (void)tag;
#endif
    }

    void
    provTagCommit(const SimNode& node, std::int64_t commit_idx)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->onTagCommit(provNodeIndex(node), cycle_,
                               node.out_channels[1],
                               static_cast<std::uint64_t>(commit_idx));
#else
        (void)node;
        (void)commit_idx;
#endif
    }

    /**
     * After the step loop: classify every node that held input tokens
     * but could not fire this cycle, so the head tokens of its
     * occupied input queues learn whether they were waiting on a
     * starved consumer or a backpressured one. Uses raw occupancy
     * (not hasToken/hasSpace) so fault hooks are not re-triggered.
     */
    void
    provBlocked()
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ == nullptr)
            return;
        for (const SimNode& node : nodes_) {
            if (node.last_fire && *node.last_fire == cycle_)
                continue;
            bool holds = false;
            bool starved = false;
            for (int ch : node.in_channels) {
                if (ch < 0)
                    continue;
                if (channels_[ch].empty())
                    starved = true;
                else
                    holds = true;
            }
            if (!holds)
                continue;
            bool backpressured = false;
            if (!starved) {
                for (int ch : node.out_channels) {
                    if (ch >= 0 && channels_[ch].slots.size() +
                                           staged_[ch].size() >=
                                       channels_[ch].capacity) {
                        backpressured = true;
                        break;
                    }
                }
            }
            if (starved || backpressured)
                prov_->onNodeBlocked(provNodeIndex(node), cycle_,
                                     starved, backpressured);
        }
#endif
    }

    void
    provEnd(std::size_t cycles)
    {
#if GRAPHITI_OBS_ENABLED
        if (prov_ != nullptr)
            prov_->endRun(cycles);
#else
        (void)cycles;
#endif
    }

    static Result<Value>
    parseConstantValue(const std::string& text)
    {
        return parseConstant(text);
    }

#if GRAPHITI_OBS_ENABLED
    /** Declare one valid/ready/data signal triple per channel. */
    void
    setupVcd()
    {
        vcd_ = obs_->vcd();
        // A writer whose header is already frozen (a previous run on
        // the same scope) cannot take new signals.
        if (vcd_ == nullptr || vcd_->started()) {
            vcd_valid_.clear();
            if (vcd_ != nullptr && vcd_->numSignals() ==
                                       channels_.size() * 3) {
                // Same circuit, subsequent run: reuse the handles.
                for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
                    vcd_valid_.push_back(static_cast<int>(ch * 3));
                    vcd_ready_.push_back(static_cast<int>(ch * 3 + 1));
                    vcd_data_.push_back(static_cast<int>(ch * 3 + 2));
                }
            } else {
                vcd_ = nullptr;
            }
            return;
        }
        vcd_valid_.clear();
        vcd_ready_.clear();
        vcd_data_.clear();
        for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
            std::string base =
                "ch" + std::to_string(ch) + "_" + channel_desc_[ch];
            vcd_valid_.push_back(vcd_->wire(base + "_valid", 1));
            vcd_ready_.push_back(vcd_->wire(base + "_ready", 1));
            vcd_data_.push_back(vcd_->wire(base + "_data", 64));
        }
        vcd_->begin();
    }

    /** Fire event + the preceding idle gap as a stall span. */
    void
    observeFire(const SimNode& node, std::size_t cycle)
    {
        if (node.last_fire && cycle > *node.last_fire + 1)
            sink_->span(node.name, "stall",
                        static_cast<double>(*node.last_fire + 1),
                        static_cast<double>(cycle - *node.last_fire - 1));
        sink_->event(
            TraceEvent{cycle, node.name, -1, obs::EventKind::Fire, {}});
    }

    void
    observeFault(int channel, const char* what)
    {
        ++stat_fault_holds_;
        if (sink_ != nullptr)
            sink_->event(TraceEvent{cycle_, channel_desc_[channel],
                                    channel, obs::EventKind::Fault,
                                    what});
    }

    /** Per-cycle bookkeeping: local stats, occupancy tracks, VCD. */
    void
    observeCycle()
    {
        stat_fires_ += moves_;
        if (moves_ == 0)
            ++stat_stall_cycles_;
        std::size_t in_flight = 0;
        if (last_occupancy_.size() != channels_.size())
            last_occupancy_.assign(channels_.size(),
                                   static_cast<std::size_t>(-1));
        for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
            std::size_t occupancy = channels_[ch].slots.size();
            in_flight += occupancy;
            if (sink_ != nullptr && occupancy != last_occupancy_[ch]) {
                sink_->counter("occupancy " + channel_desc_[ch],
                               static_cast<double>(cycle_),
                               static_cast<double>(occupancy));
                last_occupancy_[ch] = occupancy;
            }
            if (vcd_ != nullptr) {
                vcd_->sample(cycle_, vcd_valid_[ch], occupancy > 0);
                vcd_->sample(cycle_, vcd_ready_[ch],
                             occupancy < channels_[ch].capacity);
                if (occupancy > 0)
                    vcd_->sample(cycle_, vcd_data_[ch],
                                 vcdValueOf(channels_[ch].slots.front()));
            }
        }
        max_in_flight_ = std::max(max_in_flight_, in_flight);
    }

    static std::uint64_t
    vcdValueOf(const Token& token)
    {
        const Value& v = token.value;
        if (v.isBool())
            return v.asBool() ? 1 : 0;
        if (v.isInt())
            return static_cast<std::uint64_t>(v.asInt());
        if (v.isDouble())
            return static_cast<std::uint64_t>(v.asDouble());
        return 0;  // unit / tuple payloads carry no scalar
    }

    /** Flush the batched per-run stats into the registry. */
    void
    finishObservation(std::size_t cycles)
    {
        obs::MetricsRegistry& m = obs_->metrics();
        m.add("sim.runs");
        m.add("sim.cycles", static_cast<std::int64_t>(cycles));
        m.add("sim.fires", static_cast<std::int64_t>(stat_fires_));
        m.add("sim.stall_cycles",
              static_cast<std::int64_t>(stat_stall_cycles_));
        m.add("sim.fault_holds",
              static_cast<std::int64_t>(stat_fault_holds_));
        m.add("sim.outputs", static_cast<std::int64_t>(stat_outputs_));
        m.setMax("sim.tokens_in_flight_max",
                 static_cast<double>(max_in_flight_));
        m.set("sim.channels", static_cast<double>(channels_.size()));
        m.set("sim.nodes", static_cast<double>(nodes_.size()));
    }
#endif  // GRAPHITI_OBS_ENABLED

    static constexpr std::size_t kNoNode =
        static_cast<std::size_t>(-1);

    Simulator& owner_;
    std::vector<SimNode> nodes_;
    std::vector<Channel> channels_;
    std::vector<std::string> channel_desc_;
    /** Node producing / consuming each channel (-1 = graph I/O). */
    std::vector<int> channel_producer_;
    std::vector<int> channel_consumer_;
    /** Ready-worklist wake flags for this and the next cycle. */
    std::vector<std::uint8_t> awake_;
    std::vector<std::uint8_t> next_awake_;
    /** Index of the node currently stepping (kNoNode outside the
     * sweep); decides same-cycle vs next-cycle wakes in pop(). */
    std::size_t stepping_ = kNoNode;
    std::vector<std::deque<Token>> staged_;
    std::vector<int> input_channels_;
    std::vector<int> output_channels_;
    std::vector<std::vector<Token>> input_streams_;
    std::vector<std::size_t> input_pos_;
    std::map<std::string, std::vector<double>> memories_;
    FaultInjector* faults_ = nullptr;
    obs::Scope* obs_ = nullptr;
    obs::TraceSink* sink_ = nullptr;
    obs::ProvenanceTracker* prov_ = nullptr;
    obs::VcdWriter* vcd_ = nullptr;
    std::vector<int> vcd_valid_;
    std::vector<int> vcd_ready_;
    std::vector<int> vcd_data_;
    std::vector<std::size_t> last_occupancy_;
    std::size_t stat_fires_ = 0;
    std::size_t stat_stall_cycles_ = 0;
    std::size_t stat_fault_holds_ = 0;
    std::size_t stat_outputs_ = 0;
    std::size_t max_in_flight_ = 0;
    std::size_t moves_ = 0;
    bool pipeline_busy_ = false;
    bool fault_hold_ = false;
    bool output_moved_ = false;
    std::size_t cycle_ = 0;
    std::vector<TraceEvent>* trace_ = nullptr;
};

Result<Simulator>
Simulator::build(const ExprHigh& graph,
                 std::shared_ptr<FnRegistry> functions,
                 const SimConfig& config)
{
    Result<bool> valid = graph.validate();
    if (!valid.ok())
        return valid.error().context("Simulator::build");
    Simulator s;
    s.graph_ = graph;
    s.functions_ = std::move(functions);
    s.config_ = config;
    return s;
}

void
Simulator::setMemory(const std::string& name, std::vector<double> data)
{
    memories_[name] = std::move(data);
}

Result<SimResult>
Simulator::run(const std::vector<std::vector<Token>>& inputs,
               std::size_t expected_outputs, bool serial_io)
{
    diagnosis_.reset();
    Impl impl(*this);
    return impl.run(inputs, expected_outputs, serial_io);
}

std::size_t
Simulator::channelCount(const ExprHigh& graph)
{
    std::size_t count = graph.edges().size();
    for (const auto& input : graph.inputs())
        count += input.has_value();
    for (const auto& output : graph.outputs())
        count += output.has_value();
    return count;
}

}  // namespace graphiti::sim
