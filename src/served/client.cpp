#include "served/client.hpp"

#include <chrono>
#include <thread>

namespace graphiti::served {

namespace json = obs::json;

Client::Client(ClientConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
}

void Client::disconnect() { socket_.close(); }

Result<net::Socket>
Client::connect()
{
    if (!config_.socket_path.empty())
        return net::connectUnix(config_.socket_path);
    if (config_.tcp_port >= 0)
        return net::connectTcp(
            static_cast<std::uint16_t>(config_.tcp_port));
    return err("client has neither a socket path nor a TCP port");
}

Result<JobResponse>
Client::requestOnce(const std::string& payload)
{
    if (!socket_.valid()) {
        Result<net::Socket> connected = connect();
        if (!connected.ok())
            return connected.error().context("Client::request");
        socket_ = connected.take();
    }
    Result<bool> sent =
        writeFrame(socket_, payload, config_.io_timeout_ms);
    if (!sent.ok()) {
        socket_.close();
        return sent.error().context("Client::request send");
    }
    std::string frame;
    Result<bool> received =
        readFrame(socket_, frame, config_.io_timeout_ms);
    if (!received.ok()) {
        socket_.close();
        return received.error().context("Client::request receive");
    }
    if (!received.value()) {
        socket_.close();
        return err("Client::request: daemon closed the connection "
                   "before responding");
    }
    Result<json::Value> parsed = json::parse(frame);
    if (!parsed.ok())
        return parsed.error().context("Client::request response");
    Result<JobResponse> response = jobResponseFromJson(parsed.value());
    if (!response.ok())
        return response.error().context("Client::request response");
    return response;
}

std::string
Client::mintJobId()
{
    // Hex of one Rng draw: unique across clients with distinct seeds,
    // deterministic for a seeded replay.
    static const char* digits = "0123456789abcdef";
    std::uint64_t draw = rng_.next();
    std::string id = "c-";
    for (int shift = 60; shift >= 0; shift -= 4)
        id.push_back(digits[(draw >> shift) & 0xf]);
    return id;
}

Result<JobResponse>
Client::request(const JobSpec& spec, double deadline_seconds,
                const std::string& job_id)
{
    JobRequest request;
    request.id = next_id_++;
    request.job = spec.toJson();
    request.deadline_seconds = deadline_seconds;
    // One id per LOGICAL request: the payload is built once, so every
    // retry attempt below carries the same correlation id.
    request.job_id = job_id.empty() ? mintJobId() : job_id;
    last_job_id_ = request.job_id;
    std::string payload = request.toJson().dump();
    stats_.requests += 1;

    std::string last_failure;
    for (std::size_t attempt = 0;
         attempt < config_.backoff.max_attempts; ++attempt) {
        if (attempt > 0)
            stats_.retries += 1;
        double retry_after_ms = 0.0;
        Result<JobResponse> sent = requestOnce(payload);
        if (sent.ok()) {
            if (sent.value().status != "rejected")
                return sent;
            stats_.sheds_seen += 1;
            retry_after_ms = sent.value().retry_after_ms;
            last_failure = "shed: " + sent.value().error;
        } else {
            stats_.transport_failures += 1;
            last_failure = sent.error().message;
        }
        if (attempt + 1 >= config_.backoff.max_attempts)
            break;
        double delay_ms = backoffDelayMs(config_.backoff, attempt,
                                         rng_, retry_after_ms);
        if (config_.sleep_between_retries && delay_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
    }
    return err("Client::request: gave up after " +
               std::to_string(config_.backoff.max_attempts) +
               " attempts (" + last_failure + ")");
}

Result<obs::json::Value>
Client::call(const JobSpec& spec, double deadline_seconds)
{
    Result<JobResponse> response = request(spec, deadline_seconds);
    if (!response.ok())
        return response.error();
    if (!response.value().ok())
        return err("job " + response.value().status + ": " +
                   response.value().error);
    return response.value().result;
}

Result<bool>
Client::ping()
{
    JobSpec spec;
    spec.kind = "ping";
    Result<json::Value> result = call(spec);
    if (!result.ok())
        return result.error();
    const json::Value* pong = result.value().find("pong");
    if (pong == nullptr || !pong->isBool() || !pong->asBool())
        return err("ping: daemon answered without a pong");
    return true;
}

Result<obs::json::Value>
Client::introspect(const char* kind)
{
    JobSpec spec;
    spec.kind = kind;
    Result<json::Value> result = call(spec);
    if (!result.ok())
        return result.error();
    const json::Value* payload = result.value().find(kind);
    if (payload == nullptr)
        return err(std::string(kind) +
                   ": daemon answered without a payload");
    return *payload;
}

Result<obs::json::Value> Client::serviceStats()
{
    return introspect("stats");
}

Result<obs::json::Value> Client::serviceJobs()
{
    return introspect("jobs");
}

Result<obs::json::Value> Client::serviceHealth()
{
    return introspect("health");
}

Result<std::string>
Client::serviceMetricsText()
{
    JobSpec spec;
    spec.kind = "metricsz";
    Result<json::Value> result = call(spec);
    if (!result.ok())
        return result.error();
    const json::Value* text = result.value().find("text");
    if (text == nullptr || !text->isString())
        return err("metricsz: daemon answered without a text payload");
    return text->asString();
}

}  // namespace graphiti::served
