#ifndef GRAPHITI_SERVED_OBSERVE_HPP
#define GRAPHITI_SERVED_OBSERVE_HPP

/**
 * @file
 * The service observability plane (docs/service_observability.md):
 * one ServiceObserver bundles everything the daemon can be asked
 * about at runtime —
 *
 *   - a service-wide obs::Scope (metrics registry; each finished
 *     job's private scope is folded into it),
 *   - a structured obs::Logger (JSON-lines, correlation ids),
 *   - an obs::SpanTracker (per-job queue-wait / execute spans on a
 *     shared timeline, one track per correlation id, optionally
 *     forwarded to a PerfettoTraceSink for one service-level trace
 *     across concurrent jobs),
 *   - an obs::FlightRecorder (bounded post-mortem ring),
 *   - per-verb latency reservoirs split into queue-wait vs execute,
 *     keyed by JobSpec kind so ping traffic cannot mask compile p99.
 *
 * Emission call sites in the scheduler and daemon go through the
 * GRAPHITI_SVC_* macros (or explicit GRAPHITI_OBS_ENABLED blocks),
 * which compile to nothing under -DGRAPHITI_OBS=OFF: the OFF build
 * strips every event-name and span-name string from the served
 * objects (ci/obs_gate.sh asserts that) while the introspection
 * verbs themselves — live job table, scheduler/store/connection
 * counters — stay functional.
 */

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/log.hpp"
#include "obs/scope.hpp"
#include "obs/span.hpp"

namespace graphiti::served {

/** Per-verb accounting: outcome counts + split latency windows. */
struct VerbStats
{
    std::size_t requests = 0;
    std::size_t ok = 0;
    std::size_t errors = 0;
    std::size_t shed = 0;
    std::size_t cancelled = 0;
    obs::LatencyReservoir queue_wait{1024};
    obs::LatencyReservoir execute{1024};

    /** {requests, ok, errors, shed, cancelled, queue_wait: {...},
     * execute: {...}}. */
    obs::json::Value toJson() const;
};

/** Everything observable about one running service. */
class ServiceObserver
{
  public:
    explicit ServiceObserver(std::size_t flight_capacity = 256,
                             std::size_t log_capacity = 1024,
                             std::size_t span_capacity = 2048);

    obs::Scope& scope() { return *scope_; }
    const obs::Scope& scope() const { return *scope_; }
    const std::shared_ptr<obs::Scope>& scopePtr() const
    {
        return scope_;
    }

    obs::Logger& log() { return log_; }
    obs::SpanTracker& spans() { return spans_; }
    obs::FlightRecorder& flight() { return flight_; }
    const obs::FlightRecorder& flight() const { return flight_; }

    /** Forward spans to @p sink (the tracker serializes access) and
     * keep a handle so the daemon tool can write the trace file. */
    void attachTrace(std::shared_ptr<obs::PerfettoTraceSink> sink);
    obs::PerfettoTraceSink* trace() const { return trace_.get(); }

    /** Account one finished request under its verb. @p status is the
     * wire status ("ok" / "error" / "rejected" / "cancelled"). */
    void recordVerb(const std::string& kind, const std::string& status,
                    double queue_wait_ms, double execute_ms);

    /** {kind: VerbStats...} for every verb seen so far. */
    obs::json::Value verbsJson() const;

    double uptimeSeconds() const;

  private:
    std::shared_ptr<obs::Scope> scope_;
    obs::Logger log_;
    obs::SpanTracker spans_;
    obs::FlightRecorder flight_;
    std::shared_ptr<obs::PerfettoTraceSink> trace_;
    mutable std::mutex verbs_mutex_;
    std::map<std::string, VerbStats> verbs_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace graphiti::served

#if GRAPHITI_OBS_ENABLED

/** Log one structured service event (fields via obs::logFields). */
#define GRAPHITI_SVC_LOG(observer, level, job_id, event, ...)          \
    do {                                                               \
        ::graphiti::served::ServiceObserver* svc_obs_ = (observer);    \
        if (svc_obs_ != nullptr)                                       \
            svc_obs_->log().log((level), (job_id), (event),            \
                                ::graphiti::obs::logFields(            \
                                    __VA_ARGS__));                     \
    } while (0)

/** Append one flight-recorder entry. */
#define GRAPHITI_SVC_FLIGHT(observer, kind, ...)                       \
    do {                                                               \
        ::graphiti::served::ServiceObserver* svc_obs_ = (observer);    \
        if (svc_obs_ != nullptr)                                       \
            svc_obs_->flight().record(                                 \
                (kind),                                                \
                ::graphiti::obs::logFields(__VA_ARGS__));              \
    } while (0)

#else  // !GRAPHITI_OBS_ENABLED

#define GRAPHITI_SVC_LOG(observer, level, job_id, event, ...)          \
    do {                                                               \
    } while (0)
#define GRAPHITI_SVC_FLIGHT(observer, kind, ...)                       \
    do {                                                               \
    } while (0)

#endif  // GRAPHITI_OBS_ENABLED

#endif  // GRAPHITI_SERVED_OBSERVE_HPP
