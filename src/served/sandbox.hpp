#ifndef GRAPHITI_SERVED_SANDBOX_HPP
#define GRAPHITI_SERVED_SANDBOX_HPP

/**
 * @file
 * Process isolation for served compile jobs (docs/service.md,
 * "Process isolation").
 *
 * A WorkerProcess forks one sandboxed child and speaks the existing
 * length-prefixed JSON frames (served/protocol.hpp) over a
 * socketpair. The child applies resource jails derived from the
 * job's VerificationBudget (soft RLIMIT_AS / RLIMIT_CPU), runs the
 * same core::runJob seam the in-thread lanes use, streams back
 * heartbeats carrying its VerifyProbe progress, and proxies verdict
 * cache traffic to the parent — every real store write stays in the
 * daemon, so a dying child can never tear the store or leave a
 * half-committed verdict.
 *
 * The parent classifies every child exit via waitpid into an honest
 * structured outcome: a clean result, a deterministic error, a crash
 * (SIGSEGV/SIGABRT/SIGBUS/...), a resource-jail death (SIGXCPU, the
 * OOM exit sentinel, an unexplained SIGKILL), a cancellation (the
 * parent SIGKILLed the child's process group on stop request), or a
 * wedge (heartbeat-silent past the timeout → SIGKILL). Crash-class
 * outcomes carry a post-mortem artifact in the faults::failureArtifact
 * mold: exit classification, the last heartbeat snapshot, and the
 * rlimit jail that was in force. Never a hang, never a daemon death.
 *
 * Verdicts are byte-identical isolated vs. in-process vs. one-shot at
 * any thread count: the child runs the identical compile path, and
 * the verdict-store proxy preserves in-process cache semantics
 * (tests/test_sandbox.cpp pins this benchmark by benchmark).
 */

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "guard/governor.hpp"
#include "guard/verify_cache.hpp"
#include "obs/scope.hpp"
#include "support/cancel.hpp"
#include "support/socket.hpp"

namespace graphiti::served {

/** Exit code the child's new-handler uses when the RLIMIT_AS jail
 * makes an allocation fail: a deterministic OOM sentinel the parent
 * can classify without guessing at SIGABRT causes. */
constexpr int kOomExitCode = 77;

/** False under AddressSanitizer, whose terabytes of shadow address
 * space make any meaningful RLIMIT_AS ceiling fatal at startup; the
 * jail (and the tests driving it) disarm there. */
bool sandboxAddressJailSupported();

/** The resource jail of one job (soft limits set in the child). */
struct WorkerLimits
{
    /** Soft RLIMIT_AS ceiling; 0 = leave inherited. */
    std::uint64_t address_space_bytes = 0;
    /** Soft RLIMIT_CPU allowance *for this job* (the child adds its
     * already-consumed CPU time); 0 = leave inherited. */
    std::uint64_t cpu_seconds = 0;

    obs::json::Value toJson() const;
};

/**
 * Derive a job's jail from its verification budget: address space is
 * a 1 GiB floor plus 2 KiB per budgeted state (full + partial
 * caps) plus 128 MiB per verifier thread (stacks and malloc-arena
 * address reservations are per-thread), clamped to 4 GiB — generous
 * against honest peak virtual-address use (RLIMIT_AS counts mmap
 * reservations, not RSS, and allocation failures outside operator
 * new surface as SIGSEGV rather than the OOM sentinel), tight
 * against a runaway allocator. CPU time is only jailed when the budget carries a
 * wall-clock deadline: twice the deadline plus 5 s of slack (a
 * deadline-free budget is governed by state caps, which bound work
 * but not wall-clock-to-CPU ratio).
 */
WorkerLimits workerLimits(const guard::VerificationBudget& budget,
                          std::size_t threads = 1);

/** How one child exit reads after classification. */
enum class ExitClass : std::uint8_t
{
    Clean,      ///< exited 0 (shutdown or protocol-complete)
    Exit,       ///< exited nonzero (tool died politely)
    Crash,      ///< fatal signal: SIGSEGV/SIGABRT/SIGBUS/SIGILL/...
    Resource,   ///< the jail: SIGXCPU, OOM sentinel, stray SIGKILL
    Cancelled,  ///< parent killed the group on a stop request
    Wedged,     ///< parent killed the group after heartbeat silence
};

const char* toString(ExitClass cls);

/** What the parent did to the child before reaping it. */
enum class KillContext : std::uint8_t
{
    None,  ///< the child died on its own
    Stop,  ///< SIGKILLed on stop request (deadline/disconnect/preempt)
    Wedge, ///< SIGKILLed after heartbeat silence
};

/** One classified child exit. */
struct ExitStatus
{
    ExitClass cls = ExitClass::Clean;
    /** Exit code (Exit/Clean) or signal number (Crash/Resource). */
    int code = 0;
    /** Human-readable: "signal SIGSEGV", "exit 7", "cpu rlimit". */
    std::string detail;
};

/**
 * Classify one waitpid status. Pure function — the exit-
 * classification table in tests/test_sandbox.cpp drives it directly.
 * @p context records a kill the parent itself sent (those always win:
 * a SIGKILL the parent sent is a cancellation or a wedge, not a
 * resource death); @p limits disambiguates jail deaths.
 */
ExitStatus classifyExit(int wait_status, KillContext context,
                        const WorkerLimits& limits);

/** Last heartbeat the parent saw from a child (artifact material). */
struct HeartbeatSnapshot
{
    bool seen = false;
    std::chrono::steady_clock::time_point at{};
    std::int64_t states = 0;
    obs::json::Value progress;
};

/**
 * Build the post-mortem artifact (JSON text, failureArtifact-style)
 * of one dead worker: the classified exit, the last heartbeat and its
 * age, and the rlimit jail that was in force.
 */
std::string crashArtifact(const std::string& job_id,
                          const ExitStatus& exit_status,
                          const HeartbeatSnapshot& last_heartbeat,
                          const WorkerLimits& limits, int pid);

/**
 * Outcome of one isolated job, scheduler-independent (the Scheduler
 * maps it onto its JobOutcome verbatim). Status follows
 * protocol.hpp: "ok" | "error" | "cancelled" | "rejected".
 */
struct SandboxOutcome
{
    std::string status = "error";
    obs::json::Value result;
    std::string error;
    /** Crash post-mortem (JSON text); empty for clean outcomes. */
    std::string artifact;
    /** Breaker shed hint ("rejected" only). */
    double retry_after_ms = 0.0;
    /** Classification of a worker death behind this outcome; Clean
     * when the worker answered normally and is still alive. */
    ExitClass exit_class = ExitClass::Clean;
    /** True when the worker process died producing this outcome. */
    bool worker_died = false;
};

/** Parent-side verdict-store callbacks the child's proxy traffic is
 * answered from (bound to the scheduler's shared store). */
struct StoreHooks
{
    std::function<std::optional<guard::VerificationVerdict>(
        std::uint64_t)>
        lookup;
    std::function<void(std::uint64_t,
                       const guard::VerificationVerdict&)>
        store;
};

/** Sandbox tuning (shared by every worker of a pool). */
struct SandboxConfig
{
    /** Child heartbeat cadence while a job runs. */
    double heartbeat_period_ms = 50.0;
    /** Heartbeat silence before the parent declares the child wedged
     * and SIGKILLs its group; 0 = inherit the scheduler's
     * wedge_grace_seconds. */
    double heartbeat_timeout_seconds = 0.0;
    /** Parent poll slice: stop tokens and heartbeat age are checked
     * at this cadence, so a disconnect kills the child within it. */
    double poll_slice_ms = 20.0;
    /** Frame IO timeout (handshake, store replies, result frames). */
    int io_timeout_ms = 30000;
    /** Jail override applied to every job; zero fields fall back to
     * the per-job workerLimits() derivation (tests force tiny jails
     * through this). */
    WorkerLimits limits;
    /** CrashPlan text placed in the child's GRAPHITI_CRASH_PLAN;
     * empty = leave the inherited environment alone. */
    std::string crash_plan;
};

/**
 * One sandboxed worker: a forked child in its own process group,
 * warm across jobs, killed and classified on any misbehavior.
 * Thread-compatible, not thread-safe — a pool lane owns one at a
 * time (the WorkerPool serializes checkout).
 */
class WorkerProcess
{
  public:
    explicit WorkerProcess(SandboxConfig config);
    ~WorkerProcess();

    WorkerProcess(const WorkerProcess&) = delete;
    WorkerProcess& operator=(const WorkerProcess&) = delete;

    /**
     * Fork the child and wait for its ready handshake. @p close_fds
     * are parent-side descriptors of *other* workers the child must
     * close, so a sibling holding a duped socketpair end can never
     * mask another child's EOF.
     */
    Result<bool> spawn(const std::vector<int>& close_fds = {});

    /** True while the child process is believed alive. */
    bool alive() const { return pid_ > 0; }
    int pid() const { return pid_; }
    /** Parent-side socket fd (for sibling close lists); -1 if dead. */
    int socketFd() const { return socket_.fd(); }

    /**
     * Run one job in the child and wait for its outcome. Polls
     * @p stop every poll slice — on fire the child's process group is
     * SIGKILLed and the outcome reports "cancelled". Store traffic is
     * answered through @p hooks; heartbeat progress is mirrored into
     * @p job_scope so the jobs verb stays live. Any child death is
     * classified into a structured error with artifact; after one,
     * alive() is false and the pool respawns.
     */
    SandboxOutcome execute(const std::string& job_id,
                           const JobSpec& spec, const StopToken& stop,
                           obs::Scope* job_scope,
                           const StoreHooks& hooks);

    /** Classification of the last death observed by execute();
     * Clean/code 0 when the worker has not died. */
    const ExitStatus& lastExit() const { return last_exit_; }

    /** Polite shutdown: a shutdown frame, a bounded wait, then the
     * kill escalation. */
    void shutdown();

    /** SIGKILL the child's process group and reap it. */
    void kill(KillContext context);

  private:
    /** Reap the dead/killed child and classify (waitpid). */
    ExitStatus reap(KillContext context, const WorkerLimits& limits);
    /** Mirror one heartbeat into the job's scope/probe. */
    void mirrorHeartbeat(const obs::json::Value& beat,
                         obs::Scope* job_scope);

    SandboxConfig config_;
    net::Socket socket_;
    int pid_ = -1;
    std::uint64_t next_serial_ = 1;
    HeartbeatSnapshot last_heartbeat_;
    /** states counter already folded into the current job's scope
     * (heartbeats carry totals; the scope wants deltas). */
    std::int64_t mirrored_states_ = 0;
    ExitStatus last_exit_;
};

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_SANDBOX_HPP
