#ifndef GRAPHITI_SERVED_WORKER_POOL_HPP
#define GRAPHITI_SERVED_WORKER_POOL_HPP

/**
 * @file
 * Warm prefork pool of sandboxed workers (docs/service.md, "Process
 * isolation").
 *
 * The Scheduler's lanes dispatch here instead of running jobs
 * in-thread when `--isolate N` is set. The pool preforks N warm
 * WorkerProcess children, checks one out per job, and respawns any
 * that die — a crashing compile costs one respawn, never a daemon.
 *
 * Crash-loop circuit breaker: >= K worker deaths inside a sliding
 * T-second window trip the breaker. While open, execute() sheds with
 * "rejected" and a retry_after_ms equal to the remaining cooldown
 * instead of forking futilely into whatever is killing workers
 * (a poisoned store, a kernel limit, a bad deploy); health reports
 * the pool degraded. The cooldown doubles per consecutive trip
 * (support/backoff.hpp shape, un-jittered so tests can pin it) and a
 * successful job closes the loop and clears the death window.
 */

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "served/observe.hpp"
#include "served/sandbox.hpp"
#include "support/backoff.hpp"

namespace graphiti::served {

/** Pool shape. */
struct WorkerPoolConfig
{
    /** Warm sandboxed children (and dispatch concurrency). */
    std::size_t workers = 2;
    /** Shared sandbox tuning (jails, heartbeats, crash plan seam). */
    SandboxConfig sandbox;
    /** Worker deaths inside the window that trip the breaker. */
    std::size_t breaker_deaths = 5;
    /** Sliding death-counting window. */
    double breaker_window_seconds = 10.0;
    /** Cooldown shape: base doubles per consecutive trip up to cap
     * (max_attempts is unused here — the breaker never gives up). */
    BackoffPolicy breaker_backoff{8, 250.0, 10000.0};
    /** Flight/log records (worker spawn/crash/respawn/breaker-trip)
     * and pool counters; null = unobserved. */
    std::shared_ptr<ServiceObserver> observer;
};

/** Pool counters (stats/health/metricsz). */
struct WorkerPoolStats
{
    std::size_t configured = 0;
    std::size_t live = 0;
    std::size_t busy = 0;
    std::size_t spawned = 0;
    /** Spawns replacing a dead worker (spawned - initial prefork). */
    std::size_t respawned = 0;
    /** Worker deaths while executing (every non-clean exit). */
    std::size_t crashes = 0;
    std::map<std::string, std::size_t> crashes_by_class;
    std::size_t breaker_trips = 0;
    bool breaker_open = false;
    double breaker_remaining_ms = 0.0;

    obs::json::Value toJson() const;
};

/** The warm prefork pool. */
class WorkerPool
{
  public:
    WorkerPool(WorkerPoolConfig config, StoreHooks hooks);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Prefork the warm children. Fails if any initial spawn fails. */
    Result<bool> start();

    /** Shut every worker down (polite frame, then the kill
     * escalation). Safe to call twice. */
    void stop();

    /**
     * Run one job on a checked-out worker. Sheds with "rejected" +
     * retry_after_ms while the breaker is open; otherwise respawns a
     * dead slot if needed, dispatches, and records any death (class
     * counters, breaker window, flight records). The worker's
     * heartbeats are mirrored into @p job_scope.
     */
    SandboxOutcome execute(const std::string& job_id,
                           const JobSpec& spec, const StopToken& stop,
                           obs::Scope* job_scope);

    /** Replace the crash-plan seam for future (re)spawns — the test
     * hook that ends a crash storm without touching the environment
     * of a live daemon. */
    void setCrashPlan(const std::string& plan);

    WorkerPoolStats stats() const;
    /** stats() as the `health`/`stats` verbs embed it. */
    obs::json::Value healthJson() const;
    /** True while the breaker holds submissions off. */
    bool breakerOpen() const;

  private:
    struct Slot
    {
        std::unique_ptr<WorkerProcess> worker;
        bool busy = false;
    };

    /** Spawn (or respawn) @p slot's worker; counts and records.
     * Caller holds mutex_. */
    Result<bool> spawnSlotLocked(Slot& slot, bool is_respawn);
    /** Record one worker death; trips the breaker past the
     * threshold. Caller holds mutex_. */
    void recordDeathLocked(const std::string& cls,
                           const std::string& job_id);
    /** Remaining cooldown; <= 0 when closed. Caller holds mutex_. */
    double breakerRemainingMsLocked(
        std::chrono::steady_clock::time_point now) const;

    WorkerPoolConfig config_;
    StoreHooks hooks_;

    mutable std::mutex mutex_;
    std::condition_variable slot_free_;
    std::vector<Slot> slots_;
    bool started_ = false;
    bool stopping_ = false;

    std::size_t spawned_ = 0;
    std::size_t respawned_ = 0;
    std::size_t crashes_ = 0;
    std::map<std::string, std::size_t> crashes_by_class_;
    /** Death timestamps inside the breaker window. */
    std::deque<std::chrono::steady_clock::time_point> deaths_;
    std::size_t breaker_trips_ = 0;
    /** Trips since the last successful job (cooldown doubling). */
    std::size_t consecutive_trips_ = 0;
    std::chrono::steady_clock::time_point breaker_until_{};
    bool breaker_armed_ = false;
};

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_WORKER_POOL_HPP
