#include "served/daemon.hpp"

#include <algorithm>
#include <cstdio>

namespace graphiti::served {

namespace json = obs::json;

Daemon::Daemon(DaemonConfig config) : config_(std::move(config))
{
    // Every daemon carries a ServiceObserver: callers that configured
    // one keep theirs (shared with their own probes); the rest get a
    // default so stats/jobs/health always answer.
    if (config_.scheduler.observer == nullptr)
        config_.scheduler.observer =
            std::make_shared<ServiceObserver>();
    observer_ = config_.scheduler.observer;
    scheduler_ = std::make_unique<Scheduler>(config_.scheduler);
}

Daemon::~Daemon() { stop(); }

Result<bool>
Daemon::start()
{
    if (started_)
        return err("daemon already started");
    if (config_.socket_path.empty())
        return err("daemon requires a socket path");
    Result<bool> booted = scheduler_->start();
    if (!booted.ok())
        return booted.error().context("Daemon::start");

    Result<net::Socket> unix_listener =
        net::listenUnix(config_.socket_path);
    if (!unix_listener.ok())
        return unix_listener.error().context("Daemon::start");
    accept_threads_.emplace_back(
        [this, listener = std::move(unix_listener.value())]() mutable {
            acceptLoop(std::move(listener));
        });

    if (config_.tcp_port >= 0) {
        Result<net::Socket> tcp_listener = net::listenTcp(
            static_cast<std::uint16_t>(config_.tcp_port));
        if (!tcp_listener.ok())
            return tcp_listener.error().context("Daemon::start");
        Result<std::uint16_t> port =
            net::boundPort(tcp_listener.value());
        if (!port.ok())
            return port.error().context("Daemon::start");
        tcp_port_ = port.value();
        accept_threads_.emplace_back(
            [this,
             listener = std::move(tcp_listener.value())]() mutable {
                acceptLoop(std::move(listener));
            });
    }
    if (config_.expose_port >= 0) {
        Result<bool> exposed = expose_.start(
            static_cast<std::uint16_t>(config_.expose_port),
            [this] { return metricsText(); });
        if (!exposed.ok())
            return exposed.error().context("Daemon::start");
    }
    started_ = true;
    return true;
}

void
Daemon::shutdown(bool graceful)
{
    if (!started_ || stopping_.exchange(true))
        return;
    // The scrape endpoint goes first: its provider reads the
    // scheduler, which is about to be torn down.
    expose_.stop();
    if (graceful)
        scheduler_->stop();
    else
        scheduler_->kill();
    for (std::thread& thread : accept_threads_)
        if (thread.joinable())
            thread.join();
    accept_threads_.clear();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns.swap(conn_threads_);
    }
    for (std::thread& thread : conns)
        if (thread.joinable())
            thread.join();
    std::remove(config_.socket_path.c_str());
    started_ = false;
}

void Daemon::stop() { shutdown(/*graceful=*/true); }

void Daemon::kill() { shutdown(/*graceful=*/false); }

obs::json::Value
Daemon::statsJson() const
{
    json::Value out{json::Object{}};
    out.set("uptime_seconds", observer_->uptimeSeconds());
    json::Value conns{json::Object{}};
    conns.set("accepted", connections_accepted_.load());
    conns.set("malformed_frames", malformed_frames_.load());
    conns.set("oversize_frames", oversize_frames_.load());
    conns.set("clean_eofs", clean_eofs_.load());
    conns.set("malformed_requests", malformed_requests_.load());
    out.set("connections", std::move(conns));
    out.set("scheduler", scheduler_->stats().toJson());
    if (WorkerPool* pool = scheduler_->workerPool())
        out.set("workers", pool->healthJson());
    out.set("store", scheduler_->store()->stats().toJson());
    out.set("verbs", observer_->verbsJson());
    out.set("metrics", observer_->scope().metrics().toJson());
    json::Value flight{json::Object{}};
    flight.set("recorded", observer_->flight().recorded());
    flight.set("dropped", observer_->flight().dropped());
    out.set("flight", std::move(flight));
    json::Value log{json::Object{}};
    log.set("recorded", observer_->log().recorded());
    log.set("dropped", observer_->log().dropped());
    out.set("log", std::move(log));
    json::Value spans{json::Object{}};
    spans.set("recorded", observer_->spans().recorded());
    spans.set("dropped", observer_->spans().dropped());
    out.set("spans", std::move(spans));
    return out;
}

obs::json::Value
Daemon::jobsJson() const
{
    return scheduler_->jobsJson();
}

obs::json::Value
Daemon::healthJson() const
{
    json::Value scheduler_health = scheduler_->healthJson();
    bool accepting = false;
    bool lanes_ok = false;
    if (const json::Value* a = scheduler_health.find("accepting"))
        accepting = a->isBool() && a->asBool();
    const json::Value* alive = scheduler_health.find("workers_alive");
    const json::Value* configured =
        scheduler_health.find("workers_configured");
    if (alive != nullptr && configured != nullptr &&
        alive->isNumber() && configured->isNumber())
        lanes_ok = alive->asNumber() >= configured->asNumber();
    // An open crash-loop breaker is exactly the degradation health
    // exists to report: the daemon answers, but sheds compiles.
    WorkerPool* pool = scheduler_->workerPool();
    bool breaker_ok = pool == nullptr || !pool->breakerOpen();

    json::Value out{json::Object{}};
    out.set("status",
            accepting && lanes_ok && breaker_ok ? "ok" : "degraded");
    out.set("uptime_seconds", observer_->uptimeSeconds());
    out.set("scheduler", std::move(scheduler_health));
    guard::VerdictStoreStats store = scheduler_->store()->stats();
    json::Value store_health = store.toJson();
    store_health.set("persistent",
                     !config_.scheduler.store.dir.empty());
    store_health.set("shards", config_.scheduler.store.shards);
    out.set("store", std::move(store_health));
    json::Value listeners{json::Object{}};
    listeners.set("socket_path", config_.socket_path);
    if (config_.tcp_port >= 0)
        listeners.set("tcp_port", static_cast<int>(tcp_port_));
    out.set("listeners", std::move(listeners));
    out.set("connections_accepted", connections_accepted_.load());
    return out;
}

Result<bool>
Daemon::dumpFlight() const
{
    return observer_->flight().dump();
}

std::string
Daemon::metricsText() const
{
    namespace expo = obs::expo;
    expo::TextExposition out;
    const obs::MetricsRegistry& metrics =
        observer_->scope().metrics();
    expo::renderRegistry(metrics, out);

    // Scrape-contract alias families. Completed jobs fold their
    // private scopes into the service registry above; in-flight jobs
    // have not yet, so their live counters/probes are added here —
    // a scrape mid-job never reads darker than the last completion.
    std::int64_t live_states = 0;
    std::uint64_t live_peak = 0;
    scheduler_->liveVerifyTotals(live_states, live_peak);
    out.counter("verify.states",
                static_cast<double>(
                    metrics.counter("refine.states") + live_states));
    // guard.verify.peak_bytes.total only rolls up on a winning rung;
    // refine.peak_bytes covers explorations that blew their budget
    // (the expensive case is exactly the one that must not read 0).
    double peak_bytes = std::max(
        metrics.gauge("guard.verify.peak_bytes.total").value_or(0.0),
        metrics.gauge("refine.peak_bytes").value_or(0.0));
    out.gauge("verify.peak_bytes",
              std::max(peak_bytes, static_cast<double>(live_peak)));

    // Service-plane counters the metrics registry does not carry.
    out.counter("service.connections",
                static_cast<double>(connections_accepted_.load()));
    out.gauge("service.uptime_seconds", observer_->uptimeSeconds());
    SchedulerStats sched = scheduler_->stats();
    out.counter("jobs.accepted", static_cast<double>(sched.accepted));
    out.counter("jobs.shed", static_cast<double>(sched.shed));
    out.counter("jobs.completed",
                static_cast<double>(sched.completed));
    out.counter("jobs.failed", static_cast<double>(sched.failed));
    out.counter("jobs.cancelled",
                static_cast<double>(sched.cancelled));
    out.counter("jobs.wedged", static_cast<double>(sched.wedged));
    guard::VerdictStoreStats store = scheduler_->store()->stats();
    out.counter("store.hits", static_cast<double>(store.hits));
    out.counter("store.misses", static_cast<double>(store.misses));
    out.gauge("store.entries", static_cast<double>(store.entries));
    out.counter("expose.scrapes",
                static_cast<double>(expose_.scrapes()));

    // Worker-tier families (isolate mode only): pool gauges, crash
    // counters by exit class, breaker state.
    if (WorkerPool* pool = scheduler_->workerPool()) {
        WorkerPoolStats workers = pool->stats();
        out.gauge("worker.pool_size",
                  static_cast<double>(workers.configured));
        out.gauge("worker.live", static_cast<double>(workers.live));
        out.gauge("worker.busy", static_cast<double>(workers.busy));
        out.counter("worker.spawned",
                    static_cast<double>(workers.spawned));
        out.counter("worker.respawned",
                    static_cast<double>(workers.respawned));
        out.counter("worker.crashes",
                    static_cast<double>(workers.crashes));
        for (const auto& [cls, count] : workers.crashes_by_class)
            out.sample("graphiti_worker_crashes_total{class=\"" + cls +
                           "\"}",
                       static_cast<double>(count));
        out.gauge("worker.breaker_open",
                  workers.breaker_open ? 1.0 : 0.0);
        out.counter("worker.breaker_trips",
                    static_cast<double>(workers.breaker_trips));
    }
    return out.str();
}

obs::json::Value
Daemon::introspect(const std::string& kind) const
{
    json::Value out{json::Object{}};
    out.set("kind", kind);
    if (kind == "stats")
        out.set("stats", statsJson());
    else if (kind == "jobs")
        out.set("jobs", jobsJson());
    else if (kind == "metricsz")
        out.set("text", metricsText());
    else
        out.set("health", healthJson());
    return out;
}

void
Daemon::acceptLoop(net::Socket listener)
{
    while (!stopping_.load()) {
        // Short accept timeout so shutdown is never blocked on a
        // quiet listener.
        Result<net::Socket> accepted =
            net::acceptConnection(listener, 100);
        if (!accepted.ok())
            return;  // listener broke; daemon keeps other listeners
        if (!accepted.value().valid())
            continue;  // timeout — re-check the stop flag
        if (stopping_.load())
            return;
        connections_accepted_.fetch_add(1);
        std::uint64_t conn_id = next_conn_id_.fetch_add(1);
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn_threads_.emplace_back(
            [this, socket = std::move(accepted.value()),
             conn_id]() mutable {
                serveConnection(std::move(socket), conn_id);
            });
    }
}

void
Daemon::serveConnection(net::Socket socket, std::uint64_t conn_id)
{
    std::string default_client = "conn-" + std::to_string(conn_id);
    std::uint64_t frames_seen = 0;
    while (!stopping_.load()) {
        // Poll for the next frame in short slices so a shutdown never
        // waits out io_timeout_ms on an idle-but-connected client.
        Result<bool> readable = net::waitReadable(socket, 100);
        if (!readable.ok())
            return;
        if (!readable.value())
            continue;  // idle — re-check the stop flag

        std::string payload;
        Result<bool> frame =
            readFrame(socket, payload, config_.io_timeout_ms);
        if (!frame.ok()) {
            // Truncation, junk length or timeout: classify so the
            // stats verb can tell a flooder from a flaky link.
            if (frame.error().message.find("exceeds limit") !=
                std::string::npos)
                oversize_frames_.fetch_add(1);
            else
                malformed_frames_.fetch_add(1);
            return;
        }
        if (!frame.value()) {
            clean_eofs_.fetch_add(1);
            return;  // peer done
        }
        frames_seen += 1;
        // A correlation id exists for every response, even one
        // answering an unparseable request.
        std::string fallback_job_id = default_client + "-r" +
                                      std::to_string(frames_seen);

        JobResponse response;
        response.job_id = fallback_job_id;
        Result<json::Value> parsed = json::parse(payload);
        if (!parsed.ok()) {
            malformed_frames_.fetch_add(1);
            // No recoverable request id: answer id 0 so the client
            // can at least log the rejection, then drop the
            // connection (framing with junk inside is not worth
            // resynchronizing).
            response.id = 0;
            response.status = "error";
            response.error =
                "malformed request JSON: " + parsed.error().message;
            writeFrame(socket, response.toJson().dump(),
                       config_.io_timeout_ms);
            return;
        }
        Result<JobRequest> request = jobRequestFromJson(parsed.value());
        if (!request.ok()) {
            malformed_requests_.fetch_add(1);
            response.id = 0;
            response.status = "error";
            response.error = request.error().message;
            writeFrame(socket, response.toJson().dump(),
                       config_.io_timeout_ms);
            continue;
        }
        response.id = request.value().id;
        if (!request.value().job_id.empty())
            response.job_id = request.value().job_id;

        Result<JobSpec> spec = jobSpecFromJson(request.value().job);
        if (!spec.ok()) {
            malformed_requests_.fetch_add(1);
            response.status = "error";
            response.error = spec.error().message;
            writeFrame(socket, response.toJson().dump(),
                       config_.io_timeout_ms);
            continue;
        }

        const std::string& kind = spec.value().kind;
        if (kind == "stats" || kind == "jobs" || kind == "health" ||
            kind == "metricsz") {
            // Read-only introspection bypasses the scheduler queue on
            // purpose: the whole point is answering while the queue
            // is full or a job is wedged.
            response.status = "ok";
            response.result = introspect(kind);
            Result<bool> answered = writeFrame(
                socket, response.toJson().dump(),
                config_.io_timeout_ms);
            if (!answered.ok())
                return;
            continue;
        }

        std::string client = request.value().client.empty()
                                 ? default_client
                                 : request.value().client;
        JobOutcome outcome = scheduler_->submitAndWait(
            client, spec.take(), request.value().deadline_seconds,
            [&socket] { return net::peerClosed(socket); },
            request.value().job_id);
        response.job_id = outcome.job_id;
        response.status = outcome.status;
        response.result = std::move(outcome.result);
        response.error = outcome.error;
        response.retry_after_ms = outcome.retry_after_ms;
        response.artifact = outcome.artifact;
        Result<bool> sent = writeFrame(
            socket, response.toJson().dump(), config_.io_timeout_ms);
        if (!sent.ok())
            return;  // peer vanished mid-response
    }
}

}  // namespace graphiti::served
