#include "served/daemon.hpp"

#include <cstdio>

namespace graphiti::served {

namespace json = obs::json;

Daemon::Daemon(DaemonConfig config) : config_(std::move(config))
{
    scheduler_ = std::make_unique<Scheduler>(config_.scheduler);
}

Daemon::~Daemon() { stop(); }

Result<bool>
Daemon::start()
{
    if (started_)
        return err("daemon already started");
    if (config_.socket_path.empty())
        return err("daemon requires a socket path");
    Result<bool> booted = scheduler_->start();
    if (!booted.ok())
        return booted.error().context("Daemon::start");

    Result<net::Socket> unix_listener =
        net::listenUnix(config_.socket_path);
    if (!unix_listener.ok())
        return unix_listener.error().context("Daemon::start");
    accept_threads_.emplace_back(
        [this, listener = std::move(unix_listener.value())]() mutable {
            acceptLoop(std::move(listener));
        });

    if (config_.tcp_port >= 0) {
        Result<net::Socket> tcp_listener = net::listenTcp(
            static_cast<std::uint16_t>(config_.tcp_port));
        if (!tcp_listener.ok())
            return tcp_listener.error().context("Daemon::start");
        Result<std::uint16_t> port =
            net::boundPort(tcp_listener.value());
        if (!port.ok())
            return port.error().context("Daemon::start");
        tcp_port_ = port.value();
        accept_threads_.emplace_back(
            [this,
             listener = std::move(tcp_listener.value())]() mutable {
                acceptLoop(std::move(listener));
            });
    }
    started_ = true;
    return true;
}

void
Daemon::shutdown(bool graceful)
{
    if (!started_ || stopping_.exchange(true))
        return;
    if (graceful)
        scheduler_->stop();
    else
        scheduler_->kill();
    for (std::thread& thread : accept_threads_)
        if (thread.joinable())
            thread.join();
    accept_threads_.clear();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns.swap(conn_threads_);
    }
    for (std::thread& thread : conns)
        if (thread.joinable())
            thread.join();
    std::remove(config_.socket_path.c_str());
    started_ = false;
}

void Daemon::stop() { shutdown(/*graceful=*/true); }

void Daemon::kill() { shutdown(/*graceful=*/false); }

void
Daemon::acceptLoop(net::Socket listener)
{
    while (!stopping_.load()) {
        // Short accept timeout so shutdown is never blocked on a
        // quiet listener.
        Result<net::Socket> accepted =
            net::acceptConnection(listener, 100);
        if (!accepted.ok())
            return;  // listener broke; daemon keeps other listeners
        if (!accepted.value().valid())
            continue;  // timeout — re-check the stop flag
        if (stopping_.load())
            return;
        connections_accepted_.fetch_add(1);
        std::uint64_t conn_id = next_conn_id_.fetch_add(1);
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn_threads_.emplace_back(
            [this, socket = std::move(accepted.value()),
             conn_id]() mutable {
                serveConnection(std::move(socket), conn_id);
            });
    }
}

void
Daemon::serveConnection(net::Socket socket, std::uint64_t conn_id)
{
    std::string default_client = "conn-" + std::to_string(conn_id);
    while (!stopping_.load()) {
        // Poll for the next frame in short slices so a shutdown never
        // waits out io_timeout_ms on an idle-but-connected client.
        Result<bool> readable = net::waitReadable(socket, 100);
        if (!readable.ok())
            return;
        if (!readable.value())
            continue;  // idle — re-check the stop flag

        std::string payload;
        Result<bool> frame =
            readFrame(socket, payload, config_.io_timeout_ms);
        if (!frame.ok() || !frame.value())
            return;  // truncation, junk length, timeout or clean EOF

        JobResponse response;
        Result<json::Value> parsed = json::parse(payload);
        if (!parsed.ok()) {
            // No recoverable request id: answer id 0 so the client
            // can at least log the rejection, then drop the
            // connection (framing with junk inside is not worth
            // resynchronizing).
            response.id = 0;
            response.status = "error";
            response.error =
                "malformed request JSON: " + parsed.error().message;
            writeFrame(socket, response.toJson().dump(),
                       config_.io_timeout_ms);
            return;
        }
        Result<JobRequest> request = jobRequestFromJson(parsed.value());
        if (!request.ok()) {
            response.id = 0;
            response.status = "error";
            response.error = request.error().message;
            writeFrame(socket, response.toJson().dump(),
                       config_.io_timeout_ms);
            continue;
        }
        response.id = request.value().id;

        Result<JobSpec> spec = jobSpecFromJson(request.value().job);
        if (!spec.ok()) {
            response.status = "error";
            response.error = spec.error().message;
            writeFrame(socket, response.toJson().dump(),
                       config_.io_timeout_ms);
            continue;
        }

        std::string client = request.value().client.empty()
                                 ? default_client
                                 : request.value().client;
        JobOutcome outcome = scheduler_->submitAndWait(
            client, spec.take(), request.value().deadline_seconds,
            [&socket] { return net::peerClosed(socket); });
        response.status = outcome.status;
        response.result = std::move(outcome.result);
        response.error = outcome.error;
        response.retry_after_ms = outcome.retry_after_ms;
        response.artifact = outcome.artifact;
        Result<bool> sent = writeFrame(
            socket, response.toJson().dump(), config_.io_timeout_ms);
        if (!sent.ok())
            return;  // peer vanished mid-response
    }
}

}  // namespace graphiti::served
