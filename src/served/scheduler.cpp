#include "served/scheduler.hpp"

#include <algorithm>
#include <set>

#include "faults/stress.hpp"
#include "obs/scope.hpp"

namespace graphiti::served {

namespace json = obs::json;

AdmissionDecision
admitJob(const AdmissionState& state)
{
    AdmissionDecision decision;
    if (state.queue_capacity == 0 ||
        state.queued < state.queue_capacity)
        return decision;
    decision.admit = false;
    decision.reason = "queue full (" + std::to_string(state.queued) +
                      " waiting, capacity " +
                      std::to_string(state.queue_capacity) + ")";
    double lanes =
        static_cast<double>(std::max<std::size_t>(state.workers, 1));
    decision.retry_after_ms = state.estimated_job_ms *
                              static_cast<double>(state.queued + 1) /
                              lanes;
    return decision;
}

std::string
pickPreemptionVictim(
    const std::map<std::string, std::size_t>& running_per_client,
    const std::vector<std::string>& waiting_clients,
    std::size_t workers)
{
    if (waiting_clients.empty() || running_per_client.empty() ||
        workers == 0)
        return "";
    std::set<std::string> clients(waiting_clients.begin(),
                                  waiting_clients.end());
    for (const auto& [name, count] : running_per_client)
        if (count > 0)
            clients.insert(name);
    if (clients.size() < 2)
        return "";  // one client cannot be unfair to itself
    std::size_t share =
        (workers + clients.size() - 1) / clients.size();  // ceil

    auto runningOf = [&](const std::string& name) {
        auto it = running_per_client.find(name);
        return it == running_per_client.end() ? std::size_t{0}
                                              : it->second;
    };
    bool starved = false;
    for (const std::string& waiter : waiting_clients)
        if (runningOf(waiter) < share) {
            starved = true;
            break;
        }
    if (!starved)
        return "";

    std::string victim;
    std::size_t victim_count = share;  // must be strictly above share
    for (const auto& [name, count] : running_per_client) {
        if (count > victim_count ||
            (count == victim_count && count > share &&
             (victim.empty() || name < victim))) {
            victim = name;
            victim_count = count;
        }
    }
    return victim;
}

obs::json::Value
SchedulerStats::toJson() const
{
    json::Value out{json::Object{}};
    out.set("accepted", accepted);
    out.set("shed", shed);
    out.set("completed", completed);
    out.set("failed", failed);
    out.set("cancelled", cancelled);
    out.set("preempted", preempted);
    out.set("wedged", wedged);
    out.set("disconnect_cancelled", disconnect_cancelled);
    return out;
}

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config))
{
    if (config_.isolate > 0) {
        // Isolate mode: one dispatch lane per sandboxed child, so a
        // lane never waits on a worker another lane owns.
        config_.workers = config_.isolate;
        config_.pool.workers = config_.isolate;
        if (config_.pool.sandbox.heartbeat_timeout_seconds <= 0.0)
            config_.pool.sandbox.heartbeat_timeout_seconds =
                config_.wedge_grace_seconds;
        config_.pool.observer = config_.observer;
    }
    if (config_.workers == 0)
        config_.workers = 1;
    store_ = std::make_shared<guard::VerdictStore>(config_.store);
}

Scheduler::~Scheduler() { stop(); }

Result<bool>
Scheduler::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return err("scheduler already started");
    if (!config_.store.dir.empty()) {
        // Corrupt shards are skipped and counted by the store loader;
        // a missing directory is a fresh start, not a failure.
        Result<std::size_t> loaded = store_->load();
        if (!loaded.ok())
            return loaded.error().context("Scheduler::start");
    }
    if (config_.isolate > 0) {
        // Sandbox children proxy their verdict traffic here: every
        // real store write stays in this (parent) process, so a dying
        // child can never tear the store.
        StoreHooks hooks;
        hooks.lookup = [this](std::uint64_t key) {
            return store_->lookup(key);
        };
        hooks.store = [this](std::uint64_t key,
                             const guard::VerificationVerdict& verdict) {
            store_->store(key, verdict);
        };
        pool_ = std::make_unique<WorkerPool>(config_.pool,
                                             std::move(hooks));
        Result<bool> forked = pool_->start();
        if (!forked.ok()) {
            pool_.reset();
            return forked.error().context("Scheduler::start");
        }
    }
    started_ = true;
    stopping_ = false;
    for (std::size_t i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    supervisor_ = std::thread([this] { supervisorLoop(); });
    return true;
}

void
Scheduler::stop()
{
    std::vector<std::thread> joinable;
    std::thread supervisor;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || stopping_)
            return;
        stopping_ = true;
        for (const JobPtr& job : queue_) {
            JobOutcome outcome;
            outcome.status = "rejected";
            outcome.error = "daemon shutting down";
            outcome.retry_after_ms = config_.estimated_job_ms;
            completeJobLocked(job, std::move(outcome));
        }
        queue_.clear();
        for (const JobPtr& job : running_)
            job->stop.requestStop("daemon shutting down");
        work_available_.notify_all();
        job_done_.notify_all();
        for (std::thread& worker : workers_)
            if (worker.joinable())
                joinable.push_back(std::move(worker));
        workers_.clear();
        supervisor = std::move(supervisor_);
    }
    for (std::thread& worker : joinable)
        worker.join();
    if (supervisor.joinable())
        supervisor.join();
    // Lanes are drained (running children were stop-killed by their
    // lanes' poll loops); shut the idle sandbox workers down politely.
    if (pool_ != nullptr)
        pool_->stop();
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

void
Scheduler::kill()
{
    // The store commits write-through on every store(), so there is
    // no buffered state to drop: kill() and stop() differ only in
    // intent (the crash drills call kill() to prove that).
    stop();
}

bool
Scheduler::completeJob(const JobPtr& job, JobOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completeJobLocked(job, std::move(outcome));
}

bool
Scheduler::completeJobLocked(const JobPtr& job, JobOutcome outcome)
{
    if (job->done)
        return false;
    auto now = std::chrono::steady_clock::now();
    job->done = true;
    job->outcome = std::move(outcome);
    job->outcome.job_id = job->job_id;
    if (job->outcome.status == "ok")
        stats_.completed += 1;
    else if (job->outcome.status == "cancelled")
        stats_.cancelled += 1;
    else if (job->outcome.status == "rejected")
        stats_.shed += 1;
    else
        stats_.failed += 1;

    double queue_wait_ms =
        elapsedMs(job->enqueued_at,
                  job->started ? job->started_at : now);
    double execute_ms =
        job->started ? elapsedMs(job->started_at, now) : 0.0;

    ServiceObserver* observer = config_.observer.get();
    if (observer != nullptr) {
        observer->recordVerb(job->spec.kind, job->outcome.status,
                             queue_wait_ms, execute_ms);
        // Fold the job's private counters into the service-wide
        // scope so stats aggregates across jobs keep accumulating.
        if (job->job_scope != nullptr)
            observer->scope().metrics().mergeFrom(
                job->job_scope->metrics());
    }
#if GRAPHITI_OBS_ENABLED
    if (observer != nullptr) {
        // The span tree of one job: its correlation id is the track,
        // queue-wait and execute are the phases (forwarded to the
        // Perfetto sink when one is attached — one service-level
        // trace across concurrent jobs).
        double now_ms = observer->spans().nowMs();
        observer->spans().record(job->job_id, "queue-wait",
                                 now_ms - queue_wait_ms - execute_ms,
                                 now_ms - execute_ms);
        if (job->started)
            observer->spans().record(job->job_id, "execute",
                                     now_ms - execute_ms, now_ms);

        std::int64_t states =
            job->job_scope != nullptr
                ? job->job_scope->metrics().counter("refine.states")
                : 0;
        json::Value flight{json::Object{}};
        flight.set("job_id", job->job_id);
        flight.set("client", job->client);
        flight.set("verb", job->spec.kind);
        flight.set("status", job->outcome.status);
        if (!job->outcome.error.empty())
            flight.set("reason", job->outcome.error);
        flight.set("queue_wait_ms", queue_wait_ms);
        flight.set("execute_ms", execute_ms);
        flight.set("states", states);
        if (job->outcome.result.isObject()) {
            const json::Value* level =
                job->outcome.result.find("verification_level");
            if (level != nullptr)
                flight.set("verification_level", *level);
            const json::Value* cache_hit =
                job->outcome.result.find("verify_cache_hit");
            if (cache_hit != nullptr)
                flight.set("verify_cache_hit", *cache_hit);
        }
        observer->flight().record("job", std::move(flight));

        obs::LogLevel level = job->outcome.status == "ok"
                                  ? obs::LogLevel::Info
                                  : obs::LogLevel::Warn;
        observer->log().log(
            level, job->job_id, "job.done",
            obs::logFields("client", job->client, "verb",
                           job->spec.kind, "status",
                           job->outcome.status, "queue_wait_ms",
                           queue_wait_ms, "execute_ms", execute_ms));
    }
#endif
    job_done_.notify_all();
    return true;
}

void
Scheduler::enforceFairShareLocked()
{
    if (queue_.empty() || running_.empty())
        return;
    std::map<std::string, std::size_t> running_per_client;
    for (const JobPtr& job : running_)
        if (!job->done && !job->stop.stopRequested())
            running_per_client[job->client] += 1;
    std::vector<std::string> waiting;
    waiting.reserve(queue_.size());
    for (const JobPtr& job : queue_)
        waiting.push_back(job->client);
    std::string victim = pickPreemptionVictim(
        running_per_client, waiting, config_.workers);
    if (victim.empty())
        return;
    // Preempt the victim's oldest running job: it has had the most
    // service already, and the ladder it unwinds through reports
    // whatever assurance that bought honestly.
    JobPtr oldest;
    for (const JobPtr& job : running_)
        if (job->client == victim && !job->done &&
            !job->stop.stopRequested() &&
            (oldest == nullptr || job->serial < oldest->serial))
            oldest = job;
    if (oldest == nullptr)
        return;
    std::string reason = "fair-share preemption (client \"" + victim +
                         "\" over share)";
    oldest->stop.requestStop(reason);
    stats_.preempted += 1;
    ServiceObserver* observer = config_.observer.get();
    if (observer != nullptr)
        observer->scope().metrics().add("served.jobs.preempted", 1);
    GRAPHITI_SVC_FLIGHT(observer, "sched", "event", "preempt",
                        "job_id", oldest->job_id, "client", victim,
                        "reason", reason);
    GRAPHITI_SVC_LOG(observer, obs::LogLevel::Warn, oldest->job_id,
                     "job.preempt", "client", victim, "reason",
                     reason);
}

JobOutcome
Scheduler::submitAndWait(const std::string& client, JobSpec spec,
                         double deadline_seconds,
                         const std::function<bool()>& abandoned,
                         const std::string& job_id)
{
    JobPtr job = std::make_shared<Job>();
    ServiceObserver* observer = config_.observer.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::string id = job_id.empty()
                             ? "job-" + std::to_string(next_serial_)
                             : job_id;
        if (!started_ || stopping_) {
            JobOutcome outcome;
            outcome.job_id = id;
            outcome.status = "rejected";
            outcome.error = "daemon not accepting jobs";
            outcome.retry_after_ms = config_.estimated_job_ms;
            return outcome;
        }
        AdmissionState state;
        state.queued = queue_.size();
        state.queue_capacity = config_.queue_capacity;
        state.running = running_.size();
        state.workers = config_.workers;
        state.estimated_job_ms = config_.estimated_job_ms;
        AdmissionDecision decision = admitJob(state);
        if (!decision.admit) {
            stats_.shed += 1;
            if (observer != nullptr)
                observer->scope().metrics().add("served.jobs.shed",
                                                1);
            GRAPHITI_SVC_FLIGHT(observer, "sched", "event", "shed",
                                "job_id", id, "client", client, "verb",
                                spec.kind, "reason", decision.reason,
                                "retry_after_ms",
                                decision.retry_after_ms);
            GRAPHITI_SVC_LOG(observer, obs::LogLevel::Warn, id,
                             "job.shed", "client", client, "verb",
                             spec.kind, "reason", decision.reason);
            JobOutcome outcome;
            outcome.job_id = id;
            outcome.status = "rejected";
            outcome.error = decision.reason;
            outcome.retry_after_ms = decision.retry_after_ms;
            return outcome;
        }
        stats_.accepted += 1;
        if (observer != nullptr) {
            observer->scope().metrics().add("served.jobs.accepted", 1);
            observer->scope().metrics().set(
                "served.queue.depth",
                static_cast<double>(queue_.size() + 1));
        }
        double deadline = deadline_seconds;
        if (config_.max_deadline_seconds > 0 &&
            (deadline == 0 || deadline > config_.max_deadline_seconds))
            deadline = config_.max_deadline_seconds;
        job->stop = deadline > 0 ? StopToken::withDeadline(deadline)
                                 : StopToken::manual();
        job->client = client;
        job->spec = std::move(spec);
        job->serial = next_serial_++;
        job->job_id = id;
        job->enqueued_at = std::chrono::steady_clock::now();
        if (deadline > 0) {
            job->has_deadline = true;
            job->deadline_at =
                job->enqueued_at +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(deadline));
        }
        job->job_scope = std::make_shared<obs::Scope>();
        // Every job carries a live verification probe: the worker's
        // thread publishes into it lock-free and the jobs/metricsz
        // verbs snapshot it from the connection threads.
        job->job_scope->attachVerifyProbe(
            std::make_shared<obs::VerifyProbe>());
        GRAPHITI_SVC_FLIGHT(observer, "sched", "event", "admit",
                            "job_id", job->job_id, "client", client,
                            "verb", job->spec.kind, "queued",
                            queue_.size());
        GRAPHITI_SVC_LOG(observer, obs::LogLevel::Debug, job->job_id,
                         "job.admit", "client", client, "verb",
                         job->spec.kind, "queued", queue_.size());
        queue_.push_back(job);
        enforceFairShareLocked();
        work_available_.notify_one();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    bool abandon_latched = false;
    while (!job->done) {
        job_done_.wait_for(lock, std::chrono::milliseconds(20));
        if (job->done || abandon_latched || !abandoned)
            continue;
        lock.unlock();
        bool gone = abandoned();
        lock.lock();
        if (gone) {
            job->stop.requestStop("client disconnected");
            abandon_latched = true;
        }
    }
    if (abandon_latched && job->outcome.status == "cancelled")
        stats_.disconnect_cancelled += 1;
    return job->outcome;
}

void
Scheduler::workerLoop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        workers_alive_ += 1;
    }
    for (;;) {
        JobPtr job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_) {
                workers_alive_ -= 1;
                return;
            }
            job = queue_.front();
            queue_.pop_front();
            job->running = true;
            job->started = true;
            job->started_at = std::chrono::steady_clock::now();
            running_.push_back(job);
        }

        JobOutcome outcome;
        if (job->stop.stopRequested()) {
            // Expired (or disconnected) before any work: a cheap
            // cancel, not a burned worker slot — the shape a
            // deadline-zero flood takes.
            outcome.status = "cancelled";
            outcome.error = job->stop.reason();
        } else if (pool_ != nullptr) {
            // Isolate mode: the job runs in a sandboxed child; this
            // lane only dispatches, mirrors heartbeats and maps the
            // outcome. Whatever the child does — crash, OOM, wedge —
            // lands here as a structured SandboxOutcome.
            SandboxOutcome run = pool_->execute(
                job->job_id, job->spec, job->stop, job->job_scope.get());
            outcome.status = run.status;
            outcome.result = std::move(run.result);
            outcome.error = std::move(run.error);
            outcome.artifact = std::move(run.artifact);
            outcome.retry_after_ms = run.retry_after_ms;
            if (run.exit_class == ExitClass::Wedged) {
                std::lock_guard<std::mutex> lock(mutex_);
                stats_.wedged += 1;
                if (config_.observer != nullptr)
                    config_.observer->scope().metrics().add(
                        "served.jobs.wedged", 1);
            }
        } else {
            // The job's private scope catches cooperative progress
            // counters (refine.states, guard.verify.*) so the jobs
            // verb can report them live; it folds into the service
            // scope at completion.
            obs::ScopedInstall obs_install(job->job_scope.get());
            // Fresh Compiler per job (the Compiler is not
            // thread-safe); the shared store carries verdicts across
            // jobs, workers and restarts.
            Compiler compiler;
            compiler.setVerdictStore(store_);
            Result<json::Value> run =
                runJob(compiler, job->spec, job->stop);
            if (run.ok()) {
                outcome.status = "ok";
                outcome.result = run.take();
            } else if (job->stop.stopRequested()) {
                outcome.status = "cancelled";
                outcome.error = job->stop.reason() + ": " +
                                run.error().message;
            } else {
                outcome.status = "error";
                outcome.error = run.error().message;
            }
        }
        completeJob(job, std::move(outcome));

        bool abandoned_worker = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            running_.erase(
                std::remove(running_.begin(), running_.end(), job),
                running_.end());
            if (config_.observer != nullptr)
                config_.observer->scope().metrics().set(
                    "served.queue.depth",
                    static_cast<double>(queue_.size()));
            abandoned_worker = job->worker_abandoned;
            if (abandoned_worker) {
                workers_alive_ -= 1;
                workers_abandoned_ += 1;
            }
        }
        // The supervisor declared this job wedged and already spawned
        // a replacement lane; this thread retires instead of doubling
        // the worker count.
        if (abandoned_worker)
            return;
    }
}

void
Scheduler::supervisorLoop()
{
    for (;;) {
        bool dump_flight = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            auto now = std::chrono::steady_clock::now();
            supervisor_heartbeat_ = now;
            supervisor_seen_ = true;

            // Queued jobs whose tokens already fired (deadline-zero
            // floods, disconnects) never reach a worker.
            for (auto it = queue_.begin(); it != queue_.end();) {
                const JobPtr& job = *it;
                if (job->stop.stopRequested()) {
                    JobOutcome outcome;
                    outcome.status = "cancelled";
                    outcome.error = job->stop.reason();
                    GRAPHITI_SVC_FLIGHT(
                        config_.observer.get(), "sched", "event",
                        "deadline", "job_id", job->job_id, "client",
                        job->client, "reason", outcome.error);
                    completeJobLocked(job, std::move(outcome));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }

            for (const JobPtr& job : running_) {
                if (job->done || !job->stop.stopRequested())
                    continue;
                if (!job->stop_seen) {
                    // Heartbeat zero: the token fired; give the
                    // worker the grace window to unwind honestly.
                    job->stop_seen = true;
                    job->stop_requested_at = now;
                    continue;
                }
                double waited =
                    std::chrono::duration<double>(
                        now - job->stop_requested_at)
                        .count();
                if (waited < config_.wedge_grace_seconds)
                    continue;
                // Wedged: the job ignored its stop token past the
                // grace period. Answer the client with a failure
                // artifact, abandon the stuck worker lane and spawn a
                // replacement so throughput recovers.
                obs::Scope scope;
                JobOutcome outcome;
                outcome.status = "cancelled";
                outcome.error =
                    "job wedged: ignored stop request (" +
                    job->stop.reason() + ") for " +
                    std::to_string(waited) + "s";
                outcome.artifact = faults::failureArtifact(
                    nullptr, outcome.error, scope);
                GRAPHITI_SVC_FLIGHT(
                    config_.observer.get(), "sched", "event", "wedge",
                    "job_id", job->job_id, "client", job->client,
                    "reason", outcome.error);
                GRAPHITI_SVC_LOG(config_.observer.get(),
                                 obs::LogLevel::Error, job->job_id,
                                 "job.wedge", "client", job->client,
                                 "reason", outcome.error);
                completeJobLocked(job, std::move(outcome));
                job->worker_abandoned = true;
                stats_.wedged += 1;
                if (config_.observer != nullptr)
                    config_.observer->scope().metrics().add(
                        "served.jobs.wedged", 1);
                workers_.emplace_back([this] { workerLoop(); });
                dump_flight = true;
            }
        }
        // A wedge is exactly what the flight recorder exists for:
        // dump outside the scheduler lock (file IO under a lock would
        // stall admission).
        if (dump_flight && config_.observer != nullptr &&
            !config_.observer->flight().dumpPath().empty())
            (void)config_.observer->flight().dump();
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config_.supervisor_period_ms / 1000.0));
    }
}

obs::json::Value
Scheduler::jobsJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto now = std::chrono::steady_clock::now();
    auto entry = [&](const JobPtr& job, const char* phase) {
        json::Value out{json::Object{}};
        out.set("job_id", job->job_id);
        out.set("client", job->client);
        out.set("verb", job->spec.kind);
        out.set("phase", phase);
        out.set("age_ms", elapsedMs(job->enqueued_at, now));
        if (job->started)
            out.set("queue_wait_ms",
                    elapsedMs(job->enqueued_at, job->started_at));
        if (job->has_deadline)
            out.set("deadline_remaining_ms",
                    elapsedMs(now, job->deadline_at));
        out.set("stop_requested", job->stop.stopRequested());
        if (job->stop.stopRequested())
            out.set("stop_reason", job->stop.reason());
        if (job->job_scope != nullptr) {
            const obs::MetricsRegistry& metrics =
                job->job_scope->metrics();
            out.set("states_explored",
                    metrics.counter("refine.states"));
            json::Value rungs{json::Object{}};
            rungs.set("full", metrics.counter("guard.verify.full"));
            rungs.set("bounded_partial",
                      metrics.counter("guard.verify.bounded_partial"));
            rungs.set("trace_inclusion",
                      metrics.counter("guard.verify.trace_inclusion"));
            rungs.set("none", metrics.counter("guard.verify.none"));
            out.set("verify_rungs", std::move(rungs));
            // Live verification progress: a tearing-tolerant snapshot
            // of the worker's probe (samples == 0 until the first
            // publish — the job has not reached the verify core yet).
            if (const obs::VerifyProbe* probe =
                    job->job_scope->verifyProbe())
                out.set("progress", probe->snapshot().toJson());
        }
        return out;
    };
    json::Value jobs{json::Array{}};
    for (const JobPtr& job : queue_)
        jobs.push(entry(job, "queued"));
    for (const JobPtr& job : running_)
        if (!job->done)
            jobs.push(entry(job, "running"));
    json::Value out{json::Object{}};
    out.set("queued", queue_.size());
    out.set("running", running_.size());
    out.set("jobs", std::move(jobs));
    return out;
}

void
Scheduler::liveVerifyTotals(std::int64_t& states,
                            std::uint64_t& peak_bytes) const
{
    states = 0;
    peak_bytes = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    auto fold = [&](const JobPtr& job) {
        if (job->done || job->job_scope == nullptr)
            return;
        states += job->job_scope->metrics().counter("refine.states");
        if (const obs::VerifyProbe* probe =
                job->job_scope->verifyProbe())
            peak_bytes = std::max(peak_bytes, probe->peakBytes());
    };
    for (const JobPtr& job : queue_)
        fold(job);
    for (const JobPtr& job : running_)
        fold(job);
}

obs::json::Value
Scheduler::healthJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value out{json::Object{}};
    out.set("accepting", started_ && !stopping_);
    out.set("workers_configured", config_.workers);
    out.set("workers_alive", workers_alive_);
    out.set("workers_abandoned", workers_abandoned_);
    out.set("queue_depth", queue_.size());
    out.set("queue_capacity", config_.queue_capacity);
    out.set("running", running_.size());
    if (supervisor_seen_)
        out.set("supervisor_heartbeat_age_ms",
                elapsedMs(supervisor_heartbeat_,
                          std::chrono::steady_clock::now()));
    if (pool_ != nullptr)
        out.set("worker_pool", pool_->healthJson());
    return out;
}

SchedulerStats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace graphiti::served
