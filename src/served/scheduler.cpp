#include "served/scheduler.hpp"

#include <algorithm>
#include <set>

#include "faults/stress.hpp"
#include "obs/scope.hpp"

namespace graphiti::served {

namespace json = obs::json;

AdmissionDecision
admitJob(const AdmissionState& state)
{
    AdmissionDecision decision;
    if (state.queue_capacity == 0 ||
        state.queued < state.queue_capacity)
        return decision;
    decision.admit = false;
    decision.reason = "queue full (" + std::to_string(state.queued) +
                      " waiting, capacity " +
                      std::to_string(state.queue_capacity) + ")";
    double lanes =
        static_cast<double>(std::max<std::size_t>(state.workers, 1));
    decision.retry_after_ms = state.estimated_job_ms *
                              static_cast<double>(state.queued + 1) /
                              lanes;
    return decision;
}

std::string
pickPreemptionVictim(
    const std::map<std::string, std::size_t>& running_per_client,
    const std::vector<std::string>& waiting_clients,
    std::size_t workers)
{
    if (waiting_clients.empty() || running_per_client.empty() ||
        workers == 0)
        return "";
    std::set<std::string> clients(waiting_clients.begin(),
                                  waiting_clients.end());
    for (const auto& [name, count] : running_per_client)
        if (count > 0)
            clients.insert(name);
    if (clients.size() < 2)
        return "";  // one client cannot be unfair to itself
    std::size_t share =
        (workers + clients.size() - 1) / clients.size();  // ceil

    auto runningOf = [&](const std::string& name) {
        auto it = running_per_client.find(name);
        return it == running_per_client.end() ? std::size_t{0}
                                              : it->second;
    };
    bool starved = false;
    for (const std::string& waiter : waiting_clients)
        if (runningOf(waiter) < share) {
            starved = true;
            break;
        }
    if (!starved)
        return "";

    std::string victim;
    std::size_t victim_count = share;  // must be strictly above share
    for (const auto& [name, count] : running_per_client) {
        if (count > victim_count ||
            (count == victim_count && count > share &&
             (victim.empty() || name < victim))) {
            victim = name;
            victim_count = count;
        }
    }
    return victim;
}

obs::json::Value
SchedulerStats::toJson() const
{
    json::Value out{json::Object{}};
    out.set("accepted", accepted);
    out.set("shed", shed);
    out.set("completed", completed);
    out.set("failed", failed);
    out.set("cancelled", cancelled);
    out.set("preempted", preempted);
    out.set("wedged", wedged);
    return out;
}

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config))
{
    if (config_.workers == 0)
        config_.workers = 1;
    store_ = std::make_shared<guard::VerdictStore>(config_.store);
}

Scheduler::~Scheduler() { stop(); }

Result<bool>
Scheduler::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return err("scheduler already started");
    if (!config_.store.dir.empty()) {
        // Corrupt shards are skipped and counted by the store loader;
        // a missing directory is a fresh start, not a failure.
        Result<std::size_t> loaded = store_->load();
        if (!loaded.ok())
            return loaded.error().context("Scheduler::start");
    }
    started_ = true;
    stopping_ = false;
    for (std::size_t i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    supervisor_ = std::thread([this] { supervisorLoop(); });
    return true;
}

void
Scheduler::stop()
{
    std::vector<std::thread> joinable;
    std::thread supervisor;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || stopping_)
            return;
        stopping_ = true;
        for (const JobPtr& job : queue_) {
            JobOutcome outcome;
            outcome.status = "rejected";
            outcome.error = "daemon shutting down";
            outcome.retry_after_ms = config_.estimated_job_ms;
            job->done = true;
            job->outcome = std::move(outcome);
            stats_.shed += 1;
        }
        queue_.clear();
        for (const JobPtr& job : running_)
            job->stop.requestStop("daemon shutting down");
        work_available_.notify_all();
        job_done_.notify_all();
        for (std::thread& worker : workers_)
            if (worker.joinable())
                joinable.push_back(std::move(worker));
        workers_.clear();
        supervisor = std::move(supervisor_);
    }
    for (std::thread& worker : joinable)
        worker.join();
    if (supervisor.joinable())
        supervisor.join();
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

void
Scheduler::kill()
{
    // The store commits write-through on every store(), so there is
    // no buffered state to drop: kill() and stop() differ only in
    // intent (the crash drills call kill() to prove that).
    stop();
}

bool
Scheduler::completeJob(const JobPtr& job, JobOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->done)
        return false;
    job->done = true;
    job->outcome = std::move(outcome);
    if (job->outcome.status == "ok")
        stats_.completed += 1;
    else if (job->outcome.status == "cancelled")
        stats_.cancelled += 1;
    else
        stats_.failed += 1;
    job_done_.notify_all();
    return true;
}

void
Scheduler::enforceFairShareLocked()
{
    if (queue_.empty() || running_.empty())
        return;
    std::map<std::string, std::size_t> running_per_client;
    for (const JobPtr& job : running_)
        if (!job->done && !job->stop.stopRequested())
            running_per_client[job->client] += 1;
    std::vector<std::string> waiting;
    waiting.reserve(queue_.size());
    for (const JobPtr& job : queue_)
        waiting.push_back(job->client);
    std::string victim = pickPreemptionVictim(
        running_per_client, waiting, config_.workers);
    if (victim.empty())
        return;
    // Preempt the victim's oldest running job: it has had the most
    // service already, and the ladder it unwinds through reports
    // whatever assurance that bought honestly.
    JobPtr oldest;
    for (const JobPtr& job : running_)
        if (job->client == victim && !job->done &&
            !job->stop.stopRequested() &&
            (oldest == nullptr || job->serial < oldest->serial))
            oldest = job;
    if (oldest == nullptr)
        return;
    oldest->stop.requestStop("fair-share preemption (client \"" +
                             victim + "\" over share)");
    stats_.preempted += 1;
    if (config_.obs != nullptr)
        config_.obs->metrics().add("served.jobs.preempted", 1);
}

JobOutcome
Scheduler::submitAndWait(const std::string& client, JobSpec spec,
                         double deadline_seconds,
                         const std::function<bool()>& abandoned)
{
    JobPtr job = std::make_shared<Job>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || stopping_) {
            JobOutcome outcome;
            outcome.status = "rejected";
            outcome.error = "daemon not accepting jobs";
            outcome.retry_after_ms = config_.estimated_job_ms;
            return outcome;
        }
        AdmissionState state;
        state.queued = queue_.size();
        state.queue_capacity = config_.queue_capacity;
        state.running = running_.size();
        state.workers = config_.workers;
        state.estimated_job_ms = config_.estimated_job_ms;
        AdmissionDecision decision = admitJob(state);
        if (!decision.admit) {
            stats_.shed += 1;
            if (config_.obs != nullptr)
                config_.obs->metrics().add("served.jobs.shed", 1);
            JobOutcome outcome;
            outcome.status = "rejected";
            outcome.error = decision.reason;
            outcome.retry_after_ms = decision.retry_after_ms;
            return outcome;
        }
        stats_.accepted += 1;
        if (config_.obs != nullptr) {
            config_.obs->metrics().add("served.jobs.accepted", 1);
            config_.obs->metrics().set(
                "served.queue.depth",
                static_cast<double>(queue_.size() + 1));
        }
        double deadline = deadline_seconds;
        if (config_.max_deadline_seconds > 0 &&
            (deadline == 0 || deadline > config_.max_deadline_seconds))
            deadline = config_.max_deadline_seconds;
        job->stop = deadline > 0 ? StopToken::withDeadline(deadline)
                                 : StopToken::manual();
        job->client = client;
        job->spec = std::move(spec);
        job->serial = next_serial_++;
        queue_.push_back(job);
        enforceFairShareLocked();
        work_available_.notify_one();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    bool abandon_latched = false;
    while (!job->done) {
        job_done_.wait_for(lock, std::chrono::milliseconds(20));
        if (job->done || abandon_latched || !abandoned)
            continue;
        lock.unlock();
        bool gone = abandoned();
        lock.lock();
        if (gone) {
            job->stop.requestStop("client disconnected");
            abandon_latched = true;
        }
    }
    return job->outcome;
}

void
Scheduler::workerLoop()
{
    for (;;) {
        JobPtr job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_)
                return;
            job = queue_.front();
            queue_.pop_front();
            job->running = true;
            running_.push_back(job);
        }

        JobOutcome outcome;
        if (job->stop.stopRequested()) {
            // Expired (or disconnected) before any work: a cheap
            // cancel, not a burned worker slot — the shape a
            // deadline-zero flood takes.
            outcome.status = "cancelled";
            outcome.error = job->stop.reason();
        } else {
            obs::ScopedInstall obs_install(config_.obs.get());
            // Fresh Compiler per job (the Compiler is not
            // thread-safe); the shared store carries verdicts across
            // jobs, workers and restarts.
            Compiler compiler;
            compiler.setVerdictStore(store_);
            Result<json::Value> run =
                runJob(compiler, job->spec, job->stop);
            if (run.ok()) {
                outcome.status = "ok";
                outcome.result = run.take();
            } else if (job->stop.stopRequested()) {
                outcome.status = "cancelled";
                outcome.error = job->stop.reason() + ": " +
                                run.error().message;
            } else {
                outcome.status = "error";
                outcome.error = run.error().message;
            }
        }
        completeJob(job, std::move(outcome));

        bool abandoned_worker = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            running_.erase(
                std::remove(running_.begin(), running_.end(), job),
                running_.end());
            if (config_.obs != nullptr)
                config_.obs->metrics().set(
                    "served.queue.depth",
                    static_cast<double>(queue_.size()));
            abandoned_worker = job->worker_abandoned;
        }
        // The supervisor declared this job wedged and already spawned
        // a replacement lane; this thread retires instead of doubling
        // the worker count.
        if (abandoned_worker)
            return;
    }
}

void
Scheduler::supervisorLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            auto now = std::chrono::steady_clock::now();

            // Queued jobs whose tokens already fired (deadline-zero
            // floods, disconnects) never reach a worker.
            for (auto it = queue_.begin(); it != queue_.end();) {
                const JobPtr& job = *it;
                if (job->stop.stopRequested()) {
                    job->done = true;
                    job->outcome.status = "cancelled";
                    job->outcome.error = job->stop.reason();
                    stats_.cancelled += 1;
                    it = queue_.erase(it);
                    job_done_.notify_all();
                } else {
                    ++it;
                }
            }

            for (const JobPtr& job : running_) {
                if (job->done || !job->stop.stopRequested())
                    continue;
                if (!job->stop_seen) {
                    // Heartbeat zero: the token fired; give the
                    // worker the grace window to unwind honestly.
                    job->stop_seen = true;
                    job->stop_requested_at = now;
                    continue;
                }
                double waited =
                    std::chrono::duration<double>(
                        now - job->stop_requested_at)
                        .count();
                if (waited < config_.wedge_grace_seconds)
                    continue;
                // Wedged: the job ignored its stop token past the
                // grace period. Answer the client with a failure
                // artifact, abandon the stuck worker lane and spawn a
                // replacement so throughput recovers.
                obs::Scope scope;
                JobOutcome outcome;
                outcome.status = "cancelled";
                outcome.error =
                    "job wedged: ignored stop request (" +
                    job->stop.reason() + ") for " +
                    std::to_string(waited) + "s";
                outcome.artifact = faults::failureArtifact(
                    nullptr, outcome.error, scope);
                job->done = true;
                job->outcome = std::move(outcome);
                job->worker_abandoned = true;
                stats_.wedged += 1;
                stats_.cancelled += 1;
                if (config_.obs != nullptr)
                    config_.obs->metrics().add("served.jobs.wedged",
                                               1);
                workers_.emplace_back([this] { workerLoop(); });
                job_done_.notify_all();
            }
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config_.supervisor_period_ms / 1000.0));
    }
}

SchedulerStats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace graphiti::served
