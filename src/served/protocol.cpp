#include "served/protocol.hpp"

namespace graphiti::served {

namespace json = obs::json;

std::string
encodeFrame(const std::string& payload)
{
    std::string frame;
    frame.reserve(payload.size() + 4);
    std::uint32_t length = static_cast<std::uint32_t>(payload.size());
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>(length & 0xff));
    frame += payload;
    return frame;
}

Result<bool>
writeFrame(const net::Socket& socket, const std::string& payload,
           int timeout_ms)
{
    if (payload.size() > kMaxFrameBytes)
        return err("writeFrame: payload exceeds frame limit");
    return net::writeAll(socket, encodeFrame(payload), timeout_ms);
}

namespace {

/** Read exactly @p want bytes, treating EOF as a truncation error. */
Result<bool>
readExact(const net::Socket& socket, std::string& out, std::size_t want,
          int timeout_ms)
{
    while (out.size() < want) {
        Result<std::size_t> got =
            net::readSome(socket, out, want - out.size(), timeout_ms);
        if (!got.ok())
            return got.error();
        if (got.value() == 0)
            return err("readFrame: connection closed mid-frame (got " +
                       std::to_string(out.size()) + " of " +
                       std::to_string(want) + " bytes)");
    }
    return true;
}

}  // namespace

Result<bool>
readFrame(const net::Socket& socket, std::string& payload,
          int timeout_ms)
{
    std::string header;
    // The first byte distinguishes clean EOF from truncation.
    Result<std::size_t> first =
        net::readSome(socket, header, 4, timeout_ms);
    if (!first.ok())
        return first.error().context("readFrame header");
    if (first.value() == 0)
        return false;  // peer closed between frames
    Result<bool> rest = readExact(socket, header, 4, timeout_ms);
    if (!rest.ok())
        return rest.error().context("readFrame header");

    std::size_t length =
        (static_cast<std::size_t>(static_cast<unsigned char>(header[0]))
         << 24) |
        (static_cast<std::size_t>(static_cast<unsigned char>(header[1]))
         << 16) |
        (static_cast<std::size_t>(static_cast<unsigned char>(header[2]))
         << 8) |
        static_cast<std::size_t>(static_cast<unsigned char>(header[3]));
    if (length > kMaxFrameBytes)
        return err("readFrame: frame length " + std::to_string(length) +
                   " exceeds limit " + std::to_string(kMaxFrameBytes));

    payload.clear();
    payload.reserve(length);
    Result<bool> body = readExact(socket, payload, length, timeout_ms);
    if (!body.ok())
        return body.error().context("readFrame body");
    return true;
}

obs::json::Value
JobRequest::toJson() const
{
    json::Value out{json::Object{}};
    out.set("id", id);
    out.set("job", job);
    if (deadline_seconds > 0)
        out.set("deadline_seconds", deadline_seconds);
    if (!client.empty())
        out.set("client", client);
    if (!job_id.empty())
        out.set("job_id", job_id);
    return out;
}

Result<JobRequest>
jobRequestFromJson(const obs::json::Value& v)
{
    if (!v.isObject())
        return err("request must be a JSON object");
    JobRequest request;
    const json::Value* id = v.find("id");
    if (id == nullptr || !id->isNumber() || id->asNumber() < 0)
        return err("request \"id\" must be a non-negative number");
    request.id = static_cast<std::uint64_t>(id->asNumber());
    const json::Value* job = v.find("job");
    if (job == nullptr)
        return err("request has no \"job\"");
    request.job = *job;
    const json::Value* deadline = v.find("deadline_seconds");
    if (deadline != nullptr) {
        if (!deadline->isNumber() || deadline->asNumber() < 0)
            return err("request \"deadline_seconds\" must be a "
                       "non-negative number");
        request.deadline_seconds = deadline->asNumber();
    }
    const json::Value* client = v.find("client");
    if (client != nullptr) {
        if (!client->isString())
            return err("request \"client\" must be a string");
        request.client = client->asString();
    }
    const json::Value* job_id = v.find("job_id");
    if (job_id != nullptr) {
        if (!job_id->isString())
            return err("request \"job_id\" must be a string");
        request.job_id = job_id->asString();
    }
    return request;
}

obs::json::Value
JobResponse::toJson() const
{
    json::Value out{json::Object{}};
    out.set("id", id);
    if (!job_id.empty())
        out.set("job_id", job_id);
    out.set("status", status);
    if (status == "ok")
        out.set("result", result);
    if (!error.empty())
        out.set("error", error);
    if (retry_after_ms > 0)
        out.set("retry_after_ms", retry_after_ms);
    if (!artifact.empty())
        out.set("artifact", artifact);
    return out;
}

Result<JobResponse>
jobResponseFromJson(const obs::json::Value& v)
{
    if (!v.isObject())
        return err("response must be a JSON object");
    JobResponse response;
    const json::Value* id = v.find("id");
    if (id == nullptr || !id->isNumber())
        return err("response \"id\" must be a number");
    response.id = static_cast<std::uint64_t>(id->asNumber());
    const json::Value* job_id = v.find("job_id");
    if (job_id != nullptr && job_id->isString())
        response.job_id = job_id->asString();
    const json::Value* status = v.find("status");
    if (status == nullptr || !status->isString())
        return err("response \"status\" must be a string");
    response.status = status->asString();
    if (response.status != "ok" && response.status != "error" &&
        response.status != "rejected" && response.status != "cancelled")
        return err("unknown response status \"" + response.status +
                   "\"");
    const json::Value* result = v.find("result");
    if (result != nullptr)
        response.result = *result;
    const json::Value* error = v.find("error");
    if (error != nullptr && error->isString())
        response.error = error->asString();
    const json::Value* retry = v.find("retry_after_ms");
    if (retry != nullptr && retry->isNumber())
        response.retry_after_ms = retry->asNumber();
    const json::Value* artifact = v.find("artifact");
    if (artifact != nullptr && artifact->isString())
        response.artifact = artifact->asString();
    return response;
}

}  // namespace graphiti::served
