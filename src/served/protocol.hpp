#ifndef GRAPHITI_SERVED_PROTOCOL_HPP
#define GRAPHITI_SERVED_PROTOCOL_HPP

/**
 * @file
 * The served wire protocol (docs/service.md).
 *
 * Transport framing: every message is a 4-byte big-endian payload
 * length followed by that many bytes of UTF-8 JSON. Frames above
 * kMaxFrameBytes are rejected before any allocation — a junk length
 * prefix must not let one client balloon the daemon's memory.
 *
 * Request:  { "id": n, "job": <JobSpec>, "deadline_seconds": s?,
 *             "client": "name"?, "job_id": "..."? }
 * Response: { "id": n, "job_id": "...", "status": "ok" | "error" |
 *             "rejected" | "cancelled", "result"?: ..., "error"?:
 *             "...", "retry_after_ms"?: ms, "artifact"?: "..." }
 *
 * `job_id` is the correlation id (docs/service_observability.md):
 * the client mints one per logical request and reuses it across
 * retry attempts (so a shed-then-resubmit sequence shares one id in
 * the daemon's logs and flight recorder); the daemon adopts it at
 * admission — or mints one if the request carries none — and echoes
 * it in every response.
 *
 * Status semantics:
 *   ok         the job ran; "result" holds runJob's output verbatim.
 *   error      the job ran and failed deterministically (malformed
 *              spec, validation failure, verification counterexample).
 *              Retrying the identical request returns the identical
 *              error — clients must not retry.
 *   rejected   admission control shed the job before it ran;
 *              "retry_after_ms" tells the client when the queue is
 *              likely to have drained. Retry with backoff.
 *   cancelled  the job was parked by its deadline, a disconnect, or
 *              fair-share preemption; "error" carries the stop
 *              reason, "artifact" a failure post-mortem when the
 *              supervisor declared the job wedged.
 */

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "support/result.hpp"
#include "support/socket.hpp"

namespace graphiti::served {

/** Hard ceiling on one frame's payload (64 MiB). */
constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

/** Render @p payload as one wire frame (header + payload). */
std::string encodeFrame(const std::string& payload);

/** Send one frame. */
Result<bool> writeFrame(const net::Socket& socket,
                        const std::string& payload, int timeout_ms);

/**
 * Receive one frame into @p payload. Returns false on a clean EOF
 * before the first header byte (peer done, not an error); errors on
 * timeouts, truncated frames (EOF mid-message) and oversized lengths.
 */
Result<bool> readFrame(const net::Socket& socket, std::string& payload,
                       int timeout_ms);

/** One request as carried on the wire. */
struct JobRequest
{
    std::uint64_t id = 0;
    /** The JobSpec document (parsed lazily server-side so a malformed
     * spec yields a structured per-request error, not a dead
     * connection). */
    obs::json::Value job;
    /** Wall-clock deadline of this job; 0 = none. Lives here, not in
     * the spec: deadlines are scheduling policy, and verdicts under a
     * deadline are never cached. */
    double deadline_seconds = 0.0;
    /** Fair-share accounting identity; defaults to the connection. */
    std::string client;
    /** Correlation id; empty = let the daemon mint one. */
    std::string job_id;

    obs::json::Value toJson() const;
};

Result<JobRequest> jobRequestFromJson(const obs::json::Value& v);

/** One response as carried on the wire. */
struct JobResponse
{
    std::uint64_t id = 0;
    /** Correlation id the daemon attached to this request. */
    std::string job_id;
    std::string status = "error";
    obs::json::Value result;
    std::string error;
    /** Shed hint: suggested minimum delay before retrying. */
    double retry_after_ms = 0.0;
    /** Failure post-mortem of a wedged job (JSON text). */
    std::string artifact;

    bool ok() const { return status == "ok"; }
    obs::json::Value toJson() const;
};

Result<JobResponse> jobResponseFromJson(const obs::json::Value& v);

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_PROTOCOL_HPP
