#ifndef GRAPHITI_SERVED_CLIENT_HPP
#define GRAPHITI_SERVED_CLIENT_HPP

/**
 * @file
 * The served client: connects to the daemon (unix socket or loopback
 * TCP), sends one framed request at a time, and retries transport
 * failures and shed ("rejected") responses with full-jitter
 * exponential backoff, honoring the daemon's retry_after hints.
 *
 * Deterministic "error" responses are never retried — the daemon
 * guarantees the identical request would fail identically. Retry
 * draws come from a seeded splitmix Rng, so a seeded client replays
 * the identical schedule (the served tests pin that down).
 */

#include <cstdint>
#include <string>

#include "core/job.hpp"
#include "served/protocol.hpp"
#include "support/backoff.hpp"

namespace graphiti::served {

/** Client configuration. */
struct ClientConfig
{
    /** Unix-domain socket path; empty = use tcp_port. */
    std::string socket_path;
    /** Loopback TCP port (used when socket_path is empty). */
    int tcp_port = -1;
    /** Per-read/write socket timeout. */
    int io_timeout_ms = 30000;
    /** Retry shape for transport failures and shed responses. */
    BackoffPolicy backoff;
    /** Seed of the jitter Rng. */
    std::uint64_t seed = 0x73657276656421ULL;
    /** Sleep between retries (tests disable to stay fast). */
    bool sleep_between_retries = true;
};

/** Aggregate client-side retry accounting. */
struct ClientStats
{
    std::size_t requests = 0;
    std::size_t retries = 0;
    std::size_t sheds_seen = 0;
    std::size_t transport_failures = 0;
};

/** The served client (one request in flight at a time). */
class Client
{
  public:
    explicit Client(ClientConfig config);

    /**
     * Run @p spec on the daemon: connect (reusing the connection
     * across calls when the daemon kept it open), frame, send, await
     * the response. Shed responses and transport failures are retried
     * up to the backoff policy's attempt cap; the final failure is
     * returned as an error. An "error"/"cancelled" response is
     * returned as a JobResponse, not an error — the transport worked.
     */
    Result<JobResponse> request(const JobSpec& spec,
                                double deadline_seconds = 0.0);

    /** request() + unwrap: the "result" payload of an ok response,
     * an error otherwise. */
    Result<obs::json::Value> call(const JobSpec& spec,
                                  double deadline_seconds = 0.0);

    /** Liveness probe. */
    Result<bool> ping();

    const ClientStats& stats() const { return stats_; }

    /** Drop the cached connection (next request reconnects). */
    void disconnect();

  private:
    Result<net::Socket> connect();
    Result<JobResponse> requestOnce(const std::string& payload);

    ClientConfig config_;
    Rng rng_;
    net::Socket socket_;
    std::uint64_t next_id_ = 1;
    ClientStats stats_;
};

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_CLIENT_HPP
