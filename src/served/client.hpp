#ifndef GRAPHITI_SERVED_CLIENT_HPP
#define GRAPHITI_SERVED_CLIENT_HPP

/**
 * @file
 * The served client: connects to the daemon (unix socket or loopback
 * TCP), sends one framed request at a time, and retries transport
 * failures and shed ("rejected") responses with full-jitter
 * exponential backoff, honoring the daemon's retry_after hints.
 *
 * Deterministic "error" responses are never retried — the daemon
 * guarantees the identical request would fail identically. Retry
 * draws come from a seeded splitmix Rng, so a seeded client replays
 * the identical schedule (the served tests pin that down).
 */

#include <cstdint>
#include <string>

#include "core/job.hpp"
#include "served/protocol.hpp"
#include "support/backoff.hpp"

namespace graphiti::served {

/** Client configuration. */
struct ClientConfig
{
    /** Unix-domain socket path; empty = use tcp_port. */
    std::string socket_path;
    /** Loopback TCP port (used when socket_path is empty). */
    int tcp_port = -1;
    /** Per-read/write socket timeout. */
    int io_timeout_ms = 30000;
    /** Retry shape for transport failures and shed responses. */
    BackoffPolicy backoff;
    /** Seed of the jitter Rng. */
    std::uint64_t seed = 0x73657276656421ULL;
    /** Sleep between retries (tests disable to stay fast). */
    bool sleep_between_retries = true;
};

/** Aggregate client-side retry accounting. */
struct ClientStats
{
    std::size_t requests = 0;
    std::size_t retries = 0;
    std::size_t sheds_seen = 0;
    std::size_t transport_failures = 0;
};

/** The served client (one request in flight at a time). */
class Client
{
  public:
    explicit Client(ClientConfig config);

    /**
     * Run @p spec on the daemon: connect (reusing the connection
     * across calls when the daemon kept it open), frame, send, await
     * the response. Shed responses and transport failures are retried
     * up to the backoff policy's attempt cap; the final failure is
     * returned as an error. An "error"/"cancelled" response is
     * returned as a JobResponse, not an error — the transport worked.
     *
     * @p job_id is the correlation id; empty mints one from the
     * client's seeded Rng. Either way the SAME id rides every retry
     * attempt of this logical request, so the daemon's log and flight
     * recorder stitch a shed-then-resubmit sequence into one story.
     */
    Result<JobResponse> request(const JobSpec& spec,
                                double deadline_seconds = 0.0,
                                const std::string& job_id = {});

    /** request() + unwrap: the "result" payload of an ok response,
     * an error otherwise. */
    Result<obs::json::Value> call(const JobSpec& spec,
                                  double deadline_seconds = 0.0);

    /** Liveness probe. */
    Result<bool> ping();

    /** Introspection verbs (docs/service_observability.md): the
     * daemon's stats / live job table / health payloads. */
    Result<obs::json::Value> serviceStats();
    Result<obs::json::Value> serviceJobs();
    Result<obs::json::Value> serviceHealth();

    /** The `metricsz` verb: the daemon's metrics rendered in text
     * exposition format (the same document `--expose` serves). */
    Result<std::string> serviceMetricsText();

    /** The correlation id the last request() carried. */
    const std::string& lastJobId() const { return last_job_id_; }

    const ClientStats& stats() const { return stats_; }

    /** Drop the cached connection (next request reconnects). */
    void disconnect();

  private:
    Result<net::Socket> connect();
    Result<JobResponse> requestOnce(const std::string& payload);

    /** Mint a correlation id from the seeded Rng. */
    std::string mintJobId();
    Result<obs::json::Value> introspect(const char* kind);

    ClientConfig config_;
    Rng rng_;
    net::Socket socket_;
    std::uint64_t next_id_ = 1;
    ClientStats stats_;
    std::string last_job_id_;
};

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_CLIENT_HPP
