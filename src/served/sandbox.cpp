#include "served/sandbox.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/compiler.hpp"
#include "faults/crash_plan.hpp"
#include "served/protocol.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAPHITI_SANDBOX_ASAN 1
#endif
#endif
#if !defined(GRAPHITI_SANDBOX_ASAN) && defined(__SANITIZE_ADDRESS__)
#define GRAPHITI_SANDBOX_ASAN 1
#endif
#ifndef GRAPHITI_SANDBOX_ASAN
#define GRAPHITI_SANDBOX_ASAN 0
#endif

namespace graphiti::served {

namespace json = obs::json;

namespace {

constexpr std::uint64_t kMiB = std::uint64_t{1} << 20;
constexpr std::uint64_t kAsFloorBytes = 1024 * kMiB;
constexpr std::uint64_t kAsCeilingBytes = 4096 * kMiB;
constexpr std::uint64_t kBytesPerState = 2048;
/** Virtual-address-space cost of one verifier thread: 8 MiB stack +
 * a 64 MiB glibc malloc arena reservation, with headroom. */
constexpr std::uint64_t kPerThreadBytes = 128 * kMiB;

double
elapsedMs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

const char*
signalName(int sig)
{
    switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    default: return nullptr;
    }
}

std::string
describeSignal(int sig)
{
    if (const char* name = signalName(sig))
        return std::string("signal ") + name;
    return "signal " + std::to_string(sig);
}

std::uint64_t
parseU64Field(const json::Value& frame, const char* key)
{
    const json::Value* field = frame.find(key);
    if (field == nullptr)
        return 0;
    if (field->isString())
        return std::strtoull(field->asString().c_str(), nullptr, 10);
    if (field->isNumber())
        return static_cast<std::uint64_t>(field->asNumber());
    return 0;
}

/** Apply one job's soft rlimit jail in the child. Soft limits are
 * enough: exceeding RLIMIT_AS fails allocations (the OOM new-handler
 * turns that into the exit sentinel) and RLIMIT_CPU delivers SIGXCPU.
 * CPU allowances are per-job: a warm worker adds the CPU it already
 * burned, so earlier jobs never eat a later job's budget. */
void
applyJobLimits(const WorkerLimits& limits)
{
    if (limits.address_space_bytes > 0 && sandboxAddressJailSupported()) {
        struct rlimit rl;
        if (::getrlimit(RLIMIT_AS, &rl) == 0) {
            rlim_t want =
                static_cast<rlim_t>(limits.address_space_bytes);
            rl.rlim_cur = rl.rlim_max == RLIM_INFINITY
                              ? want
                              : std::min(want, rl.rlim_max);
            (void)::setrlimit(RLIMIT_AS, &rl);
        }
    }
    if (limits.cpu_seconds > 0) {
        struct rusage usage;
        std::uint64_t used = 0;
        if (::getrusage(RUSAGE_SELF, &usage) == 0)
            used = static_cast<std::uint64_t>(usage.ru_utime.tv_sec) +
                   static_cast<std::uint64_t>(usage.ru_stime.tv_sec) +
                   1;
        struct rlimit rl;
        if (::getrlimit(RLIMIT_CPU, &rl) == 0) {
            rlim_t want = static_cast<rlim_t>(used + limits.cpu_seconds);
            rl.rlim_cur = rl.rlim_max == RLIM_INFINITY
                              ? want
                              : std::min(want, rl.rlim_max);
            (void)::setrlimit(RLIMIT_CPU, &rl);
        }
    }
}

/**
 * Child-side verdict store: forwards lookups and commits to the
 * parent over the worker socketpair, so the shared store's memory and
 * files are only ever touched by the daemon process. The job thread
 * is the socket's only reader during a job (the heartbeat thread only
 * writes, under the shared write mutex), so a lookup can synchronously
 * await its reply frame.
 */
class ProxyVerdictStore final : public guard::VerdictStore
{
  public:
    ProxyVerdictStore(const net::Socket& socket,
                      std::mutex& write_mutex, int timeout_ms)
        : socket_(socket), write_mutex_(write_mutex),
          timeout_ms_(timeout_ms)
    {
    }

    std::optional<guard::VerificationVerdict>
    lookup(std::uint64_t key) override
    {
        json::Value msg{json::Object{}};
        msg.set("op", "store_get");
        msg.set("key", std::to_string(key));
        {
            std::lock_guard<std::mutex> lock(write_mutex_);
            if (!writeFrame(socket_, msg.dump(), timeout_ms_).ok())
                return std::nullopt;
        }
        std::string payload;
        Result<bool> got = readFrame(socket_, payload, timeout_ms_);
        if (!got.ok() || !got.take())
            return std::nullopt;  // parent gone: behave as a miss
        Result<json::Value> doc = json::parse(payload);
        if (!doc.ok())
            return std::nullopt;
        json::Value reply = doc.take();
        const json::Value* hit = reply.find("hit");
        if (hit == nullptr || !hit->isBool() || !hit->asBool())
            return std::nullopt;
        const json::Value* verdict = reply.find("verdict");
        if (verdict == nullptr)
            return std::nullopt;
        Result<guard::VerificationVerdict> parsed =
            guard::verdictFromJson(*verdict);
        if (!parsed.ok())
            return std::nullopt;
        return parsed.take();
    }

    void
    store(std::uint64_t key,
          const guard::VerificationVerdict& verdict) override
    {
        json::Value msg{json::Object{}};
        msg.set("op", "store_put");
        msg.set("key", std::to_string(key));
        msg.set("verdict", verdict.toJson());
        std::lock_guard<std::mutex> lock(write_mutex_);
        (void)writeFrame(socket_, msg.dump(), timeout_ms_);
    }

    std::size_t approxBytes() const override { return 0; }

  private:
    const net::Socket& socket_;
    std::mutex& write_mutex_;
    int timeout_ms_;
};

/** Run one job frame inside the child. */
void
runChildJob(const net::Socket& socket, const SandboxConfig& config,
            const faults::CrashPlan& plan, const json::Value& frame)
{
    std::uint64_t serial = parseU64Field(frame, "serial");
    const json::Value* id_field = frame.find("job_id");
    std::string job_id = id_field != nullptr && id_field->isString()
                             ? id_field->asString()
                             : "";

    WorkerLimits limits;
    if (const json::Value* jail = frame.find("limits")) {
        limits.address_space_bytes =
            parseU64Field(*jail, "address_space_bytes");
        limits.cpu_seconds = parseU64Field(*jail, "cpu_seconds");
    }
    applyJobLimits(limits);

    json::Value done_frame{json::Object{}};
    done_frame.set("op", "result");
    done_frame.set("serial", std::to_string(serial));

    const json::Value* spec_field = frame.find("spec");
    JobSpec spec;
    {
        std::string parse_error;
        if (spec_field == nullptr) {
            parse_error = "job frame carries no spec";
        } else {
            Result<JobSpec> parsed = jobSpecFromJson(*spec_field);
            if (parsed.ok())
                spec = parsed.take();
            else
                parse_error = parsed.error().message;
        }
        if (!parse_error.empty()) {
            done_frame.set("status", "error");
            done_frame.set("error", parse_error);
            (void)writeFrame(socket, done_frame.dump(),
                             config.io_timeout_ms);
            return;
        }
    }

    // The fault seam: a planned death executes exactly here — after
    // the job frame is accepted (the parent has a serial in flight to
    // classify against), before any work. BusyLoop spins without ever
    // starting the heartbeat thread, so it exercises the parent's
    // wedge detection rather than its crash classification.
    faults::CrashAction fate = plan.action(job_id, "run");
    if (fate != faults::CrashAction::None)
        faults::executeCrashAction(fate);  // fatal classes never return

    auto scope = std::make_shared<obs::Scope>();
    scope->attachVerifyProbe(std::make_shared<obs::VerifyProbe>());

    std::mutex write_mutex;
    std::atomic<bool> finished{false};
    std::thread heartbeat([&] {
        auto last_beat = std::chrono::steady_clock::now() -
                         std::chrono::hours(1);
        while (!finished.load(std::memory_order_acquire)) {
            auto now = std::chrono::steady_clock::now();
            if (elapsedMs(last_beat, now) >=
                config.heartbeat_period_ms) {
                last_beat = now;
                json::Value beat{json::Object{}};
                beat.set("op", "heartbeat");
                beat.set("serial", std::to_string(serial));
                beat.set("states",
                         scope->metrics().counter("refine.states"));
                if (const obs::VerifyProbe* probe =
                        scope->verifyProbe())
                    beat.set("progress",
                             probe->snapshot().toJson());
                std::lock_guard<std::mutex> lock(write_mutex);
                if (!writeFrame(socket, beat.dump(),
                                config.io_timeout_ms)
                         .ok())
                    return;  // parent gone; the job will find out too
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    });

    {
        obs::ScopedInstall install(scope.get());
        Compiler compiler;
        compiler.setVerdictStore(std::make_shared<ProxyVerdictStore>(
            socket, write_mutex, config.io_timeout_ms));
        // Cancellation/deadline policy lives in the parent: it kills
        // the process group instead of firing a token, so the child
        // runs under a token that never fires.
        StopToken stop = StopToken::manual();
        Result<json::Value> run = runJob(compiler, spec, stop);
        if (run.ok()) {
            done_frame.set("status", "ok");
            done_frame.set("result", run.take());
        } else {
            done_frame.set("status", "error");
            done_frame.set("error", run.error().message);
        }
    }
    finished.store(true, std::memory_order_release);
    heartbeat.join();
    // Final totals ride the result frame: a job faster than one
    // heartbeat period still reports exact accounting.
    done_frame.set("states", scope->metrics().counter("refine.states"));
    if (const obs::VerifyProbe* probe = scope->verifyProbe())
        done_frame.set("progress", probe->snapshot().toJson());
    (void)writeFrame(socket, done_frame.dump(), config.io_timeout_ms);
}

/** The child process: ready handshake, then a job loop until
 * shutdown (or parent death). Never returns. */
[[noreturn]] void
childMain(net::Socket socket, const SandboxConfig& config)
{
    // A failed allocation inside the RLIMIT_AS jail exits through a
    // deterministic sentinel the parent classifies as a resource
    // death — not through an uncaught bad_alloc that would read as a
    // generic SIGABRT.
    std::set_new_handler([] { _exit(kOomExitCode); });

    faults::CrashPlan plan;
    if (const char* text = std::getenv("GRAPHITI_CRASH_PLAN")) {
        Result<faults::CrashPlan> parsed =
            faults::CrashPlan::parse(text);
        if (parsed.ok())
            plan = parsed.take();
    }

    json::Value ready{json::Object{}};
    ready.set("op", "ready");
    ready.set("pid", static_cast<std::int64_t>(::getpid()));
    if (!writeFrame(socket, ready.dump(), config.io_timeout_ms).ok())
        _exit(1);

    std::string payload;
    for (;;) {
        Result<bool> got = readFrame(socket, payload, -1);
        if (!got.ok() || !got.take())
            _exit(0);  // parent closed: retire quietly
        Result<json::Value> doc = json::parse(payload);
        if (!doc.ok())
            _exit(1);
        json::Value frame = doc.take();
        const json::Value* op = frame.find("op");
        std::string verb =
            op != nullptr && op->isString() ? op->asString() : "";
        if (verb == "shutdown")
            _exit(0);
        if (verb == "job")
            runChildJob(socket, config, plan, frame);
    }
}

}  // namespace

bool
sandboxAddressJailSupported()
{
    // AddressSanitizer reserves terabytes of shadow address space, so
    // any meaningful RLIMIT_AS ceiling would kill instrumented
    // children at startup; the jail (and its tests) disarm under it.
    return !GRAPHITI_SANDBOX_ASAN;
}

obs::json::Value
WorkerLimits::toJson() const
{
    json::Value out{json::Object{}};
    out.set("address_space_bytes",
            static_cast<double>(address_space_bytes));
    out.set("cpu_seconds", static_cast<double>(cpu_seconds));
    return out;
}

WorkerLimits
workerLimits(const guard::VerificationBudget& budget,
             std::size_t threads)
{
    WorkerLimits limits;
    std::uint64_t states =
        static_cast<std::uint64_t>(budget.max_states) +
        static_cast<std::uint64_t>(budget.partial_max_states);
    // Address space (not RSS): each verifier thread costs real
    // virtual reservations — an 8 MiB stack plus a glibc malloc arena
    // that maps 64 MiB up front — so the jail widens per thread.
    std::uint64_t lanes = std::max<std::uint64_t>(threads, 1);
    limits.address_space_bytes =
        std::min(kAsCeilingBytes, kAsFloorBytes +
                                      states * kBytesPerState +
                                      lanes * kPerThreadBytes);
    if (budget.deadline_seconds > 0)
        limits.cpu_seconds =
            static_cast<std::uint64_t>(budget.deadline_seconds * 2.0) +
            5;
    return limits;
}

const char*
toString(ExitClass cls)
{
    switch (cls) {
    case ExitClass::Clean: return "clean";
    case ExitClass::Exit: return "exit";
    case ExitClass::Crash: return "crash";
    case ExitClass::Resource: return "resource";
    case ExitClass::Cancelled: return "cancelled";
    case ExitClass::Wedged: return "wedged";
    }
    return "clean";
}

ExitStatus
classifyExit(int wait_status, KillContext context,
             const WorkerLimits& limits)
{
    ExitStatus out;
    if (context == KillContext::Stop) {
        out.cls = ExitClass::Cancelled;
        out.code = WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
        out.detail = "killed on stop request";
        return out;
    }
    if (context == KillContext::Wedge) {
        out.cls = ExitClass::Wedged;
        out.code = WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
        out.detail = "killed after heartbeat silence";
        return out;
    }
    if (WIFEXITED(wait_status)) {
        int code = WEXITSTATUS(wait_status);
        out.code = code;
        if (code == kOomExitCode) {
            out.cls = ExitClass::Resource;
            out.detail = "address-space rlimit (allocation failed)";
        } else if (code == 0) {
            out.cls = ExitClass::Clean;
            out.detail = "exit 0";
        } else {
            out.cls = ExitClass::Exit;
            out.detail = "exit " + std::to_string(code);
        }
        return out;
    }
    if (WIFSIGNALED(wait_status)) {
        int sig = WTERMSIG(wait_status);
        out.code = sig;
        if (sig == SIGXCPU) {
            out.cls = ExitClass::Resource;
            out.detail = "cpu rlimit (SIGXCPU)";
        } else if (sig == SIGKILL) {
            // The parent records its own kills in the context, so a
            // SIGKILL here came from outside: the kernel enforcing a
            // hard ceiling, the OOM killer, or an operator.
            out.cls = ExitClass::Resource;
            out.detail = "SIGKILL (not sent by the daemon: rlimit "
                         "hard ceiling, OOM killer, or external)";
            (void)limits;
        } else {
            out.cls = ExitClass::Crash;
            out.detail = describeSignal(sig);
        }
        return out;
    }
    out.cls = ExitClass::Crash;
    out.code = wait_status;
    out.detail = "unrecognized wait status " +
                 std::to_string(wait_status);
    return out;
}

std::string
crashArtifact(const std::string& job_id,
              const ExitStatus& exit_status,
              const HeartbeatSnapshot& last_heartbeat,
              const WorkerLimits& limits, int pid)
{
    json::Value doc{json::Object{}};
    doc.set("error", "worker process died: " + exit_status.detail);
    doc.set("job_id", job_id);
    json::Value exit{json::Object{}};
    exit.set("class", toString(exit_status.cls));
    exit.set("code", exit_status.code);
    exit.set("detail", exit_status.detail);
    doc.set("exit", std::move(exit));
    if (last_heartbeat.seen) {
        json::Value beat{json::Object{}};
        beat.set("age_ms",
                 elapsedMs(last_heartbeat.at,
                           std::chrono::steady_clock::now()));
        beat.set("states", last_heartbeat.states);
        if (!last_heartbeat.progress.isNull())
            beat.set("progress", last_heartbeat.progress);
        doc.set("last_heartbeat", std::move(beat));
    } else {
        doc.set("last_heartbeat", nullptr);
    }
    doc.set("rlimits", limits.toJson());
    json::Value worker{json::Object{}};
    worker.set("pid", pid);
    doc.set("worker", std::move(worker));
    return doc.dump(2);
}

WorkerProcess::WorkerProcess(SandboxConfig config)
    : config_(std::move(config))
{
}

WorkerProcess::~WorkerProcess()
{
    if (alive())
        kill(KillContext::None);
}

Result<bool>
WorkerProcess::spawn(const std::vector<int>& close_fds)
{
    if (alive())
        return err("worker already running");
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return err(std::string("socketpair: ") + std::strerror(errno));
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return err(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
        // Child. Close the parent-side end and every sibling's
        // parent-side end (an inherited dup would keep a dead
        // sibling's socket open and mask its EOF from the daemon).
        ::close(fds[0]);
        for (int fd : close_fds)
            if (fd >= 0)
                ::close(fd);
        (void)::setpgid(0, 0);
        if (!config_.crash_plan.empty())
            ::setenv("GRAPHITI_CRASH_PLAN", config_.crash_plan.c_str(),
                     1);
        childMain(net::Socket(fds[1]), config_);  // never returns
    }
    // Parent. The double setpgid closes the fork/exec race window:
    // whoever runs first makes the child its own group leader, so
    // kill(-pid) can never hit the daemon's group.
    (void)::setpgid(pid, pid);
    ::close(fds[1]);
    socket_ = net::Socket(fds[0]);
    pid_ = pid;
    last_exit_ = ExitStatus{};
    last_heartbeat_ = HeartbeatSnapshot{};
    std::string payload;
    Result<bool> got =
        readFrame(socket_, payload, config_.io_timeout_ms);
    if (!got.ok() || !got.take()) {
        kill(KillContext::None);
        return err("worker child failed its ready handshake" +
                   (got.ok() ? std::string(" (closed)")
                             : ": " + got.error().message));
    }
    return true;
}

void
WorkerProcess::kill(KillContext context)
{
    if (!alive())
        return;
    // The child is its own group leader, so the negative pid reaches
    // it and anything it spawned.
    (void)::kill(-pid_, SIGKILL);
    (void)::kill(pid_, SIGKILL);
    reap(context, config_.limits);
}

ExitStatus
WorkerProcess::reap(KillContext context, const WorkerLimits& limits)
{
    int status = 0;
    if (pid_ > 0)
        while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
        }
    last_exit_ = classifyExit(status, context, limits);
    pid_ = -1;
    socket_.close();
    return last_exit_;
}

void
WorkerProcess::shutdown()
{
    if (!alive())
        return;
    json::Value msg{json::Object{}};
    msg.set("op", "shutdown");
    (void)writeFrame(socket_, msg.dump(), 1000);
    for (int i = 0; i < 100; ++i) {
        int status = 0;
        pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
        if (reaped == pid_) {
            last_exit_ =
                classifyExit(status, KillContext::None, config_.limits);
            pid_ = -1;
            socket_.close();
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    kill(KillContext::None);
}

void
WorkerProcess::mirrorHeartbeat(const json::Value& beat,
                               obs::Scope* job_scope)
{
    auto now = std::chrono::steady_clock::now();
    last_heartbeat_.seen = true;
    last_heartbeat_.at = now;
    const json::Value* states = beat.find("states");
    if (states != nullptr && states->isNumber())
        last_heartbeat_.states =
            static_cast<std::int64_t>(states->asNumber());
    if (const json::Value* progress = beat.find("progress"))
        last_heartbeat_.progress = *progress;
    if (job_scope == nullptr)
        return;
    // Heartbeats carry totals; the job scope accumulates deltas so
    // the jobs verb and liveVerifyTotals read isolated jobs exactly
    // like in-thread ones.
    std::int64_t delta = last_heartbeat_.states - mirrored_states_;
    if (delta > 0) {
        job_scope->metrics().add("refine.states", delta);
        mirrored_states_ = last_heartbeat_.states;
    }
    obs::VerifyProbe* probe = job_scope->verifyProbe();
    if (probe == nullptr || !last_heartbeat_.progress.isObject())
        return;
    const json::Value& p = last_heartbeat_.progress;
    auto num = [&](const char* key) -> std::uint64_t {
        const json::Value* field = p.find(key);
        return field != nullptr && field->isNumber()
                   ? static_cast<std::uint64_t>(field->asNumber())
                   : 0;
    };
    auto dbl = [&](const char* key) -> double {
        const json::Value* field = p.find(key);
        return field != nullptr && field->isNumber()
                   ? field->asNumber()
                   : 0.0;
    };
    probe->publishExplore(num("states"), num("frontier"),
                          dbl("states_per_second"),
                          dbl("states_cap_pct"));
    probe->publishGame(num("pairs"), num("round"), num("alive"));
    probe->notePeakBytes(num("peak_bytes"));
}

SandboxOutcome
WorkerProcess::execute(const std::string& job_id, const JobSpec& spec,
                       const StopToken& stop, obs::Scope* job_scope,
                       const StoreHooks& hooks)
{
    SandboxOutcome outcome;
    if (!alive()) {
        outcome.status = "error";
        outcome.error = "isolated worker not running";
        return outcome;
    }

    // The job's jail: explicit config overrides win field by field,
    // the rest derives from the job's own verification budget.
    // The effective verifier thread count follows the Compiler's own
    // resolution: a non-default budget.threads wins, otherwise
    // options.threads (0 = hardware concurrency).
    std::size_t threads = spec.options.verify_budget.threads > 1
                              ? spec.options.verify_budget.threads
                              : spec.options.threads;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    WorkerLimits limits =
        workerLimits(spec.options.verify_budget, threads);
    if (config_.limits.address_space_bytes > 0)
        limits.address_space_bytes = config_.limits.address_space_bytes;
    if (config_.limits.cpu_seconds > 0)
        limits.cpu_seconds = config_.limits.cpu_seconds;

    std::uint64_t serial = next_serial_++;
    last_heartbeat_ = HeartbeatSnapshot{};
    mirrored_states_ = 0;
    // For the post-mortem artifact: reap() clears pid_ before fail()
    // builds it.
    const int child_pid = pid_;

    json::Value frame{json::Object{}};
    frame.set("op", "job");
    frame.set("serial", std::to_string(serial));
    frame.set("job_id", job_id);
    frame.set("spec", spec.toJson());
    frame.set("limits", limits.toJson());

    double timeout_s = config_.heartbeat_timeout_seconds > 0
                           ? config_.heartbeat_timeout_seconds
                           : 5.0;

    auto fail = [&](const ExitStatus& exit_status) {
        outcome.exit_class = exit_status.cls;
        outcome.worker_died = true;
        if (exit_status.cls == ExitClass::Cancelled) {
            outcome.status = "cancelled";
            outcome.error = stop.reason().empty()
                                ? std::string("stop requested")
                                : stop.reason();
            return;
        }
        outcome.status = "error";
        switch (exit_status.cls) {
        case ExitClass::Wedged:
            outcome.error = "worker wedged: no heartbeat for " +
                            std::to_string(timeout_s) + "s (" +
                            exit_status.detail + ")";
            break;
        case ExitClass::Resource:
            outcome.error = "worker exceeded its resource jail: " +
                            exit_status.detail;
            break;
        case ExitClass::Crash:
            outcome.error = "worker crashed: " + exit_status.detail;
            break;
        case ExitClass::Exit:
            outcome.error =
                "worker exited unexpectedly: " + exit_status.detail;
            break;
        default:
            outcome.error =
                "worker exited before returning a result";
            break;
        }
        outcome.artifact = crashArtifact(job_id, exit_status,
                                         last_heartbeat_, limits,
                                         child_pid);
    };

    if (!writeFrame(socket_, frame.dump(), config_.io_timeout_ms)
             .ok()) {
        // Dead before it could accept the job (crashed between jobs).
        ExitStatus exit_status = reap(KillContext::None, limits);
        fail(exit_status);
        return outcome;
    }

    auto last_seen = std::chrono::steady_clock::now();
    std::string payload;
    for (;;) {
        if (stop.stopRequested()) {
            // Deadline, disconnect or preemption: isolation trades
            // the cooperative ladder unwind for containment — the
            // process group dies now and the lane frees immediately.
            (void)::kill(-pid_, SIGKILL);
            (void)::kill(pid_, SIGKILL);
            ExitStatus exit_status = reap(KillContext::Stop, limits);
            fail(exit_status);
            return outcome;
        }
        Result<bool> readable = net::waitReadable(
            socket_, static_cast<int>(config_.poll_slice_ms));
        if (readable.ok() && !readable.value()) {
            // Poll slice elapsed with no traffic: wedge check.
            if (elapsedMs(last_seen, std::chrono::steady_clock::now())
                > timeout_s * 1000.0) {
                (void)::kill(-pid_, SIGKILL);
                (void)::kill(pid_, SIGKILL);
                ExitStatus exit_status =
                    reap(KillContext::Wedge, limits);
                fail(exit_status);
                return outcome;
            }
            continue;
        }
        if (!readable.ok()) {
            ExitStatus exit_status = reap(KillContext::None, limits);
            fail(exit_status);
            return outcome;
        }
        Result<bool> got =
            readFrame(socket_, payload, config_.io_timeout_ms);
        if (!got.ok() || !got.take()) {
            // EOF or torn frame: the child died mid-job. waitpid
            // tells the honest story.
            ExitStatus exit_status = reap(KillContext::None, limits);
            fail(exit_status);
            return outcome;
        }
        Result<json::Value> doc = json::parse(payload);
        if (!doc.ok())
            continue;  // unparseable chatter; the exit will classify
        json::Value msg = doc.take();
        const json::Value* op = msg.find("op");
        std::string verb =
            op != nullptr && op->isString() ? op->asString() : "";
        last_seen = std::chrono::steady_clock::now();
        if (verb == "heartbeat") {
            mirrorHeartbeat(msg, job_scope);
        } else if (verb == "store_get") {
            std::uint64_t key = parseU64Field(msg, "key");
            json::Value reply{json::Object{}};
            reply.set("op", "store");
            std::optional<guard::VerificationVerdict> verdict;
            if (hooks.lookup)
                verdict = hooks.lookup(key);
            reply.set("hit", verdict.has_value());
            if (verdict.has_value())
                reply.set("verdict", verdict->toJson());
            if (!writeFrame(socket_, reply.dump(),
                            config_.io_timeout_ms)
                     .ok()) {
                ExitStatus exit_status =
                    reap(KillContext::None, limits);
                fail(exit_status);
                return outcome;
            }
        } else if (verb == "store_put") {
            std::uint64_t key = parseU64Field(msg, "key");
            const json::Value* verdict = msg.find("verdict");
            if (verdict != nullptr && hooks.store) {
                Result<guard::VerificationVerdict> parsed =
                    guard::verdictFromJson(*verdict);
                if (parsed.ok())
                    hooks.store(key, parsed.take());
            }
        } else if (verb == "result") {
            // The result frame carries the job's final totals (states,
            // probe snapshot) — mirror them like a last heartbeat so
            // accounting is exact even for sub-heartbeat-period jobs.
            mirrorHeartbeat(msg, job_scope);
            const json::Value* status = msg.find("status");
            outcome.status =
                status != nullptr && status->isString()
                    ? status->asString()
                    : "error";
            if (const json::Value* result = msg.find("result"))
                outcome.result = *result;
            if (const json::Value* error = msg.find("error"))
                if (error->isString())
                    outcome.error = error->asString();
            return outcome;
        }
    }
}

}  // namespace graphiti::served
