#include "served/observe.hpp"

namespace graphiti::served {

namespace json = obs::json;

json::Value
VerbStats::toJson() const
{
    json::Value out{json::Object{}};
    out.set("requests", requests);
    out.set("ok", ok);
    out.set("errors", errors);
    out.set("shed", shed);
    out.set("cancelled", cancelled);
    out.set("queue_wait", queue_wait.toJson());
    out.set("execute", execute.toJson());
    return out;
}

ServiceObserver::ServiceObserver(std::size_t flight_capacity,
                                 std::size_t log_capacity,
                                 std::size_t span_capacity)
    : scope_(std::make_shared<obs::Scope>()), log_(log_capacity),
      spans_(span_capacity), flight_(flight_capacity),
      start_(std::chrono::steady_clock::now())
{
}

void
ServiceObserver::attachTrace(
    std::shared_ptr<obs::PerfettoTraceSink> sink)
{
    trace_ = sink;
    spans_.attachSink(std::move(sink));
}

void
ServiceObserver::recordVerb(const std::string& kind,
                            const std::string& status,
                            double queue_wait_ms, double execute_ms)
{
    std::lock_guard<std::mutex> lock(verbs_mutex_);
    VerbStats& verb = verbs_[kind];
    verb.requests += 1;
    if (status == "ok")
        verb.ok += 1;
    else if (status == "rejected")
        verb.shed += 1;
    else if (status == "cancelled")
        verb.cancelled += 1;
    else
        verb.errors += 1;
    // A shed job never queued or ran; keep its zeros out of the
    // windows so the percentiles describe work actually done.
    if (status != "rejected") {
        verb.queue_wait.record(queue_wait_ms);
        verb.execute.record(execute_ms);
    }
}

json::Value
ServiceObserver::verbsJson() const
{
    std::lock_guard<std::mutex> lock(verbs_mutex_);
    json::Value out{json::Object{}};
    for (const auto& [kind, verb] : verbs_)
        out.set(kind, verb.toJson());
    return out;
}

double
ServiceObserver::uptimeSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

}  // namespace graphiti::served
