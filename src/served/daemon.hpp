#ifndef GRAPHITI_SERVED_DAEMON_HPP
#define GRAPHITI_SERVED_DAEMON_HPP

/**
 * @file
 * The compile-service daemon (docs/service.md): a unix-domain
 * listener (plus an optional loopback TCP listener) speaking the
 * served frame protocol, one connection thread per client, all jobs
 * funneled through one Scheduler and one crash-safe VerdictStore.
 *
 * A connection is a loop of request frames; malformed frames and
 * malformed requests get structured error responses where a request
 * id is recoverable, and drop the connection where it is not —
 * never the daemon. Disconnects cancel the in-flight job's StopToken,
 * so a vanished client cannot pin a worker.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/expose.hpp"
#include "served/scheduler.hpp"
#include "support/socket.hpp"

namespace graphiti::served {

/** Daemon configuration. */
struct DaemonConfig
{
    /** Unix-domain socket path (required). */
    std::string socket_path;
    /** Loopback TCP port: -1 = no TCP listener, 0 = ephemeral. */
    int tcp_port = -1;
    /** Per-read/write socket timeout. */
    int io_timeout_ms = 30000;
    /** Loopback scrape port (`graphiti-served --expose`): -1 = no
     * exposition listener, 0 = ephemeral. Serves the same text
     * document as the `metricsz` verb. */
    int expose_port = -1;
    SchedulerConfig scheduler;
};

/** The daemon. */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /** Bind listeners, boot the scheduler, start serving. */
    Result<bool> start();

    /** Graceful shutdown: close listeners, cancel in-flight jobs,
     * join every connection. Safe to call twice. */
    void stop();

    /**
     * Crash drill: shut down without any final persistence pass, as
     * SIGKILL would. Everything the verdict store committed
     * write-through survives; nothing else is supposed to.
     */
    void kill();

    /** The TCP port actually bound (after start, when enabled). */
    std::uint16_t tcpPort() const { return tcp_port_; }
    const std::string& socketPath() const
    {
        return config_.socket_path;
    }

    Scheduler& scheduler() { return *scheduler_; }
    const Scheduler& scheduler() const { return *scheduler_; }

    /** The observability plane. Always non-null: the daemon creates
     * one when the config carries none, so the introspection verbs
     * answer even for callers that never thought about observation. */
    const std::shared_ptr<ServiceObserver>& observer() const
    {
        return observer_;
    }

    /** Connections accepted since start. */
    std::size_t connectionsAccepted() const
    {
        return connections_accepted_.load();
    }

    /**
     * The `stats` verb payload: uptime, connection counters
     * (malformed / oversize frames, clean EOFs, bad requests),
     * scheduler and store counters, per-verb latency split, and the
     * service-wide metrics snapshot.
     */
    obs::json::Value statsJson() const;

    /** The `jobs` verb payload: the scheduler's live job table. */
    obs::json::Value jobsJson() const;

    /** The `health` verb payload: lane liveness, store shard status,
     * listener addresses, uptime. */
    obs::json::Value healthJson() const;

    /**
     * The `metricsz` verb payload and the `--expose` endpoint's
     * document: the service-wide metrics registry rendered as text
     * exposition, plus the scrape-contract alias families
     * (`graphiti_verify_states_total`, `graphiti_verify_peak_bytes`)
     * that fold live in-flight job telemetry into the completed-job
     * counters, plus service/scheduler/store counters. Purely
     * read-only; answers zeros under GRAPHITI_OBS=OFF builds.
     */
    std::string metricsText() const;

    /** The exposition port actually bound (after start, when
     * `--expose` is enabled). */
    std::uint16_t exposePort() const { return expose_.port(); }

    /** Dump the flight recorder to its configured path (SIGUSR1
     * handler in the daemon tool; tests call it directly). */
    Result<bool> dumpFlight() const;

  private:
    void acceptLoop(net::Socket listener);
    void serveConnection(net::Socket socket, std::uint64_t conn_id);
    void shutdown(bool graceful);
    /** Answer a read-only introspection verb without touching the
     * scheduler queue (so `stats` works under full load or wedge). */
    obs::json::Value introspect(const std::string& kind) const;

    DaemonConfig config_;
    std::shared_ptr<ServiceObserver> observer_;
    std::unique_ptr<Scheduler> scheduler_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> next_conn_id_{1};
    std::atomic<std::size_t> connections_accepted_{0};
    /** Dropped-on-the-floor-no-more connection counters. */
    std::atomic<std::size_t> malformed_frames_{0};
    std::atomic<std::size_t> oversize_frames_{0};
    std::atomic<std::size_t> clean_eofs_{0};
    std::atomic<std::size_t> malformed_requests_{0};
    std::uint16_t tcp_port_ = 0;
    obs::expo::ExpositionServer expose_;
    std::vector<std::thread> accept_threads_;
    std::mutex conn_mutex_;
    std::vector<std::thread> conn_threads_;
    bool started_ = false;
};

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_DAEMON_HPP
