#ifndef GRAPHITI_SERVED_SCHEDULER_HPP
#define GRAPHITI_SERVED_SCHEDULER_HPP

/**
 * @file
 * Job scheduling for the served daemon: admission control with a
 * bounded queue and honest load-shedding, per-client fair-share
 * accounting with StopToken preemption, per-job deadlines, and a
 * supervisor watchdog that turns wedged jobs into failure artifacts
 * instead of dead workers.
 *
 * The policy itself — admit/shed, victim selection — is pure
 * functions over plain counts, unit-tested without any threads; the
 * Scheduler wires them to a worker pool. Every job runs on a fresh
 * Compiler (the Compiler is not thread-safe) sharing one
 * guard::VerdictStore, so verdicts committed by any worker survive
 * both concurrency and daemon restarts.
 *
 * Degradation is never silent: a shed job gets status "rejected" with
 * a retry_after hint; a deadline/preemption unwinds through the
 * governed ladder and reports the rung it still reached; a wedged job
 * (ignoring its stop token past the grace period) is answered with a
 * failure artifact by the supervisor while the stuck worker is
 * abandoned and replaced.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job.hpp"
#include "guard/verdict_store.hpp"
#include "obs/scope.hpp"
#include "served/observe.hpp"
#include "served/protocol.hpp"
#include "served/worker_pool.hpp"
#include "support/cancel.hpp"

namespace graphiti::served {

/** Scheduler tuning. */
struct SchedulerConfig
{
    /** Worker threads executing jobs. */
    std::size_t workers = 2;
    /** Jobs waiting beyond the running ones before shedding starts. */
    std::size_t queue_capacity = 8;
    /** Ceiling clamped onto any client-requested deadline; 0 = no
     * ceiling. */
    double max_deadline_seconds = 0.0;
    /** Seconds a job may keep running after its stop token fired
     * before the supervisor declares it wedged. */
    double wedge_grace_seconds = 5.0;
    /** Supervisor scan period. */
    double supervisor_period_ms = 25.0;
    /** Per-job cost estimate behind retry_after hints. */
    double estimated_job_ms = 50.0;
    /** Process isolation: > 0 runs every job in one of this many
     * sandboxed worker processes (and overrides `workers` to match,
     * one dispatch lane per child). 0 = in-thread lanes, the
     * historical mode. See docs/service.md, "Process isolation". */
    std::size_t isolate = 0;
    /** Worker-pool tuning when isolate > 0 (sandbox jails, breaker
     * thresholds). workers/observer are filled from this config. */
    WorkerPoolConfig pool;
    /** Verdict-store shape; dir empty = in-memory only. */
    guard::VerdictStoreConfig store;
    /** The service observability plane: scheduler counters land in
     * its scope, every job gets spans/log/flight records correlated
     * by job_id, and each finished job's private scope is folded into
     * the service-wide one. Null = no observation (the byte-identical
     * -verdict contract holds either way). */
    std::shared_ptr<ServiceObserver> observer;
};

/** Inputs of one admission decision (plain counts — pure policy). */
struct AdmissionState
{
    std::size_t queued = 0;          ///< jobs waiting (not running)
    std::size_t queue_capacity = 0;  ///< shedding threshold
    std::size_t running = 0;         ///< jobs currently on workers
    std::size_t workers = 0;
    /** Estimated per-job service time, for the retry_after hint. */
    double estimated_job_ms = 50.0;
};

/** Outcome of one admission decision. */
struct AdmissionDecision
{
    bool admit = true;
    std::string reason;
    double retry_after_ms = 0.0;
};

/**
 * Admit or shed one job. Sheds exactly when the queue is full; the
 * retry_after hint scales with how much queued work each worker lane
 * must drain first, so clients under a burst spread their retries
 * instead of stampeding the moment one slot frees.
 */
AdmissionDecision admitJob(const AdmissionState& state);

/**
 * Fair-share victim selection: with @p workers lanes and the given
 * per-client running counts, a client exceeding ceil(workers /
 * distinct_clients) lanes while another client's work waits is over
 * its share; the largest over-share client is the victim (ties break
 * to the lexicographically smallest name, keeping the choice
 * deterministic). Empty string = nobody to preempt.
 */
std::string pickPreemptionVictim(
    const std::map<std::string, std::size_t>& running_per_client,
    const std::vector<std::string>& waiting_clients,
    std::size_t workers);

/** Final state of one scheduled job. */
struct JobOutcome
{
    /** Correlation id (caller-supplied or minted at admission). */
    std::string job_id;
    /** "ok", "error", "rejected" or "cancelled" (protocol.hpp). */
    std::string status = "error";
    obs::json::Value result;
    std::string error;
    double retry_after_ms = 0.0;
    /** Wedged-job post-mortem (JSON text); empty otherwise. */
    std::string artifact;
};

/** Aggregate scheduler counters (also mirrored to obs metrics). */
struct SchedulerStats
{
    std::size_t accepted = 0;
    std::size_t shed = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t preempted = 0;
    std::size_t wedged = 0;
    /** Cancels caused by the client vanishing mid-request. */
    std::size_t disconnect_cancelled = 0;

    obs::json::Value toJson() const;
};

/** The job scheduler. */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /** Boot workers and supervisor; loads the verdict store when a
     * persistence dir is configured (corrupt shards are skipped and
     * counted, never fatal). */
    Result<bool> start();

    /**
     * Graceful shutdown: shed new submissions, cancel running jobs,
     * join workers and supervisor. Safe to call twice.
     */
    void stop();

    /**
     * Abrupt shutdown for crash drills: like stop() but never
     * persists anything beyond what store() already committed
     * write-through. What this loses is exactly what SIGKILL loses —
     * nothing (the crash-recovery tests pin that down).
     */
    void kill();

    /**
     * Submit one job and wait for its outcome. @p client is the
     * fair-share identity; @p deadline_seconds arms a per-job
     * deadline (clamped to max_deadline_seconds); @p abandoned is
     * polled while waiting — when it returns true (client
     * disconnected) the job's token is stopped, the wait continues
     * until the worker actually unwinds, and the outcome reports
     * "cancelled". @p job_id is the correlation id; empty mints
     * "job-<serial>" at admission. The outcome echoes it either way.
     */
    JobOutcome submitAndWait(const std::string& client, JobSpec spec,
                             double deadline_seconds = 0.0,
                             const std::function<bool()>& abandoned = {},
                             const std::string& job_id = {});

    /**
     * The live job table (the `jobs` verb): one entry per queued or
     * running job — job_id, client, kind, phase, age, queue wait,
     * deadline remaining, stop state, and the cooperative progress
     * counters (states explored, verification rungs) read off the
     * job's private scope. Functional with or without an observer.
     */
    obs::json::Value jobsJson() const;

    /**
     * Liveness summary (the `health` verb): configured vs alive
     * worker lanes, abandoned (wedged) lanes, queue depth/capacity,
     * supervisor heartbeat age, whether submissions are accepted.
     */
    obs::json::Value healthJson() const;

    /**
     * Aggregate live verification telemetry across every queued or
     * running job (the `metricsz` verb's alias families): summed
     * states-explored counters off the jobs' private scopes, and the
     * maximum peak-bytes any live probe has observed. Completed jobs
     * are excluded — their metrics already folded into the service
     * scope at completion, so the caller can add without
     * double-counting.
     */
    void liveVerifyTotals(std::int64_t& states,
                          std::uint64_t& peak_bytes) const;

    /** The shared crash-safe verdict store. */
    const std::shared_ptr<guard::VerdictStore>& store() const
    {
        return store_;
    }

    /** The sandboxed worker pool; null when isolate == 0. */
    WorkerPool* workerPool() const { return pool_.get(); }

    SchedulerStats stats() const;
    const SchedulerConfig& config() const { return config_; }

  private:
    struct Job
    {
        std::uint64_t serial = 0;
        std::string job_id;  // correlation id (client's or minted)
        std::string client;
        JobSpec spec;
        StopToken stop;  // always armed (manual or deadline)
        std::chrono::steady_clock::time_point stop_requested_at{};
        bool stop_seen = false;  // supervisor latched the fired token
        bool running = false;
        bool done = false;
        /** The supervisor declared this job wedged; the worker lane
         * running it retires on unwind (a replacement already runs). */
        bool worker_abandoned = false;
        /** Admission / dequeue timestamps for queue-wait vs execute
         * attribution. */
        std::chrono::steady_clock::time_point enqueued_at{};
        std::chrono::steady_clock::time_point started_at{};
        bool started = false;
        /** Armed deadline, for the jobs verb's remaining-time column. */
        bool has_deadline = false;
        std::chrono::steady_clock::time_point deadline_at{};
        /** Private scope installed around runJob: the jobs verb reads
         * live progress counters off it; on completion it folds into
         * the observer's service-wide scope. */
        std::shared_ptr<obs::Scope> job_scope;
        JobOutcome outcome;
    };
    using JobPtr = std::shared_ptr<Job>;

    void workerLoop();
    void supervisorLoop();
    /** Complete @p job exactly once (worker or supervisor — first
     * wins); returns whether this call won. Takes the scheduler lock. */
    bool completeJob(const JobPtr& job, JobOutcome outcome);
    /** completeJob with the scheduler lock already held. */
    bool completeJobLocked(const JobPtr& job, JobOutcome outcome);
    void enforceFairShareLocked();

    SchedulerConfig config_;
    std::shared_ptr<guard::VerdictStore> store_;
    /** Sandboxed worker pool (isolate mode only). */
    std::unique_ptr<WorkerPool> pool_;

    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable job_done_;
    std::deque<JobPtr> queue_;
    std::vector<JobPtr> running_;
    std::vector<std::thread> workers_;
    std::thread supervisor_;
    std::uint64_t next_serial_ = 1;
    bool started_ = false;
    bool stopping_ = false;
    SchedulerStats stats_;
    /** Worker lanes currently inside workerLoop (health verb). */
    std::size_t workers_alive_ = 0;
    /** Lanes the supervisor abandoned as wedged (health verb). */
    std::size_t workers_abandoned_ = 0;
    std::chrono::steady_clock::time_point supervisor_heartbeat_{};
    bool supervisor_seen_ = false;
};

}  // namespace graphiti::served

#endif  // GRAPHITI_SERVED_SCHEDULER_HPP
