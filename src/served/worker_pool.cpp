#include "served/worker_pool.hpp"

#include <algorithm>

namespace graphiti::served {

namespace json = obs::json;

obs::json::Value
WorkerPoolStats::toJson() const
{
    json::Value out{json::Object{}};
    out.set("configured", configured);
    out.set("live", live);
    out.set("busy", busy);
    out.set("spawned", spawned);
    out.set("respawned", respawned);
    out.set("crashes", crashes);
    json::Value classes{json::Object{}};
    for (const auto& [cls, count] : crashes_by_class)
        classes.set(cls, count);
    out.set("crashes_by_class", std::move(classes));
    json::Value breaker{json::Object{}};
    breaker.set("open", breaker_open);
    breaker.set("trips", breaker_trips);
    breaker.set("remaining_ms", breaker_remaining_ms);
    out.set("breaker", std::move(breaker));
    return out;
}

WorkerPool::WorkerPool(WorkerPoolConfig config, StoreHooks hooks)
    : config_(std::move(config)), hooks_(std::move(hooks))
{
    if (config_.workers == 0)
        config_.workers = 1;
}

WorkerPool::~WorkerPool() { stop(); }

Result<bool>
WorkerPool::spawnSlotLocked(Slot& slot, bool is_respawn)
{
    slot.worker = std::make_unique<WorkerProcess>(config_.sandbox);
    // Children must not inherit a sibling's parent-side socket end:
    // a held dup would mask that sibling's EOF when it dies.
    std::vector<int> sibling_fds;
    for (const Slot& other : slots_)
        if (other.worker != nullptr && &other != &slot &&
            other.worker->socketFd() >= 0)
            sibling_fds.push_back(other.worker->socketFd());
    Result<bool> ok = slot.worker->spawn(sibling_fds);
    if (!ok.ok())
        return ok.error().context("WorkerPool::spawn");
    spawned_ += 1;
    if (is_respawn)
        respawned_ += 1;
    ServiceObserver* observer = config_.observer.get();
    if (observer != nullptr)
        observer->scope().metrics().add(
            is_respawn ? "served.worker.respawned"
                       : "served.worker.spawned",
            1);
    GRAPHITI_SVC_FLIGHT(observer, "worker", "event",
                        is_respawn ? "respawn" : "spawn", "pid",
                        slot.worker->pid());
    return true;
}

void
WorkerPool::recordDeathLocked(const std::string& cls,
                              const std::string& job_id)
{
    auto now = std::chrono::steady_clock::now();
    crashes_ += 1;
    crashes_by_class_[cls] += 1;
    deaths_.push_back(now);
    auto horizon =
        now - std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      config_.breaker_window_seconds));
    while (!deaths_.empty() && deaths_.front() < horizon)
        deaths_.pop_front();
    ServiceObserver* observer = config_.observer.get();
    if (observer != nullptr) {
        observer->scope().metrics().add("served.worker.crashes", 1);
        observer->scope().metrics().add(
            "served.worker.crashes." + cls, 1);
    }
    GRAPHITI_SVC_FLIGHT(observer, "worker", "event", "crash", "class",
                        cls, "job_id", job_id, "window_deaths",
                        deaths_.size());
    GRAPHITI_SVC_LOG(observer, obs::LogLevel::Warn, job_id,
                     "worker.crash", "class", cls, "window_deaths",
                     deaths_.size());

    if (deaths_.size() < config_.breaker_deaths)
        return;
    // Trip: cooldown doubles per consecutive trip (the backoff
    // shape, un-jittered — the breaker is one daemon pacing itself,
    // not a herd to decorrelate).
    consecutive_trips_ += 1;
    breaker_trips_ += 1;
    double cooldown_ms = config_.breaker_backoff.base_ms;
    for (std::size_t i = 1; i < consecutive_trips_ &&
                            cooldown_ms < config_.breaker_backoff.cap_ms;
         ++i)
        cooldown_ms *= 2.0;
    cooldown_ms = std::min(cooldown_ms, config_.breaker_backoff.cap_ms);
    breaker_until_ =
        now + std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      cooldown_ms));
    breaker_armed_ = true;
    deaths_.clear();
    if (observer != nullptr)
        observer->scope().metrics().add("served.worker.breaker_trips",
                                        1);
    GRAPHITI_SVC_FLIGHT(observer, "worker", "event", "breaker-trip",
                        "cooldown_ms", cooldown_ms, "trip",
                        breaker_trips_);
    GRAPHITI_SVC_LOG(observer, obs::LogLevel::Error, "",
                     "worker.breaker", "cooldown_ms", cooldown_ms,
                     "trip", breaker_trips_);
}

double
WorkerPool::breakerRemainingMsLocked(
    std::chrono::steady_clock::time_point now) const
{
    if (!breaker_armed_)
        return 0.0;
    return std::chrono::duration<double, std::milli>(breaker_until_ -
                                                     now)
        .count();
}

Result<bool>
WorkerPool::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return err("worker pool already started");
    slots_.resize(config_.workers);
    for (Slot& slot : slots_) {
        Result<bool> ok = spawnSlotLocked(slot, false);
        if (!ok.ok())
            return ok;
    }
    started_ = true;
    stopping_ = false;
    return true;
}

void
WorkerPool::stop()
{
    std::vector<WorkerProcess*> workers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || stopping_)
            return;
        stopping_ = true;
        for (Slot& slot : slots_)
            if (slot.worker != nullptr && !slot.busy &&
                slot.worker->alive())
                workers.push_back(slot.worker.get());
        slot_free_.notify_all();
    }
    // Polite shutdowns outside the lock (each may wait up to a
    // second); busy workers are killed by their lanes' stop path and
    // any stragglers by the WorkerProcess destructor.
    for (WorkerProcess* worker : workers)
        worker->shutdown();
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

SandboxOutcome
WorkerPool::execute(const std::string& job_id, const JobSpec& spec,
                    const StopToken& stop, obs::Scope* job_scope)
{
    Slot* slot = nullptr;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            SandboxOutcome shed;
            if (!started_ || stopping_) {
                shed.status = "rejected";
                shed.error = "worker pool not accepting jobs";
                return shed;
            }
            if (stop.stopRequested()) {
                shed.status = "cancelled";
                shed.error = stop.reason();
                return shed;
            }
            auto now = std::chrono::steady_clock::now();
            double remaining = breakerRemainingMsLocked(now);
            if (remaining > 0.0) {
                shed.status = "rejected";
                shed.error =
                    "worker crash-loop breaker open (" +
                    std::to_string(crashes_) + " crashes; cooling "
                    "down)";
                shed.retry_after_ms = remaining;
                return shed;
            }
            for (Slot& candidate : slots_) {
                if (candidate.busy)
                    continue;
                if (slot == nullptr ||
                    (!slot->worker->alive() &&
                     candidate.worker->alive()))
                    slot = &candidate;
                if (slot->worker->alive())
                    break;
            }
            if (slot != nullptr) {
                if (!slot->worker->alive()) {
                    Result<bool> ok = spawnSlotLocked(*slot, true);
                    if (!ok.ok()) {
                        recordDeathLocked("spawn-failed", job_id);
                        slot = nullptr;
                        SandboxOutcome out;
                        out.status = "error";
                        out.error = ok.error().message;
                        return out;
                    }
                }
                slot->busy = true;
                break;
            }
            slot_free_.wait_for(lock,
                                std::chrono::milliseconds(20));
        }
    }

    SandboxOutcome out =
        slot->worker->execute(job_id, spec, stop, job_scope, hooks_);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        slot->busy = false;
        if (out.worker_died) {
            recordDeathLocked(toString(out.exit_class), job_id);
            // Keep the pool warm: replace the casualty now (unless
            // the breaker just opened — then respawning waits for
            // the cooldown, which is the breaker's whole point).
            if (!stopping_ &&
                breakerRemainingMsLocked(
                    std::chrono::steady_clock::now()) <= 0.0)
                (void)spawnSlotLocked(*slot, true);
        } else if (out.status == "ok" || out.status == "error") {
            // A worker came back healthy: the crash loop (if any)
            // ended. Close the loop's memory so stale deaths never
            // trip the breaker later.
            consecutive_trips_ = 0;
            breaker_armed_ = false;
            deaths_.clear();
        }
        slot_free_.notify_one();
    }
    return out;
}

void
WorkerPool::setCrashPlan(const std::string& plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_.sandbox.crash_plan = plan;
}

WorkerPoolStats
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    WorkerPoolStats out;
    out.configured = config_.workers;
    for (const Slot& slot : slots_) {
        if (slot.worker != nullptr && slot.worker->alive())
            out.live += 1;
        if (slot.busy)
            out.busy += 1;
    }
    out.spawned = spawned_;
    out.respawned = respawned_;
    out.crashes = crashes_;
    out.crashes_by_class = crashes_by_class_;
    out.breaker_trips = breaker_trips_;
    auto now = std::chrono::steady_clock::now();
    double remaining = breakerRemainingMsLocked(now);
    out.breaker_open = remaining > 0.0;
    out.breaker_remaining_ms = std::max(remaining, 0.0);
    return out;
}

obs::json::Value
WorkerPool::healthJson() const
{
    return stats().toJson();
}

bool
WorkerPool::breakerOpen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breakerRemainingMsLocked(std::chrono::steady_clock::now()) >
           0.0;
}

}  // namespace graphiti::served
