#ifndef GRAPHITI_EGRAPH_EGRAPH_HPP
#define GRAPHITI_EGRAPH_EGRAPH_HPP

/**
 * @file
 * A from-scratch e-graph with equality saturation.
 *
 * Section 3.2 uses egg as an *oracle* to decide in which order the
 * associativity / commutativity / elimination rewrites of the residual
 * Split/Join subgraph should be applied. This module is that oracle: a
 * hashconsed e-graph with union-find congruence closure, backtracking
 * e-matching for rewrite rules, a saturation loop with node/iteration
 * limits, and smallest-term extraction.
 *
 * The oracle is untrusted (exactly as in the paper): the rewriting
 * pipeline uses its output only as guidance and re-validates the
 * resulting graph replacement with the refinement checker.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace graphiti::eg {

/** A concrete term, also used (with "?x" ops) as a pattern. */
struct TermExpr
{
    std::string op;
    std::vector<TermExpr> children;

    bool operator==(const TermExpr&) const = default;

    /** True when this node is a pattern variable ("?name"). */
    bool isVar() const { return !op.empty() && op[0] == '?'; }

    /** Number of nodes in the term. */
    std::size_t size() const;

    std::string toString() const;

    static TermExpr
    leaf(std::string name)
    {
        return TermExpr{std::move(name), {}};
    }

    static TermExpr
    node(std::string op, std::vector<TermExpr> children)
    {
        return TermExpr{std::move(op), std::move(children)};
    }
};

/** A rewrite rule lhs -> rhs over patterns. */
struct RewriteRule
{
    std::string name;
    TermExpr lhs;
    TermExpr rhs;
};

/**
 * The *semantic* pair-algebra rules used for Split/Join reduction:
 * projection elimination and eta. Every rule is a value-level
 * equality, so terms minimized under these rules compile to the same
 * function (Pure generation relies on this).
 */
std::vector<RewriteRule> pairAlgebraRules();

/**
 * The semantic rules plus nesting (re)association. Associativity is
 * *not* a value-level equality — ((a,b),c) and (a,(b,c)) are distinct
 * tuples — but it captures which Join-tree shapes are interconvertible
 * by the paper's graph rewrites (which insert compensating tuple
 * shuffles). Use for structural exploration only, never to justify a
 * Pure function replacement.
 */
std::vector<RewriteRule> pairStructuralRules();

using ClassId = std::uint32_t;

/** An e-node: an operator applied to e-class ids. */
struct ENode
{
    std::string op;
    std::vector<ClassId> children;

    bool operator==(const ENode&) const = default;
    auto operator<=>(const ENode&) const = default;
};

/** Statistics of a saturation run. */
struct SaturationStats
{
    std::size_t iterations = 0;
    std::size_t applications = 0;
    bool saturated = false;  ///< true when a fixpoint was reached
};

/** The e-graph. */
class EGraph
{
  public:
    /** Add (hashconsing) an e-node; children must be canonical ids. */
    ClassId add(ENode node);

    /** Add a concrete term bottom-up; returns its e-class. */
    ClassId addTerm(const TermExpr& term);

    /** Canonical representative of @p id. */
    ClassId find(ClassId id) const;

    /** Merge two classes; returns true when they were distinct. */
    bool merge(ClassId a, ClassId b);

    /** Restore congruence and hashcons invariants after merges. */
    void rebuild();

    bool
    equivalent(ClassId a, ClassId b) const
    {
        return find(a) == find(b);
    }

    /**
     * Run @p rules to saturation, stopping at @p max_iterations rounds
     * or when the e-graph exceeds @p max_nodes.
     */
    SaturationStats saturate(const std::vector<RewriteRule>& rules,
                             std::size_t max_iterations = 30,
                             std::size_t max_nodes = 50000);

    /**
     * Extract the smallest (node-count) term of class @p id.
     * Fails when the class has no acyclic derivation.
     */
    Result<TermExpr> extract(ClassId id) const;

    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numClasses() const;

    /** Size-based byte estimate of the e-graph's tables (e-nodes with
     * their op strings, union-find, hashcons, class index). Resource
     * accounting only — feeds the `egraph.bytes` gauge, never any
     * saturation limit. */
    std::size_t approxBytes() const;

  private:
    /** Variable bindings of a pattern match. */
    using Subst = std::map<std::string, ClassId>;

    void matchPattern(const TermExpr& pattern, ClassId cls, Subst subst,
                      std::vector<Subst>& out) const;
    ClassId instantiate(const TermExpr& pattern, const Subst& subst);
    ENode canonicalize(ENode node) const;
    void finishSaturation(const SaturationStats& stats) const;

    std::vector<ClassId> parent_;  ///< union-find
    std::vector<ENode> nodes_;     ///< all distinct e-nodes
    std::vector<ClassId> node_class_;
    std::map<ENode, std::size_t> hashcons_;
    /** node indices per canonical class. */
    std::map<ClassId, std::vector<std::size_t>> class_nodes_;
};

}  // namespace graphiti::eg

#endif  // GRAPHITI_EGRAPH_EGRAPH_HPP
