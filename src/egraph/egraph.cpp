#include "egraph/egraph.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <sstream>

#include "obs/scope.hpp"

namespace graphiti::eg {

std::size_t
TermExpr::size() const
{
    std::size_t n = 1;
    for (const TermExpr& c : children)
        n += c.size();
    return n;
}

std::string
TermExpr::toString() const
{
    if (children.empty())
        return op;
    std::ostringstream os;
    os << "(" << op;
    for (const TermExpr& c : children)
        os << " " << c.toString();
    os << ")";
    return os.str();
}

std::vector<RewriteRule>
pairAlgebraRules()
{
    using T = TermExpr;
    auto v = [](const char* name) { return T::leaf(name); };
    return {
        // Elimination: projecting out of a constructed pair.
        {"fst-pair", T::node("fst", {T::node("pair", {v("?a"), v("?b")})}),
         v("?a")},
        {"snd-pair", T::node("snd", {T::node("pair", {v("?a"), v("?b")})}),
         v("?b")},
        // Eta: re-pairing both projections of the same value.
        {"pair-eta",
         T::node("pair", {T::node("fst", {v("?x")}),
                          T::node("snd", {v("?x")})}),
         v("?x")},
    };
}

std::vector<RewriteRule>
pairStructuralRules()
{
    using T = TermExpr;
    auto v = [](const char* name) { return T::leaf(name); };
    std::vector<RewriteRule> rules = pairAlgebraRules();
    rules.push_back(
        {"assoc-right",
         T::node("pair", {T::node("pair", {v("?a"), v("?b")}), v("?c")}),
         T::node("pair",
                 {v("?a"), T::node("pair", {v("?b"), v("?c")})})});
    rules.push_back(
        {"assoc-left",
         T::node("pair", {v("?a"), T::node("pair", {v("?b"), v("?c")})}),
         T::node("pair",
                 {T::node("pair", {v("?a"), v("?b")}), v("?c")})});
    return rules;
}

ClassId
EGraph::find(ClassId id) const
{
    while (parent_[id] != id)
        id = parent_[id];
    return id;
}

ENode
EGraph::canonicalize(ENode node) const
{
    for (ClassId& c : node.children)
        c = find(c);
    return node;
}

ClassId
EGraph::add(ENode node)
{
    node = canonicalize(std::move(node));
    auto it = hashcons_.find(node);
    if (it != hashcons_.end())
        return find(node_class_[it->second]);

    ClassId cls = static_cast<ClassId>(parent_.size());
    parent_.push_back(cls);
    std::size_t idx = nodes_.size();
    nodes_.push_back(node);
    node_class_.push_back(cls);
    hashcons_.emplace(std::move(node), idx);
    class_nodes_[cls].push_back(idx);
    return cls;
}

ClassId
EGraph::addTerm(const TermExpr& term)
{
    ENode node;
    node.op = term.op;
    for (const TermExpr& child : term.children)
        node.children.push_back(addTerm(child));
    return add(std::move(node));
}

bool
EGraph::merge(ClassId a, ClassId b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return false;
    // Keep the smaller id as representative for determinism.
    if (b < a)
        std::swap(a, b);
    parent_[b] = a;
    auto& into = class_nodes_[a];
    auto& from = class_nodes_[b];
    into.insert(into.end(), from.begin(), from.end());
    class_nodes_.erase(b);
    return true;
}

void
EGraph::rebuild()
{
    // Re-canonicalize every node; merge classes whose nodes collide
    // (congruence closure), iterating until stable.
    bool changed = true;
    while (changed) {
        changed = false;
        std::map<ENode, ClassId> seen;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            ENode canon = canonicalize(nodes_[i]);
            ClassId cls = find(node_class_[i]);
            auto [it, inserted] = seen.emplace(canon, cls);
            if (!inserted && find(it->second) != cls) {
                merge(it->second, cls);
                changed = true;
            }
        }
    }
    // Refresh the hashcons and per-class node lists.
    hashcons_.clear();
    class_nodes_.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        nodes_[i] = canonicalize(nodes_[i]);
        node_class_[i] = find(node_class_[i]);
        hashcons_.emplace(nodes_[i], i);
        class_nodes_[node_class_[i]].push_back(i);
    }
}

void
EGraph::matchPattern(const TermExpr& pattern, ClassId cls, Subst subst,
                     std::vector<Subst>& out) const
{
    cls = find(cls);
    if (pattern.isVar()) {
        auto it = subst.find(pattern.op);
        if (it != subst.end()) {
            if (find(it->second) == cls)
                out.push_back(std::move(subst));
            return;
        }
        subst[pattern.op] = cls;
        out.push_back(std::move(subst));
        return;
    }
    auto class_it = class_nodes_.find(cls);
    if (class_it == class_nodes_.end())
        return;
    for (std::size_t idx : class_it->second) {
        const ENode& node = nodes_[idx];
        if (node.op != pattern.op ||
            node.children.size() != pattern.children.size())
            continue;
        std::vector<Subst> partial = {subst};
        for (std::size_t c = 0;
             c < pattern.children.size() && !partial.empty(); ++c) {
            std::vector<Subst> next;
            for (Subst& p : partial)
                matchPattern(pattern.children[c], node.children[c],
                             std::move(p), next);
            partial = std::move(next);
        }
        for (Subst& p : partial)
            out.push_back(std::move(p));
    }
}

ClassId
EGraph::instantiate(const TermExpr& pattern, const Subst& subst)
{
    if (pattern.isVar())
        return find(subst.at(pattern.op));
    ENode node;
    node.op = pattern.op;
    for (const TermExpr& child : pattern.children)
        node.children.push_back(instantiate(child, subst));
    return add(std::move(node));
}

SaturationStats
EGraph::saturate(const std::vector<RewriteRule>& rules,
                 std::size_t max_iterations, std::size_t max_nodes)
{
    GRAPHITI_OBS_TIMER(obs_timer, "egraph.saturate_seconds");
    GRAPHITI_OBS_COUNT("egraph.saturations", 1);
    SaturationStats stats;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        ++stats.iterations;
        GRAPHITI_OBS_COUNT("egraph.iterations", 1);
        // Growth per saturation round, as counter tracks a trace
        // viewer plots over the iteration axis.
        GRAPHITI_OBS_TRACK("egraph.nodes", iter, nodes_.size());
        GRAPHITI_OBS_TRACK("egraph.classes", iter, numClasses());
        // Collect matches against a frozen snapshot of classes.
        struct PendingMerge
        {
            const RewriteRule* rule;
            Subst subst;
            ClassId cls;
        };
        std::vector<PendingMerge> pending;
        std::vector<ClassId> classes;
        for (const auto& [cls, nodes] : class_nodes_)
            classes.push_back(cls);
        for (const RewriteRule& rule : rules) {
            for (ClassId cls : classes) {
                std::vector<Subst> matches;
                matchPattern(rule.lhs, cls, {}, matches);
                for (Subst& m : matches)
                    pending.push_back(
                        PendingMerge{&rule, std::move(m), cls});
            }
        }
        bool changed = false;
        for (PendingMerge& p : pending) {
            if (nodes_.size() > max_nodes) {
                finishSaturation(stats);
                return stats;
            }
            ClassId rhs_cls = instantiate(p.rule->rhs, p.subst);
            if (merge(p.cls, rhs_cls)) {
                changed = true;
                ++stats.applications;
            }
        }
        rebuild();
        if (!changed) {
            stats.saturated = true;
            finishSaturation(stats);
            return stats;
        }
    }
    finishSaturation(stats);
    return stats;
}

/** Final growth/application metrics of one saturation run. */
void
EGraph::finishSaturation(const SaturationStats& stats) const
{
    GRAPHITI_OBS_COUNT("egraph.applications",
                       static_cast<std::int64_t>(stats.applications));
    GRAPHITI_OBS_GAUGE_MAX("egraph.nodes_max", nodes_.size());
    GRAPHITI_OBS_GAUGE_MAX("egraph.classes_max", numClasses());
    GRAPHITI_OBS_GAUGE_MAX("egraph.bytes", approxBytes());
    if (stats.saturated)
        GRAPHITI_OBS_COUNT("egraph.saturated", 1);
    (void)stats;
}

Result<TermExpr>
EGraph::extract(ClassId id) const
{
    id = find(id);
    constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
    // Fixpoint over node costs: cost(node) = 1 + sum cost(children).
    std::map<ClassId, std::size_t> best_cost;
    std::map<ClassId, std::size_t> best_node;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& [cls, node_idxs] : class_nodes_) {
            for (std::size_t idx : node_idxs) {
                const ENode& node = nodes_[idx];
                std::size_t cost = 1;
                bool ok = true;
                for (ClassId child : node.children) {
                    auto it = best_cost.find(find(child));
                    if (it == best_cost.end()) {
                        ok = false;
                        break;
                    }
                    cost += it->second;
                }
                if (!ok)
                    continue;
                auto it = best_cost.find(cls);
                if (it == best_cost.end() || cost < it->second) {
                    best_cost[cls] = cost;
                    best_node[cls] = idx;
                    changed = true;
                }
            }
        }
    }
    if (best_cost.find(id) == best_cost.end())
        return err("extract: class has no finite derivation");

    // Rebuild the term top-down from the chosen nodes.
    std::function<TermExpr(ClassId)> build = [&](ClassId cls) {
        const ENode& node = nodes_[best_node.at(find(cls))];
        TermExpr t;
        t.op = node.op;
        for (ClassId child : node.children)
            t.children.push_back(build(child));
        return t;
    };
    (void)kInf;
    return build(id);
}

std::size_t
EGraph::numClasses() const
{
    return class_nodes_.size();
}

std::size_t
EGraph::approxBytes() const
{
    // std::map node: left/right/parent links + color word.
    constexpr std::size_t kTreeOverhead = 4 * sizeof(void*);
    auto nodeBytes = [](const ENode& node) {
        return sizeof(ENode) + node.op.size() +
               node.children.size() * sizeof(ClassId);
    };
    std::size_t bytes = sizeof(EGraph);
    bytes += parent_.size() * sizeof(ClassId);
    bytes += node_class_.size() * sizeof(ClassId);
    for (const ENode& node : nodes_)
        bytes += nodeBytes(node);
    for (const auto& [node, idx] : hashcons_) {
        (void)idx;
        bytes += nodeBytes(node) + sizeof(std::size_t) + kTreeOverhead;
    }
    for (const auto& [cls, idxs] : class_nodes_) {
        (void)cls;
        bytes += sizeof(ClassId) + sizeof(idxs) +
                 idxs.size() * sizeof(std::size_t) + kTreeOverhead;
    }
    return bytes;
}

}  // namespace graphiti::eg
