#ifndef GRAPHITI_FAULTS_FAULT_PLAN_HPP
#define GRAPHITI_FAULTS_FAULT_PLAN_HPP

/**
 * @file
 * Deterministic fault plans for the elastic-circuit simulator.
 *
 * A FaultPlan is a sim::FaultInjector whose whole schedule is a pure
 * function of one uint64_t seed: every draw is a fresh splitmix64 hash
 * of (seed, salt, channel/node, cycle), so a plan never carries
 * mutable RNG state and the same seed reproduces the same adversarial
 * timing regardless of query order. That makes a failing stress run
 * reproducible from the single seed printed in its report.
 *
 * Fault taxonomy (all are *timing* faults — the latency-insensitivity
 * theorems promise output sequences do not change):
 *  - stall bursts:    a channel's valid signal drops for a run of
 *                     consecutive cycles (late producer);
 *  - ready drops:     a channel's ready signal drops for single cycles
 *                     (backpressure from a slow consumer);
 *  - latency jitter:  an operator's pipeline latency stretches by a
 *                     few cycles for individual tokens;
 *  - slot squeezes:   an unpinned channel's buffer shrinks (down to
 *                     one slot). Channels sized by buffer placement
 *                     are pinned and never squeezed — shrinking them
 *                     changes the circuit, not its timing.
 *
 * Every plan is quiescent from horizon() on, so the simulator's
 * watchdog can still distinguish injected stalls from real deadlock.
 */

#include <cstdint>
#include <string>

#include "sim/sim.hpp"

namespace graphiti::faults {

/**
 * Seed of plan number @p index in the family called @p name, derived
 * from harness seed @p base. Hashing the family name in keeps the
 * streams of different plan families disjoint: adding a new family
 * (or reordering how families are built) never silently changes the
 * schedule of an existing plan, and `base + i`-style collisions
 * between neighbouring harness seeds cannot happen.
 */
std::uint64_t derivePlanSeed(std::uint64_t base, const std::string& name,
                             std::size_t index);

/** Tunables of randomized fault plans. */
struct FaultPlanConfig
{
    /** No fault fires at or after this cycle. */
    std::size_t horizon = 4096;
    /** Stall bursts are scheduled per (channel, window). */
    std::size_t burst_window = 32;
    /** Probability that a (channel, window) contains a stall burst. */
    double stall_burst_rate = 0.10;
    /** Maximum stall-burst length, in cycles. */
    std::size_t max_burst = 12;
    /** Per-(channel, cycle) probability of a ready drop. */
    double ready_drop_rate = 0.03;
    /** Per-accepted-token probability of latency jitter. */
    double jitter_rate = 0.15;
    /** Maximum extra latency cycles per jittered token. */
    int max_jitter = 6;
    /** Randomly shrink unpinned channels (1..base slots). */
    bool squeeze = true;
};

/**
 * One reproducible fault schedule. Use the named constructors; the
 * structured plans (starve / backpressure / single-slot) are the
 * hand-written adversaries of the hazard class named in
 * arch/buffers.hpp, the random ones sample everything at once.
 */
class FaultPlan final : public sim::FaultInjector
{
  public:
    /** The empty plan (baseline behavior). */
    static FaultPlan none();

    /** Everything-at-once randomized plan derived from @p seed. */
    static FaultPlan random(std::uint64_t seed,
                            const FaultPlanConfig& config = {});

    /** Starve one channel: its valid drops until @p until_cycle. */
    static FaultPlan starveChannel(std::size_t channel,
                                   std::size_t until_cycle);

    /** Drop ready on every channel every other cycle until
     * @p until_cycle. */
    static FaultPlan maxBackpressure(std::size_t until_cycle);

    /** Squeeze every unpinned channel to a single slot. */
    static FaultPlan singleSlot();

    /** Human-readable plan name for reports. */
    std::string describe() const;

    /** Seed of a random plan (0 for structured plans). */
    std::uint64_t seed() const { return seed_; }

    // sim::FaultInjector
    int latencyJitter(const std::string& node,
                      std::size_t cycle) override;
    bool dropValid(std::size_t channel, std::size_t cycle) override;
    bool dropReady(std::size_t channel, std::size_t cycle) override;
    std::size_t adjustCapacity(std::size_t channel, std::size_t base,
                               bool pinned) override;
    std::size_t horizon() const override;

  private:
    enum class Kind
    {
        None,
        Random,
        Starve,
        Backpressure,
        SingleSlot,
    };

    explicit FaultPlan(Kind kind) : kind_(kind) {}

    Kind kind_;
    std::uint64_t seed_ = 0;
    FaultPlanConfig config_;
    std::size_t target_channel_ = 0;
    std::size_t until_ = 0;
};

}  // namespace graphiti::faults

#endif  // GRAPHITI_FAULTS_FAULT_PLAN_HPP
