#ifndef GRAPHITI_FAULTS_CRASH_PLAN_HPP
#define GRAPHITI_FAULTS_CRASH_PLAN_HPP

/**
 * @file
 * Deterministic worker-crash plans for the served sandbox tier.
 *
 * The fault taxonomy moves one layer below connection_plan.hpp:
 * instead of a client misbehaving on the wire, a CrashPlan makes the
 * *worker process itself* die mid-job — segfault, abort, runaway
 * allocation into the rlimit jail, a busy-loop that never heartbeats,
 * or a silent exit(7). Like every plan in faults/, the schedule is a
 * pure function of one seed: each decision is a fresh splitmix hash of
 * (seed, job_id, site), so the same seed reproduces the same casualty
 * schedule regardless of worker count or dispatch order, and a soak
 * failure replays from the single seed in its report.
 *
 * The plan crosses the fork boundary as a string (the
 * GRAPHITI_CRASH_PLAN environment seam, parse()/render() round-trip),
 * so injection needs no test hooks inside the daemon: the child reads
 * the env, draws its fate per job, and executes it. Production
 * daemons simply never set the variable.
 *
 * The contract the sandbox tests drive with this: every crash class
 * must come back as a structured `error` with a post-mortem artifact
 * for that job only — never a daemon death, a hang, or a torn
 * verdict store.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/result.hpp"

namespace graphiti::faults {

/** How a planned worker death presents. */
enum class CrashAction : std::uint8_t
{
    None,      ///< run the job honestly
    Segv,      ///< write through a null pointer (SIGSEGV)
    Abort,     ///< std::abort (SIGABRT — the assert/UB shape)
    OomAlloc,  ///< allocate unboundedly until the rlimit jail kills it
    BusyLoop,  ///< spin forever without heartbeating (the wedge shape)
    Exit7,     ///< _exit(7) mid-job (silent tool death)
};

const char* toString(CrashAction action);

/** Per-class injection rates (sum < 1; the remainder behaves). */
struct CrashPlanConfig
{
    double segv_rate = 0.0;
    double abort_rate = 0.0;
    double oom_rate = 0.0;
    double busy_rate = 0.0;
    double exit_rate = 0.0;

    double total() const
    {
        return segv_rate + abort_rate + oom_rate + busy_rate +
               exit_rate;
    }
};

/** One reproducible worker-casualty schedule. */
class CrashPlan
{
  public:
    CrashPlan() = default;  ///< benign: every action is None
    CrashPlan(std::uint64_t seed, CrashPlanConfig config)
        : seed_(seed), config_(config)
    {
    }

    /** A plan that never kills anything. */
    static CrashPlan benign() { return CrashPlan(); }

    /** Rate @p rate split evenly across all five crash classes. */
    static CrashPlan storm(std::uint64_t seed, double rate);

    /**
     * Parse the GRAPHITI_CRASH_PLAN format: comma-separated
     * `key=value` pairs. Keys: `seed` (uint64), per-class rates
     * `segv`/`abort`/`oom`/`busy`/`exit` (doubles in [0,1]), `rate`
     * (shorthand: split evenly across all five classes), and
     * targeted matches `kill=<job-id-prefix>:<class>` (repeatable) —
     * a job whose id starts with the prefix always takes that action,
     * regardless of rates. Empty text parses as the benign plan.
     */
    static Result<CrashPlan> parse(const std::string& text);

    /** Render in the format parse() reads (round-trips). */
    std::string render() const;

    /** True when any rate or targeted match is set. */
    bool armed() const;

    /** The fate of @p job_id at injection site @p site. Targeted
     * matches win over rate draws. */
    CrashAction action(const std::string& job_id,
                       const std::string& site) const;

    /** Always crash jobs whose id starts with @p job_prefix with
     * @p action (the deterministic smoke-test seam). */
    void addMatch(const std::string& job_prefix, CrashAction action);

    std::uint64_t seed() const { return seed_; }
    const CrashPlanConfig& config() const { return config_; }

  private:
    std::uint64_t seed_ = 0;
    CrashPlanConfig config_;
    std::vector<std::pair<std::string, CrashAction>> matches_;
};

/**
 * Carry out @p action in the calling process: the fatal classes never
 * return (the process dies by signal, jail, or _exit); BusyLoop spins
 * forever; None returns immediately. Lives here so the sandbox child
 * and the tests execute the exact same deaths.
 */
void executeCrashAction(CrashAction action);

}  // namespace graphiti::faults

#endif  // GRAPHITI_FAULTS_CRASH_PLAN_HPP
