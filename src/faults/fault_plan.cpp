#include "faults/fault_plan.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace graphiti::faults {

namespace {

/** Salts keeping the per-fault hash streams independent. */
constexpr std::uint64_t kStallSalt = 0xA11CE5ULL;
constexpr std::uint64_t kReadySalt = 0x4EADBULL;
constexpr std::uint64_t kJitterSalt = 0x7177E4ULL;
constexpr std::uint64_t kSqueezeSalt = 0x590E32ULL;

/** One stateless draw: a fresh splitmix64 stream per coordinate. */
Rng
drawAt(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
       std::uint64_t b)
{
    // The multipliers decorrelate neighbouring coordinates before the
    // splitmix finalizer scrambles them.
    return Rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
               (a * 0xc2b2ae3d27d4eb4fULL) ^ (b * 0x165667b19e3779f9ULL));
}

std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace

std::uint64_t
derivePlanSeed(std::uint64_t base, const std::string& name,
               std::size_t index)
{
    // Mix the family name in first (FNV-1a), then run the combined
    // state through a splitmix draw so neighbouring (base, index)
    // pairs land far apart.
    std::uint64_t h = fnv1a(name) ^ (base * 0x9e3779b97f4a7c15ULL);
    return Rng(h ^ (static_cast<std::uint64_t>(index) *
                    0xc2b2ae3d27d4eb4fULL))
        .next();
}

FaultPlan
FaultPlan::none()
{
    return FaultPlan(Kind::None);
}

FaultPlan
FaultPlan::random(std::uint64_t seed, const FaultPlanConfig& config)
{
    FaultPlan plan(Kind::Random);
    plan.seed_ = seed;
    plan.config_ = config;
    return plan;
}

FaultPlan
FaultPlan::starveChannel(std::size_t channel, std::size_t until_cycle)
{
    FaultPlan plan(Kind::Starve);
    plan.target_channel_ = channel;
    plan.until_ = until_cycle;
    return plan;
}

FaultPlan
FaultPlan::maxBackpressure(std::size_t until_cycle)
{
    FaultPlan plan(Kind::Backpressure);
    plan.until_ = until_cycle;
    return plan;
}

FaultPlan
FaultPlan::singleSlot()
{
    return FaultPlan(Kind::SingleSlot);
}

std::string
FaultPlan::describe() const
{
    switch (kind_) {
        case Kind::None:
            return "baseline";
        case Kind::Random:
            return "random(seed=" + std::to_string(seed_) + ")";
        case Kind::Starve:
            return "starve(channel=" +
                   std::to_string(target_channel_) + ", until=" +
                   std::to_string(until_) + ")";
        case Kind::Backpressure:
            return "max-backpressure(until=" + std::to_string(until_) +
                   ")";
        case Kind::SingleSlot:
            return "single-slot-everywhere";
    }
    return "unknown";
}

int
FaultPlan::latencyJitter(const std::string& node, std::size_t cycle)
{
    if (kind_ != Kind::Random || cycle >= config_.horizon ||
        config_.max_jitter <= 0)
        return 0;
    Rng rng = drawAt(seed_, kJitterSalt, fnv1a(node), cycle);
    if (!rng.chance(config_.jitter_rate))
        return 0;
    return 1 + static_cast<int>(rng.below(
                   static_cast<std::uint64_t>(config_.max_jitter)));
}

bool
FaultPlan::dropValid(std::size_t channel, std::size_t cycle)
{
    if (kind_ == Kind::Starve)
        return channel == target_channel_ && cycle < until_;
    if (kind_ != Kind::Random || cycle >= config_.horizon ||
        config_.burst_window == 0)
        return false;
    std::size_t window = cycle / config_.burst_window;
    Rng rng = drawAt(seed_, kStallSalt, channel, window);
    if (!rng.chance(config_.stall_burst_rate))
        return false;
    std::size_t offset = rng.below(config_.burst_window);
    std::size_t length =
        1 + rng.below(std::max<std::size_t>(1, config_.max_burst));
    std::size_t pos = cycle % config_.burst_window;
    return pos >= offset && pos < offset + length;
}

bool
FaultPlan::dropReady(std::size_t channel, std::size_t cycle)
{
    if (kind_ == Kind::Backpressure)
        return cycle < until_ && cycle % 2 == 1;
    if (kind_ != Kind::Random || cycle >= config_.horizon)
        return false;
    Rng rng = drawAt(seed_, kReadySalt, channel, cycle);
    return rng.chance(config_.ready_drop_rate);
}

std::size_t
FaultPlan::adjustCapacity(std::size_t channel, std::size_t base,
                          bool pinned)
{
    if (pinned || base <= 1)
        return base;
    if (kind_ == Kind::SingleSlot)
        return 1;
    if (kind_ == Kind::Random && config_.squeeze) {
        Rng rng = drawAt(seed_, kSqueezeSalt, channel, 0);
        return 1 + rng.below(base);
    }
    return base;
}

std::size_t
FaultPlan::horizon() const
{
    switch (kind_) {
        case Kind::Random:
            return config_.horizon;
        case Kind::Starve:
        case Kind::Backpressure:
            return until_;
        case Kind::None:
        case Kind::SingleSlot:
            return 0;
    }
    return 0;
}

}  // namespace graphiti::faults
