#include "faults/stress.hpp"

#include <algorithm>
#include <chrono>

#include "obs/scope.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace graphiti::faults {

namespace {

/** Run one simulation of @p graph under @p injector. */
Result<sim::SimResult>
simulate(const ExprHigh& graph, std::shared_ptr<FnRegistry> functions,
         const Workload& workload, const sim::SimConfig& base_config,
         std::shared_ptr<sim::FaultInjector> injector)
{
    sim::SimConfig config = base_config;
    config.faults = std::move(injector);
    Result<sim::Simulator> built =
        sim::Simulator::build(graph, std::move(functions), config);
    if (!built.ok())
        return built.error();
    sim::Simulator simulator = built.take();
    for (const auto& [name, data] : workload.memories)
        simulator.setMemory(name, data);
    return simulator.run(workload.inputs, workload.expected_outputs,
                         workload.serial_io);
}

/**
 * First difference between two runs' observable behavior (output
 * token sequences per port, then final memories); empty when equal.
 */
std::string
firstDifference(const sim::SimResult& got, const sim::SimResult& want)
{
    if (got.outputs.size() != want.outputs.size())
        return "output port count differs";
    for (std::size_t p = 0; p < got.outputs.size(); ++p) {
        const auto& a = got.outputs[p];
        const auto& b = want.outputs[p];
        std::size_t n = std::min(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (!(a[i] == b[i]))
                return "output#" + std::to_string(p) + "[" +
                       std::to_string(i) + "]: got " + a[i].toString() +
                       ", baseline " + b[i].toString();
        }
        if (a.size() != b.size())
            return "output#" + std::to_string(p) + " length: got " +
                   std::to_string(a.size()) + ", baseline " +
                   std::to_string(b.size());
    }
    for (const auto& [name, data] : want.memories) {
        auto it = got.memories.find(name);
        if (it == got.memories.end())
            return "memory " + name + " missing";
        for (std::size_t i = 0; i < data.size(); ++i)
            if (i >= it->second.size() || it->second[i] != data[i])
                return "memory " + name + "[" + std::to_string(i) +
                       "] differs";
    }
    return {};
}

/** Flush one report's aggregate metrics into the ambient registry. */
void
recordStressMetrics(const StressReport& report)
{
#if GRAPHITI_OBS_ENABLED
    obs::Scope* scope = obs::current();
    if (scope == nullptr)
        return;
    obs::MetricsRegistry& m = scope->metrics();
    m.add("stress.runs");
    m.add("stress.plans",
          static_cast<std::int64_t>(report.plansRun()));
    for (const PlanOutcome& o : report.outcomes) {
        if (!o.completed)
            m.add("stress.plan_errors");
        else if (!o.matched)
            m.add("stress.violations");
    }
    m.setMax("stress.worst_inflation", report.worst_inflation);
    m.setMax("stress.plans_per_second", report.plansPerSecond());
    if (obs::TraceSink* sink = scope->trace()) {
        for (const PlanOutcome& o : report.outcomes) {
            if (o.matched)
                continue;
            obs::TraceRecord rec;
            rec.cycle = o.cycles;
            rec.node = o.plan;
            rec.kind = obs::EventKind::Fault;
            rec.detail = o.detail;
            sink->event(rec);
        }
    }
#else
    (void)report;
#endif
}

/**
 * Reproduce a failing plan with observation attached so the artifact
 * can include metrics and the provenance tail. Plans are pure
 * functions of (seed, cycle, channel), so the re-run hits the same
 * stuck state the first run did.
 */
std::string
captureFailureArtifact(const ExprHigh& graph,
                       std::shared_ptr<FnRegistry> functions,
                       const Workload& workload,
                       const StressOptions& options,
                       std::shared_ptr<FaultPlan> plan)
{
    auto scope = std::make_shared<obs::Scope>();
    obs::ProvenanceConfig prov_config;
    prov_config.max_firings =
        std::max<std::size_t>(256, options.artifact_tail_firings * 4);
    prov_config.max_births = 4096;
    prov_config.max_tag_events = 4096;
    prov_config.max_series_points = 256;
    scope->attachProvenance(
        std::make_shared<obs::ProvenanceTracker>(prov_config));

    sim::SimConfig config = options.sim;
    config.faults = plan;
    config.obs = scope;
    Result<sim::Simulator> built =
        sim::Simulator::build(graph, std::move(functions), config);
    if (!built.ok())
        return {};
    sim::Simulator simulator = built.take();
    for (const auto& [name, data] : workload.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> rerun = simulator.run(
        workload.inputs, workload.expected_outputs, workload.serial_io);
    if (rerun.ok())
        return {};  // did not reproduce; nothing trustworthy to dump

    const sim::StuckDiagnosis* diagnosis =
        simulator.lastDiagnosis() ? &*simulator.lastDiagnosis()
                                  : nullptr;
    return failureArtifact(diagnosis, rerun.error().message, *scope,
                           options.artifact_tail_firings);
}

}  // namespace

std::string
failureArtifact(const sim::StuckDiagnosis* diagnosis,
                const std::string& error, const obs::Scope& scope,
                std::size_t tail_firings)
{
    obs::json::Value doc;
    doc.set("error", error);
    if (diagnosis != nullptr) {
        obs::json::Value d;
        d.set("kind", sim::toString(diagnosis->kind));
        d.set("cycle", diagnosis->cycle);
        d.set("last_progress_cycle", diagnosis->last_progress_cycle);
        d.set("last_output_cycle", diagnosis->last_output_cycle);
        d.set("rendered", diagnosis->toString());
        doc.set("diagnosis", std::move(d));
    }
    doc.set("metrics", scope.metrics().toJson());
    if (const obs::ProvenanceTracker* tracker = scope.provenance())
        doc.set("provenance", tracker->log().tailJson(tail_firings));
    return doc.dump(2);
}

std::vector<std::shared_ptr<FaultPlan>>
StressHarness::buildPlans(const ExprHigh& graph) const
{
    std::vector<std::shared_ptr<FaultPlan>> plans;
    for (std::size_t i = 0; i < options_.random_plans; ++i) {
        // (name, index)-derived seeds: adding another plan family can
        // never shift or collide with the random plans' schedules.
        std::uint64_t seed =
            derivePlanSeed(options_.base_seed, "random", i);
        plans.push_back(std::make_shared<FaultPlan>(
            FaultPlan::random(seed, options_.plan_config)));
    }
    if (options_.structured) {
        plans.push_back(
            std::make_shared<FaultPlan>(FaultPlan::singleSlot()));
        plans.push_back(std::make_shared<FaultPlan>(
            FaultPlan::maxBackpressure(options_.plan_config.horizon)));
        std::size_t channels = sim::Simulator::channelCount(graph);
        std::size_t starves =
            std::min(channels, options_.max_starve_plans);
        for (std::size_t k = 0; k < starves; ++k) {
            // Sample channel indices evenly across the circuit.
            std::size_t ch = starves == 0 ? 0 : k * channels / starves;
            plans.push_back(std::make_shared<FaultPlan>(
                FaultPlan::starveChannel(
                    ch, options_.plan_config.horizon / 4)));
        }
    }
    return plans;
}

Result<StressReport>
StressHarness::run(const ExprHigh& graph,
                   std::shared_ptr<FnRegistry> functions,
                   const Workload& workload) const
{
    GRAPHITI_OBS_TIMER(obs_timer, "stress.run_seconds");
    auto start = std::chrono::steady_clock::now();
    Result<sim::SimResult> baseline =
        simulate(graph, functions, workload, options_.sim, nullptr);
    if (!baseline.ok())
        return baseline.error().context("stress baseline run");

    StressReport report;
    report.baseline_cycles = baseline.value().cycles;

    // Plans are independent deterministic simulations: fan them out
    // across the pool (slot per plan), then aggregate in plan order so
    // first_violation and the outcome list match the sequential run.
    std::vector<std::shared_ptr<FaultPlan>> plans = buildPlans(graph);
    std::vector<PlanOutcome> outcomes(plans.size());
    ThreadPool pool(ThreadPool::resolveThreads(options_.threads));
    pool.parallelFor(plans.size(), [&](std::size_t i) {
        const std::shared_ptr<FaultPlan>& plan = plans[i];
        PlanOutcome& outcome = outcomes[i];
        outcome.plan = plan->describe();
        outcome.seed = plan->seed();
        Result<sim::SimResult> run =
            simulate(graph, functions, workload, options_.sim, plan);
        if (run.ok()) {
            outcome.completed = true;
            outcome.cycles = run.value().cycles;
            outcome.detail =
                firstDifference(run.value(), baseline.value());
            outcome.matched = outcome.detail.empty();
        } else {
            outcome.detail = run.error().message;
            if (options_.capture_failure_artifacts)
                outcome.failure_artifact = captureFailureArtifact(
                    graph, functions, workload, options_, plan);
        }
    });
    for (PlanOutcome& outcome : outcomes) {
        if (outcome.completed && report.baseline_cycles > 0)
            report.worst_inflation = std::max(
                report.worst_inflation,
                static_cast<double>(outcome.cycles) /
                    static_cast<double>(report.baseline_cycles));
        if (!outcome.matched && report.first_violation.empty()) {
            report.invariant_holds = false;
            report.first_violation =
                outcome.plan + ": " + outcome.detail;
        }
        report.outcomes.push_back(std::move(outcome));
    }
    report.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    recordStressMetrics(report);
    return report;
}

Result<StressReport>
StressHarness::runPair(const ExprHigh& original,
                       const ExprHigh& transformed,
                       std::shared_ptr<FnRegistry> functions,
                       const Workload& workload) const
{
    Result<StressReport> orig = run(original, functions, workload);
    if (!orig.ok())
        return orig.error().context("stress original");
    Result<StressReport> ooo = run(transformed, functions, workload);
    if (!ooo.ok())
        return ooo.error().context("stress transformed");

    StressReport merged;
    merged.invariant_holds = orig.value().invariant_holds &&
                             ooo.value().invariant_holds;
    merged.baseline_cycles = orig.value().baseline_cycles;
    merged.seconds = orig.value().seconds + ooo.value().seconds;
    merged.worst_inflation = std::max(orig.value().worst_inflation,
                                      ooo.value().worst_inflation);
    merged.first_violation = !orig.value().first_violation.empty()
                                 ? "orig: " + orig.value().first_violation
                                 : ooo.value().first_violation.empty()
                                       ? std::string()
                                       : "ooo: " +
                                             ooo.value().first_violation;
    for (PlanOutcome& o : orig.value().outcomes) {
        o.plan = "orig: " + o.plan;
        merged.outcomes.push_back(std::move(o));
    }
    for (PlanOutcome& o : ooo.value().outcomes) {
        o.plan = "ooo: " + o.plan;
        merged.outcomes.push_back(std::move(o));
    }

    // Cross-check: the rewritten circuit's fault-free behavior must
    // match the original's in program order.
    Result<sim::SimResult> base_orig =
        simulate(original, functions, workload, options_.sim, nullptr);
    Result<sim::SimResult> base_ooo = simulate(
        transformed, functions, workload, options_.sim, nullptr);
    if (base_orig.ok() && base_ooo.ok()) {
        std::string diff =
            firstDifference(base_ooo.value(), base_orig.value());
        if (!diff.empty()) {
            merged.invariant_holds = false;
            if (merged.first_violation.empty())
                merged.first_violation =
                    "transformed baseline diverges: " + diff;
        }
    }
    return merged;
}

}  // namespace graphiti::faults
