#ifndef GRAPHITI_FAULTS_STRESS_HPP
#define GRAPHITI_FAULTS_STRESS_HPP

/**
 * @file
 * Hazard-stress harness: latency-insensitivity under adversarial
 * timing.
 *
 * The paper's theorems 4.6 and 5.3 promise that the verified rewrites
 * preserve circuit behavior under *any* elastic schedule — yet one
 * simulator run only ever exercises one schedule. The StressHarness
 * closes that gap operationally: it replays the same workload under a
 * battery of seeded random fault plans plus structured adversaries
 * (starve-one-channel, max-backpressure, single-slot-everywhere) and
 * asserts the latency-insensitivity invariant:
 *
 *     every plan yields the identical token sequence on every output
 *     port, and identical final memories, as the fault-free baseline.
 *
 * Cycle counts are allowed (expected!) to differ; sequences are not.
 * A violated plan is reported with the seed that reproduces it.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "graph/expr_high.hpp"
#include "obs/scope.hpp"
#include "semantics/functions.hpp"
#include "sim/sim.hpp"
#include "support/result.hpp"
#include "support/token.hpp"

namespace graphiti::faults {

/** One workload: what to feed the circuit and what to expect back. */
struct Workload
{
    std::map<std::string, std::vector<double>> memories;
    std::vector<std::vector<Token>> inputs;
    std::size_t expected_outputs = 0;
    bool serial_io = false;
};

/** Harness configuration. */
struct StressOptions
{
    /** Number of seeded random plans. */
    std::size_t random_plans = 6;
    /** Base seed; plan i draws derivePlanSeed(base_seed, "random", i). */
    std::uint64_t base_seed = 0x6772617068697469ULL;
    /** Tunables shared by all random plans. */
    FaultPlanConfig plan_config;
    /** Base simulator configuration (faults slot is overwritten). */
    sim::SimConfig sim;
    /** Also run the structured adversarial plans. */
    bool structured = true;
    /** Cap on starve-one-channel plans (sampled evenly when the
     * circuit has more channels). */
    std::size_t max_starve_plans = 12;
    /**
     * Re-run failing plans with an obs scope attached and store a
     * post-mortem JSON artifact (watchdog diagnosis + metrics
     * snapshot + provenance hop-log tail) on the outcome. Plans are
     * deterministic, so the re-run reproduces the failure exactly.
     */
    bool capture_failure_artifacts = true;
    /** Provenance firings kept in each failure artifact. */
    std::size_t artifact_tail_firings = 64;
    /**
     * Worker lanes the plan battery fans out over (1 = sequential,
     * 0 = hardware concurrency). Plans are independent deterministic
     * simulations and outcomes are merged in plan order, so the
     * report is identical at any thread count. Per-simulation obs
     * instrumentation only records on the calling lane (scopes are
     * thread-local); the harness's own aggregate metrics are
     * unaffected.
     */
    std::size_t threads = 1;
};

/** Outcome of one plan. */
struct PlanOutcome
{
    std::string plan;           ///< FaultPlan::describe()
    std::uint64_t seed = 0;     ///< reproduction seed (random plans)
    bool completed = false;     ///< the run finished
    bool matched = false;       ///< outputs+memories equal baseline
    std::size_t cycles = 0;
    std::string detail;         ///< error or first mismatch
    /** Post-mortem JSON for plans that failed to complete (see
     * failureArtifact); empty otherwise. */
    std::string failure_artifact;
};

/** Aggregate result of a stress run. */
struct StressReport
{
    bool invariant_holds = true;
    std::size_t baseline_cycles = 0;
    std::vector<PlanOutcome> outcomes;
    /** First violating plan, rendered; empty when the invariant
     * holds. */
    std::string first_violation;
    /** Wall-clock time of the whole stress run (baseline + plans). */
    double seconds = 0.0;
    /** Worst-case cycle inflation of any completed plan relative to
     * the fault-free baseline (1.0 = no slowdown). */
    double worst_inflation = 1.0;

    std::size_t plansRun() const { return outcomes.size(); }

    double
    plansPerSecond() const
    {
        return seconds > 0.0
                   ? static_cast<double>(outcomes.size()) / seconds
                   : 0.0;
    }
};

/**
 * Render a stuck-run post-mortem as a JSON document: the watchdog
 * diagnosis (when the run produced one), the scope's metrics snapshot
 * and the tail of the provenance hop log — everything needed to debug
 * a deadlocked/livelocked state after the fact. @p diagnosis may be
 * nullptr for failures that never reached the watchdog.
 */
std::string failureArtifact(const sim::StuckDiagnosis* diagnosis,
                            const std::string& error,
                            const obs::Scope& scope,
                            std::size_t tail_firings = 64);

/** The hazard-stress harness. */
class StressHarness
{
  public:
    explicit StressHarness(StressOptions options = {})
        : options_(std::move(options))
    {
    }

    /**
     * Run @p graph under the baseline plus every plan and check the
     * latency-insensitivity invariant. Fails (as opposed to reporting
     * a violation) only when the baseline run itself fails.
     */
    Result<StressReport> run(const ExprHigh& graph,
                             std::shared_ptr<FnRegistry> functions,
                             const Workload& workload) const;

    /**
     * Stress @p original and @p transformed under the same workload
     * and additionally require their baselines to agree (the
     * program-order equivalence the rewrites promise). Outcomes are
     * prefixed "orig:" / "ooo:".
     */
    Result<StressReport> runPair(const ExprHigh& original,
                                 const ExprHigh& transformed,
                                 std::shared_ptr<FnRegistry> functions,
                                 const Workload& workload) const;

    const StressOptions& options() const { return options_; }

  private:
    std::vector<std::shared_ptr<FaultPlan>>
    buildPlans(const ExprHigh& graph) const;

    StressOptions options_;
};

}  // namespace graphiti::faults

#endif  // GRAPHITI_FAULTS_STRESS_HPP
