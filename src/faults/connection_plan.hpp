#ifndef GRAPHITI_FAULTS_CONNECTION_PLAN_HPP
#define GRAPHITI_FAULTS_CONNECTION_PLAN_HPP

/**
 * @file
 * Deterministic misbehaving-client plans for the served daemon.
 *
 * The fault taxonomy moves up one layer from fault_plan.hpp: instead
 * of perturbing channel timing inside a circuit, a ConnectionPlan
 * perturbs the *protocol* behavior of a client talking to the daemon
 * — half-written frames, disconnects right after sending, deadline-
 * zero floods, junk payloads. Like FaultPlan, the whole schedule is a
 * pure function of one seed: every decision is a fresh splitmix hash
 * of (seed, client, request), so a failing soak reproduces from the
 * single seed in its report, and adding clients or requests never
 * shifts another coordinate's draw.
 *
 * The daemon must survive every action with a structured response or
 * a clean connection drop — never a crash, a hang, or a poisoned
 * worker (the served tests and ci/served_gate.sh drive exactly this).
 */

#include <cstdint>
#include <string>

namespace graphiti::faults {

/** What a client does with one request. */
enum class ClientAction : std::uint8_t
{
    Behave,             ///< well-formed request, await response
    TruncateFrame,      ///< send a prefix of the frame, then hang up
    DisconnectAfterSend,///< full frame, but vanish before the response
    DeadlineZero,       ///< well-formed, deadline so small it expires
    JunkFrame,          ///< valid length prefix, garbage payload
};

const char* toString(ClientAction action);

/** Tunables of a misbehaving-client plan (rates sum to < 1; the
 * remainder behaves). */
struct ConnectionPlanConfig
{
    double truncate_rate = 0.10;
    double disconnect_rate = 0.10;
    double deadline_zero_rate = 0.10;
    double junk_rate = 0.05;
};

/** One reproducible client-misbehavior schedule. */
class ConnectionPlan
{
  public:
    explicit ConnectionPlan(std::uint64_t seed,
                            ConnectionPlanConfig config = {})
        : seed_(seed), config_(config)
    {
    }

    /** A plan whose every request behaves. */
    static ConnectionPlan wellBehaved() { return ConnectionPlan(0, {}); }

    /** The action of @p client's request number @p request. */
    ClientAction action(std::size_t client, std::size_t request) const;

    /** Where a TruncateFrame cut lands: a byte count in
     * [1, frame_size) — always at least the first byte, never the
     * whole frame (then it would not be a truncation). */
    std::size_t truncateAt(std::size_t client, std::size_t request,
                           std::size_t frame_size) const;

    std::uint64_t seed() const { return seed_; }
    const ConnectionPlanConfig& config() const { return config_; }

  private:
    std::uint64_t seed_ = 0;
    ConnectionPlanConfig config_;
};

}  // namespace graphiti::faults

#endif  // GRAPHITI_FAULTS_CONNECTION_PLAN_HPP
