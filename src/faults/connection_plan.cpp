#include "faults/connection_plan.hpp"

#include "support/rng.hpp"

namespace graphiti::faults {

const char*
toString(ClientAction action)
{
    switch (action) {
        case ClientAction::Behave: return "behave";
        case ClientAction::TruncateFrame: return "truncate-frame";
        case ClientAction::DisconnectAfterSend:
            return "disconnect-after-send";
        case ClientAction::DeadlineZero: return "deadline-zero";
        case ClientAction::JunkFrame: return "junk-frame";
    }
    return "unknown";
}

namespace {

constexpr std::uint64_t kActionSalt = 0xC0AC7ULL;
constexpr std::uint64_t kCutSalt = 0x7C07CULL;

Rng
drawAt(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
       std::uint64_t b)
{
    return Rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
               (a * 0xc2b2ae3d27d4eb4fULL) ^
               (b * 0x165667b19e3779f9ULL));
}

}  // namespace

ClientAction
ConnectionPlan::action(std::size_t client, std::size_t request) const
{
    if (seed_ == 0)
        return ClientAction::Behave;
    double draw = drawAt(seed_, kActionSalt, client, request).uniform();
    double edge = config_.truncate_rate;
    if (draw < edge)
        return ClientAction::TruncateFrame;
    edge += config_.disconnect_rate;
    if (draw < edge)
        return ClientAction::DisconnectAfterSend;
    edge += config_.deadline_zero_rate;
    if (draw < edge)
        return ClientAction::DeadlineZero;
    edge += config_.junk_rate;
    if (draw < edge)
        return ClientAction::JunkFrame;
    return ClientAction::Behave;
}

std::size_t
ConnectionPlan::truncateAt(std::size_t client, std::size_t request,
                           std::size_t frame_size) const
{
    if (frame_size <= 1)
        return frame_size;
    Rng rng = drawAt(seed_, kCutSalt, client, request);
    return 1 + static_cast<std::size_t>(rng.below(frame_size - 1));
}

}  // namespace graphiti::faults
