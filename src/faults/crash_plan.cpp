#include "faults/crash_plan.hpp"

#include <csignal>
#include <cstdlib>
#include <new>
#include <sstream>
#include <unistd.h>

#include "support/rng.hpp"

namespace graphiti::faults {

namespace {

/** Salt keeping crash draws disjoint from every other plan family. */
constexpr std::uint64_t kCrashSalt = 0xC4A54ULL;

/** One stateless draw: a fresh splitmix64 stream per coordinate
 * (the fault_plan.cpp idiom). */
Rng
drawAt(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
       std::uint64_t b)
{
    return Rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
               (a * 0xc2b2ae3d27d4eb4fULL) ^ (b * 0x165667b19e3779f9ULL));
}

std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

Result<CrashAction>
actionFromName(const std::string& name)
{
    if (name == "segv")
        return CrashAction::Segv;
    if (name == "abort")
        return CrashAction::Abort;
    if (name == "oom")
        return CrashAction::OomAlloc;
    if (name == "busy")
        return CrashAction::BusyLoop;
    if (name == "exit")
        return CrashAction::Exit7;
    return err("unknown crash class \"" + name + "\"");
}

const char*
matchName(CrashAction action)
{
    switch (action) {
    case CrashAction::Segv: return "segv";
    case CrashAction::Abort: return "abort";
    case CrashAction::OomAlloc: return "oom";
    case CrashAction::BusyLoop: return "busy";
    case CrashAction::Exit7: return "exit";
    case CrashAction::None: break;
    }
    return "none";
}

}  // namespace

const char*
toString(CrashAction action)
{
    switch (action) {
    case CrashAction::None: return "none";
    case CrashAction::Segv: return "segv";
    case CrashAction::Abort: return "abort";
    case CrashAction::OomAlloc: return "oom-alloc";
    case CrashAction::BusyLoop: return "busy-loop";
    case CrashAction::Exit7: return "exit-7";
    }
    return "none";
}

CrashPlan
CrashPlan::storm(std::uint64_t seed, double rate)
{
    CrashPlanConfig config;
    double each = rate / 5.0;
    config.segv_rate = each;
    config.abort_rate = each;
    config.oom_rate = each;
    config.busy_rate = each;
    config.exit_rate = each;
    return CrashPlan(seed, config);
}

Result<CrashPlan>
CrashPlan::parse(const std::string& text)
{
    CrashPlan plan;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return err("crash plan item \"" + item +
                       "\" is not key=value");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        if (key == "seed") {
            plan.seed_ = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "kill") {
            std::size_t colon = value.find(':');
            if (colon == std::string::npos)
                return err("kill match \"" + value +
                           "\" is not prefix:class");
            Result<CrashAction> action =
                actionFromName(value.substr(colon + 1));
            if (!action.ok())
                return action.error().context("CrashPlan::parse");
            plan.addMatch(value.substr(0, colon), action.take());
        } else {
            char* end = nullptr;
            double rate = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || rate < 0.0 || rate > 1.0)
                return err("crash rate \"" + item +
                           "\" is not a probability");
            if (key == "rate") {
                double each = rate / 5.0;
                plan.config_.segv_rate = each;
                plan.config_.abort_rate = each;
                plan.config_.oom_rate = each;
                plan.config_.busy_rate = each;
                plan.config_.exit_rate = each;
            } else if (key == "segv") {
                plan.config_.segv_rate = rate;
            } else if (key == "abort") {
                plan.config_.abort_rate = rate;
            } else if (key == "oom") {
                plan.config_.oom_rate = rate;
            } else if (key == "busy") {
                plan.config_.busy_rate = rate;
            } else if (key == "exit") {
                plan.config_.exit_rate = rate;
            } else {
                return err("unknown crash plan key \"" + key + "\"");
            }
        }
    }
    return plan;
}

std::string
CrashPlan::render() const
{
    std::ostringstream out;
    out << "seed=" << seed_;
    auto rate = [&](const char* key, double value) {
        if (value > 0.0)
            out << "," << key << "=" << value;
    };
    rate("segv", config_.segv_rate);
    rate("abort", config_.abort_rate);
    rate("oom", config_.oom_rate);
    rate("busy", config_.busy_rate);
    rate("exit", config_.exit_rate);
    for (const auto& [prefix, action] : matches_)
        out << ",kill=" << prefix << ":" << matchName(action);
    return out.str();
}

bool
CrashPlan::armed() const
{
    return config_.total() > 0.0 || !matches_.empty();
}

CrashAction
CrashPlan::action(const std::string& job_id,
                  const std::string& site) const
{
    for (const auto& [prefix, action] : matches_)
        if (job_id.rfind(prefix, 0) == 0)
            return action;
    if (config_.total() <= 0.0)
        return CrashAction::None;
    double roll = drawAt(seed_, kCrashSalt, fnv1a(job_id), fnv1a(site))
                      .uniform();
    double edge = config_.segv_rate;
    if (roll < edge)
        return CrashAction::Segv;
    edge += config_.abort_rate;
    if (roll < edge)
        return CrashAction::Abort;
    edge += config_.oom_rate;
    if (roll < edge)
        return CrashAction::OomAlloc;
    edge += config_.busy_rate;
    if (roll < edge)
        return CrashAction::BusyLoop;
    edge += config_.exit_rate;
    if (roll < edge)
        return CrashAction::Exit7;
    return CrashAction::None;
}

void
CrashPlan::addMatch(const std::string& job_prefix, CrashAction action)
{
    matches_.emplace_back(job_prefix, action);
}

void
executeCrashAction(CrashAction action)
{
    switch (action) {
    case CrashAction::None:
        return;
    case CrashAction::Segv: {
        // A sanitizer runtime intercepts SIGSEGV and turns the death
        // into a reported exit(1), which would reclassify the crash;
        // restore the default disposition so the kernel kills this
        // process by the real signal in every build flavor.
        std::signal(SIGSEGV, SIG_DFL);
        std::signal(SIGBUS, SIG_DFL);
        volatile int* null = nullptr;
        *null = 42;  // NOLINT: the whole point
        _exit(111);  // unreachable; belt-and-braces if SEGV is blocked
    }
    case CrashAction::Abort:
        std::abort();
    case CrashAction::OomAlloc: {
        // Allocate-and-touch until the rlimit jail ends the process
        // (operator new past RLIMIT_AS reaches the child's
        // oom _exit new-handler; without a jail this would actually
        // exhaust memory, so only sandboxed runs ever draw it).
        std::vector<char*> hoard;
        for (;;) {
            char* chunk = new char[std::size_t{1} << 20];
            for (std::size_t i = 0; i < (std::size_t{1} << 20);
                 i += 4096)
                chunk[i] = static_cast<char>(i);
            hoard.push_back(chunk);
        }
    }
    case CrashAction::BusyLoop: {
        // Spin without yielding or heartbeating: the supervisor's
        // SIGKILL is the only way out. volatile keeps the loop a real
        // loop (an empty infinite loop is UB the optimizer may drop).
        volatile std::uint64_t spin = 0;
        for (;;)
            spin = spin + 1;
    }
    case CrashAction::Exit7:
        _exit(7);
    }
}

}  // namespace graphiti::faults
