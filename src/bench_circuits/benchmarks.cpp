#include "bench_circuits/benchmarks.hpp"

#include <cmath>

namespace graphiti::circuits {

namespace {

using static_hls::StaticKernel;
using static_hls::StaticLoop;
using static_hls::StaticOp;

/**
 * Add the Mux/Init/Branch scaffolding for a multi-variable loop:
 * for each var v: mux_v, init_v (false), branch_v; loopback
 * branch_v.out0 -> mux_v.in1; condition fanned out from @p cond_src
 * to every branch_v.in1 and init_v.in0.
 */
void
addLoopScaffold(ExprHigh& g, const std::vector<std::string>& vars,
                const PortRef& cond_src)
{
    for (const std::string& v : vars) {
        g.addNode("mux_" + v, "mux");
        g.addNode("init_" + v, "init", {{"value", "false"}});
        g.addNode("branch_" + v, "branch");
        g.connect("init_" + v, "out0", "mux_" + v, "in0");
        g.connect("branch_" + v, "out0", "mux_" + v, "in1");
    }
    int n = static_cast<int>(vars.size());
    g.addNode("forkCond", "fork", {{"out", std::to_string(2 * n)}});
    g.connect(cond_src, PortRef{"forkCond", "in0"});
    for (int i = 0; i < n; ++i) {
        g.connect("forkCond", "out" + std::to_string(i),
                  "branch_" + vars[i], "in1");
        g.connect("forkCond", "out" + std::to_string(n + i),
                  "init_" + vars[i], "in0");
    }
}

std::vector<Token>
intStream(int count, int stride = 1, int base = 0)
{
    std::vector<Token> out;
    for (int i = 0; i < count; ++i)
        out.emplace_back(Value(base + i * stride));
    return out;
}

std::vector<double>
rampMemory(std::size_t size, double base, double step)
{
    std::vector<double> out(size);
    for (std::size_t i = 0; i < size; ++i)
        out[i] = base + step * static_cast<double>(i % 17);
    return out;
}

// -------------------------------------------------------------------
// matvec: result[i] = sum_j A[i*M+j] * x[j]
// -------------------------------------------------------------------

constexpr int kMatvecN = 24;
constexpr int kMatvecM = 24;

BenchmarkSpec
buildMatvec()
{
    BenchmarkSpec spec;
    spec.name = "matvec";
    spec.num_tags = 50;  // per Elakhras et al.

    ExprHigh& g = spec.df_io;
    addLoopScaffold(g, {"j", "acc", "i"}, PortRef{"lt", "out0"});

    // Entry: one token per outer iteration carrying i; constants give
    // the (j = 0, acc = 0.0) initial state.
    g.addNode("forkEntry", "fork", {{"out", "3"}});
    g.addNode("cJ0", "constant", {{"value", "0"}});
    g.addNode("cAcc0", "constant", {{"value", "0.0"}});
    g.bindInput(0, PortRef{"forkEntry", "in0"});
    g.connect("forkEntry", "out0", "mux_i", "in2");
    g.connect("forkEntry", "out1", "cJ0", "in0");
    g.connect("forkEntry", "out2", "cAcc0", "in0");
    g.connect("cJ0", "out0", "mux_j", "in2");
    g.connect("cAcc0", "out0", "mux_acc", "in2");

    // Body.
    g.addNode("forkJ", "fork", {{"out", "5"}});
    g.addNode("forkI", "fork", {{"out", "2"}});
    g.addNode("cM", "constant", {{"value", std::to_string(kMatvecM)}});
    g.addNode("mulIM", "operator", {{"op", "mul"}});
    g.addNode("addA", "operator", {{"op", "add"}});
    g.addNode("loadA", "load", {{"memory", "A"}});
    g.addNode("loadX", "load", {{"memory", "x"}});
    g.addNode("fmul", "operator", {{"op", "fmul"}});
    g.addNode("fadd", "operator", {{"op", "fadd"}});
    g.addNode("c1", "constant", {{"value", "1"}});
    g.addNode("addJ", "operator", {{"op", "add"}});
    g.addNode("forkJ2", "fork", {{"out", "3"}});
    g.addNode("cM2", "constant", {{"value", std::to_string(kMatvecM)}});
    g.addNode("lt", "operator", {{"op", "lt"}});

    g.connect("mux_j", "out0", "forkJ", "in0");
    g.connect("mux_i", "out0", "forkI", "in0");
    g.connect("forkJ", "out3", "cM", "in0");
    g.connect("forkI", "out0", "mulIM", "in0");
    g.connect("cM", "out0", "mulIM", "in1");
    g.connect("mulIM", "out0", "addA", "in0");
    g.connect("forkJ", "out0", "addA", "in1");
    g.connect("addA", "out0", "loadA", "in0");
    g.connect("forkJ", "out1", "loadX", "in0");
    g.connect("loadA", "out0", "fmul", "in0");
    g.connect("loadX", "out0", "fmul", "in1");
    g.connect("fmul", "out0", "fadd", "in0");
    g.connect("mux_acc", "out0", "fadd", "in1");
    g.connect("forkJ", "out4", "c1", "in0");
    g.connect("forkJ", "out2", "addJ", "in0");
    g.connect("c1", "out0", "addJ", "in1");
    g.connect("addJ", "out0", "forkJ2", "in0");
    g.connect("forkJ2", "out2", "cM2", "in0");
    g.connect("forkJ2", "out1", "lt", "in0");
    g.connect("cM2", "out0", "lt", "in1");

    g.connect("forkJ2", "out0", "branch_j", "in0");
    g.connect("fadd", "out0", "branch_acc", "in0");
    g.connect("forkI", "out1", "branch_i", "in0");

    // Exits: store result[i], emit the result token.
    g.addNode("sinkJ", "sink");
    g.addNode("forkRes", "fork", {{"out", "2"}});
    g.addNode("store", "store", {{"memory", "result"}});
    g.addNode("sinkSt", "sink");
    g.connect("branch_j", "out1", "sinkJ", "in0");
    g.connect("branch_acc", "out1", "forkRes", "in0");
    g.connect("branch_i", "out1", "store", "in0");
    g.connect("forkRes", "out0", "store", "in1");
    g.connect("store", "out0", "sinkSt", "in0");
    g.bindOutput(0, PortRef{"forkRes", "out1"});

    // Workload.
    spec.memories["A"] = rampMemory(kMatvecN * kMatvecM, 1.0, 0.25);
    spec.memories["x"] = rampMemory(kMatvecM, 0.5, 0.125);
    spec.memories["result"] =
        std::vector<double>(kMatvecN, 0.0);
    spec.inputs = {intStream(kMatvecN)};
    spec.expected_outputs = kMatvecN;
    for (int i = 0; i < kMatvecN; ++i) {
        double acc = 0.0;
        for (int j = 0; j < kMatvecM; ++j)
            acc += spec.memories["A"][i * kMatvecM + j] *
                   spec.memories["x"][j];
        spec.golden.push_back(acc);
    }
    spec.golden_memory = "result";
    spec.golden_memory_values = spec.golden;

    // Vericert model of the same kernel.
    StaticLoop inner;
    inner.body = {
        {"mul_im", "mul", {}},
        {"addr", "add", {"mul_im"}},
        {"load_a", "load", {"addr"}},
        {"load_x", "load", {}},
        {"fmul", "fmul", {"load_a", "load_x"}},
        {"fadd", "fadd", {"fmul"}},
        {"add_j", "add", {}},
        {"lt", "lt", {"add_j"}},
    };
    inner.trips = kMatvecM;
    spec.static_kernel =
        StaticKernel{"matvec", kMatvecN, {inner}, 3};
    return spec;
}

// -------------------------------------------------------------------
// bicg: q[i] = sum_j A[i*M+j] * p[j]   and   s[j] += r[i] * A[i*M+j]
// The s[j] update stores inside the inner loop body (section 6.2).
// -------------------------------------------------------------------

constexpr int kBicgN = 24;
constexpr int kBicgM = 24;

ExprHigh
buildBicgCircuit(bool suppress_store)
{
    ExprHigh g;
    addLoopScaffold(g, {"j", "acc", "i"}, PortRef{"lt", "out0"});

    g.addNode("forkEntry", "fork", {{"out", "3"}});
    g.addNode("cJ0", "constant", {{"value", "0"}});
    g.addNode("cAcc0", "constant", {{"value", "0.0"}});
    g.bindInput(0, PortRef{"forkEntry", "in0"});
    g.connect("forkEntry", "out0", "mux_i", "in2");
    g.connect("forkEntry", "out1", "cJ0", "in0");
    g.connect("forkEntry", "out2", "cAcc0", "in0");
    g.connect("cJ0", "out0", "mux_j", "in2");
    g.connect("cAcc0", "out0", "mux_acc", "in2");

    g.addNode("forkJ", "fork", {{"out", "7"}});
    g.addNode("forkI", "fork", {{"out", "3"}});
    g.addNode("cM", "constant", {{"value", std::to_string(kBicgM)}});
    g.addNode("mulIM", "operator", {{"op", "mul"}});
    g.addNode("addA", "operator", {{"op", "add"}});
    g.addNode("loadA", "load", {{"memory", "A"}});
    g.addNode("forkA", "fork", {{"out", "2"}});
    g.addNode("loadP", "load", {{"memory", "p"}});
    g.addNode("loadR", "load", {{"memory", "r"}});
    g.addNode("loadS", "load", {{"memory", "s"}});
    g.addNode("fmulQ", "operator", {{"op", "fmul"}});
    g.addNode("faddQ", "operator", {{"op", "fadd"}});
    g.addNode("fmulS", "operator", {{"op", "fmul"}});
    g.addNode("faddS", "operator", {{"op", "fadd"}});
    g.addNode("c1", "constant", {{"value", "1"}});
    g.addNode("addJ", "operator", {{"op", "add"}});
    g.addNode("forkJ2", "fork", {{"out", "3"}});
    g.addNode("cM2", "constant", {{"value", std::to_string(kBicgM)}});
    g.addNode("lt", "operator", {{"op", "lt"}});
    g.addNode("sinkUpd", "sink");

    g.connect("mux_j", "out0", "forkJ", "in0");
    g.connect("mux_i", "out0", "forkI", "in0");
    g.connect("forkJ", "out3", "cM", "in0");
    g.connect("forkI", "out0", "mulIM", "in0");
    g.connect("cM", "out0", "mulIM", "in1");
    g.connect("mulIM", "out0", "addA", "in0");
    g.connect("forkJ", "out0", "addA", "in1");
    g.connect("addA", "out0", "loadA", "in0");
    g.connect("loadA", "out0", "forkA", "in0");
    g.connect("forkJ", "out1", "loadP", "in0");
    g.connect("forkI", "out1", "loadR", "in0");
    g.connect("forkJ", "out5", "loadS", "in0");
    g.connect("forkA", "out0", "fmulQ", "in0");
    g.connect("loadP", "out0", "fmulQ", "in1");
    g.connect("fmulQ", "out0", "faddQ", "in0");
    g.connect("mux_acc", "out0", "faddQ", "in1");
    g.connect("forkA", "out1", "fmulS", "in0");
    g.connect("loadR", "out0", "fmulS", "in1");
    g.connect("fmulS", "out0", "faddS", "in0");
    g.connect("loadS", "out0", "faddS", "in1");

    // The s[j] update: a store in DF-IO, a timing-equivalent dummy
    // operator in the variant the unverified flow transformed.
    if (suppress_store) {
        // Consume value and address like the store would, with a
        // one-cycle dummy unit; no memory effect.
        g.addNode("upd", "operator", {{"op", "id"}, {"latency", "1"}});
        g.connect("faddS", "out0", "upd", "in0");
        g.connect("upd", "out0", "sinkUpd", "in0");
        g.addNode("sinkAddr", "sink");
        g.connect("forkJ", "out6", "sinkAddr", "in0");
    } else {
        g.addNode("upd", "store", {{"memory", "s"}});
        g.connect("forkJ", "out6", "upd", "in0");   // address j
        g.connect("faddS", "out0", "upd", "in1");   // data
        g.connect("upd", "out0", "sinkUpd", "in0");
    }

    g.connect("forkJ", "out4", "c1", "in0");
    g.connect("forkJ", "out2", "addJ", "in0");
    g.connect("c1", "out0", "addJ", "in1");
    g.connect("addJ", "out0", "forkJ2", "in0");
    g.connect("forkJ2", "out2", "cM2", "in0");
    g.connect("forkJ2", "out1", "lt", "in0");
    g.connect("cM2", "out0", "lt", "in1");

    g.connect("forkJ2", "out0", "branch_j", "in0");
    g.connect("faddQ", "out0", "branch_acc", "in0");
    g.connect("forkI", "out2", "branch_i", "in0");

    g.addNode("sinkJ", "sink");
    g.addNode("forkRes", "fork", {{"out", "2"}});
    g.addNode("storeQ", "store", {{"memory", "q"}});
    g.addNode("sinkSt", "sink");
    g.connect("branch_j", "out1", "sinkJ", "in0");
    g.connect("branch_acc", "out1", "forkRes", "in0");
    g.connect("branch_i", "out1", "storeQ", "in0");
    g.connect("forkRes", "out0", "storeQ", "in1");
    g.connect("storeQ", "out0", "sinkSt", "in0");
    g.bindOutput(0, PortRef{"forkRes", "out1"});
    return g;
}

BenchmarkSpec
buildBicg()
{
    BenchmarkSpec spec;
    spec.name = "bicg";
    spec.num_tags = 24;
    spec.df_io = buildBicgCircuit(false);
    spec.df_ooo_input = buildBicgCircuit(true);

    spec.memories["A"] = rampMemory(kBicgN * kBicgM, 1.0, 0.5);
    spec.memories["p"] = rampMemory(kBicgM, 0.25, 0.25);
    spec.memories["r"] = rampMemory(kBicgN, 0.75, 0.125);
    spec.memories["s"] = std::vector<double>(kBicgM, 0.0);
    spec.memories["q"] = std::vector<double>(kBicgN, 0.0);
    spec.inputs = {intStream(kBicgN)};
    spec.expected_outputs = kBicgN;

    std::vector<double> s(kBicgM, 0.0);
    for (int i = 0; i < kBicgN; ++i) {
        double acc = 0.0;
        for (int j = 0; j < kBicgM; ++j) {
            double a = spec.memories["A"][i * kBicgM + j];
            acc += a * spec.memories["p"][j];
            s[j] += spec.memories["r"][i] * a;
        }
        spec.golden.push_back(acc);
    }
    spec.golden_memory = "s";
    spec.golden_memory_values = s;

    StaticLoop inner;
    inner.body = {
        {"mul_im", "mul", {}},
        {"addr", "add", {"mul_im"}},
        {"load_a", "load", {"addr"}},
        {"load_p", "load", {}},
        {"load_r", "load", {}},
        {"load_s", "load", {}},
        {"fmul_q", "fmul", {"load_a", "load_p"}},
        {"fadd_q", "fadd", {"fmul_q"}},
        {"fmul_s", "fmul", {"load_a", "load_r"}},
        {"fadd_s", "fadd", {"fmul_s", "load_s"}},
        {"store_s", "store", {"fadd_s"}},
        {"add_j", "add", {}},
        {"lt", "lt", {"add_j"}},
    };
    inner.trips = kBicgM;
    spec.static_kernel = StaticKernel{"bicg", kBicgN, {inner}, 3};
    return spec;
}

// -------------------------------------------------------------------
// gemm: C[i][j] = sum_k A[i*K+k] * B[k*M+j], streamed (i, j) pairs.
// -------------------------------------------------------------------

constexpr int kGemmN = 12;   // rows
constexpr int kGemmM = 12;   // cols
constexpr int kGemmK = 24;   // reduction depth

BenchmarkSpec
buildGemm()
{
    BenchmarkSpec spec;
    spec.name = "gemm";
    spec.num_tags = 32;

    ExprHigh& g = spec.df_io;
    addLoopScaffold(g, {"k", "acc", "rb", "cb"}, PortRef{"lt", "out0"});

    // Entries: io0 = row base (i*K), io1 = column index j.
    g.addNode("forkEntry", "fork", {{"out", "3"}});
    g.addNode("cK0", "constant", {{"value", "0"}});
    g.addNode("cAcc0", "constant", {{"value", "0.0"}});
    g.bindInput(0, PortRef{"forkEntry", "in0"});
    g.bindInput(1, PortRef{"mux_cb", "in2"});
    g.connect("forkEntry", "out0", "mux_rb", "in2");
    g.connect("forkEntry", "out1", "cK0", "in0");
    g.connect("forkEntry", "out2", "cAcc0", "in0");
    g.connect("cK0", "out0", "mux_k", "in2");
    g.connect("cAcc0", "out0", "mux_acc", "in2");

    g.addNode("forkK", "fork", {{"out", "5"}});
    g.addNode("forkRB", "fork", {{"out", "2"}});
    g.addNode("forkCB", "fork", {{"out", "2"}});
    g.addNode("addA", "operator", {{"op", "add"}});
    g.addNode("loadA", "load", {{"memory", "A"}});
    g.addNode("cMdim", "constant", {{"value", std::to_string(kGemmM)}});
    g.addNode("mulKM", "operator", {{"op", "mul"}});
    g.addNode("addB", "operator", {{"op", "add"}});
    g.addNode("loadB", "load", {{"memory", "B"}});
    g.addNode("fmul", "operator", {{"op", "fmul"}});
    g.addNode("fadd", "operator", {{"op", "fadd"}});
    g.addNode("c1", "constant", {{"value", "1"}});
    g.addNode("addK", "operator", {{"op", "add"}});
    g.addNode("forkK2", "fork", {{"out", "3"}});
    g.addNode("cKdim", "constant", {{"value", std::to_string(kGemmK)}});
    g.addNode("lt", "operator", {{"op", "lt"}});

    g.connect("mux_k", "out0", "forkK", "in0");
    g.connect("mux_rb", "out0", "forkRB", "in0");
    g.connect("mux_cb", "out0", "forkCB", "in0");
    g.connect("forkRB", "out0", "addA", "in0");
    g.connect("forkK", "out0", "addA", "in1");
    g.connect("addA", "out0", "loadA", "in0");
    g.connect("forkK", "out3", "cMdim", "in0");
    g.connect("forkK", "out1", "mulKM", "in0");
    g.connect("cMdim", "out0", "mulKM", "in1");
    g.connect("mulKM", "out0", "addB", "in0");
    g.connect("forkCB", "out0", "addB", "in1");
    g.connect("addB", "out0", "loadB", "in0");
    g.connect("loadA", "out0", "fmul", "in0");
    g.connect("loadB", "out0", "fmul", "in1");
    g.connect("fmul", "out0", "fadd", "in0");
    g.connect("mux_acc", "out0", "fadd", "in1");
    g.connect("forkK", "out4", "c1", "in0");
    g.connect("forkK", "out2", "addK", "in0");
    g.connect("c1", "out0", "addK", "in1");
    g.connect("addK", "out0", "forkK2", "in0");
    g.connect("forkK2", "out2", "cKdim", "in0");
    g.connect("forkK2", "out1", "lt", "in0");
    g.connect("cKdim", "out0", "lt", "in1");

    g.connect("forkK2", "out0", "branch_k", "in0");
    g.connect("fadd", "out0", "branch_acc", "in0");
    g.connect("forkRB", "out1", "branch_rb", "in0");
    g.connect("forkCB", "out1", "branch_cb", "in0");

    g.addNode("sinkK", "sink");
    g.addNode("sinkRB", "sink");
    g.addNode("sinkCB", "sink");
    g.connect("branch_k", "out1", "sinkK", "in0");
    g.connect("branch_rb", "out1", "sinkRB", "in0");
    g.connect("branch_cb", "out1", "sinkCB", "in0");
    g.bindOutput(0, PortRef{"branch_acc", "out1"});

    spec.memories["A"] = rampMemory(kGemmN * kGemmK, 1.0, 0.5);
    spec.memories["B"] = rampMemory(kGemmK * kGemmM, 0.5, 0.25);
    std::vector<Token> row_bases, cols;
    for (int i = 0; i < kGemmN; ++i)
        for (int j = 0; j < kGemmM; ++j) {
            row_bases.emplace_back(Value(i * kGemmK));
            cols.emplace_back(Value(j));
            double acc = 0.0;
            for (int k = 0; k < kGemmK; ++k)
                acc += spec.memories["A"][i * kGemmK + k] *
                       spec.memories["B"][k * kGemmM + j];
            spec.golden.push_back(acc);
        }
    spec.inputs = {row_bases, cols};
    spec.expected_outputs = spec.golden.size();

    StaticLoop inner;
    inner.body = {
        {"addr_a", "add", {}},
        {"load_a", "load", {"addr_a"}},
        {"mul_km", "mul", {}},
        {"addr_b", "add", {"mul_km"}},
        {"load_b", "load", {"addr_b"}},
        {"fmul", "fmul", {"load_a", "load_b"}},
        {"fadd", "fadd", {"fmul"}},
        {"add_k", "add", {}},
        {"lt", "lt", {"add_k"}},
    };
    inner.trips = kGemmK;
    spec.static_kernel = StaticKernel{
        "gemm", static_cast<std::size_t>(kGemmN * kGemmM), {inner}, 3};
    return spec;
}

// -------------------------------------------------------------------
// mvt: x1[i] = sum_j A[i*M+j]*y1[j];  x2[i] = sum_j A[j*M+i]*y2[j]
// Both accumulations fused into one inner loop; the circuit emits
// x1[i] + x2[i] so the result stream stays single.
// -------------------------------------------------------------------

constexpr int kMvtN = 24;
constexpr int kMvtM = 24;

BenchmarkSpec
buildMvt()
{
    BenchmarkSpec spec;
    spec.name = "mvt";
    spec.num_tags = 12;

    ExprHigh& g = spec.df_io;
    addLoopScaffold(g, {"j", "acc1", "acc2", "i"},
                    PortRef{"lt", "out0"});

    g.addNode("forkEntry", "fork", {{"out", "4"}});
    g.addNode("cJ0", "constant", {{"value", "0"}});
    g.addNode("cAcc10", "constant", {{"value", "0.0"}});
    g.addNode("cAcc20", "constant", {{"value", "0.0"}});
    g.bindInput(0, PortRef{"forkEntry", "in0"});
    g.connect("forkEntry", "out0", "mux_i", "in2");
    g.connect("forkEntry", "out1", "cJ0", "in0");
    g.connect("forkEntry", "out2", "cAcc10", "in0");
    g.connect("forkEntry", "out3", "cAcc20", "in0");
    g.connect("cJ0", "out0", "mux_j", "in2");
    g.connect("cAcc10", "out0", "mux_acc1", "in2");
    g.connect("cAcc20", "out0", "mux_acc2", "in2");

    g.addNode("forkJ", "fork", {{"out", "8"}});
    g.addNode("forkI", "fork", {{"out", "3"}});
    g.addNode("cM1", "constant", {{"value", std::to_string(kMvtM)}});
    g.addNode("mulIM", "operator", {{"op", "mul"}});
    g.addNode("addA1", "operator", {{"op", "add"}});
    g.addNode("loadA1", "load", {{"memory", "A"}});
    g.addNode("loadY1", "load", {{"memory", "y1"}});
    g.addNode("fmul1", "operator", {{"op", "fmul"}});
    g.addNode("fadd1", "operator", {{"op", "fadd"}});
    g.addNode("cM2c", "constant", {{"value", std::to_string(kMvtM)}});
    g.addNode("mulJM", "operator", {{"op", "mul"}});
    g.addNode("addA2", "operator", {{"op", "add"}});
    g.addNode("loadA2", "load", {{"memory", "A"}});
    g.addNode("loadY2", "load", {{"memory", "y2"}});
    g.addNode("fmul2", "operator", {{"op", "fmul"}});
    g.addNode("fadd2", "operator", {{"op", "fadd"}});
    g.addNode("c1", "constant", {{"value", "1"}});
    g.addNode("addJ", "operator", {{"op", "add"}});
    g.addNode("forkJ2", "fork", {{"out", "2"}});
    g.addNode("cMT", "constant", {{"value", std::to_string(kMvtM)}});
    g.addNode("lt", "operator", {{"op", "lt"}});

    g.connect("mux_j", "out0", "forkJ", "in0");
    g.connect("mux_i", "out0", "forkI", "in0");
    // x1 chain: A[i*M+j] * y1[j]
    g.connect("forkJ", "out5", "cM1", "in0");
    g.connect("forkI", "out0", "mulIM", "in0");
    g.connect("cM1", "out0", "mulIM", "in1");
    g.connect("mulIM", "out0", "addA1", "in0");
    g.connect("forkJ", "out0", "addA1", "in1");
    g.connect("addA1", "out0", "loadA1", "in0");
    g.connect("forkJ", "out1", "loadY1", "in0");
    g.connect("loadA1", "out0", "fmul1", "in0");
    g.connect("loadY1", "out0", "fmul1", "in1");
    g.connect("fmul1", "out0", "fadd1", "in0");
    g.connect("mux_acc1", "out0", "fadd1", "in1");
    // x2 chain: A[j*M+i] * y2[j]
    g.connect("forkJ", "out6", "cM2c", "in0");
    g.connect("forkJ", "out2", "mulJM", "in0");
    g.connect("cM2c", "out0", "mulJM", "in1");
    g.connect("mulJM", "out0", "addA2", "in0");
    g.connect("forkI", "out1", "addA2", "in1");
    g.connect("addA2", "out0", "loadA2", "in0");
    g.connect("forkJ", "out3", "loadY2", "in0");
    g.connect("loadA2", "out0", "fmul2", "in0");
    g.connect("loadY2", "out0", "fmul2", "in1");
    g.connect("fmul2", "out0", "fadd2", "in0");
    g.connect("mux_acc2", "out0", "fadd2", "in1");
    // induction: triggers for the two constants come from forkJ
    // (before the increment) to avoid a self-dependence.
    g.addNode("forkC1", "fork", {{"out", "2"}});
    g.connect("forkJ", "out4", "addJ", "in0");
    g.connect("forkJ", "out7", "forkC1", "in0");
    g.connect("forkC1", "out0", "c1", "in0");
    g.connect("forkC1", "out1", "cMT", "in0");
    g.connect("c1", "out0", "addJ", "in1");
    g.connect("addJ", "out0", "forkJ2", "in0");
    g.connect("forkJ2", "out1", "lt", "in0");
    g.connect("cMT", "out0", "lt", "in1");

    g.connect("forkJ2", "out0", "branch_j", "in0");
    g.connect("fadd1", "out0", "branch_acc1", "in0");
    g.connect("fadd2", "out0", "branch_acc2", "in0");
    g.connect("forkI", "out2", "branch_i", "in0");

    g.addNode("sinkJ", "sink");
    g.addNode("sinkI", "sink");
    g.addNode("faddOut", "operator", {{"op", "fadd"}});
    g.connect("branch_j", "out1", "sinkJ", "in0");
    g.connect("branch_i", "out1", "sinkI", "in0");
    g.connect("branch_acc1", "out1", "faddOut", "in0");
    g.connect("branch_acc2", "out1", "faddOut", "in1");
    g.bindOutput(0, PortRef{"faddOut", "out0"});

    spec.memories["A"] = rampMemory(kMvtN * kMvtM, 1.0, 0.5);
    spec.memories["y1"] = rampMemory(kMvtM, 0.5, 0.25);
    spec.memories["y2"] = rampMemory(kMvtM, 0.25, 0.5);
    spec.inputs = {intStream(kMvtN)};
    spec.expected_outputs = kMvtN;
    for (int i = 0; i < kMvtN; ++i) {
        double a1 = 0.0, a2 = 0.0;
        for (int j = 0; j < kMvtM; ++j) {
            a1 += spec.memories["A"][i * kMvtM + j] *
                  spec.memories["y1"][j];
            a2 += spec.memories["A"][j * kMvtM + i] *
                  spec.memories["y2"][j];
        }
        spec.golden.push_back(a1 + a2);
    }

    StaticLoop inner;
    inner.body = {
        {"mul_im", "mul", {}},
        {"addr1", "add", {"mul_im"}},
        {"load_a1", "load", {"addr1"}},
        {"load_y1", "load", {}},
        {"fmul1", "fmul", {"load_a1", "load_y1"}},
        {"fadd1", "fadd", {"fmul1"}},
        {"mul_jm", "mul", {}},
        {"addr2", "add", {"mul_jm"}},
        {"load_a2", "load", {"addr2"}},
        {"load_y2", "load", {}},
        {"fmul2", "fmul", {"load_a2", "load_y2"}},
        {"fadd2", "fadd", {"fmul2"}},
        {"add_j", "add", {}},
        {"lt", "lt", {"add_j"}},
    };
    inner.trips = kMvtM;
    spec.static_kernel = StaticKernel{"mvt", kMvtN, {inner}, 4};
    return spec;
}

// -------------------------------------------------------------------
// gsum: acc = sum_j (d[base+j] >= 0.5 ? d[base+j]^2 : 0)
// gsum-many streams independent segments; gsum-single serializes them
// (each segment's start waits for the previous result).
// -------------------------------------------------------------------

constexpr int kGsumItems = 40;
constexpr int kGsumTrips = 16;

BenchmarkSpec
buildGsum(bool single)
{
    BenchmarkSpec spec;
    spec.name = single ? "gsum-single" : "gsum-many";
    spec.num_tags = 6;
    spec.serial_io = single;

    ExprHigh& g = spec.df_io;
    addLoopScaffold(g, {"j", "acc", "base"}, PortRef{"lt", "out0"});

    g.addNode("forkEntry", "fork", {{"out", "3"}});
    g.addNode("cJ0", "constant", {{"value", "0"}});
    g.addNode("cAcc0", "constant", {{"value", "0.0"}});
    g.bindInput(0, PortRef{"forkEntry", "in0"});
    g.connect("forkEntry", "out0", "mux_base", "in2");
    g.connect("forkEntry", "out1", "cJ0", "in0");
    g.connect("forkEntry", "out2", "cAcc0", "in0");
    g.connect("cJ0", "out0", "mux_j", "in2");
    g.connect("cAcc0", "out0", "mux_acc", "in2");

    g.addNode("forkJ", "fork", {{"out", "4"}});
    g.addNode("forkB", "fork", {{"out", "2"}});
    g.addNode("addD", "operator", {{"op", "add"}});
    g.addNode("loadD", "load", {{"memory", "d"}});
    g.addNode("forkD", "fork", {{"out", "3"}});
    g.addNode("cHalf", "constant", {{"value", "0.5"}});
    g.addNode("fge", "operator", {{"op", "fge"}});
    g.addNode("sq", "operator", {{"op", "fmul"}});
    g.addNode("forkDD", "fork", {{"out", "2"}});
    g.addNode("cZero", "constant", {{"value", "0.0"}});
    g.addNode("sel", "operator", {{"op", "select"}});
    g.addNode("fadd", "operator", {{"op", "fadd"}});
    g.addNode("c1", "constant", {{"value", "1"}});
    g.addNode("addJ", "operator", {{"op", "add"}});
    g.addNode("forkJ2", "fork", {{"out", "3"}});
    g.addNode("cT", "constant",
              {{"value", std::to_string(kGsumTrips)}});
    g.addNode("lt", "operator", {{"op", "lt"}});

    g.connect("mux_j", "out0", "forkJ", "in0");
    g.connect("mux_base", "out0", "forkB", "in0");
    g.connect("forkB", "out0", "addD", "in0");
    g.connect("forkJ", "out0", "addD", "in1");
    g.connect("addD", "out0", "loadD", "in0");
    g.connect("loadD", "out0", "forkD", "in0");
    g.connect("forkD", "out0", "fge", "in0");
    g.connect("forkD", "out1", "forkDD", "in0");
    g.connect("forkD", "out2", "cHalf", "in0");
    g.connect("cHalf", "out0", "fge", "in1");
    g.connect("forkDD", "out0", "sq", "in0");
    g.connect("forkDD", "out1", "sq", "in1");
    g.connect("fge", "out0", "sel", "in0");
    g.connect("sq", "out0", "sel", "in1");
    g.connect("forkJ", "out3", "cZero", "in0");
    g.connect("cZero", "out0", "sel", "in2");
    g.connect("sel", "out0", "fadd", "in0");
    g.connect("mux_acc", "out0", "fadd", "in1");
    g.connect("forkJ", "out1", "addJ", "in0");
    g.connect("forkJ", "out2", "c1", "in0");
    g.connect("c1", "out0", "addJ", "in1");
    g.connect("addJ", "out0", "forkJ2", "in0");
    g.connect("forkJ2", "out2", "cT", "in0");
    g.connect("forkJ2", "out1", "lt", "in0");
    g.connect("cT", "out0", "lt", "in1");

    g.connect("forkJ2", "out0", "branch_j", "in0");
    g.connect("fadd", "out0", "branch_acc", "in0");
    g.connect("forkB", "out1", "branch_base", "in0");

    g.addNode("sinkJ", "sink");
    g.addNode("sinkB", "sink");
    g.connect("branch_j", "out1", "sinkJ", "in0");
    g.connect("branch_base", "out1", "sinkB", "in0");
    g.bindOutput(0, PortRef{"branch_acc", "out1"});

    spec.memories["d"] =
        rampMemory(kGsumItems * kGsumTrips, -0.4, 0.35);
    spec.inputs = {intStream(kGsumItems, kGsumTrips)};
    spec.expected_outputs = kGsumItems;
    for (int item = 0; item < kGsumItems; ++item) {
        double acc = 0.0;
        for (int j = 0; j < kGsumTrips; ++j) {
            double x =
                spec.memories["d"][item * kGsumTrips + j];
            acc += x >= 0.5 ? x * x : 0.0;
        }
        spec.golden.push_back(acc);
    }

    StaticLoop inner;
    inner.body = {
        {"addr", "add", {}},
        {"load_d", "load", {"addr"}},
        {"fge", "fge", {"load_d"}},
        {"sq", "fmul", {"load_d"}},
        {"sel", "select", {"fge", "sq"}},
        {"fadd", "fadd", {"sel"}},
        {"add_j", "add", {}},
        {"lt", "lt", {"add_j"}},
    };
    inner.trips = kGsumTrips;
    spec.static_kernel = StaticKernel{
        spec.name, kGsumItems, {inner}, 3};
    return spec;
}

}  // namespace

std::vector<std::string>
benchmarkNames()
{
    return {"bicg",        "gemm",   "gsum-many",
            "gsum-single", "matvec", "mvt"};
}

Result<BenchmarkSpec>
buildBenchmark(const std::string& name)
{
    if (name == "matvec")
        return buildMatvec();
    if (name == "bicg")
        return buildBicg();
    if (name == "gemm")
        return buildGemm();
    if (name == "mvt")
        return buildMvt();
    if (name == "gsum-many")
        return buildGsum(false);
    if (name == "gsum-single")
        return buildGsum(true);
    return err("unknown benchmark: " + name);
}

}  // namespace graphiti::circuits
