#include "bench_circuits/gcd.hpp"

namespace graphiti::circuits {

ExprHigh
buildGcdInOrder()
{
    ExprHigh g;
    g.addNode("muxA", "mux");
    g.addNode("muxB", "mux");
    g.addNode("initA", "init", {{"value", "false"}});
    g.addNode("initB", "init", {{"value", "false"}});
    g.addNode("forkB", "fork", {{"out", "2"}});
    g.addNode("mod", "operator", {{"op", "mod"}, {"latency", "4"}});
    g.addNode("forkMod", "fork", {{"out", "3"}});
    g.addNode("const0", "constant", {{"value", "0"}});
    g.addNode("ne", "operator", {{"op", "ne"}});
    g.addNode("forkCond", "fork", {{"out", "4"}});
    g.addNode("branchA", "branch");
    g.addNode("branchB", "branch");
    g.addNode("sinkB", "sink");

    g.bindInput(0, PortRef{"muxA", "in2"});  // a
    g.bindInput(1, PortRef{"muxB", "in2"});  // b
    g.bindOutput(0, PortRef{"branchA", "out1"});  // gcd(a, b)

    g.connect("initA", "out0", "muxA", "in0");
    g.connect("initB", "out0", "muxB", "in0");
    g.connect("muxA", "out0", "mod", "in0");
    g.connect("muxB", "out0", "forkB", "in0");
    g.connect("forkB", "out0", "mod", "in1");
    g.connect("forkB", "out1", "branchA", "in0");  // a' = old b
    g.connect("mod", "out0", "forkMod", "in0");    // b' = a % b
    g.connect("forkMod", "out0", "ne", "in0");
    g.connect("forkMod", "out1", "const0", "in0");
    g.connect("forkMod", "out2", "branchB", "in0");
    g.connect("const0", "out0", "ne", "in1");
    g.connect("ne", "out0", "forkCond", "in0");    // cond = b' != 0
    g.connect("forkCond", "out0", "branchA", "in1");
    g.connect("forkCond", "out1", "branchB", "in1");
    g.connect("forkCond", "out2", "initA", "in0");
    g.connect("forkCond", "out3", "initB", "in0");
    g.connect("branchA", "out0", "muxA", "in1");   // continue
    g.connect("branchB", "out0", "muxB", "in1");
    g.connect("branchB", "out1", "sinkB", "in0");  // final b' == 0
    return g;
}

void
registerGcdBody(FnRegistry& registry)
{
    registry.add("gcd_body", [](const Value& in) {
        const ValueTuple& ab = in.asTuple();
        std::int64_t a = ab[0].asInt();
        std::int64_t b = ab[1].asInt();
        std::int64_t next_b = b == 0 ? 0 : a % b;
        return Value::tuple(Value::tuple(Value(b), Value(next_b)),
                            Value(next_b != 0));
    });
}

ExprHigh
buildGcdNormalizedLoop(FnRegistry& registry)
{
    registerGcdBody(registry);

    ExprHigh g;
    g.addNode("mux", "mux");
    g.addNode("init", "init", {{"value", "false"}});
    g.addNode("body", "pure", {{"fn", "gcd_body"}});
    g.addNode("split", "split");
    g.addNode("forkC", "fork", {{"out", "2"}});
    g.addNode("branch", "branch");

    g.bindInput(0, PortRef{"mux", "in2"});
    g.bindOutput(0, PortRef{"branch", "out1"});

    g.connect("init", "out0", "mux", "in0");
    g.connect("mux", "out0", "body", "in0");
    g.connect("body", "out0", "split", "in0");
    g.connect("split", "out0", "branch", "in0");
    g.connect("split", "out1", "forkC", "in0");
    g.connect("forkC", "out0", "branch", "in1");
    g.connect("forkC", "out1", "init", "in0");
    g.connect("branch", "out0", "mux", "in1");
    return g;
}

ExprHigh
buildGcdFarm(int copies)
{
    ExprHigh g;
    for (int k = 0; k < copies; ++k) {
        ExprHigh unit = buildGcdInOrder();
        std::string prefix = "u" + std::to_string(k) + "_";
        for (const NodeDecl& node : unit.nodes())
            g.addNode(prefix + node.name, node.type, node.attrs);
        for (const Edge& e : unit.edges())
            g.connect(PortRef{prefix + e.src.inst, e.src.port},
                      PortRef{prefix + e.dst.inst, e.dst.port});
        for (std::size_t i = 0; i < unit.inputs().size(); ++i)
            g.bindInput(2 * static_cast<std::size_t>(k) + i,
                        PortRef{prefix + unit.inputs()[i]->inst,
                                unit.inputs()[i]->port});
        g.bindOutput(static_cast<std::size_t>(k),
                     PortRef{prefix + unit.outputs()[0]->inst,
                             unit.outputs()[0]->port});
    }
    return g;
}

ExprHigh
buildGcdOutOfOrder(FnRegistry& registry, int num_tags)
{
    registerGcdBody(registry);

    ExprHigh g;
    g.addNode("tagger", "tagger",
              {{"tags", std::to_string(num_tags)}});
    g.addNode("merge", "merge");
    g.addNode("body", "pure", {{"fn", "gcd_body"}});
    g.addNode("split", "split");
    g.addNode("branch", "branch");

    g.bindInput(0, PortRef{"tagger", "in0"});
    g.bindOutput(0, PortRef{"tagger", "out1"});

    g.connect("tagger", "out0", "merge", "in1");
    g.connect("branch", "out0", "merge", "in0");
    g.connect("merge", "out0", "body", "in0");
    g.connect("body", "out0", "split", "in0");
    g.connect("split", "out0", "branch", "in0");
    g.connect("split", "out1", "branch", "in1");
    g.connect("branch", "out1", "tagger", "in1");
    return g;
}

}  // namespace graphiti::circuits
