#ifndef GRAPHITI_BENCH_CIRCUITS_BENCHMARKS_HPP
#define GRAPHITI_BENCH_CIRCUITS_BENCHMARKS_HPP

/**
 * @file
 * The evaluation benchmarks of section 6 (tables 2 and 3, figure 8).
 *
 * Each benchmark provides the untagged fast-token-delivery dataflow
 * circuit a Dynamatic front-end would emit (DF-IO), the workload
 * (memories + input streams), golden results, the tag count used by
 * Elakhras et al., and the dependence-DAG description consumed by the
 * Vericert-style static scheduler.
 *
 * Circuit shape: the outer loop is the input stream (one token per
 * outer iteration); the inner loop is a multi-variable Mux/Branch
 * loop with a long-latency loop-carried dependence (the floating
 * point accumulation) that the out-of-order transformation overlaps
 * across outer iterations.
 *
 * bicg deliberately stores to memory *inside* the inner loop body —
 * the shape that made the original out-of-order transform unsound
 * (section 6.2). GRAPHITI's pipeline refuses it; the DF-OoO column is
 * produced from the store-suppressed variant (dfOooInput), mimicking
 * the unverified flow that transformed it anyway.
 */

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/expr_high.hpp"
#include "static_hls/static_hls.hpp"
#include "support/result.hpp"
#include "support/token.hpp"

namespace graphiti::circuits {

/** Everything needed to evaluate one benchmark across the four flows. */
struct BenchmarkSpec
{
    std::string name;
    /** Tag count per Elakhras et al. (matvec uses 50). */
    int num_tags = 8;
    /** Outer iterations depend on each other (gsum-single). */
    bool serial_io = false;

    /** The untagged DF-IO circuit. */
    ExprHigh df_io;
    /**
     * Input handed to the pipeline for the DF-OoO column when it
     * differs from df_io (bicg: the store-suppressed variant the
     * unverified flow effectively transformed).
     */
    std::optional<ExprHigh> df_ooo_input;

    std::map<std::string, std::vector<double>> memories;
    std::vector<std::vector<Token>> inputs;
    std::size_t expected_outputs = 0;

    /** Expected output-stream values, in program order. */
    std::vector<double> golden;

    /** Memory whose final contents are also checked (bicg's s). */
    std::string golden_memory;
    std::vector<double> golden_memory_values;

    /** Vericert model of the same kernel. */
    static_hls::StaticKernel static_kernel;
};

/** Names of all table 2/3 benchmarks, in table order. */
std::vector<std::string> benchmarkNames();

/** Build benchmark @p name; fails on unknown names. */
Result<BenchmarkSpec> buildBenchmark(const std::string& name);

}  // namespace graphiti::circuits

#endif  // GRAPHITI_BENCH_CIRCUITS_BENCHMARKS_HPP
